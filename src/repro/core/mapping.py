"""Layer-to-chiplet mapping strategies.

Two mappers reproduce the paper's comparison:

* :class:`ContiguousMapper` -- the Floret strategy: consume chiplets in
  the global SFC allocation order, so consecutive neural layers always
  land on physically adjacent chiplets, and tasks that outgrow one petal
  spill over to the next petal's head via the top-level network.
* :class:`GreedyMapper` -- the baseline strategy the paper applies to
  Kite/SIAM/SWAP: map each successive chiplet-load to the free chiplet
  with the fewest hops from the previous one.  On multi-hop topologies
  this fragments the free set; with a hop-budget admission constraint it
  leaves chiplets unmapped (the paper's Fig. 4), without it it pays
  multi-hop transfers (Figs. 3 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple

from ..noi.topology import Topology
from ..pim.allocation import AllocationPlan
from ..workloads.dnn import DNNModel


@dataclass(frozen=True)
class TaskPlacement:
    """A task's physical footprint on the NoI.

    Attributes:
        task_id: Task identifier.
        model_name: Workload name.
        plan: The chiplet allocation plan being placed.
        chiplet_ids: Physical chiplet for each plan position, in dataflow
            order.
    """

    task_id: str
    model_name: str
    plan: AllocationPlan
    chiplet_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.chiplet_ids) != self.plan.num_chiplets:
            raise ValueError(
                f"task {self.task_id!r}: placement size "
                f"{len(self.chiplet_ids)} != plan size {self.plan.num_chiplets}"
            )
        if len(set(self.chiplet_ids)) != len(self.chiplet_ids):
            raise ValueError(f"task {self.task_id!r}: duplicate chiplets")

    @property
    def num_chiplets(self) -> int:
        return len(self.chiplet_ids)

    def max_adjacent_hops(self, topology: Topology) -> int:
        """Largest hop distance between consecutive plan positions."""
        return max(
            (
                topology.hops(a, b)
                for a, b in zip(self.chiplet_ids, self.chiplet_ids[1:])
            ),
            default=0,
        )


class Mapper(Protocol):
    """Strategy interface: place one task onto the free chiplet set."""

    def map_task(
        self,
        task_id: str,
        model: DNNModel,
        plan: AllocationPlan,
        free: FrozenSet[int],
    ) -> Optional[TaskPlacement]:
        """Return a placement using only ``free`` chiplets, or None."""
        ...  # pragma: no cover


class ContiguousMapper:
    """Dataflow-aware mapping along a linear chiplet order (Floret).

    Args:
        allocation_order: Global SFC visit order of chiplet ids (from
            :class:`~repro.core.floret.FloretDesign.allocation_order`, or
            any linear order for ablations).
        topology: When given, spill-over placements are jump-optimised
            with real hop distances (runs are chained end-to-start and may
            be walked in either direction); without it, distance along
            the allocation order is used as a proxy.
    """

    def __init__(
        self,
        allocation_order: Sequence[int],
        topology: Optional[Topology] = None,
    ) -> None:
        if len(set(allocation_order)) != len(allocation_order):
            raise ValueError("allocation order repeats chiplets")
        self.allocation_order: Tuple[int, ...] = tuple(allocation_order)
        self.topology = topology
        self._order_pos = {c: i for i, c in enumerate(self.allocation_order)}

    def _jump_hops(self, a: int, b: int) -> int:
        """Hop distance used to score run-to-run jumps."""
        if self.topology is not None:
            return self.topology.hops(a, b)
        return abs(self._order_pos[a] - self._order_pos[b])

    def _free_runs(self, free: FrozenSet[int]) -> List[List[int]]:
        """Maximal runs of consecutive free positions along the order."""
        runs: List[List[int]] = []
        current: List[int] = []
        for chiplet in self.allocation_order:
            if chiplet in free:
                current.append(chiplet)
            elif current:
                runs.append(current)
                current = []
        if current:
            runs.append(current)
        return runs

    def map_task(
        self,
        task_id: str,
        model: DNNModel,
        plan: AllocationPlan,
        free: FrozenSet[int],
    ) -> Optional[TaskPlacement]:
        """Best-fit contiguous allocation along the SFC order.

        Preference order, mirroring the paper's mapping discussion:

        1. A single contiguous free run that fits the whole task -- the
           *smallest* adequate run is chosen (best fit), which preserves
           large runs for large future tasks and keeps every consecutive
           layer pair on physically adjacent chiplets.
        2. Otherwise, spill over: take the largest free runs until the
           demand is met (fewest fragments), then chain the runs so every
           run-to-run jump is as short as possible -- the runtime analogue
           of the paper's Eq. (1) head/tail optimisation.  Runs may be
           walked in either direction (chain links are undirected), which
           lets a jump land on whichever run end is nearest.
        """
        need = plan.num_chiplets
        if need == 0:
            return TaskPlacement(task_id, model.name, plan, ())
        runs = self._free_runs(free)
        if sum(len(r) for r in runs) < need:
            return None
        fitting = [r for r in runs if len(r) >= need]
        if fitting:
            chosen = min(fitting, key=len)[:need]
        else:
            chosen = self._spill_over(runs, need)
        return TaskPlacement(
            task_id=task_id,
            model_name=model.name,
            plan=plan,
            chiplet_ids=tuple(chosen),
        )

    def _spill_over(self, runs: List[List[int]], need: int) -> List[int]:
        """Select and chain free runs for a task larger than any run."""
        pool = sorted(runs, key=len, reverse=True)
        selected: List[List[int]] = []
        total = 0
        for run in pool:
            selected.append(run)
            total += len(run)
            if total >= need:
                break
        # Chain runs: start with the longest, then repeatedly append the
        # run whose nearest end is cheapest to jump to; orient each run
        # so the jump lands on its start.
        ordered: List[int] = list(selected[0])
        pending = selected[1:]
        while pending:
            tail = ordered[-1]
            best_cost = None
            best_index = 0
            best_reversed = False
            for i, run in enumerate(pending):
                for reverse in (False, True):
                    endpoint = run[-1] if reverse else run[0]
                    cost = self._jump_hops(tail, endpoint)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_index = i
                        best_reversed = reverse
            run = pending.pop(best_index)
            ordered.extend(reversed(run) if best_reversed else run)
        return ordered[:need]


class GreedyMapper:
    """Least-hop greedy mapping for arbitrary topologies (baselines).

    Args:
        topology: The NoI to map onto (used for hop queries).
        max_hops: Optional admission constraint: if the best free chiplet
            for the next load is farther than this many hops from the
            previous one, the mapping attempt *fails* (strict mode) --
            which is how design-time-optimised NoIs end up with unmapped
            chiplets at runtime (paper Fig. 4).  ``None`` accepts any
            distance and instead pays the multi-hop latency/energy.
    """

    def __init__(self, topology: Topology, max_hops: Optional[int] = None) -> None:
        self.topology = topology
        self.max_hops = max_hops

    def _start_chiplet(self, free: FrozenSet[int]) -> int:
        """Free chiplet with the most free neighbours (ties: lowest id)."""

        def free_neighbours(c: int) -> int:
            return sum(
                1 for n in self.topology.graph.adj[c] if n in free
            )

        return max(sorted(free), key=free_neighbours)

    def map_task(
        self,
        task_id: str,
        model: DNNModel,
        plan: AllocationPlan,
        free: FrozenSet[int],
    ) -> Optional[TaskPlacement]:
        """Greedy least-hop chain placement (the paper's baseline)."""
        need = plan.num_chiplets
        if need > len(free):
            return None
        if need == 0:
            return TaskPlacement(task_id, model.name, plan, ())
        available: Set[int] = set(free)
        start = self._start_chiplet(free)
        chosen = [start]
        available.discard(start)
        prev = start
        for _ in range(need - 1):
            best = min(
                sorted(available),
                key=lambda c: (self.topology.hops(prev, c), c),
            )
            if (
                self.max_hops is not None
                and self.topology.hops(prev, best) > self.max_hops
            ):
                return None
            chosen.append(best)
            available.discard(best)
            prev = best
        return TaskPlacement(
            task_id=task_id,
            model_name=model.name,
            plan=plan,
            chiplet_ids=tuple(chosen),
        )
