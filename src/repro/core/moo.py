"""Joint performance-thermal mapping optimisation (paper Section III).

The paper's 3D design question: *where* on the stacked PE array should a
DNN's layer chain sit?  Performance-only mapping walks the 3D SFC from
its start (bottom tier) -- minimal hops, but power-hungry early layers
pile up far from the heat sink, creating hotspots that degrade ReRAM
accuracy.  The joint design solves a multi-objective optimisation over
mappings with objectives (EDP, peak temperature) and picks the knee of
the Pareto front: ~9% EDP sacrifice buys ~13 K cooler silicon and
recovers up to 11% inference accuracy (paper Figs. 6-7).

The optimiser is a compact NSGA-II (fast non-dominated sort + crowding
distance) over placement genomes: a genome is the tuple of PE ids
hosting the task's chiplet loads, in dataflow order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.perf import TaskPerf, evaluate_task
from ..noc3d.grid3d import Floret3DDesign
from ..pim.allocation import AllocationPlan, plan_allocation
from ..pim.chiplet import ChipletSpec
from ..params import ThermalParams
from ..thermal.model import ThermalModel, ThermalReport
from ..thermal.power import streaming_power
from ..workloads.dnn import DNNModel


@dataclass(frozen=True)
class MappingCandidate:
    """One evaluated placement.

    Attributes:
        chiplet_ids: PE id per plan position (dataflow order).
        edp: Energy-delay product (pJ x cycles).
        peak_k: Peak steady-state temperature.
        perf: Full performance report.
    """

    chiplet_ids: Tuple[int, ...]
    edp: float
    peak_k: float
    perf: TaskPerf

    @property
    def objectives(self) -> Tuple[float, float]:
        """The minimised objective vector (EDP, peak temperature)."""
        return (self.edp, self.peak_k)

    def dominates(self, other: "MappingCandidate") -> bool:
        """Pareto dominance on (edp, peak_k), both minimised."""
        return dominates_objectives(self.objectives, other.objectives)


class MappingProblem:
    """Evaluation context for one DNN on one 3D SFC NoC."""

    def __init__(
        self,
        design: Floret3DDesign,
        model: DNNModel,
        *,
        spec: Optional[ChipletSpec] = None,
        thermal_params: Optional[ThermalParams] = None,
    ) -> None:
        from ..pim.chiplet import spec_for_budget

        self.design = design
        self.model = model
        # Default: the smallest PE that fits the model, so the workload
        # spreads over the whole stack (Section III's operating regime).
        self.spec = spec or spec_for_budget(
            model.total_params, design.topology.num_chiplets
        )
        self.plan: AllocationPlan = plan_allocation(model, self.spec)
        self.thermal = ThermalModel(design.grid, thermal_params)
        self._cache: Dict[Tuple[int, ...], MappingCandidate] = {}
        if self.plan.num_chiplets > design.topology.num_chiplets:
            raise ValueError(
                f"{model.name} needs {self.plan.num_chiplets} PEs; stack "
                f"has {design.topology.num_chiplets}"
            )

    @property
    def genome_length(self) -> int:
        return self.plan.num_chiplets

    def performance_mapping(self) -> Tuple[int, ...]:
        """The Floret mapping: the SFC prefix (performance-optimal)."""
        return tuple(self.design.allocation_order[: self.genome_length])

    def evaluate(self, chiplet_ids: Sequence[int]) -> MappingCandidate:
        """Evaluate one placement (cached)."""
        key = tuple(chiplet_ids)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        profile = streaming_power(
            self.design.topology, self.model, self.plan, key, spec=self.spec
        )
        thermal: ThermalReport = self.thermal.solve(profile.power_w)
        candidate = MappingCandidate(
            chiplet_ids=key,
            edp=profile.perf.edp,
            peak_k=thermal.peak_k,
            perf=profile.perf,
        )
        self._cache[key] = candidate
        return candidate

    def thermal_report(self, chiplet_ids: Sequence[int]) -> ThermalReport:
        """Full temperature field for a placement (for Fig. 7 maps)."""
        profile = streaming_power(
            self.design.topology, self.model, self.plan,
            tuple(chiplet_ids), spec=self.spec,
        )
        return self.thermal.solve(profile.power_w)


@dataclass(frozen=True)
class MOOResult:
    """Outcome of the multi-objective search."""

    pareto_front: Tuple[MappingCandidate, ...]
    performance_only: MappingCandidate
    joint: MappingCandidate
    evaluations: int

    @property
    def edp_overhead(self) -> float:
        """Joint EDP as a multiple of performance-only EDP (paper: ~1.09)."""
        if self.performance_only.edp == 0:
            return 1.0
        return self.joint.edp / self.performance_only.edp

    @property
    def peak_reduction_k(self) -> float:
        """Peak-temperature drop of joint vs performance-only (paper: ~13 K)."""
        return self.performance_only.peak_k - self.joint.peak_k


# ---------------------------------------------------------------------------
# NSGA-II machinery
#
# The dominance/sorting/crowding core is generic over minimised
# objective vectors so other searches (the design-space explorer in
# :mod:`repro.eval.dse`) can reuse it; the private ``_``-prefixed
# wrappers below adapt it to :class:`MappingCandidate` populations.

ObjectiveVector = Sequence[float]


def dominates_objectives(a: ObjectiveVector, b: ObjectiveVector) -> bool:
    """Pareto dominance: ``a`` no worse everywhere, better somewhere."""
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length ({len(a)} vs {len(b)})"
        )
    not_worse = all(x <= y for x, y in zip(a, b))
    strictly = any(x < y for x, y in zip(a, b))
    return not_worse and strictly


def non_dominated_sort_objectives(
    points: Sequence[ObjectiveVector],
) -> List[List[int]]:
    """Indices of each Pareto front, best first (fast NSGA-II sort)."""
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates_objectives(points[i], points[j]):
                dominated_by[i].append(j)
            elif dominates_objectives(points[j], points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        nxt: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current += 1
        fronts.append(nxt)
    return [f for f in fronts if f]


def pareto_front_indices(points: Sequence[ObjectiveVector]) -> List[int]:
    """Indices of the non-dominated points (the first Pareto front)."""
    if not points:
        return []
    return non_dominated_sort_objectives(points)[0]


def crowding_distance_objectives(
    points: Sequence[ObjectiveVector], front: Sequence[int]
) -> Dict[int, float]:
    """Crowding distance of each index within one front."""
    distance = {i: 0.0 for i in front}
    num_objectives = len(points[front[0]])
    for axis in range(num_objectives):
        ordered = sorted(front, key=lambda i: points[i][axis])
        lo = points[ordered[0]][axis]
        hi = points[ordered[-1]][axis]
        span = hi - lo
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if span <= 0:
            continue
        for prev_i, i, next_i in zip(ordered, ordered[1:], ordered[2:]):
            distance[i] += (
                points[next_i][axis] - points[prev_i][axis]
            ) / span
    return distance


def _non_dominated_sort(
    population: Sequence[MappingCandidate],
) -> List[List[int]]:
    """Indices of each Pareto front, best first."""
    return non_dominated_sort_objectives([c.objectives for c in population])


def _crowding_distance(
    population: Sequence[MappingCandidate], front: Sequence[int]
) -> Dict[int, float]:
    """Crowding distance of each index within one front."""
    return crowding_distance_objectives(
        [c.objectives for c in population], front
    )


def _order_crossover(
    rng: random.Random,
    parent_a: Tuple[int, ...],
    parent_b: Tuple[int, ...],
) -> List[int]:
    """Position-based crossover preserving gene distinctness."""
    k = len(parent_a)
    if k < 2:
        return list(parent_a)
    cut1, cut2 = sorted(rng.sample(range(k), 2))
    child: List[Optional[int]] = [None] * k
    child[cut1:cut2] = parent_a[cut1:cut2]
    used = set(parent_a[cut1:cut2])
    fill = [g for g in parent_b if g not in used]
    it = iter(fill)
    for i in range(k):
        if child[i] is None:
            child[i] = next(it)
    return [g for g in child if g is not None]


def _mutate(
    rng: random.Random,
    genome: List[int],
    num_pes: int,
    rate: float,
) -> None:
    """In-place mutation: gene swaps and swaps with unused PEs."""
    k = len(genome)
    in_use = set(genome)
    unused = [p for p in range(num_pes) if p not in in_use]
    for i in range(k):
        if rng.random() >= rate:
            continue
        if unused and rng.random() < 0.5:
            j = rng.randrange(len(unused))
            genome[i], unused[j] = unused[j], genome[i]
        else:
            j = rng.randrange(k)
            genome[i], genome[j] = genome[j], genome[i]


def _knee_point(front: Sequence[MappingCandidate]) -> MappingCandidate:
    """Candidate closest to the normalised ideal point."""
    edps = np.array([c.edp for c in front], dtype=float)
    temps = np.array([c.peak_k for c in front], dtype=float)
    edp_span = max(edps.max() - edps.min(), 1e-12)
    temp_span = max(temps.max() - temps.min(), 1e-12)
    scores = ((edps - edps.min()) / edp_span) ** 2 + (
        (temps - temps.min()) / temp_span
    ) ** 2
    return front[int(np.argmin(scores))]


def optimize_mapping(
    problem: MappingProblem,
    *,
    population_size: int = 36,
    generations: int = 30,
    mutation_rate: float = 0.08,
    seed: int = 7,
    edp_budget: float = 1.10,
) -> MOOResult:
    """Run NSGA-II and return the Pareto front plus the knee design.

    The initial population seeds the performance-optimal SFC prefix, the
    sink-side reversed prefix (thermally friendly), and random
    placements, so both extremes of the trade-off anchor the front.
    """
    rng = random.Random(seed)
    num_pes = problem.design.topology.num_chiplets
    k = problem.genome_length

    perf_genome = list(problem.performance_mapping())
    sink_genome = list(problem.design.allocation_order[::-1][:k])
    population_genomes: List[List[int]] = [perf_genome, sink_genome]
    while len(population_genomes) < population_size:
        genome = rng.sample(range(num_pes), k)
        population_genomes.append(genome)

    population = [problem.evaluate(g) for g in population_genomes]
    evaluations = len(population)

    for _generation in range(generations):
        # Binary tournaments on (front rank, crowding) produce offspring.
        fronts = _non_dominated_sort(population)
        rank: Dict[int, int] = {}
        crowding: Dict[int, float] = {}
        for depth, front in enumerate(fronts):
            dist = _crowding_distance(population, front)
            for i in front:
                rank[i] = depth
                crowding[i] = dist[i]

        def tournament() -> MappingCandidate:
            a, b = rng.randrange(len(population)), rng.randrange(
                len(population)
            )
            if rank[a] != rank[b]:
                return population[a if rank[a] < rank[b] else b]
            return population[a if crowding[a] >= crowding[b] else b]

        offspring: List[MappingCandidate] = []
        while len(offspring) < population_size:
            pa, pb = tournament(), tournament()
            child = _order_crossover(rng, pa.chiplet_ids, pb.chiplet_ids)
            _mutate(rng, child, num_pes, mutation_rate)
            offspring.append(problem.evaluate(child))
            evaluations += 1

        merged = population + offspring
        fronts = _non_dominated_sort(merged)
        survivors: List[MappingCandidate] = []
        for front in fronts:
            if len(survivors) + len(front) <= population_size:
                survivors.extend(merged[i] for i in front)
            else:
                dist = _crowding_distance(merged, front)
                ordered = sorted(front, key=lambda i: -dist[i])
                survivors.extend(
                    merged[i]
                    for i in ordered[: population_size - len(survivors)]
                )
                break
        population = survivors

    final_fronts = _non_dominated_sort(population)
    pareto = [population[i] for i in final_fronts[0]]
    pareto.sort(key=lambda c: c.edp)
    performance_only = problem.evaluate(problem.performance_mapping())
    # Joint design: coolest mapping whose EDP stays within the budget
    # relative to the performance-only design (the paper trades ~9% EDP
    # for ~13 K); falls back to the knee if the front is out of budget.
    budget = performance_only.edp * edp_budget
    affordable = [c for c in pareto if c.edp <= budget]
    joint = (
        min(affordable, key=lambda c: c.peak_k)
        if affordable
        else _knee_point(pareto)
    )
    return MOOResult(
        pareto_front=tuple(pareto),
        performance_only=performance_only,
        joint=joint,
        evaluations=evaluations,
    )
