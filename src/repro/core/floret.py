"""Floret NoI construction: SFC petals + sparse top-level network.

Turns a :class:`~repro.core.sfc.FloretCurve` into a
:class:`~repro.noi.topology.Topology`:

* every consecutive pair of cells inside a petal becomes a single-hop
  link (so all intra-petal routers have exactly two ports, except the
  chain ends),
* the top-level network connects each petal's tail to the heads of other
  petals that lie within ``top_level_max_hops`` grid hops (paper: "at
  most three hops"), and
* if the top-level network leaves petals disconnected (possible for very
  scattered decompositions), the nearest tail->head link is added so the
  NoI is always usable; this fallback is recorded on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..noi.topology import Chiplet, Link, Topology
from ..params import NoIParams
from .sfc import Cell, FloretCurve, build_floret_curve, manhattan

#: Paper Section II: tails may talk to heads at most this many hops away.
DEFAULT_TOP_LEVEL_MAX_HOPS = 3


@dataclass(frozen=True)
class FloretDesign:
    """A fully built Floret NoI.

    Attributes:
        topology: The physical NoI graph.
        curve: The petal decomposition that generated it.
        cell_to_index: Grid cell -> chiplet index.
        allocation_order: Chiplet indices in global SFC visit order; the
            dataflow mapper consumes chiplets in exactly this order.
        top_level_links: (tail_index, head_index) pairs of the top-level
            network.
        fallback_links: Top-level links added beyond the hop budget only
            to restore connectivity (empty in well-formed designs).
    """

    topology: Topology
    curve: FloretCurve
    cell_to_index: Dict[Cell, int]
    allocation_order: Tuple[int, ...]
    top_level_links: Tuple[Tuple[int, int], ...]
    fallback_links: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_chiplets(self) -> int:
        return self.topology.num_chiplets

    def head_indices(self) -> List[int]:
        return [self.cell_to_index[s.head] for s in self.curve.segments]

    def tail_indices(self) -> List[int]:
        return [self.cell_to_index[s.tail] for s in self.curve.segments]


def build_floret(
    num_chiplets: int = 100,
    petals: int = 6,
    *,
    params: Optional[NoIParams] = None,
    top_level_max_hops: int = DEFAULT_TOP_LEVEL_MAX_HOPS,
    optimize_headtail: bool = True,
    curve: Optional[FloretCurve] = None,
) -> FloretDesign:
    """Build the Floret NoI for a near-square grid of chiplets.

    Args:
        num_chiplets: Total chiplet count (must form a full grid for the
            petal partition; 100 -> 10x10 as in the paper).
        petals: Number of SFCs (lambda); the paper's running example uses 6.
        params: Hardware constants (pitch -> link lengths).
        top_level_max_hops: Tail->head reach of the top-level network.
        optimize_headtail: Run the Eq. (1) orientation optimiser.
        curve: Use a pre-built curve instead of constructing one (for
            ablations over SFC families).

    Raises:
        ValueError: If ``num_chiplets`` does not factor into a grid or the
            petal count does not fit.
    """
    params = params or NoIParams()
    if curve is None:
        from ..noi.topology import grid_dimensions

        cols, rows = grid_dimensions(num_chiplets)
        if cols * rows != num_chiplets:
            raise ValueError(
                f"{num_chiplets} chiplets do not fill a {cols}x{rows} grid"
            )
        curve = build_floret_curve(cols, rows, petals,
                                   optimize=optimize_headtail)

    pitch = params.chiplet_pitch_mm
    cell_order = curve.all_cells()
    cell_to_index = {cell: i for i, cell in enumerate(cell_order)}
    chiplets = [
        Chiplet(index=i, x=cell[0], y=cell[1])
        for i, cell in enumerate(cell_order)
    ]

    links: List[Link] = []
    for segment in curve.segments:
        for a, b in zip(segment.cells, segment.cells[1:]):
            links.append(
                Link(
                    u=cell_to_index[a],
                    v=cell_to_index[b],
                    length_mm=pitch * manhattan(a, b),
                )
            )

    # Top-level network: tail_i -> head_j within the hop budget.
    top_level: List[Tuple[int, int]] = []
    existing: Set[Tuple[int, int]] = {
        (min(l.u, l.v), max(l.u, l.v)) for l in links
    }

    def add_link(u: int, v: int, dist: int) -> None:
        key = (min(u, v), max(u, v))
        if key in existing:
            return
        existing.add(key)
        links.append(Link(u=u, v=v, length_mm=pitch * dist))
        top_level.append((u, v))

    segments = curve.segments
    for si in segments:
        for sj in segments:
            if si.petal_id == sj.petal_id:
                continue
            dist = manhattan(si.tail, sj.head)
            if dist <= top_level_max_hops:
                add_link(cell_to_index[si.tail], cell_to_index[sj.head], dist)

    # Connectivity fallback: bridge components via nearest tail->head.
    fallback: List[Tuple[int, int]] = []
    graph = nx.Graph()
    graph.add_nodes_from(range(num_chiplets))
    graph.add_edges_from((l.u, l.v) for l in links)
    while not nx.is_connected(graph):
        components = list(nx.connected_components(graph))
        main = components[0]
        best: Optional[Tuple[int, int, int]] = None
        for si in segments:
            ti = cell_to_index[si.tail]
            for sj in segments:
                hj = cell_to_index[sj.head]
                if (ti in main) == (hj in main):
                    continue
                dist = manhattan(si.tail, sj.head)
                if best is None or dist < best[0]:
                    best = (dist, ti, hj)
        if best is None:  # pragma: no cover - petals always have head/tail
            raise RuntimeError("cannot connect Floret petals")
        dist, u, v = best
        add_link(u, v, dist)
        fallback.append((u, v))
        graph.add_edge(u, v)

    topology = Topology(
        "floret", chiplets, links, params=params, multicast_capable=True
    )
    allocation_order = tuple(
        cell_to_index[cell] for cell in curve.visit_order()
    )
    return FloretDesign(
        topology=topology,
        curve=curve,
        cell_to_index=cell_to_index,
        allocation_order=allocation_order,
        top_level_links=tuple(top_level),
        fallback_links=tuple(fallback),
    )
