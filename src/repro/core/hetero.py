"""Heterogeneous transformer acceleration (paper Section IV).

The paper's closing argument: end-to-end Transformers need *both* a
dataflow-aware PIM macro (for the static projection/FF weights, mapped
along an SFC exactly like DNN layers) and non-PIM modules (tensor cores
with SRAM buffers) for the dynamic activation-x-activation attention
matmuls -- because mapping those on NVM crossbars would mean rewriting
cells every inference, and ReRAM write endurance makes that fatal.

This module quantifies that design point:

* :func:`evaluate_pim_only` -- all kernels on ReRAM crossbars, paying
  write latency/energy for every dynamic operand and consuming write
  endurance;
* :func:`evaluate_heterogeneous` -- static kernels on the SFC PIM macro,
  dynamic matmuls on tensor-core islands, with NoI transfers between the
  two domains.

Both return a :class:`HeteroReport`; the benchmark compares latency,
energy and device lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..params import PIMParams
from ..pim.chiplet import ChipletSpec
from ..pim.reram import CrossbarSpec
from ..workloads.transformer import (
    KernelClass,
    TransformerConfig,
    encoder_kernels,
)


@dataclass(frozen=True)
class HeteroParams:
    """Hardware constants of the heterogeneous system."""

    #: Tensor-core MACs per cycle (per island).
    tc_macs_per_cycle: int = 2048

    #: Tensor-core energy per MAC, pJ.
    tc_energy_pj_per_mac: float = 0.08

    #: Tensor-core islands available.
    tc_islands: int = 4

    #: ReRAM cell write latency, cycles per (parallel) row write of a
    #: crossbar.
    reram_write_cycles_per_row: int = 500

    #: ReRAM write energy per cell, pJ.
    reram_write_energy_pj_per_cell: float = 8.0

    #: ReRAM write endurance, writes per cell before wear-out.
    reram_endurance_writes: float = 1e8

    #: NoI transfer cost between the PIM macro and tensor-core islands,
    #: cycles per byte (amortised link bandwidth incl. hops).
    crossing_cycles_per_byte: float = 0.05

    #: NoI transfer energy between domains, pJ per byte.
    crossing_energy_pj_per_byte: float = 1.2


@dataclass(frozen=True)
class HeteroReport:
    """Evaluation of one encoder stack on one system style."""

    system: str
    config_name: str
    latency_cycles: int
    compute_energy_pj: float
    write_energy_pj: float
    crossing_energy_pj: float
    cell_writes_per_inference: float

    @property
    def total_energy_pj(self) -> float:
        return (
            self.compute_energy_pj
            + self.write_energy_pj
            + self.crossing_energy_pj
        )

    def lifetime_inferences(self, params: Optional[HeteroParams] = None) -> float:
        """Inferences until the most-rewritten cells wear out."""
        params = params or HeteroParams()
        if self.cell_writes_per_inference == 0:
            return float("inf")
        return params.reram_endurance_writes / (
            self.cell_writes_per_inference
        )


def _pim_mvm_cost(macs: int, spec: CrossbarSpec) -> tuple:
    """(cycles, energy_pj) for running ``macs`` on resident crossbars.

    Assumes enough crossbars for full-weight residency with moderate
    replication (16 parallel arrays), matching the DNN-side model.
    """
    if macs <= 0:
        return 0, 0.0
    mvms = -(-macs // spec.macs_per_mvm)
    parallel = 16
    rounds = -(-mvms // parallel)
    return rounds * spec.latency_cycles, mvms * spec.energy_pj


def evaluate_pim_only(
    cfg: TransformerConfig,
    *,
    params: Optional[HeteroParams] = None,
    pim: Optional[PIMParams] = None,
) -> HeteroReport:
    """All kernels on ReRAM PIM: dynamic operands are written per inference.

    For each dynamic matmul the stationary activation operand must be
    programmed into crossbars before the MVMs can run: the write latency
    serialises with compute, each written cell costs write energy, and
    each written cell consumes one endurance cycle.
    """
    params = params or HeteroParams()
    pim = pim or PIMParams()
    spec = CrossbarSpec.from_params(pim)
    cells_per_element = pim.cells_per_weight

    latency = 0
    compute_energy = 0.0
    write_energy = 0.0
    cell_writes = 0.0
    for kernel in encoder_kernels(cfg):
        cycles, energy = _pim_mvm_cost(kernel.macs, spec)
        latency += cycles
        compute_energy += energy
        if kernel.kind is KernelClass.DYNAMIC_MATMUL:
            # Stationary operand elements -> cells to (re)program.
            cells = kernel.intermediate_elements * cells_per_element
            rows_to_write = -(-cells // spec.cols)
            latency += rows_to_write * params.reram_write_cycles_per_row
            write_energy += cells * params.reram_write_energy_pj_per_cell
            cell_writes += cells
    return HeteroReport(
        system="pim-only",
        config_name=cfg.name,
        latency_cycles=latency * cfg.num_layers,
        compute_energy_pj=compute_energy * cfg.num_layers,
        write_energy_pj=write_energy * cfg.num_layers,
        crossing_energy_pj=0.0,
        cell_writes_per_inference=cell_writes * cfg.num_layers,
    )


def evaluate_heterogeneous(
    cfg: TransformerConfig,
    *,
    params: Optional[HeteroParams] = None,
    pim: Optional[PIMParams] = None,
) -> HeteroReport:
    """Static kernels on the SFC PIM macro, dynamic ones on tensor cores.

    Activations cross the NoI twice per attention block (into the
    tensor-core island before ``Q.K^T``, back to the PIM macro after
    ``A.V``); crossings are charged per byte.
    """
    params = params or HeteroParams()
    pim = pim or PIMParams()
    spec = CrossbarSpec.from_params(pim)
    bytes_per_element = pim.activation_bits // 8 or 1

    latency = 0
    compute_energy = 0.0
    crossing_energy = 0.0
    tc_rate = params.tc_macs_per_cycle * params.tc_islands
    # Domain-crossing payloads: Q, K, V into the island; attention output
    # back -- each L x d_model activations.
    crossing_elements = 4 * cfg.seq_len * cfg.d_model
    for kernel in encoder_kernels(cfg):
        if kernel.kind is KernelClass.STATIC_WEIGHT:
            cycles, energy = _pim_mvm_cost(kernel.macs, spec)
            latency += cycles
            compute_energy += energy
        elif kernel.kind is KernelClass.DYNAMIC_MATMUL:
            cycles = -(-kernel.macs // tc_rate)
            latency += cycles
            compute_energy += kernel.macs * params.tc_energy_pj_per_mac
    crossing_bytes = crossing_elements * bytes_per_element
    latency += int(crossing_bytes * params.crossing_cycles_per_byte)
    crossing_energy += crossing_bytes * params.crossing_energy_pj_per_byte
    return HeteroReport(
        system="heterogeneous",
        config_name=cfg.name,
        latency_cycles=latency * cfg.num_layers,
        compute_energy_pj=compute_energy * cfg.num_layers,
        write_energy_pj=0.0,
        crossing_energy_pj=crossing_energy * cfg.num_layers,
        cell_writes_per_inference=0.0,
    )


def compare_systems(
    cfg: TransformerConfig,
    *,
    params: Optional[HeteroParams] = None,
) -> Dict[str, HeteroReport]:
    """Evaluate both system styles for one configuration."""
    return {
        "pim-only": evaluate_pim_only(cfg, params=params),
        "heterogeneous": evaluate_heterogeneous(cfg, params=params),
    }
