"""Space-filling-curve (SFC) generation and head/tail placement (Eq. (1)).

The Floret NoI stitches chiplets along multiple SFC "petals".  This module
provides:

* primitive curve orders over a grid (serpentine / boustrophedon, Hilbert),
* partitioning of a grid into contiguous regions, one per petal,
* per-petal serpentine paths whose *orientation* (start corner, axis) is a
  free variable, and
* the head/tail placement optimiser that picks orientations minimising the
  paper's Eq. (1): the mean Manhattan distance from each petal's tail to
  every other petal's head,

      d = (1 / (lambda^2 - lambda)) * sum_{i != j} ||t_i - h_j||_1 .

Petal paths are genuinely contiguous: consecutive cells are always grid
neighbours, which is what makes every intra-petal link single-hop in the
Floret topology (paper Fig. 2 discussion).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

Cell = Tuple[int, int]


# ---------------------------------------------------------------------------
# primitive curves


def serpentine_order(cols: int, rows: int, *, column_major: bool = False,
                     flip_x: bool = False, flip_y: bool = False) -> List[Cell]:
    """Boustrophedon order over a ``cols x rows`` grid.

    The eight combinations of ``column_major`` / ``flip_x`` / ``flip_y``
    give the eight symmetries of the serpentine; all are contiguous paths.
    """
    if cols <= 0 or rows <= 0:
        raise ValueError("grid dimensions must be positive")
    cells: List[Cell] = []
    if column_major:
        for x in range(cols):
            ys = range(rows) if x % 2 == 0 else range(rows - 1, -1, -1)
            cells.extend((x, y) for y in ys)
    else:
        for y in range(rows):
            xs = range(cols) if y % 2 == 0 else range(cols - 1, -1, -1)
            cells.extend((x, y) for x in xs)
    if flip_x:
        cells = [(cols - 1 - x, y) for x, y in cells]
    if flip_y:
        cells = [(x, rows - 1 - y) for x, y in cells]
    return cells


def hilbert_order(order: int) -> List[Cell]:
    """Hilbert curve over a ``2^order x 2^order`` grid.

    Used by the SFC-family ablation benchmark; the classic d->(x, y)
    bit-twiddling construction.
    """
    if order < 0:
        raise ValueError("order must be >= 0")
    n = 1 << order
    cells: List[Cell] = []
    for d in range(n * n):
        rx = ry = 0
        x = y = 0
        t = d
        s = 1
        while s < n:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            if ry == 0:
                if rx == 1:
                    x = s - 1 - x
                    y = s - 1 - y
                x, y = y, x
            x += s * rx
            y += s * ry
            t //= 4
            s *= 2
        cells.append((x, y))
    return cells


def is_contiguous_path(cells: Sequence[Cell]) -> bool:
    """True when every consecutive pair of cells are 4-neighbours."""
    return all(
        abs(ax - bx) + abs(ay - by) == 1
        for (ax, ay), (bx, by) in zip(cells, cells[1:])
    )


# ---------------------------------------------------------------------------
# petals


@dataclass(frozen=True)
class SFCSegment:
    """One petal: a contiguous path of cells with a head and a tail.

    The head is the mapping entry point (first chiplet that receives a
    task's first neural layer); the tail is the exit point that talks to
    other petals' heads via the top-level network.
    """

    petal_id: int
    cells: Tuple[Cell, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError(f"petal {self.petal_id}: empty")
        if len(set(self.cells)) != len(self.cells):
            raise ValueError(f"petal {self.petal_id}: repeated cells")
        if not is_contiguous_path(self.cells):
            raise ValueError(f"petal {self.petal_id}: path not contiguous")

    @property
    def head(self) -> Cell:
        return self.cells[0]

    @property
    def tail(self) -> Cell:
        return self.cells[-1]

    @property
    def length(self) -> int:
        return len(self.cells)

    def reversed(self) -> "SFCSegment":
        """Same petal walked tail-first (head and tail swap)."""
        return SFCSegment(self.petal_id, tuple(reversed(self.cells)))


def manhattan(a: Cell, b: Cell) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def eq1_mean_tail_head_distance(segments: Sequence[SFCSegment]) -> float:
    """The paper's Eq. (1) objective over a petal set.

    Mean Manhattan distance from the tail of petal *i* to the head of
    petal *j* over all ordered pairs with ``i != j``.  Returns 0.0 for a
    single petal (no inter-petal hops exist).
    """
    n = len(segments)
    if n < 2:
        return 0.0
    total = sum(
        manhattan(si.tail, sj.head)
        for si in segments
        for sj in segments
        if si.petal_id != sj.petal_id
    )
    return total / (n * n - n)


# ---------------------------------------------------------------------------
# grid partitioning


def partition_grid_blocks(cols: int, rows: int, petals: int) -> List[List[Cell]]:
    """Split a grid into ``petals`` rectangular column-band regions.

    Bands are vertical slices of near-equal width for a wide factor split,
    arranged block-style when ``petals`` factors nicely (e.g. 6 petals on
    a 10x10 grid become a 3x2 block arrangement, mirroring the paper's
    Fig. 1 six-petal layout).  Every region is a rectangle, so a serpentine
    within it is always a valid contiguous path.
    """
    if petals <= 0:
        raise ValueError("need at least one petal")
    if petals > cols * rows:
        raise ValueError(f"{petals} petals > {cols * rows} cells")

    # Choose a bx x by block arrangement with bx*by == petals, as square
    # as the grid allows.
    best: Optional[Tuple[int, int]] = None
    for bx in range(1, petals + 1):
        if petals % bx:
            continue
        by = petals // bx
        if bx > cols or by > rows:
            continue
        aspect = abs((cols / bx) - (rows / by))
        if best is None or aspect < best[0]:
            best = (aspect, bx, by)  # type: ignore[assignment]
    if best is None:
        raise ValueError(
            f"cannot arrange {petals} petals on a {cols}x{rows} grid"
        )
    _, bx, by = best  # type: ignore[misc]

    regions: List[List[Cell]] = []
    y_edges = _split_even(rows, by)
    x_edges = _split_even(cols, bx)
    for j in range(by):
        y0, y1 = y_edges[j], y_edges[j + 1]
        for i in range(bx):
            x0, x1 = x_edges[i], x_edges[i + 1]
            regions.append(
                [(x, y) for y in range(y0, y1) for x in range(x0, x1)]
            )
    return regions


def _split_even(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` pieces, preferring even piece sizes.

    Even-width regions let a column-major serpentine start and end on the
    same row, so a petal's head and tail can both face the grid centre --
    the flower-like layout of the paper's Fig. 1.  Returns the cumulative
    edge positions (length ``parts + 1``).
    """
    if parts > total:
        raise ValueError(f"cannot split {total} into {parts} non-empty parts")
    base = total // parts
    sizes = [base] * parts
    remainder = total - base * parts
    for i in range(remainder):
        sizes[i] += 1
    # Shift single units between neighbours to make pieces even where the
    # budget allows (an odd total keeps exactly one odd piece, at the end).
    for i in range(parts - 1):
        if sizes[i] % 2 == 1 and sizes[i + 1] > 1:
            sizes[i] += 1
            sizes[i + 1] -= 1
    sizes = [s for s in sizes if s > 0]
    while len(sizes) < parts:  # re-balance if a piece emptied out
        big = max(range(len(sizes)), key=lambda k: sizes[k])
        if sizes[big] < 2:
            raise ValueError(f"cannot split {total} into {parts} parts")
        sizes[big] -= 1
        sizes.append(1)
    edges = [0]
    for s in sizes:
        edges.append(edges[-1] + s)
    return edges


def _region_serpentine(region: Sequence[Cell], variant: int) -> List[Cell]:
    """Serpentine through a rectangular region, one of 8 symmetries."""
    xs = sorted({x for x, _ in region})
    ys = sorted({y for _, y in region})
    x0, y0 = xs[0], ys[0]
    w, h = len(xs), len(ys)
    if len(region) != w * h:
        raise ValueError("region is not a full rectangle")
    column_major = bool(variant & 1)
    flip_x = bool(variant & 2)
    flip_y = bool(variant & 4)
    local = serpentine_order(w, h, column_major=column_major,
                             flip_x=flip_x, flip_y=flip_y)
    return [(x0 + x, y0 + y) for x, y in local]


# ---------------------------------------------------------------------------
# head/tail placement optimisation


@dataclass(frozen=True)
class FloretCurve:
    """A complete multi-petal SFC decomposition of a grid.

    Attributes:
        cols, rows: Grid dimensions.
        segments: The petals, in id order.
        eq1_distance: Achieved Eq. (1) objective value.
    """

    cols: int
    rows: int
    segments: Tuple[SFCSegment, ...]
    eq1_distance: float

    @property
    def num_petals(self) -> int:
        return len(self.segments)

    def all_cells(self) -> List[Cell]:
        """Every grid cell exactly once, petal by petal."""
        return [cell for seg in self.segments for cell in seg.cells]

    def visit_order(self) -> List[Cell]:
        """The global chiplet allocation order used by the mapper.

        Petals are chained greedily: start at the petal whose head is
        closest to the grid centre, then repeatedly jump from the current
        tail to the nearest unvisited head -- the runtime behaviour the
        paper describes for tasks spilling over from one SFC to the next.
        """
        if not self.segments:
            return []
        centre = ((self.cols - 1) / 2.0, (self.rows - 1) / 2.0)

        def centre_dist(cell: Cell) -> float:
            return abs(cell[0] - centre[0]) + abs(cell[1] - centre[1])

        remaining = list(self.segments)
        remaining.sort(key=lambda s: (centre_dist(s.head), s.petal_id))
        order: List[Cell] = list(remaining[0].cells)
        current_tail = remaining[0].tail
        pending = remaining[1:]
        while pending:
            nxt = min(
                pending,
                key=lambda s: (manhattan(current_tail, s.head), s.petal_id),
            )
            pending.remove(nxt)
            order.extend(nxt.cells)
            current_tail = nxt.tail
        return order


def build_floret_curve(
    cols: int,
    rows: int,
    petals: int = 6,
    *,
    optimize: bool = True,
) -> FloretCurve:
    """Partition the grid into petals and optimise head/tail placement.

    Each petal is a serpentine over its rectangular region; the free
    variables are the 8 serpentine symmetries per petal.  A coordinate-
    descent search (exact for small petal counts, iterated otherwise)
    minimises Eq. (1).  With ``optimize=False`` the default variant is
    used everywhere, which serves as the ablation baseline.
    """
    regions = partition_grid_blocks(cols, rows, petals)

    def make_segments(variants: Sequence[int]) -> List[SFCSegment]:
        return [
            SFCSegment(pid, tuple(_region_serpentine(region, var)))
            for pid, (region, var) in enumerate(zip(regions, variants))
        ]

    if not optimize:
        segments = make_segments([0] * len(regions))
        return FloretCurve(cols, rows, tuple(segments),
                           eq1_mean_tail_head_distance(segments))

    variants = [0] * len(regions)
    best_segments = make_segments(variants)
    best_d = eq1_mean_tail_head_distance(best_segments)
    improved = True
    sweeps = 0
    while improved and sweeps < 8:
        improved = False
        sweeps += 1
        for pid in range(len(regions)):
            for var in range(8):
                if var == variants[pid]:
                    continue
                trial = list(variants)
                trial[pid] = var
                segments = make_segments(trial)
                d = eq1_mean_tail_head_distance(segments)
                if d < best_d - 1e-12:
                    best_d = d
                    variants = trial
                    best_segments = segments
                    improved = True
    return FloretCurve(cols, rows, tuple(best_segments), best_d)


def single_sfc_curve(cols: int, rows: int) -> FloretCurve:
    """Degenerate one-petal decomposition (monolithic serpentine).

    Used by the redundancy/ablation benchmarks: the paper argues multiple
    SFCs beat one monolithic SFC because they add inherent redundancy and
    shorter re-entry paths.
    """
    cells = tuple(serpentine_order(cols, rows))
    seg = SFCSegment(0, cells)
    return FloretCurve(cols, rows, (seg,), 0.0)
