"""Queue-based multi-task scheduler for concurrent DNN inference.

The paper maps each Table II mix as a FIFO queue: "the mapping algorithm
treats the list of tasks (W) as a queue, assigning one DNN task at a
time" -- which rules out deadlock (no cyclic waits, no concurrent
mapping threads).  This scheduler reproduces that policy as an
event-driven simulation: map the queue head whenever it fits, advance
time to the next task completion otherwise, release chiplets on
completion, and account utilisation over time.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    Callable, Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from ..net.perf import TaskPerf, evaluate_task
from ..noi.topology import Topology
from ..obs.metrics import REGISTRY
from ..pim.allocation import AllocationPlan, plan_allocation
from ..pim.chiplet import ChipletSpec
from ..workloads.tasks import DNNTask
from .mapping import Mapper, TaskPlacement


@dataclass(frozen=True)
class ScheduledTask:
    """One completed task with its placement, timing and performance."""

    placement: TaskPlacement
    perf: TaskPerf
    start_cycle: int
    finish_cycle: int

    @property
    def duration(self) -> int:
        return self.finish_cycle - self.start_cycle


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one task mix on one NoI.

    Attributes:
        completed: All tasks in completion order.
        makespan_cycles: Time until the last task finished.
        num_chiplets: System size.
        busy_integral: Sum over tasks of (chiplets x duration) -- the
            chiplet-time actually used.
        constraint_failures: Mapping attempts rejected by the mapper's
            admission rule (hop budget) even though enough chiplets were
            free -- the paper's "unmapped chiplets" symptom (Fig. 4).
        relaxed_mappings: Tasks that could only be mapped after dropping
            the admission constraint (progress guarantee).
    """

    completed: Tuple[ScheduledTask, ...]
    makespan_cycles: int
    num_chiplets: int
    busy_integral: int
    constraint_failures: int
    relaxed_mappings: int

    @property
    def utilization(self) -> float:
        """Time-averaged fraction of chiplets doing useful work."""
        denom = self.num_chiplets * self.makespan_cycles
        return (self.busy_integral / denom) if denom else 0.0

    @property
    def mean_noi_latency(self) -> float:
        """Mean per-task NoI (communication) latency in cycles."""
        if not self.completed:
            return 0.0
        return sum(
            t.perf.noi_latency_cycles for t in self.completed
        ) / len(self.completed)

    @property
    def mean_packet_latency(self) -> float:
        """Packet-weighted average NoI packet latency (Fig. 3 metric)."""
        packets = sum(t.perf.packet_count for t in self.completed)
        if packets == 0:
            return 0.0
        return sum(
            t.perf.packet_latency_sum for t in self.completed
        ) / packets

    @property
    def total_noi_energy_pj(self) -> float:
        """Total NoI energy over the mix (Fig. 5 metric)."""
        return sum(t.perf.noi_energy_pj for t in self.completed)

    @property
    def mean_task_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(
            t.perf.latency_cycles for t in self.completed
        ) / len(self.completed)


class SystemScheduler:
    """Event-driven FIFO scheduler over one NoI and one mapper.

    Args:
        topology: The NoI.
        mapper: Placement strategy (contiguous or greedy).
        spec: Chiplet hardware spec (capacity, MVM model).
        fallback_mapper: Used when ``mapper`` rejects a task that cannot
            otherwise ever be placed (e.g. strict hop budget with an
            empty system).  ``None`` re-uses ``mapper`` without change,
            meaning such tasks raise.
        memoize: Reuse :class:`TaskPerf` results across tasks that share
            (model, placement, spec).  Table II mixes repeat each DNN
            many times and the mapper recycles footprints as chiplets
            free up, so the Nth identical task becomes a dict lookup.
            Safe because ``evaluate_task`` is a pure function of the
            key (the memo lives for the scheduler's lifetime, spanning
            ``run`` calls); disable to force a cold evaluation per task.
    """

    def __init__(
        self,
        topology: Topology,
        mapper: Mapper,
        *,
        spec: Optional[ChipletSpec] = None,
        fallback_mapper: Optional[Mapper] = None,
        memoize: bool = True,
    ) -> None:
        self.topology = topology
        self.mapper = mapper
        self.spec = spec or ChipletSpec.from_params()
        self.fallback_mapper = fallback_mapper
        self.memoize = memoize
        self._perf_memo: Dict[
            Tuple[str, str, Tuple[int, ...], ChipletSpec], TaskPerf
        ] = {}

    def _evaluate(
        self,
        task: DNNTask,
        plan: AllocationPlan,
        placement: TaskPlacement,
    ) -> TaskPerf:
        """Evaluate (or recall) the task's performance on its placement."""
        if not self.memoize:
            return evaluate_task(
                self.topology, task.model, plan, placement.chiplet_ids,
                task_id=task.task_id, spec=self.spec,
            )
        key = (
            task.model.name, task.model.dataset,
            tuple(placement.chiplet_ids), self.spec,
        )
        perf = self._perf_memo.get(key)
        if perf is None:
            REGISTRY.counter("sched_taskperf_cache_misses").inc()
            perf = evaluate_task(
                self.topology, task.model, plan, placement.chiplet_ids,
                task_id=task.task_id, spec=self.spec,
            )
            self._perf_memo[key] = perf
            return perf
        REGISTRY.counter("sched_taskperf_cache_hits").inc()
        if perf.task_id != task.task_id:
            perf = replace(perf, task_id=task.task_id)
        return perf

    def run(self, tasks: Sequence[DNNTask]) -> ScheduleResult:
        """Schedule ``tasks`` FIFO until all complete.

        Raises:
            ValueError: If a task needs more chiplets than the system has.
        """
        plans: Dict[str, AllocationPlan] = {}
        queue: Deque[DNNTask] = deque(tasks)
        n = self.topology.num_chiplets
        for task in queue:
            plan = plans.get(task.model.name)
            if plan is None:
                plan = plan_allocation(task.model, self.spec)
                plans[task.model.name] = plan
            if plan.num_chiplets > n:
                raise ValueError(
                    f"task {task.task_id} needs {plan.num_chiplets} chiplets; "
                    f"system has {n}"
                )

        free: Set[int] = set(range(n))
        #: (finish_cycle, seq, ScheduledTask)
        active: List[Tuple[int, int, ScheduledTask]] = []
        completed: List[ScheduledTask] = []
        now = 0
        seq = 0
        busy_integral = 0
        constraint_failures = 0
        relaxed = 0

        while queue or active:
            progressed = True
            while queue and progressed:
                progressed = False
                task = queue[0]
                plan = plans[task.model.name]
                placement = self.mapper.map_task(
                    task.task_id, task.model, plan, frozenset(free)
                )
                if placement is None and len(free) >= plan.num_chiplets:
                    constraint_failures += 1
                    if not active and self.fallback_mapper is not None:
                        placement = self.fallback_mapper.map_task(
                            task.task_id, task.model, plan, frozenset(free)
                        )
                        if placement is not None:
                            relaxed += 1
                if placement is None:
                    if not active:
                        raise ValueError(
                            f"task {task.task_id} cannot be mapped on an "
                            f"idle system (needs {plan.num_chiplets} of {n})"
                        )
                    break
                queue.popleft()
                perf = self._evaluate(task, plan, placement)
                duration = max(1, perf.latency_cycles)
                scheduled = ScheduledTask(
                    placement=placement,
                    perf=perf,
                    start_cycle=now,
                    finish_cycle=now + duration,
                )
                free.difference_update(placement.chiplet_ids)
                busy_integral += placement.num_chiplets * duration
                heapq.heappush(active, (scheduled.finish_cycle, seq, scheduled))
                seq += 1
                progressed = True
            if active:
                finish, _s, scheduled = heapq.heappop(active)
                now = max(now, finish)
                free.update(scheduled.placement.chiplet_ids)
                completed.append(scheduled)

        return ScheduleResult(
            completed=tuple(completed),
            makespan_cycles=now,
            num_chiplets=n,
            busy_integral=busy_integral,
            constraint_failures=constraint_failures,
            relaxed_mappings=relaxed,
        )
