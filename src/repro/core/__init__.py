"""The paper's primary contribution: SFC NoI design, mapping, MOO."""

from .floret import DEFAULT_TOP_LEVEL_MAX_HOPS, FloretDesign, build_floret
from .mapping import ContiguousMapper, GreedyMapper, Mapper, TaskPlacement
from .moo import (
    MappingCandidate,
    MappingProblem,
    MOOResult,
    optimize_mapping,
)
from .scheduler import ScheduledTask, ScheduleResult, SystemScheduler
from .sfc import (
    FloretCurve,
    SFCSegment,
    build_floret_curve,
    eq1_mean_tail_head_distance,
    hilbert_order,
    is_contiguous_path,
    manhattan,
    partition_grid_blocks,
    serpentine_order,
    single_sfc_curve,
)

__all__ = [
    "ContiguousMapper",
    "DEFAULT_TOP_LEVEL_MAX_HOPS",
    "FloretCurve",
    "FloretDesign",
    "GreedyMapper",
    "Mapper",
    "MappingCandidate",
    "MappingProblem",
    "MOOResult",
    "SFCSegment",
    "ScheduleResult",
    "ScheduledTask",
    "SystemScheduler",
    "TaskPlacement",
    "build_floret",
    "build_floret_curve",
    "eq1_mean_tail_head_distance",
    "hilbert_order",
    "is_contiguous_path",
    "manhattan",
    "optimize_mapping",
    "partition_grid_blocks",
    "serpentine_order",
    "single_sfc_curve",
]
