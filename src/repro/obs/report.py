"""Trace analysis: merge, aggregate and render JSONL trace directories.

A traced run (``REPRO_TRACE=dir``) leaves one JSONL file per process in
the trace directory.  :func:`merge_traces` folds any mix of
directories, files and already-loaded records into one deterministic
stream -- ordering is by ``(t, worker, run, seq)``, so the merge is
invariant to file enumeration order and to how records were split
across files.  On top of the merged stream sit the aggregations the
``python -m repro.obs report`` CLI renders:

* :func:`phase_breakdown` -- span count/total/mean/max per span name,
* :func:`worker_case_counts` -- per-worker case outcomes (these
  reconstruct the shard fleet's DrainReport tallies exactly),
* :func:`slowest_cases` -- top-N slowest case spans,
* :func:`worker_timeline` -- ASCII activity bars per worker,
* :func:`summarize_metrics` -- fleet-wide sums of the per-process
  metrics snapshots.

Readers skip unparsable lines (the torn-tail tolerance of the result
store's readers), so a trace from a crashed worker still merges.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "attribution_summary",
    "histogram_quantiles",
    "iter_trace_files",
    "load_trace_file",
    "merge_traces",
    "phase_breakdown",
    "render_report",
    "report_data",
    "slowest_cases",
    "summarize_metrics",
    "task_eval_summary",
    "worker_case_counts",
    "worker_timeline",
]

#: Merge order: wall-clock time, then worker / run / per-tracer seq as
#: deterministic tie-breakers.  Never file order.
_SORT_KEY = lambda r: (  # noqa: E731
    float(r.get("t", 0.0)),
    str(r.get("worker", "")),
    str(r.get("run", "")),
    int(r.get("seq", 0)),
)


def iter_trace_files(directory) -> List[Path]:
    """Trace files under ``directory``, recursively, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"trace directory not found: {root}")
    return sorted(p for p in root.rglob("*.jsonl") if p.is_file())


def load_trace_file(path) -> List[dict]:
    """Records of one trace file; unparsable lines are skipped."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def merge_traces(*sources) -> List[dict]:
    """Merge trace sources into one deterministically-ordered stream.

    Each source may be a trace directory, a single ``.jsonl`` file, or
    an iterable of already-loaded record dicts.  The result is sorted
    by ``(t, worker, run, seq)``, so merging ``[a, b]`` and ``[b, a]``
    yields identical streams.
    """
    records: List[dict] = []
    for source in sources:
        if isinstance(source, (str, Path)):
            path = Path(source)
            if path.is_dir():
                for file in iter_trace_files(path):
                    records.extend(load_trace_file(file))
            else:
                records.extend(load_trace_file(path))
        else:
            records.extend(r for r in source if isinstance(r, Mapping))
    records.sort(key=_SORT_KEY)
    return records


# ---------------------------------------------------------------------------
# aggregations


def _spans(records: Iterable[Mapping]) -> List[Mapping]:
    return [r for r in records if r.get("kind") == "span"]


def phase_breakdown(records: Sequence[Mapping]) -> List[dict]:
    """Per-span-name timing summary, sorted by total time descending.

    Returns dicts with ``name``, ``count``, ``total_s``, ``mean_s``,
    ``max_s`` -- the "where does the time go" table.
    """
    totals: Dict[str, List[float]] = {}
    for rec in _spans(records):
        try:
            dur = float(rec.get("dur_s", 0.0))
        except (TypeError, ValueError):
            continue
        totals.setdefault(str(rec.get("name", "?")), []).append(dur)
    rows = [
        {
            "name": name,
            "count": len(durs),
            "total_s": sum(durs),
            "mean_s": sum(durs) / len(durs),
            "max_s": max(durs),
        }
        for name, durs in totals.items()
    ]
    rows.sort(key=lambda r: (-r["total_s"], r["name"]))
    return rows


def worker_case_counts(
    records: Sequence[Mapping],
    *,
    name: str = "drain_case",
) -> Dict[str, Dict[str, int]]:
    """Per-worker tallies of case-span outcomes.

    Counts ``span`` records named ``name`` (the shard drain's per-case
    span) grouped by worker and by their ``outcome`` field
    (``evaluated`` / ``hit`` / ``failed``), plus a ``total``.  For a
    traced fleet these reproduce each worker's DrainReport numbers.
    """
    counts: Dict[str, Dict[str, int]] = {}
    for rec in _spans(records):
        if rec.get("name") != name:
            continue
        worker = str(rec.get("worker", "?"))
        outcome = str(rec.get("outcome", "unknown"))
        per = counts.setdefault(worker, {"total": 0})
        per["total"] += 1
        per[outcome] = per.get(outcome, 0) + 1
    return counts


def slowest_cases(
    records: Sequence[Mapping],
    *,
    top: int = 10,
    name: str = "drain_case",
) -> List[dict]:
    """The ``top`` slowest case spans: ``case``/``worker``/``dur_s``."""
    cases = []
    for rec in _spans(records):
        if rec.get("name") != name or "case" not in rec:
            continue
        try:
            dur = float(rec.get("dur_s", 0.0))
        except (TypeError, ValueError):
            continue
        cases.append({
            "case": str(rec["case"]),
            "worker": str(rec.get("worker", "?")),
            "outcome": str(rec.get("outcome", "unknown")),
            "dur_s": dur,
        })
    cases.sort(key=lambda c: -c["dur_s"])
    return cases[:top]


def worker_timeline(
    records: Sequence[Mapping],
    *,
    width: int = 48,
    name: Optional[str] = None,
) -> List[Tuple[str, str]]:
    """ASCII activity bars: one ``(worker, bar)`` row per worker.

    The fleet's wall-clock envelope (earliest span start to latest span
    end) maps onto ``width`` columns; a column is filled where the
    worker had at least one open span.  Idle gaps show as dots, so
    stragglers and lease-steal stalls are visible at a glance.
    """
    spans = [
        r for r in _spans(records)
        if name is None or r.get("name") == name
    ]
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for rec in spans:
        try:
            t0 = float(rec["t"])
            t1 = t0 + float(rec.get("dur_s", 0.0))
        except (KeyError, TypeError, ValueError):
            continue
        intervals.setdefault(str(rec.get("worker", "?")), []).append((t0, t1))
    if not intervals:
        return []
    lo = min(t0 for spans_ in intervals.values() for t0, _ in spans_)
    hi = max(t1 for spans_ in intervals.values() for _, t1 in spans_)
    window = max(hi - lo, 1e-9)
    rows: List[Tuple[str, str]] = []
    for worker in sorted(intervals):
        cells = ["."] * width
        for t0, t1 in intervals[worker]:
            a = int((t0 - lo) / window * width)
            b = int((t1 - lo) / window * width)
            for i in range(max(a, 0), min(max(b, a) + 1, width)):
                cells[i] = "#"
        rows.append((worker, "".join(cells)))
    return rows


def summarize_metrics(records: Sequence[Mapping]) -> Dict[str, object]:
    """Fleet-wide metrics: latest snapshot per process, summed.

    A registry snapshot is *cumulative* for its process, and a process
    may snapshot more than once (each drain flushes one, and the
    tracer's close emits a final one) -- so only the latest ``metrics``
    record per ``(host, pid)`` counts, and those are summed across
    processes.  Gauges keep the last value in merge order; histogram
    counts and sums are added bucket-wise (all registries share the
    fixed default bounds).
    """
    latest: Dict[Tuple[str, str], Mapping] = {}
    for rec in records:
        if rec.get("kind") != "metrics":
            continue
        proc = (str(rec.get("host", "")), str(rec.get("pid", "")))
        prior = latest.get(proc)
        if prior is None or _SORT_KEY(rec) >= _SORT_KEY(prior):
            latest[proc] = rec
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for _, rec in sorted(latest.items()):
        data = rec.get("data")
        if not isinstance(data, Mapping):
            continue
        for name, value in (data.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in (data.get("gauges") or {}).items():
            gauges[name] = float(value)
        for name, snap in (data.get("histograms") or {}).items():
            if not isinstance(snap, Mapping):
                continue
            agg = histograms.get(name)
            if agg is None:
                histograms[name] = {
                    "count": int(snap.get("count", 0)),
                    "sum": float(snap.get("sum", 0.0)),
                    "min": snap.get("min"),
                    "max": snap.get("max"),
                    # All registries share the fixed default bounds;
                    # the first snapshot's bounds stand for the fleet
                    # (``None`` for pre-bounds traces -- quantile
                    # estimation then degrades gracefully).
                    "bounds": list(snap["bounds"])
                    if snap.get("bounds") else None,
                    "counts": list(snap.get("counts") or []),
                }
                continue
            agg["count"] += int(snap.get("count", 0))
            agg["sum"] += float(snap.get("sum", 0.0))
            snap_min = snap.get("min")
            if snap_min is not None and (
                agg["min"] is None or float(snap_min) < float(agg["min"])
            ):
                agg["min"] = snap_min
            snap_max = snap.get("max")
            if snap_max is not None and (
                agg["max"] is None or float(snap_max) > float(agg["max"])
            ):
                agg["max"] = snap_max
            if agg.get("bounds") is None and snap.get("bounds"):
                agg["bounds"] = list(snap["bounds"])
            snap_counts = list(snap.get("counts") or [])
            if len(snap_counts) == len(agg["counts"]):
                agg["counts"] = [
                    a + b for a, b in zip(agg["counts"], snap_counts)
                ]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def histogram_quantiles(
    snapshot: Mapping[str, object],
    qs: Sequence[float] = (0.5, 0.95, 0.99),
) -> Optional[List[float]]:
    """Quantile estimates from a log-bucket histogram snapshot.

    ``snapshot`` is one entry of :func:`summarize_metrics`'s
    ``histograms`` (or a raw :meth:`~repro.obs.metrics
    .Histogram.snapshot`): ``counts`` per bucket plus the ascending
    upper-edge ``bounds``.  Each quantile interpolates linearly within
    its bucket -- bucket ``i`` spans ``(bounds[i-1], bounds[i]]``, the
    first bucket starts at the observed ``min`` (0 without one) and the
    overflow bucket ends at the observed ``max``.  Estimates are
    clamped to the exact ``[min, max]`` the snapshot carries.  Returns
    ``None`` when the snapshot has no samples or no usable bounds.
    """
    counts = [int(c) for c in (snapshot.get("counts") or [])]
    bounds = snapshot.get("bounds")
    total = sum(counts)
    if total <= 0 or not bounds or len(counts) != len(bounds) + 1:
        return None
    bounds = [float(b) for b in bounds]
    lo = snapshot.get("min")
    hi = snapshot.get("max")
    lo = float(lo) if lo is not None else 0.0
    hi = float(hi) if hi is not None else bounds[-1]
    edges = [min(lo, bounds[0])] + bounds + [max(hi, bounds[-1])]
    out: List[float] = []
    for q in qs:
        rank = max(0.0, min(1.0, float(q))) * total
        seen = 0.0
        estimate = hi
        for i, count in enumerate(counts):
            if count and seen + count >= rank:
                left, right = edges[i], edges[i + 1]
                frac = (rank - seen) / count
                estimate = left + (right - left) * frac
                break
            seen += count
        out.append(min(max(estimate, lo), hi))
    return out


def attribution_summary(
    metrics: Mapping[str, object],
) -> List[Tuple[str, object, str]]:
    """Latency-attribution rows from fleet counters.

    Reads a :func:`summarize_metrics` result and renders (a) the
    packet-journey component totals the ``attr_*_cycles`` counters
    accumulated (:func:`repro.net.journey.latency_breakdown` increments
    them per traced run) and (b) ``evaluate_task``'s comm-vs-compute
    critical-path counters.  Each row is ``(label, value, share)``;
    empty when the trace recorded no attribution.
    """
    counters = metrics.get("counters") or {}
    rows: List[Tuple[str, object, str]] = []
    runs = int(counters.get("attr_runs", 0))
    if runs:
        latency = int(counters.get("attr_latency_cycles", 0))
        rows.append(("attributed runs", runs, ""))
        rows.append((
            "attributed packets", int(counters.get("attr_packets", 0)), ""
        ))
        for component in ("injection_wait", "queue_wait", "credit_stall",
                          "serialization", "pipeline"):
            cycles = int(counters.get(f"attr_{component}_cycles", 0))
            rows.append((
                f"{component} cycles", cycles,
                f"{cycles / latency:.1%}" if latency else "",
            ))
        rows.append(("total latency cycles", latency, "100.0%"))
    comm_layers = int(counters.get("task_layers_comm_bound", 0))
    compute_layers = int(counters.get("task_layers_compute_bound", 0))
    if comm_layers or compute_layers:
        comm_cycles = int(counters.get("task_comm_critical_cycles", 0))
        compute_cycles = int(counters.get("task_compute_critical_cycles", 0))
        critical = comm_cycles + compute_cycles
        layers = comm_layers + compute_layers
        rows.append((
            "task layers comm-bound", comm_layers,
            f"{comm_layers / layers:.1%}" if layers else "",
        ))
        rows.append((
            "task layers compute-bound", compute_layers,
            f"{compute_layers / layers:.1%}" if layers else "",
        ))
        rows.append((
            "task comm critical cycles", comm_cycles,
            f"{comm_cycles / critical:.1%}" if critical else "",
        ))
        rows.append((
            "task compute critical cycles", compute_cycles,
            f"{compute_cycles / critical:.1%}" if critical else "",
        ))
    return rows


def task_eval_summary(
    metrics: Mapping[str, object],
) -> List[Tuple[str, object]]:
    """Task-evaluation engine and cache rows from fleet counters.

    Reads a :func:`summarize_metrics` result and extracts the
    scheduler's TaskPerf-memo hit/miss counters and the
    ``evaluate_task`` engine-path counters into display rows; empty
    when the trace recorded no task evaluation.
    """
    counters = metrics.get("counters") or {}
    rows: List[Tuple[str, object]] = []
    hits = int(counters.get("sched_taskperf_cache_hits", 0))
    misses = int(counters.get("sched_taskperf_cache_misses", 0))
    if hits or misses:
        rows.append(("taskperf cache hits", hits))
        rows.append(("taskperf cache misses", misses))
        rows.append(
            ("taskperf cache hit rate", f"{hits / (hits + misses):.1%}")
        )
    batched = int(counters.get("task_eval_batched", 0))
    fallback = int(counters.get("task_eval_fallback", 0))
    if batched or fallback:
        rows.append(("evaluate_task batched", batched))
        rows.append(("evaluate_task per-layer", fallback))
    return rows


# ---------------------------------------------------------------------------
# rendering


def render_report(*sources, top: int = 10) -> str:
    """The full plain-text report for one or more trace sources."""
    # Lazy: repro.eval.report lives in a package whose __init__ imports
    # modules that import repro.obs -- deferring keeps obs standalone.
    from repro.eval.report import format_table

    records = merge_traces(*sources)
    parts: List[str] = [
        f"{len(records)} trace records "
        f"({len({r.get('worker') for r in records})} workers)"
    ]

    phases = phase_breakdown(records)
    if phases:
        parts.append(format_table(
            ("phase", "count", "total_s", "mean_s", "max_s"),
            [
                (p["name"], p["count"], p["total_s"], p["mean_s"], p["max_s"])
                for p in phases
            ],
            title="phase-time breakdown",
            float_format="{:.4f}",
        ))

    counts = worker_case_counts(records)
    if counts:
        outcomes = sorted(
            {k for per in counts.values() for k in per} - {"total"}
        )
        parts.append(format_table(
            ("worker", "total", *outcomes),
            [
                (worker, per["total"], *(per.get(o, 0) for o in outcomes))
                for worker, per in sorted(counts.items())
            ],
            title="per-worker case counts",
        ))

    timeline = worker_timeline(records)
    if timeline:
        parts.append("\n".join(
            ["per-worker timeline (# active, . idle)"]
            + [f"  {worker}  {bar}" for worker, bar in timeline]
        ))

    slow = slowest_cases(records, top=top)
    if slow:
        parts.append(format_table(
            ("case", "worker", "outcome", "dur_s"),
            [
                (c["case"], c["worker"], c["outcome"], c["dur_s"])
                for c in slow
            ],
            title=f"top {len(slow)} slowest cases",
            float_format="{:.4f}",
        ))

    metrics = summarize_metrics(records)
    if metrics["counters"]:
        parts.append(format_table(
            ("counter", "value"),
            sorted(metrics["counters"].items()),
            title="fleet counters",
        ))
    task_eval = task_eval_summary(metrics)
    if task_eval:
        parts.append(format_table(
            ("metric", "value"),
            task_eval,
            title="task evaluation",
        ))
    attribution = attribution_summary(metrics)
    if attribution:
        parts.append(format_table(
            ("metric", "value", "share"),
            attribution,
            title="latency attribution",
        ))
    if metrics["histograms"]:
        rows = []
        for name, h in metrics["histograms"].items():
            quantiles = histogram_quantiles(h) or (0.0, 0.0, 0.0)
            rows.append((
                name,
                h["count"],
                h["sum"],
                (h["sum"] / h["count"]) if h["count"] else 0.0,
                *quantiles,
                float(h["max"]) if h["max"] is not None else 0.0,
            ))
        parts.append(format_table(
            ("histogram", "count", "sum_s", "mean_s", "p50_s", "p95_s",
             "p99_s", "max_s"),
            rows,
            title="latency histograms",
            float_format="{:.4f}",
        ))

    return "\n\n".join(parts)


def report_data(*sources, top: int = 10) -> Dict[str, object]:
    """Machine-readable counterpart of :func:`render_report`.

    One JSON-serialisable dict per merged trace set -- what ``python -m
    repro.obs report --json`` emits, and what CI steps or a service
    layer consume instead of screen-scraping the tables.  Histogram
    entries gain ``p50``/``p95``/``p99`` estimates
    (:func:`histogram_quantiles`) where bounds are available.
    """
    records = merge_traces(*sources)
    metrics = summarize_metrics(records)
    for snapshot in metrics["histograms"].values():
        quantiles = histogram_quantiles(snapshot)
        if quantiles is not None:
            snapshot["p50"], snapshot["p95"], snapshot["p99"] = quantiles
    return {
        "records": len(records),
        "workers": sorted(
            {str(r.get("worker", "")) for r in records} - {""}
        ),
        "phases": phase_breakdown(records),
        "worker_cases": worker_case_counts(records),
        "worker_timeline": [
            {"worker": worker, "bar": bar}
            for worker, bar in worker_timeline(records)
        ],
        "slowest_cases": slowest_cases(records, top=top),
        "metrics": metrics,
        "task_eval": [
            {"metric": label, "value": value}
            for label, value in task_eval_summary(metrics)
        ],
        "attribution": [
            {"metric": label, "value": value, "share": share}
            for label, value, share in attribution_summary(metrics)
        ],
    }
