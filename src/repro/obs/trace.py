"""Structured tracing: spans and events as per-run JSONL trace files.

A :class:`Tracer` writes one JSONL file per process into a *trace
directory* (conventionally a ``traces/`` dir next to the
:class:`~repro.eval.store.ResultStore`).  Three record kinds:

* ``span`` -- a named, timed region (``span("drain_case",
  case=...)``): wall-clock start ``t``, monotonic duration ``dur_s``,
  plus arbitrary JSON fields.
* ``event`` -- a point-in-time occurrence (lease claims, reaps, engine
  dispatch decisions).
* ``metrics`` -- a snapshot of a :class:`~repro.obs.metrics
  .MetricsRegistry`, emitted at tracer close so every worker's
  counters ride in its own trace.

Every record is stamped with process identity (``worker``, ``pid``,
``host``), a per-tracer ``run`` id and a monotonic ``seq``, so
:func:`~repro.obs.report.merge_traces` can order a multi-worker fleet's
records deterministically regardless of file enumeration order.

Writes follow the result store's atomicity contract: buffered records
are flushed as one ``O_APPEND`` ``write`` of complete lines, so
concurrent writer *processes* -- even ones sharing a single file path
-- never tear a line, and readers tolerate a torn tail by skipping
unparsable lines.

**Disabled by default.**  :data:`NULL_TRACER` is what every
instrumented call site gets unless tracing is switched on -- its
``enabled`` attribute is ``False`` and every method is a no-op, so the
hot path pays exactly one attribute check.  Enable by setting
``REPRO_TRACE=<dir>`` in the environment (inherited by pool and fleet
subprocesses, which is how a sharded run traces every worker) or by
passing a directory/tracer through the ``trace=`` kwargs on
:class:`~repro.eval.sweeps.SweepRunner`,
:func:`~repro.eval.shard.drain_cases` and
:func:`~repro.eval.dse.dse_search`.
"""

from __future__ import annotations

import atexit
import json
import os
import socket
import threading
import uuid
from multiprocessing import util as mp_util
from pathlib import Path
from typing import Dict, Optional, Tuple

from .clock import clock, wall

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TRACE_ENV",
    "TRACE_MAX_MB_ENV",
    "Tracer",
    "default_tracer",
    "resolve_tracer",
    "tracing_enabled",
    "worker_identity",
]

#: Environment knob: a directory path enables tracing process-wide.
TRACE_ENV = "REPRO_TRACE"

#: Environment knob: cap each trace file at roughly this many
#: megabytes; when a flush would push past the cap the tracer rolls
#: over to ``<name>-partN.jsonl``.  Unset/empty = unbounded (the
#: pre-rotation behaviour).
TRACE_MAX_MB_ENV = "REPRO_TRACE_MAX_MB"


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get(TRACE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        max_bytes = int(float(raw) * 1_000_000)
    except ValueError:
        return None
    return max_bytes if max_bytes > 0 else None


def tracing_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks this process to trace (and profile).

    The same switch gates the engines' phase timings
    (:class:`~repro.net.simulator.SimReport` ``phase_timings``), so one
    environment variable turns on the whole observability layer.
    """
    return bool(os.environ.get(TRACE_ENV))


def worker_identity() -> str:
    """Default worker label: ``host:pid`` (matches the shard layer)."""
    return f"{socket.gethostname()}:{os.getpid()}"


class _NullSpan:
    """Context manager that does nothing; shared singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def add(self, **fields) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method a no-op, ``enabled`` False.

    Instrumented code holds one of these by default, so the only cost
    of the observability layer on an untraced run is the
    ``tracer.enabled`` attribute check guarding each call site.
    """

    enabled = False

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, t_wall: float, dur_s: float,
                    **fields) -> None:
        return None

    def event(self, name: str, **fields) -> None:
        return None

    def metrics(self, registry) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: The shared disabled tracer.
NULL_TRACER = NullTracer()


class _Span:
    """Live span handle: measures on exit, records through its tracer."""

    __slots__ = ("_tracer", "_name", "_fields", "_t_wall", "_t0")

    def __init__(self, tracer: "Tracer", name: str, fields: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._t_wall = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t_wall = wall()
        self._t0 = clock()
        return self

    def add(self, **fields) -> None:
        """Attach fields discovered while the span is open."""
        self._fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self._tracer.record_span(
            self._name, self._t_wall, clock() - self._t0, **self._fields
        )


class Tracer(NullTracer):
    """Buffered, thread-safe JSONL span/event emitter for one process.

    Args:
        directory: Trace directory; created if missing.  Each tracer
            writes its own ``trace-<host>-<pid>-<run>.jsonl`` unless
            ``filename`` pins a shared one (the append contract keeps
            even a shared file line-atomic across processes).
        worker: Identity stamped on every record; defaults to
            ``host:pid`` so trace records and
            :class:`~repro.eval.shard.DrainReport` workers correlate.
        buffer_records: Records buffered before an ``O_APPEND`` flush.
            Buffering amortises syscalls; the flush writes complete
            lines only, so crash loss is bounded by the buffer and
            tears are impossible.
        filename: Optional explicit file name inside ``directory``.
        max_bytes: Rotate to ``<name>-partN.jsonl`` once the current
            file holds at least this many bytes (checked before each
            flush, so rollover always lands on a line boundary and the
            ``O_APPEND`` atomicity contract is untouched).  ``None``
            (default) reads ``REPRO_TRACE_MAX_MB`` from the
            environment; unset there too means unbounded.
            :func:`~repro.obs.report.merge_traces` orders by
            ``(t, worker, run, seq)``, so rotated parts merge back
            seamlessly.
    """

    enabled = True

    def __init__(
        self,
        directory,
        *,
        worker: str = "",
        buffer_records: int = 64,
        filename: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker = worker or worker_identity()
        self.run = uuid.uuid4().hex[:12]
        self.pid = os.getpid()
        self.host = socket.gethostname()
        self.path = self.directory / (
            filename or f"trace-{self.host}-{self.pid}-{self.run}.jsonl"
        )
        self.max_bytes = (
            _env_max_bytes() if max_bytes is None else
            (int(max_bytes) if int(max_bytes) > 0 else None)
        )
        self._stem = self.path.name[:-len(".jsonl")] \
            if self.path.name.endswith(".jsonl") else self.path.name
        self._part = 0
        self._written: Optional[int] = None
        self._buffer_records = max(1, int(buffer_records))
        self._lock = threading.Lock()
        self._pending: list = []
        self._seq = 0
        self._closed = False

    # -- emission ----------------------------------------------------------

    def _emit(self, record: Dict[str, object]) -> None:
        with self._lock:
            # A caller-supplied worker field wins (the shard drain
            # attributes spans to its --worker-id label); pid/host/run
            # are hard process facts and always stamped.
            record.setdefault("worker", self.worker)
            record["pid"] = self.pid
            record["host"] = self.host
            record["run"] = self.run
            record["seq"] = self._seq
            self._seq += 1
            self._pending.append(
                json.dumps(record, separators=(",", ":"), default=str)
            )
            if len(self._pending) >= self._buffer_records:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        payload = ("\n".join(self._pending) + "\n").encode("utf-8")
        self._pending.clear()
        if self.max_bytes is not None:
            if self._written is None:
                # Lazily adopt pre-existing bytes (a pinned shared
                # ``filename`` may already hold another run's records).
                try:
                    self._written = self.path.stat().st_size
                except OSError:
                    self._written = 0
            if self._written and self._written >= self.max_bytes:
                self._part += 1
                self.path = self.directory / (
                    f"{self._stem}-part{self._part}.jsonl"
                )
                self._written = 0
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        if self._written is not None:
            self._written += len(payload)

    # -- public API --------------------------------------------------------

    def span(self, name: str, **fields) -> _Span:
        """Context manager timing a named region."""
        return _Span(self, name, fields)

    def record_span(self, name: str, t_wall: float, dur_s: float,
                    **fields) -> None:
        """Record an already-measured span (for pre-timed call sites)."""
        self._emit({
            "kind": "span", "name": name,
            "t": t_wall, "dur_s": dur_s, **fields,
        })

    def event(self, name: str, **fields) -> None:
        self._emit({"kind": "event", "name": name, "t": wall(), **fields})

    def metrics(self, registry) -> None:
        """Snapshot a metrics registry into the trace."""
        self._emit({
            "kind": "metrics", "t": wall(), "data": registry.snapshot(),
        })

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()


# ---------------------------------------------------------------------------
# process-default tracer (REPRO_TRACE)

#: ``(pid, directory) -> Tracer``.  Keyed by pid so pool workers forked
#: from a traced parent open their *own* file instead of appending
#: buffered parent state through an inherited object.
_DEFAULT: Dict[Tuple[int, str], Tracer] = {}
_DEFAULT_LOCK = threading.Lock()


def default_tracer() -> NullTracer:
    """This process's env-configured tracer (``NULL_TRACER`` if unset).

    Created on first use per ``(pid, REPRO_TRACE)``, closed (flushed,
    metrics snapshot emitted) at interpreter exit, so pool workers and
    fleet subprocesses that never explicitly manage a tracer still
    leave complete trace files behind.
    """
    directory = os.environ.get(TRACE_ENV)
    if not directory:
        return NULL_TRACER
    key = (os.getpid(), directory)
    tracer = _DEFAULT.get(key)
    if tracer is not None:
        return tracer
    with _DEFAULT_LOCK:
        tracer = _DEFAULT.get(key)
        if tracer is None:
            tracer = _DEFAULT[key] = Tracer(directory)
            atexit.register(_close_default, key)
            # Forked multiprocessing children (ProcessPoolExecutor
            # workers) exit through multiprocessing's bootstrap, which
            # runs its own finalizers but NOT atexit hooks -- without
            # this, a pool worker's buffered records and metrics
            # snapshot would be lost.  _close_default pops the key, so
            # whichever of the two hooks fires first wins and the
            # other is a no-op.
            mp_util.Finalize(None, _close_default, args=(key,),
                             exitpriority=100)
    return tracer


def _close_default(key: Tuple[int, str]) -> None:
    tracer = _DEFAULT.pop(key, None)
    if tracer is not None:
        from .metrics import REGISTRY

        if not REGISTRY.empty():
            tracer.metrics(REGISTRY)
        tracer.close()


def resolve_tracer(trace=None, *, worker: str = "") -> NullTracer:
    """Normalise a ``trace=`` kwarg into a tracer.

    ``None`` defers to the environment (:func:`default_tracer`); a
    tracer instance passes through; a path string/``Path`` opens a new
    :class:`Tracer` on that directory.  ``worker`` labels a
    newly-opened tracer only -- an existing tracer keeps its identity.
    """
    if trace is None:
        return default_tracer()
    if isinstance(trace, NullTracer):
        return trace
    return Tracer(trace, worker=worker)
