"""CLI: ``python -m repro.obs report <trace-dir> [--top N]``.

Subcommands:

* ``report`` -- render the merged phase/worker/slowest-case report for
  one or more trace directories (or individual ``.jsonl`` files).
* ``merge`` -- merge trace sources into a single JSONL stream on
  stdout or ``--out``, ordered by ``(t, worker, run, seq)``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from .report import merge_traces, render_report


def _emit(text: str) -> bool:
    """Print ``text``; a closed downstream pipe (``| head``) is a
    normal way to consume this CLI, not an error.  Returns False when
    the pipe is gone so callers can stop producing."""
    try:
        print(text)
        return True
    except BrokenPipeError:
        # Reopen stdout on devnull so the interpreter's exit-time
        # flush doesn't raise a second BrokenPipeError.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return False


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect REPRO_TRACE trace directories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render phase/worker/slowest-case report"
    )
    report.add_argument(
        "sources", nargs="+",
        help="trace directories or .jsonl files to merge and report on",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="how many slowest cases to list (default 10)",
    )

    merge = sub.add_parser(
        "merge", help="merge traces into one ordered JSONL stream"
    )
    merge.add_argument(
        "sources", nargs="+",
        help="trace directories or .jsonl files to merge",
    )
    merge.add_argument(
        "--out", default=None,
        help="output file (default: stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        try:
            _emit(render_report(*args.sources, top=args.top))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.command == "merge":
        try:
            records = merge_traces(*args.sources)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        lines = (
            json.dumps(r, separators=(",", ":"), default=str)
            for r in records
        )
        if args.out:
            path = Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )
        else:
            for line in lines:
                if not _emit(line):
                    break
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
