"""CLI: ``python -m repro.obs report <trace-dir> [--top N]``.

Subcommands:

* ``report`` -- render the merged phase/worker/slowest-case/attribution
  report for one or more trace directories (or individual ``.jsonl``
  files); ``--json`` emits the same data machine-readably.
* ``watch`` -- live monitor: tail a trace directory while a fleet is
  draining, re-rendering fleet progress, metrics quantiles, slowest
  cases and latency attribution every ``--interval`` seconds.
* ``merge`` -- merge trace sources into a single JSONL stream on
  stdout or ``--out``, ordered by ``(t, worker, run, seq)``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .report import merge_traces, render_report, report_data
from .watch import TraceTail, render_watch


def _emit(text: str) -> bool:
    """Print ``text``; a closed downstream pipe (``| head``) is a
    normal way to consume this CLI, not an error.  Returns False when
    the pipe is gone so callers can stop producing."""
    try:
        print(text)
        return True
    except BrokenPipeError:
        # Reopen stdout on devnull so the interpreter's exit-time
        # flush doesn't raise a second BrokenPipeError.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return False


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect REPRO_TRACE trace directories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render phase/worker/slowest-case report"
    )
    report.add_argument(
        "sources", nargs="+",
        help="trace directories or .jsonl files to merge and report on",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="how many slowest cases to list (default 10)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit the report as one JSON document instead of tables",
    )

    watch = sub.add_parser(
        "watch", help="live-tail a trace directory while a fleet drains"
    )
    watch.add_argument(
        "directory",
        help="trace directory to tail (may not exist yet)",
    )
    watch.add_argument(
        "--store", default=None,
        help="ResultStore root; shows live lease count from its claims/",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2.0)",
    )
    watch.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N polls (0 = run until interrupted)",
    )
    watch.add_argument(
        "--expect", type=int, default=None,
        help="total expected cases; draws a fleet-wide progress bar",
    )
    watch.add_argument(
        "--top", type=int, default=5,
        help="how many slowest cases to list per frame (default 5)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (same as --iterations 1)",
    )

    merge = sub.add_parser(
        "merge", help="merge traces into one ordered JSONL stream"
    )
    merge.add_argument(
        "sources", nargs="+",
        help="trace directories or .jsonl files to merge",
    )
    merge.add_argument(
        "--out", default=None,
        help="output file (default: stdout)",
    )
    return parser


def _run_watch(args) -> int:
    tail = TraceTail(args.directory)
    claims_dir = Path(args.store) / "claims" if args.store else None
    iterations = 1 if args.once else args.iterations
    polls = 0
    try:
        while True:
            tail.poll()
            frame = render_watch(
                tail.records,
                top=args.top,
                expect=args.expect,
                claims_dir=claims_dir,
            )
            stamp = time.strftime("%H:%M:%S")
            if not _emit(f"--- watch @ {stamp} ---\n{frame}"):
                return 0
            polls += 1
            if iterations and polls >= iterations:
                return 0
            time.sleep(max(args.interval, 0.0))
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        try:
            if args.json:
                data = report_data(*args.sources, top=args.top)
                _emit(json.dumps(data, indent=2, default=str, sort_keys=True))
            else:
                _emit(render_report(*args.sources, top=args.top))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "merge":
        try:
            records = merge_traces(*args.sources)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        lines = (
            json.dumps(r, separators=(",", ":"), default=str)
            for r in records
        )
        if args.out:
            path = Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )
        else:
            for line in lines:
                if not _emit(line):
                    break
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
