"""Zero-dependency observability: tracing, metrics, and trace reports.

The substrate ROADMAP items 1 (sweep-as-a-service) and 5 (fleet-scale
DSE) read from.  Three pieces:

* :mod:`repro.obs.clock` -- the shared monotonic-clock helpers
  (:func:`clock`, :class:`Stopwatch`) that replace the hand-rolled
  ``t0 = time.perf_counter()`` bookkeeping across the eval layer.
* :mod:`repro.obs.trace` -- span/event tracing to per-process JSONL
  files (:class:`Tracer`), disabled by default via :data:`NULL_TRACER`
  (one attribute check on the hot path); ``REPRO_TRACE=<dir>`` or a
  ``trace=`` kwarg enables it.
* :mod:`repro.obs.metrics` -- process-local counters/gauges/log-bucket
  histograms (:data:`REGISTRY`), snapshotted into the trace at close.

:mod:`repro.obs.report` merges and renders multi-worker traces;
``python -m repro.obs report <trace-dir>`` is the CLI.

This package imports nothing from :mod:`repro.eval` or
:mod:`repro.net` at module level, so any layer can depend on it
without cycles.
"""

from .clock import Stopwatch, clock, wall
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKET_BOUNDS_S,
    MetricsRegistry,
    REGISTRY,
    StreamingStats,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    TRACE_ENV,
    TRACE_MAX_MB_ENV,
    Tracer,
    default_tracer,
    resolve_tracer,
    tracing_enabled,
    worker_identity,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKET_BOUNDS_S",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "Stopwatch",
    "StreamingStats",
    "TRACE_ENV",
    "TRACE_MAX_MB_ENV",
    "TraceTail",
    "Tracer",
    "attribution_summary",
    "clock",
    "default_tracer",
    "histogram_quantiles",
    "merge_traces",
    "phase_breakdown",
    "render_report",
    "render_watch",
    "report_data",
    "resolve_tracer",
    "slowest_cases",
    "summarize_metrics",
    "task_eval_summary",
    "tracing_enabled",
    "wall",
    "worker_case_counts",
    "worker_identity",
    "worker_timeline",
]

_REPORT_EXPORTS = {
    "attribution_summary",
    "histogram_quantiles",
    "merge_traces",
    "phase_breakdown",
    "render_report",
    "report_data",
    "slowest_cases",
    "summarize_metrics",
    "task_eval_summary",
    "worker_case_counts",
    "worker_timeline",
}

_WATCH_EXPORTS = {
    "TraceTail",
    "render_watch",
}


def __getattr__(name: str):
    # Report/watch helpers load lazily: repro.obs.report renders
    # through repro.eval.report, and eager import here would cycle
    # with the eval modules that import repro.obs at module level.
    if name in _REPORT_EXPORTS:
        from . import report

        return getattr(report, name)
    if name in _WATCH_EXPORTS:
        from . import watch

        return getattr(watch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
