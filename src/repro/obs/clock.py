"""Shared monotonic-clock helpers for elapsed-time bookkeeping.

Every layer of the stack used to hand-roll the same three lines::

    t0 = time.perf_counter()
    ...
    elapsed_s = time.perf_counter() - t0

This module is the one place that idiom lives now: :func:`clock` is the
monotonic timestamp source (``time.perf_counter`` -- never wall clock,
which can step backwards under NTP), and :class:`Stopwatch` wraps the
``t0``/``elapsed_s``/deadline pattern used by the sweep runners, the
streaming runner and the shard drain.  :func:`wall` is the *wall-clock*
counterpart for trace records, which must be comparable across
processes and hosts (monotonic clocks are only comparable within one
boot).
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch", "clock", "wall"]

#: Monotonic seconds for durations and deadlines (``time.perf_counter``).
clock = time.perf_counter

#: Wall-clock seconds since the epoch, for cross-process trace records.
wall = time.time


class Stopwatch:
    """The shared ``t0 = clock() ... elapsed_s`` bookkeeping object.

    Started at construction.  ``elapsed_s`` is the monotonic time since
    then; :meth:`expired` folds the optional-deadline comparison that
    the drain/wait loops repeat (``None`` never expires).
    """

    __slots__ = ("t0",)

    def __init__(self) -> None:
        self.t0 = clock()

    @property
    def elapsed_s(self) -> float:
        return clock() - self.t0

    def expired(self, limit_s: Optional[float]) -> bool:
        """Whether more than ``limit_s`` elapsed (``None``: never)."""
        return limit_s is not None and self.elapsed_s > limit_s

    def restart(self) -> None:
        self.t0 = clock()
