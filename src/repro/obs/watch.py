"""Live fleet monitor: tail a trace directory, re-render progress.

``python -m repro.obs watch <trace-dir>`` is the read side of the
progress-streaming story (ROADMAP item 1): while a fleet drains a grid,
every worker appends spans/metrics to its own JSONL file; the watcher
incrementally tails the whole directory and re-renders drain progress,
per-worker case counts, metrics (with histogram quantiles), the slowest
cases so far, and the latency-attribution section -- the same
aggregations the post-hoc ``report`` subcommand uses, so the live view
converges to exactly the final report.

:class:`TraceTail` owns the incremental reading: per-file byte offsets,
consuming only up to the last complete newline (an in-flight
``O_APPEND`` write may not have landed yet -- the torn-tail tolerance of
the batch readers, applied continuously), re-scanning the directory
each poll so late-joining workers and rotated ``-partN`` files are
picked up, and tolerating a directory that does not exist yet (the
watcher may start before the first worker).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from .report import (
    attribution_summary,
    histogram_quantiles,
    merge_traces,
    slowest_cases,
    summarize_metrics,
    worker_case_counts,
)

__all__ = [
    "TraceTail",
    "render_watch",
]


class TraceTail:
    """Incremental reader over a growing trace directory.

    Each :meth:`poll` scans ``directory`` (recursively) for ``*.jsonl``
    files, reads every file from its last-consumed byte offset up to
    its last complete newline, parses the new records (unparsable lines
    are skipped, exactly like the batch loader) and appends them to
    :attr:`records`.  Offsets persist across polls, so a poll costs
    only the newly-appended bytes.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.records: List[dict] = []
        self._offsets: Dict[Path, int] = {}

    def poll(self) -> int:
        """Consume newly-appended trace data; returns new record count."""
        if not self.directory.is_dir():
            return 0
        new = 0
        for path in sorted(self.directory.rglob("*.jsonl")):
            if not path.is_file():
                continue
            new += self._consume(path)
        return new

    def _consume(self, path: Path) -> int:
        offset = self._offsets.get(path, 0)
        try:
            with path.open("rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        # Only complete lines count; a torn tail stays unconsumed and
        # is re-read (whole) on a later poll once its newline lands.
        end = chunk.rfind(b"\n")
        if end < 0:
            return 0
        self._offsets[path] = offset + end + 1
        new = 0
        for line in chunk[:end].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if isinstance(record, Mapping):
                self.records.append(dict(record))
                new += 1
        return new


def _count_leases(claims_dir) -> Optional[int]:
    claims = Path(claims_dir)
    if not claims.is_dir():
        return None
    return sum(1 for p in claims.glob("*.lease") if p.is_file())


def render_watch(
    records: List[dict],
    *,
    top: int = 5,
    expect: Optional[int] = None,
    claims_dir=None,
) -> str:
    """One frame of the live monitor, as plain text.

    Args:
        records: The records tailed so far (any order -- they are
            merge-ordered here, so the frame equals what the post-hoc
            report would say about the same records).
        top: Slowest cases to list.
        expect: Total expected cases; draws the fleet-wide progress bar
            when given.
        claims_dir: A store's ``claims/`` directory; when given, the
            frame shows the live in-flight lease count.
    """
    from repro.eval.report import format_shard_progress, format_table

    merged = merge_traces(records)
    parts: List[str] = []

    counts = worker_case_counts(merged)
    done = sum(per["total"] for per in counts.values())
    header = f"{len(merged)} trace records, {len(counts)} active workers"
    leases = _count_leases(claims_dir) if claims_dir else None
    if leases is not None:
        header += f", {leases} leases in flight"
    parts.append(header)
    if expect:
        parts.append(format_shard_progress(done, expect, label="fleet"))
    if counts:
        outcomes = sorted(
            {k for per in counts.values() for k in per} - {"total"}
        )
        parts.append(format_table(
            ("worker", "total", *outcomes),
            [
                (worker, per["total"], *(per.get(o, 0) for o in outcomes))
                for worker, per in sorted(counts.items())
            ],
            title="per-worker case counts",
        ))

    metrics = summarize_metrics(merged)
    if metrics["histograms"]:
        rows = []
        for name, snapshot in metrics["histograms"].items():
            quantiles = histogram_quantiles(snapshot) or (0.0, 0.0, 0.0)
            rows.append((name, snapshot["count"], *quantiles))
        parts.append(format_table(
            ("histogram", "count", "p50_s", "p95_s", "p99_s"),
            rows,
            title="latency histograms",
            float_format="{:.4f}",
        ))

    slow = slowest_cases(merged, top=top)
    if slow:
        parts.append(format_table(
            ("case", "worker", "outcome", "dur_s"),
            [
                (c["case"], c["worker"], c["outcome"], c["dur_s"])
                for c in slow
            ],
            title=f"top {len(slow)} slowest cases",
            float_format="{:.4f}",
        ))

    attribution = attribution_summary(metrics)
    if attribution:
        parts.append(format_table(
            ("metric", "value", "share"),
            attribution,
            title="latency attribution",
        ))

    return "\n\n".join(parts)
