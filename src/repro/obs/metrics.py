"""Process-local metrics: counters, gauges and log-bucket histograms.

The registry names the load-bearing signals of the sweep/shard/engine
stack -- cases evaluated/cached/stolen, lease claims/reaps, store
hits/misses/puts, per-engine dispatch decisions, epoch and
contention-component counts -- so a trace carries *what happened how
often*, not just where the time went.  Instruments are cheap plain
attributes (an increment is one float add), live per process, and ride
into trace files as one ``metrics`` record per worker at tracer close;
:func:`~repro.obs.report.summarize_metrics` re-aggregates a fleet's
records order-invariantly.

:class:`StreamingStats` is the Neumaier-compensated count/sum/extrema
machinery shared with the streaming sweep aggregators --
:class:`repro.eval.stream.RunningStats` is now a thin result-folding
wrapper around it, so the million-sample drift guarantee is implemented
exactly once.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKET_BOUNDS_S",
    "MetricsRegistry",
    "REGISTRY",
    "StreamingStats",
]


class StreamingStats:
    """Count/sum/extrema of a value stream, folded one sample at a time.

    The sum is Neumaier-compensated (Kahan's variant that also survives
    addends larger than the running sum) so a million-sample stream
    does not drift; the mean is ``sum / count``.
    """

    def __init__(self) -> None:
        self.count = 0
        self._sum = 0.0
        self._compensation = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        t = self._sum + value
        if abs(self._sum) >= abs(value):
            self._compensation += (self._sum - t) + value
        else:
            self._compensation += (value - t) + self._sum
        self._sum = t
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def sum(self) -> float:
        return self._sum + self._compensation

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-observed value of a signal (fleet sizes, window depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default latency buckets: factor-4 log spacing from 1 microsecond to
#: ~67 seconds (14 buckets plus overflow) -- wide enough for a single
#: grant-loop epoch and a whole shard drain alike.
LATENCY_BUCKET_BOUNDS_S: Tuple[float, ...] = tuple(
    1e-6 * (4.0 ** i) for i in range(14)
)


class Histogram:
    """Fixed log-bucket histogram with Neumaier summary statistics.

    ``bounds`` are ascending upper bucket edges; sample ``v`` lands in
    the first bucket whose edge is ``>= v`` (one extra overflow bucket
    catches the rest).  Non-finite samples are dropped -- a NaN
    duration is an instrumentation bug, not a latency.
    """

    def __init__(
        self, name: str,
        bounds: Tuple[float, ...] = LATENCY_BUCKET_BOUNDS_S,
    ) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram bounds must ascend, got {bounds}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.stats = StreamingStats()

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.counts[bisect_right(self.bounds, value)] += 1
        # bisect_right: a sample equal to an edge overflows into the
        # next bucket, so edge values bucket consistently with > edge.
        self.stats.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.stats.count,
            "sum": self.stats.sum,
            "min": self.stats.min if self.stats.count else None,
            "max": self.stats.max if self.stats.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Named instruments, get-or-create, one registry per process.

    Creation is lock-guarded; increments are bare attribute updates
    (single bytecode under the GIL -- the instruments are process-local
    diagnostics, not a concurrency primitive).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(
        self, name: str,
        bounds: Tuple[float, ...] = LATENCY_BUCKET_BOUNDS_S,
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, bounds)
                )
        return histogram

    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state: what a ``metrics`` trace record carries."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop all instruments (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry every instrumented layer uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
