"""ReRAM crossbar primitives: storage, MVM throughput, thermal behaviour.

Models the properties of ReRAM crossbar arrays the paper relies on:

* **storage**: multi-bit weights are bit-sliced over cells
  (``weight_bits / bits_per_cell`` cells per weight),
* **compute**: one analog MVM activates a full array per
  ``mvm_latency_cycles``, and
* **thermal sensitivity** (Section III): the conductance window between
  G_on and G_off shrinks exponentially once temperature exceeds ~330 K
  [20], which is what turns thermal hotspots into accuracy loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..params import PIMParams, ThermalParams


@dataclass(frozen=True)
class CrossbarSpec:
    """Derived single-crossbar quantities for a given :class:`PIMParams`."""

    rows: int
    cols: int
    cells_per_weight: int
    weights_capacity: int
    macs_per_mvm: int
    latency_cycles: int
    energy_pj: float

    @classmethod
    def from_params(cls, params: Optional[PIMParams] = None) -> "CrossbarSpec":
        params = params or PIMParams()
        size = params.crossbar_size
        cells_per_weight = params.cells_per_weight
        weight_cols = size // cells_per_weight
        return cls(
            rows=size,
            cols=size,
            cells_per_weight=cells_per_weight,
            weights_capacity=size * weight_cols,
            # One MVM multiplies a length-`rows` input against all stored
            # weight columns.
            macs_per_mvm=size * weight_cols,
            latency_cycles=params.mvm_latency_cycles,
            energy_pj=params.mvm_energy_pj,
        )


def crossbars_for_weights(weights: int, spec: CrossbarSpec) -> int:
    """Crossbars needed to hold ``weights`` parameters (ceil)."""
    if weights < 0:
        raise ValueError("negative weight count")
    if weights == 0:
        return 0
    return -(-weights // spec.weights_capacity)


def mvms_for_layer(macs: int, weights: int, spec: CrossbarSpec) -> int:
    """Analog MVM operations to execute a layer once.

    A layer's weight matrix is resident across its crossbars; executing
    the layer replays the input activations over every stored weight, so
    the MVM count is ``macs / macs_per_mvm`` (each MVM contributes one
    array's worth of MACs).
    """
    if macs <= 0:
        return 0
    return -(-macs // spec.macs_per_mvm)


# ---------------------------------------------------------------------------
# thermal behaviour (paper Section III, ref [20])


def conductance_window(temperature_k: float,
                       thermal: Optional[ThermalParams] = None) -> float:
    """Normalised G_on/G_off window at ``temperature_k``.

    1.0 at or below the knee (330 K by default); decays exponentially
    above it: ``exp(-shrink * (T - knee))``.  A shrunken window means the
    crossbar's analog output levels crowd together and can be
    misinterpreted -- the paper's accuracy-degradation mechanism.
    """
    thermal = thermal or ThermalParams()
    over = max(0.0, temperature_k - thermal.window_knee_k)
    return math.exp(-thermal.window_shrink_per_k * over)


def weight_noise_sigma(temperature_k: float,
                       thermal: Optional[ThermalParams] = None) -> float:
    """Effective relative weight-noise std-dev at ``temperature_k``.

    Defined as ``1 - window`` so noise is 0 below the knee and saturates
    toward 1 as the window collapses.
    """
    return 1.0 - conductance_window(temperature_k, thermal)
