"""Thermal-noise -> inference-accuracy degradation model (Section III).

The causal chain the paper describes: mapping concentrates power ->
hotspots form -> ReRAM conductance window shrinks above 330 K [20] ->
stored weights are effectively perturbed -> inference accuracy drops
(up to 11% for performance-only mapping in Fig. 6(c)).

We cannot run the authors' trained models, so accuracy loss is a
calibrated function of the effective weight noise (DESIGN.md,
substitutions table): a saturating-exponential response whose
sensitivity differs per model family (deeper/denser networks compound
perturbations faster).  The *shape* claims of Fig. 6(c) -- zero loss for
thermally-safe mappings, monotonically growing loss with peak
temperature, up to double-digit percentage points for hot mappings --
are what this model preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..params import ThermalParams
from .reram import weight_noise_sigma

#: Clean (no-thermal-noise) top-1 accuracy per Table I workload family,
#: representative published values (percent).
BASELINE_ACCURACY_PCT: Dict[str, float] = {
    "resnet18": 69.8,
    "resnet34": 73.3,
    "resnet50": 76.1,
    "resnet101": 77.4,
    "resnet110": 93.6,   # CIFAR-10
    "resnet152": 78.3,
    "vgg11": 92.0,       # CIFAR-10
    "vgg19": 74.2,
    "densenet169": 75.6,
    "googlenet": 92.8,   # CIFAR-10
}

#: Noise sensitivity per family: percentage points lost per unit of
#: accumulated effective weight noise.  Deeper networks amplify
#: perturbations layer by layer, hence larger coefficients.
NOISE_SENSITIVITY: Dict[str, float] = {
    "resnet18": 35.0,
    "resnet34": 40.0,
    "resnet50": 45.0,
    "resnet101": 50.0,
    "resnet110": 52.0,
    "resnet152": 55.0,
    "vgg11": 28.0,
    "vgg19": 38.0,
    "densenet169": 47.0,
    "googlenet": 32.0,
}

#: Saturation ceiling: accuracy cannot drop below random guessing, and
#: reported degradations in [20] plateau; cap the modelled drop.
MAX_DROP_PCT = 35.0


@dataclass(frozen=True)
class AccuracyReport:
    """Thermal accuracy assessment for one mapped workload."""

    model_name: str
    baseline_pct: float
    effective_sigma: float
    drop_pct: float

    @property
    def degraded_pct(self) -> float:
        return self.baseline_pct - self.drop_pct


def effective_noise(
    pe_temperatures_k: Sequence[float],
    pe_weight_fractions: Optional[Sequence[float]] = None,
    thermal: Optional[ThermalParams] = None,
) -> float:
    """Aggregate weight-noise level over the PEs holding a model.

    Weighted mean of per-PE noise sigma, weighted by the fraction of the
    model's weights each PE stores (uniform if not given): a single hot
    PE holding many weights hurts more than a hot idle PE.
    """
    temps = list(pe_temperatures_k)
    if not temps:
        return 0.0
    if pe_weight_fractions is None:
        weights = [1.0 / len(temps)] * len(temps)
    else:
        weights = list(pe_weight_fractions)
        if len(weights) != len(temps):
            raise ValueError("temperature/weight length mismatch")
        total = sum(weights)
        if total <= 0:
            return 0.0
        weights = [w / total for w in weights]
    return sum(
        w * weight_noise_sigma(t, thermal) for w, t in zip(weights, temps)
    )


def accuracy_drop_pct(
    model_name: str,
    sigma: float,
) -> float:
    """Accuracy loss (percentage points) for a given effective noise.

    Saturating-exponential response:
    ``drop = MAX * (1 - exp(-sensitivity * sigma / MAX))`` -- linear in
    sigma for small noise (slope = sensitivity), saturating at
    :data:`MAX_DROP_PCT`.

    Raises:
        KeyError: For unknown model families.
    """
    import math

    sensitivity = NOISE_SENSITIVITY[model_name]
    if sigma <= 0:
        return 0.0
    return MAX_DROP_PCT * (1.0 - math.exp(-sensitivity * sigma / MAX_DROP_PCT))


def assess(
    model_name: str,
    pe_temperatures_k: Sequence[float],
    pe_weight_fractions: Optional[Sequence[float]] = None,
    thermal: Optional[ThermalParams] = None,
) -> AccuracyReport:
    """Full accuracy assessment for a mapped model.

    Raises:
        KeyError: For model families without calibration data.
    """
    baseline = BASELINE_ACCURACY_PCT[model_name]
    sigma = effective_noise(pe_temperatures_k, pe_weight_fractions, thermal)
    drop = accuracy_drop_pct(model_name, sigma)
    return AccuracyReport(
        model_name=model_name,
        baseline_pct=baseline,
        effective_sigma=sigma,
        drop_pct=drop,
    )
