"""ReRAM PIM chiplet models: storage, compute, thermal sensitivity."""

from .accuracy import (
    BASELINE_ACCURACY_PCT,
    NOISE_SENSITIVITY,
    AccuracyReport,
    accuracy_drop_pct,
    assess,
    effective_noise,
)
from .allocation import AllocationPlan, ChipletLoad, LayerSlice, plan_allocation
from .chiplet import (
    ChipletSpec,
    LayerCompute,
    LayerComputeBatch,
    chiplets_required,
    layer_compute,
    layer_compute_vec,
)
from .reram import (
    CrossbarSpec,
    conductance_window,
    crossbars_for_weights,
    mvms_for_layer,
    weight_noise_sigma,
)

__all__ = [
    "AccuracyReport",
    "AllocationPlan",
    "BASELINE_ACCURACY_PCT",
    "ChipletLoad",
    "ChipletSpec",
    "CrossbarSpec",
    "LayerCompute",
    "LayerComputeBatch",
    "LayerSlice",
    "NOISE_SENSITIVITY",
    "accuracy_drop_pct",
    "assess",
    "chiplets_required",
    "conductance_window",
    "crossbars_for_weights",
    "effective_noise",
    "layer_compute",
    "layer_compute_vec",
    "mvms_for_layer",
    "plan_allocation",
    "weight_noise_sigma",
]
