"""Layer-to-chiplet allocation planning.

Before a task can be mapped onto the NoI, its weighted layers must be
packed into chiplet-sized loads: a large layer spans several chiplets,
and several small consecutive layers share one chiplet.  The resulting
:class:`AllocationPlan` is a *linear sequence* of chiplet loads in
dataflow order -- exactly the thing the Floret mapper lays contiguously
along the SFC, and the greedy mapper scatters over a mesh/torus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..workloads.dnn import DNNModel
from ..workloads.traffic import interlayer_traffic
from .chiplet import ChipletSpec


@dataclass(frozen=True)
class LayerSlice:
    """Portion of one layer's weights resident on one chiplet.

    Attributes:
        layer_index: Index of the layer in the model graph.
        weights: Weights of the layer stored in this slice.
        fraction: ``weights / layer.weights`` (in (0, 1]).
    """

    layer_index: int
    weights: int
    fraction: float


@dataclass(frozen=True)
class MulticastGroup:
    """One producer slice fanned out to a consumer layer's chiplets.

    Attributes:
        src: Plan-relative source position.
        dsts: Plan-relative destination positions (source excluded).
        payload_bytes: Bytes each destination must receive.
        dst_layer: Consumer layer index (for per-layer step grouping).
    """

    src: int
    dsts: Tuple[int, ...]
    payload_bytes: int
    dst_layer: int


@dataclass(frozen=True)
class ChipletLoad:
    """The content of one chiplet: slices of one or more layers."""

    slices: Tuple[LayerSlice, ...]

    @property
    def total_weights(self) -> int:
        return sum(s.weights for s in self.slices)

    @property
    def layer_indices(self) -> Tuple[int, ...]:
        return tuple(s.layer_index for s in self.slices)


@dataclass(frozen=True)
class AllocationPlan:
    """Chiplet loads for one task, in dataflow order.

    Attributes:
        model_name: Workload the plan belongs to.
        loads: One entry per chiplet the task requires.
        layer_chiplets: layer index -> (chiplet position, fraction) pairs
            within this plan (positions are plan-relative, 0-based).
    """

    model_name: str
    loads: Tuple[ChipletLoad, ...]
    layer_chiplets: Dict[int, Tuple[Tuple[int, float], ...]]

    @property
    def num_chiplets(self) -> int:
        return len(self.loads)

    def multicast_groups(
        self, model: DNNModel, bytes_per_element: int = 1
    ) -> List["MulticastGroup"]:
        """Plan-relative multicast traffic for one inference.

        PIM chiplets split layers over their *output channels* (column
        split), so a chiplet holding ``src_frac`` of a producer layer
        emits ``volume * src_frac`` bytes, and **every** chiplet of the
        consumer layer needs that slice -- one multicast per (producer
        chiplet, consumer layer) pair.  Destinations co-located with the
        source stay on-chip and are dropped, as are edges whose producer
        is the network input (boundary injection is identical for every
        NoI and cancels in comparisons).

        The group list is a pure function of the (frozen) plan and
        model, and every task evaluation needs it, so it is memoized on
        the plan instance (identity-keyed on ``model``; the cache entry
        keeps the model alive so ids cannot be recycled).

        Raises:
            ValueError: If ``model`` does not match the plan.
        """
        if model.name != self.model_name:
            raise ValueError(
                f"plan is for {self.model_name!r}, got model {model.name!r}"
            )
        cache = self.__dict__.setdefault("_derived", {})
        key = ("groups", id(model), bytes_per_element)
        hit = cache.get(key)
        if hit is not None and hit[0] is model:
            return list(hit[1])
        out: List[MulticastGroup] = []
        for src_layer, dst_layer, volume in interlayer_traffic(
            model, bytes_per_element
        ):
            if src_layer == 0:
                continue
            src_places = self.layer_chiplets.get(src_layer, ())
            dst_positions = tuple(
                pos for pos, _f in self.layer_chiplets.get(dst_layer, ())
            )
            for src_pos, src_frac in src_places:
                payload = int(round(volume * src_frac))
                targets = tuple(d for d in dst_positions if d != src_pos)
                if payload > 0 and targets:
                    out.append(
                        MulticastGroup(
                            src=src_pos,
                            dsts=targets,
                            payload_bytes=payload,
                            dst_layer=dst_layer,
                        )
                    )
        cache[key] = (model, tuple(out))
        return out

    def chiplet_traffic(
        self, model: DNNModel, bytes_per_element: int = 1
    ) -> List[Tuple[int, int, int]]:
        """Pairwise view of :meth:`multicast_groups`.

        Each multicast is expanded into per-destination unicasts carrying
        the full slice payload -- an upper bound used by tools that do
        not model multicast trees.  Returns ``(src_pos, dst_pos, bytes)``.
        """
        out: List[Tuple[int, int, int]] = []
        for group in self.multicast_groups(model, bytes_per_element):
            for dst in group.dsts:
                out.append((group.src, dst, group.payload_bytes))
        return out


def layer_crossbar_allocation(
    model: DNNModel,
    plan: AllocationPlan,
    spec: Optional["ChipletSpec"] = None,
) -> Dict[int, int]:
    """Demand-proportional crossbar shares per layer.

    Each chiplet's crossbars are divided among its resident layer slices
    in proportion to their MVM demand, modelling SIAM-style weight
    replication: activation-heavy layers receive the chiplet's idle
    crossbars so the inference pipeline stays balanced.  Returns
    layer index -> crossbars available to that layer (>= 1).

    Memoized on the plan instance like
    :meth:`AllocationPlan.multicast_groups` (pure function of frozen
    inputs, needed by every task evaluation).
    """
    from .chiplet import ChipletSpec as _Spec
    from .reram import mvms_for_layer

    spec = spec or _Spec.from_params()
    cache = plan.__dict__.setdefault("_derived", {})
    key = ("xbars", id(model), spec)
    hit = cache.get(key)
    if hit is not None and hit[0] is model:
        return dict(hit[1])
    layers = {layer.index: layer for layer in model.layers}
    shares: Dict[int, float] = {}
    for load in plan.loads:
        demands = []
        for s in load.slices:
            layer = layers[s.layer_index]
            mvms = mvms_for_layer(layer.macs, layer.weights, spec.crossbar)
            demands.append((s.layer_index, max(1.0, mvms * s.fraction)))
        total = sum(d for _, d in demands)
        for layer_index, demand in demands:
            shares[layer_index] = shares.get(layer_index, 0.0) + (
                spec.crossbars * demand / total
            )
    out = {k: max(1, int(v)) for k, v in shares.items()}
    cache[key] = (model, out)
    return dict(out)


def plan_allocation(
    model: DNNModel,
    spec: Optional[ChipletSpec] = None,
    *,
    pack_layers: bool = True,
) -> AllocationPlan:
    """Pack a model's weighted layers into a linear chiplet sequence.

    Greedy first-fit in dataflow order: the current chiplet keeps
    accepting (slices of) consecutive layers until full.  With
    ``pack_layers=False`` every layer starts on a fresh chiplet (one
    knob of the packing ablation).
    """
    spec = spec or ChipletSpec.from_params()
    capacity = spec.weight_capacity
    loads: List[List[LayerSlice]] = [[]]
    remaining = capacity
    layer_chiplets: Dict[int, List[Tuple[int, float]]] = {}

    def current_position() -> int:
        return len(loads) - 1

    for layer in model.weight_layers():
        left = layer.weights
        if not pack_layers and loads[-1]:
            loads.append([])
            remaining = capacity
        while left > 0:
            if remaining == 0:
                loads.append([])
                remaining = capacity
            take = min(left, remaining)
            fraction = take / layer.weights
            loads[-1].append(LayerSlice(layer.index, take, fraction))
            layer_chiplets.setdefault(layer.index, []).append(
                (current_position(), fraction)
            )
            remaining -= take
            left -= take
    if loads and not loads[-1]:
        loads.pop()
    return AllocationPlan(
        model_name=model.name,
        loads=tuple(ChipletLoad(tuple(slices)) for slices in loads),
        layer_chiplets={
            k: tuple(v) for k, v in layer_chiplets.items()
        },
    )
