"""PIM chiplet model: capacity, per-layer compute latency and energy.

A chiplet aggregates ``tiles_per_chiplet x crossbars_per_tile`` ReRAM
crossbars behind shared peripherals.  The compute model is intentionally
simple and *consistent across NoI architectures* -- the paper's
comparisons hold the chiplet constant and vary only the interconnect, so
any consistent model cancels out in relative results (see DESIGN.md,
substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..params import PIMParams
from ..workloads.layers import Layer
from .reram import CrossbarSpec, crossbars_for_weights, mvms_for_layer


@dataclass(frozen=True)
class ChipletSpec:
    """Derived chiplet-level quantities."""

    crossbars: int
    weight_capacity: int
    #: Crossbars that can run MVMs concurrently (all of them: each array
    #: has its own DAC/ADC group in SIAM-style designs).
    parallel_crossbars: int
    crossbar: CrossbarSpec
    static_power_w: float

    @classmethod
    def from_params(cls, params: Optional[PIMParams] = None) -> "ChipletSpec":
        params = params or PIMParams()
        crossbar = CrossbarSpec.from_params(params)
        crossbars = params.crossbars_per_tile * params.tiles_per_chiplet
        return cls(
            crossbars=crossbars,
            weight_capacity=crossbar.weights_capacity * crossbars,
            parallel_crossbars=crossbars,
            crossbar=crossbar,
            static_power_w=params.chiplet_static_power_w,
        )


@dataclass(frozen=True)
class LayerCompute:
    """Compute cost of one layer on its allocated chiplets."""

    layer_name: str
    chiplets_used: int
    crossbars_used: int
    mvm_count: int
    latency_cycles: int
    energy_pj: float


def layer_compute(
    layer: Layer,
    chiplets_allocated: int,
    spec: Optional[ChipletSpec] = None,
    *,
    crossbars_available: Optional[int] = None,
) -> LayerCompute:
    """Latency/energy for one inference pass of ``layer``.

    SIAM/ISAAC-style weight replication: a layer whose weights occupy few
    crossbars but whose activation stream is long (early convolutions)
    is *replicated* across every crossbar its allocation provides, so all
    of them run MVM rounds in parallel:

        parallel = max(needed_crossbars, crossbars_available)
        rounds   = ceil(mvms / parallel)
        latency  = rounds * crossbar latency
        energy   = mvms * crossbar energy   (work is conserved)

    Args:
        layer: The layer to execute.
        chiplets_allocated: Chiplets assigned to this layer.
        spec: Chiplet hardware spec.
        crossbars_available: Crossbars usable by this layer (for layers
            sharing a chiplet, the slice-fraction share); defaults to the
            full allocation.

    Raises:
        ValueError: If the allocation cannot hold the layer's weights.
    """
    spec = spec or ChipletSpec.from_params()
    if layer.weights == 0:
        return LayerCompute(layer.name, 0, 0, 0, 0, 0.0)
    if chiplets_allocated <= 0:
        raise ValueError(f"layer {layer.name!r}: no chiplets allocated")
    needed_crossbars = crossbars_for_weights(layer.weights, spec.crossbar)
    ceiling = chiplets_allocated * spec.crossbars
    if needed_crossbars > ceiling:
        raise ValueError(
            f"layer {layer.name!r} needs {needed_crossbars} crossbars but "
            f"{chiplets_allocated} chiplets provide {ceiling}"
        )
    if crossbars_available is None:
        crossbars_available = ceiling
    parallel = max(needed_crossbars, min(crossbars_available, ceiling), 1)
    mvms = mvms_for_layer(layer.macs, layer.weights, spec.crossbar)
    rounds = -(-mvms // parallel)
    return LayerCompute(
        layer_name=layer.name,
        chiplets_used=chiplets_allocated,
        crossbars_used=parallel,
        mvm_count=mvms,
        latency_cycles=rounds * spec.crossbar.latency_cycles,
        energy_pj=mvms * spec.crossbar.energy_pj,
    )


@dataclass(frozen=True, eq=False)
class LayerComputeBatch:
    """Array-of-layers counterpart of :class:`LayerCompute`.

    Row ``i`` holds :func:`layer_compute`'s result for ``layers[i]``;
    ``__getitem__`` reconstructs the scalar record (the equivalence the
    tests pin).
    """

    layer_names: Tuple[str, ...]
    chiplets_used: np.ndarray
    crossbars_used: np.ndarray
    mvm_count: np.ndarray
    latency_cycles: np.ndarray
    energy_pj: np.ndarray

    def __len__(self) -> int:
        return len(self.layer_names)

    def __getitem__(self, i: int) -> LayerCompute:
        return LayerCompute(
            layer_name=self.layer_names[i],
            chiplets_used=int(self.chiplets_used[i]),
            crossbars_used=int(self.crossbars_used[i]),
            mvm_count=int(self.mvm_count[i]),
            latency_cycles=int(self.latency_cycles[i]),
            energy_pj=float(self.energy_pj[i]),
        )


def layer_compute_vec(
    layers: Sequence[Layer],
    chiplets_allocated: Sequence[int],
    spec: Optional[ChipletSpec] = None,
    *,
    crossbars_available: Optional[Sequence[Optional[int]]] = None,
) -> LayerComputeBatch:
    """Batched :func:`layer_compute` over an array of layers.

    Semantics match the scalar model applied to ``layers`` in order,
    including its error behaviour: the first layer (in sequence) that
    has weights but no chiplets, or whose weights overflow its
    allocation's crossbars, raises the same :class:`ValueError` the
    scalar call would.

    Args:
        layers: Layers to execute (typically ``model.weight_layers()``).
        chiplets_allocated: Per-layer chiplet counts, parallel to
            ``layers``.
        spec: Chiplet hardware spec shared by all layers.
        crossbars_available: Optional per-layer usable-crossbar counts;
            ``None`` entries (or the whole argument) default to the full
            allocation, as in the scalar model.
    """
    spec = spec or ChipletSpec.from_params()
    n = len(layers)
    if len(chiplets_allocated) != n:
        raise ValueError(
            f"chiplets_allocated has {len(chiplets_allocated)} entries "
            f"for {n} layers"
        )
    if crossbars_available is not None and len(crossbars_available) != n:
        raise ValueError(
            f"crossbars_available has {len(crossbars_available)} entries "
            f"for {n} layers"
        )
    weights = np.fromiter(
        (layer.weights for layer in layers), dtype=np.int64, count=n
    )
    macs = np.fromiter(
        (layer.macs for layer in layers), dtype=np.int64, count=n
    )
    alloc = np.asarray(chiplets_allocated, dtype=np.int64).reshape(-1)

    weighted = weights > 0
    needed = -(-np.maximum(weights, 0) // spec.crossbar.weights_capacity)
    ceiling = alloc * spec.crossbars
    # Scalar error precedence per layer: zero weights short-circuit,
    # then the allocation check, then the weight-count/fit checks.
    nonzero = weights != 0
    bad = np.flatnonzero(
        nonzero & ((alloc <= 0) | (weights < 0) | (needed > ceiling))
    )
    if bad.size:
        i = int(bad[0])
        if alloc[i] <= 0:
            raise ValueError(f"layer {layers[i].name!r}: no chiplets allocated")
        if weights[i] < 0:
            raise ValueError("negative weight count")
        raise ValueError(
            f"layer {layers[i].name!r} needs {int(needed[i])} crossbars but "
            f"{int(alloc[i])} chiplets provide {int(ceiling[i])}"
        )

    avail = ceiling.copy()
    if crossbars_available is not None:
        for i, a in enumerate(crossbars_available):
            if a is not None:
                avail[i] = a
    parallel = np.maximum(np.maximum(needed, np.minimum(avail, ceiling)), 1)
    mvms = np.where(macs > 0, -(-macs // spec.crossbar.macs_per_mvm), 0)
    # Zero-weight layers short-circuit to an all-zero record in the
    # scalar model; mask them out of every derived quantity.
    mvms = np.where(weighted, mvms, 0)
    rounds = -(-mvms // parallel)
    return LayerComputeBatch(
        layer_names=tuple(layer.name for layer in layers),
        chiplets_used=np.where(weighted, alloc, 0),
        crossbars_used=np.where(weighted, parallel, 0),
        mvm_count=mvms,
        latency_cycles=rounds * spec.crossbar.latency_cycles,
        energy_pj=mvms * spec.crossbar.energy_pj,
    )


def spec_for_budget(
    total_weights: int,
    max_chiplets: int,
    params: Optional[PIMParams] = None,
) -> ChipletSpec:
    """Choose the smallest PE that still fits a model in ``max_chiplets``.

    3D stacks integrate PEs at tile granularity rather than full 2.5D
    chiplets; picking the smallest adequate PE spreads the workload over
    the whole stack (maximising throughput via replication), which is the
    regime the paper's Section III thermal study operates in.

    Raises:
        ValueError: If even the largest PE cannot fit the model.
    """
    from dataclasses import replace

    params = params or PIMParams()
    for tiles in (1, 2, 4, 8, 16, 32, 64):
        candidate = ChipletSpec.from_params(
            replace(params, tiles_per_chiplet=tiles)
        )
        needed = -(-total_weights // candidate.weight_capacity)
        if needed <= max_chiplets:
            return candidate
    raise ValueError(
        f"{total_weights} weights exceed {max_chiplets} maximal PEs"
    )


def chiplets_required(weights: int, spec: Optional[ChipletSpec] = None) -> int:
    """Chiplets needed to store ``weights`` parameters (at least 1)."""
    spec = spec or ChipletSpec.from_params()
    if weights < 0:
        raise ValueError("negative weight count")
    if weights == 0:
        return 0
    return -(-weights // spec.weight_capacity)
