"""PIM chiplet model: capacity, per-layer compute latency and energy.

A chiplet aggregates ``tiles_per_chiplet x crossbars_per_tile`` ReRAM
crossbars behind shared peripherals.  The compute model is intentionally
simple and *consistent across NoI architectures* -- the paper's
comparisons hold the chiplet constant and vary only the interconnect, so
any consistent model cancels out in relative results (see DESIGN.md,
substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..params import PIMParams
from ..workloads.layers import Layer
from .reram import CrossbarSpec, crossbars_for_weights, mvms_for_layer


@dataclass(frozen=True)
class ChipletSpec:
    """Derived chiplet-level quantities."""

    crossbars: int
    weight_capacity: int
    #: Crossbars that can run MVMs concurrently (all of them: each array
    #: has its own DAC/ADC group in SIAM-style designs).
    parallel_crossbars: int
    crossbar: CrossbarSpec
    static_power_w: float

    @classmethod
    def from_params(cls, params: Optional[PIMParams] = None) -> "ChipletSpec":
        params = params or PIMParams()
        crossbar = CrossbarSpec.from_params(params)
        crossbars = params.crossbars_per_tile * params.tiles_per_chiplet
        return cls(
            crossbars=crossbars,
            weight_capacity=crossbar.weights_capacity * crossbars,
            parallel_crossbars=crossbars,
            crossbar=crossbar,
            static_power_w=params.chiplet_static_power_w,
        )


@dataclass(frozen=True)
class LayerCompute:
    """Compute cost of one layer on its allocated chiplets."""

    layer_name: str
    chiplets_used: int
    crossbars_used: int
    mvm_count: int
    latency_cycles: int
    energy_pj: float


def layer_compute(
    layer: Layer,
    chiplets_allocated: int,
    spec: Optional[ChipletSpec] = None,
    *,
    crossbars_available: Optional[int] = None,
) -> LayerCompute:
    """Latency/energy for one inference pass of ``layer``.

    SIAM/ISAAC-style weight replication: a layer whose weights occupy few
    crossbars but whose activation stream is long (early convolutions)
    is *replicated* across every crossbar its allocation provides, so all
    of them run MVM rounds in parallel:

        parallel = max(needed_crossbars, crossbars_available)
        rounds   = ceil(mvms / parallel)
        latency  = rounds * crossbar latency
        energy   = mvms * crossbar energy   (work is conserved)

    Args:
        layer: The layer to execute.
        chiplets_allocated: Chiplets assigned to this layer.
        spec: Chiplet hardware spec.
        crossbars_available: Crossbars usable by this layer (for layers
            sharing a chiplet, the slice-fraction share); defaults to the
            full allocation.

    Raises:
        ValueError: If the allocation cannot hold the layer's weights.
    """
    spec = spec or ChipletSpec.from_params()
    if layer.weights == 0:
        return LayerCompute(layer.name, 0, 0, 0, 0, 0.0)
    if chiplets_allocated <= 0:
        raise ValueError(f"layer {layer.name!r}: no chiplets allocated")
    needed_crossbars = crossbars_for_weights(layer.weights, spec.crossbar)
    ceiling = chiplets_allocated * spec.crossbars
    if needed_crossbars > ceiling:
        raise ValueError(
            f"layer {layer.name!r} needs {needed_crossbars} crossbars but "
            f"{chiplets_allocated} chiplets provide {ceiling}"
        )
    if crossbars_available is None:
        crossbars_available = ceiling
    parallel = max(needed_crossbars, min(crossbars_available, ceiling), 1)
    mvms = mvms_for_layer(layer.macs, layer.weights, spec.crossbar)
    rounds = -(-mvms // parallel)
    return LayerCompute(
        layer_name=layer.name,
        chiplets_used=chiplets_allocated,
        crossbars_used=parallel,
        mvm_count=mvms,
        latency_cycles=rounds * spec.crossbar.latency_cycles,
        energy_pj=mvms * spec.crossbar.energy_pj,
    )


def spec_for_budget(
    total_weights: int,
    max_chiplets: int,
    params: Optional[PIMParams] = None,
) -> ChipletSpec:
    """Choose the smallest PE that still fits a model in ``max_chiplets``.

    3D stacks integrate PEs at tile granularity rather than full 2.5D
    chiplets; picking the smallest adequate PE spreads the workload over
    the whole stack (maximising throughput via replication), which is the
    regime the paper's Section III thermal study operates in.

    Raises:
        ValueError: If even the largest PE cannot fit the model.
    """
    from dataclasses import replace

    params = params or PIMParams()
    for tiles in (1, 2, 4, 8, 16, 32, 64):
        candidate = ChipletSpec.from_params(
            replace(params, tiles_per_chiplet=tiles)
        )
        needed = -(-total_weights // candidate.weight_capacity)
        if needed <= max_chiplets:
            return candidate
    raise ValueError(
        f"{total_weights} weights exceed {max_chiplets} maximal PEs"
    )


def chiplets_required(weights: int, spec: Optional[ChipletSpec] = None) -> int:
    """Chiplets needed to store ``weights`` parameters (at least 1)."""
    spec = spec or ChipletSpec.from_params()
    if weights < 0:
        raise ValueError("negative weight count")
    if weights == 0:
        return 0
    return -(-weights // spec.weight_capacity)
