"""Distributed sharded sweep execution over a shared ResultStore.

One :class:`~repro.eval.store.ResultStore` directory is already safe
for concurrent writers; this module turns that substrate into a
*distributed execution* layer: N independent worker processes -- on one
host or many hosts sharing a filesystem -- cooperatively drain one
sweep grid with zero duplicate evaluations and crash recovery, and a
coordinator reconstructs the exact single-host aggregates from any
worker mix.  Three cooperating pieces:

* **Deterministic partitioning.**  :func:`shard_key` hashes a case's
  *scenario axes only* (no tag, no evaluator, no package version), so
  every layer -- CLI workers, :class:`~repro.eval.sweeps.SweepRunner`
  ``shard=``, sharded DSE generations -- computes the same partition of
  any grid without coordination.  :class:`ShardSpec(index, count)
  <ShardSpec>` is one worker's slice of that partition.

* **Lease-based claiming.**  :func:`drain_cases` walks the grid
  own-slice-first and claims each unevaluated case through an atomic
  ``O_CREAT | O_EXCL`` claim file under ``<store>/claims/``
  (:class:`LeaseBoard`).  Completed cases live in the store itself --
  the claim is removed after the ``put`` -- so a restarted worker skips
  them for free.  A claim whose mtime is older than the lease TTL is
  an orphan (its worker crashed): any worker reaps it through a
  rename-verify-recreate protocol and takes the case over.  Failed
  evaluations are never cached (store contract); each worker retries a
  failing case at most once, so a deterministically broken case ends
  missing-with-failures instead of looping forever.

* **Coordinator merge.**  :func:`merge_stream` replays the grid in
  submission order through a store-backed
  :class:`~repro.eval.stream.StreamingSweepRunner`, so the
  :class:`~repro.eval.stream.StreamOutcome` aggregates
  (``RunningStats``/``RunningPivot``/``RunningGroups``) are
  bit-identical to a single-host streaming run regardless of how many
  workers produced the results or in what order they landed.
  :func:`wait_for_cases` tails the store until a grid completes.

``python -m repro.eval.shard worker --store DIR --grid G --evaluator E
--shard I/N`` runs one worker; the ``merge`` subcommand tails and
summarises.  ``benchmarks/bench_shard_scaling.py`` gates the whole
contract in CI: 3 workers vs 1, zero duplicates, bit-identical
aggregates, kill-recovery through lease expiry.

Duplicate-evaluation caveat: leases make duplicates *practically*
impossible, not theoretically -- a worker that takes longer than the
TTL on one case loses its lease, and reaping a lease that is refreshed
in the same microsecond window by three racing workers can, in
principle, double-claim.  Both are harmless for correctness: the store
is last-writer-wins over deterministic evaluators, so a duplicate
costs wasted work, never wrong results.  Size ``lease_ttl`` well above
the slowest single case.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import socket
import sys
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.clock import Stopwatch, wall
from ..obs.metrics import REGISTRY
from ..obs.trace import resolve_tracer
from .store import ResultStore, case_key, evaluator_fingerprint
from .sweeps import (
    Overrides,
    SweepCase,
    SweepResult,
    _evaluate_one,
    sweep_grid,
)

__all__ = [
    "DrainReport",
    "GridSpec",
    "LeaseBoard",
    "ShardSpec",
    "drain_cases",
    "merge_stream",
    "shard_key",
    "wait_for_cases",
]


# ---------------------------------------------------------------------------
# deterministic partitioning


def shard_key(case: SweepCase) -> str:
    """Partition identity of a case: scenario axes only.

    Deliberately *not* :func:`~repro.eval.store.case_key`: the store key
    folds in the evaluator fingerprint and package version so caches
    self-invalidate, but the partition must stay stable across
    evaluator edits and version bumps or a restarted fleet would
    reshuffle mid-grid.  Tags are excluded for the same reason they are
    excluded from store keys (display labels).
    """
    payload = json.dumps(
        [
            case.arch,
            case.num_chiplets,
            case.workload,
            case.seed,
            sorted([k, v] for k, v in case.noi_overrides),
        ],
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a deterministically partitioned grid.

    ``ShardSpec(i, n)`` owns every case whose :func:`shard_key` hashes
    to bucket ``i`` of ``n``.  Any process can compute any slice from
    the grid alone -- no coordinator assigns work -- so adding a worker
    is just launching one with a different ``index``.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} outside 0..{self.count - 1}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (e.g. ``"0/3"``)."""
        index_text, sep, count_text = text.partition("/")
        if not sep or not index_text.isdigit() or not count_text.isdigit():
            raise ValueError(
                f"shard spec {text!r} is not 'INDEX/COUNT' (e.g. '0/3')"
            )
        return cls(index=int(index_text), count=int(count_text))

    def owns(self, case: SweepCase) -> bool:
        return int(shard_key(case)[:16], 16) % self.count == self.index

    def split(self, cases: Sequence[SweepCase]) -> Tuple[
        List[SweepCase], List[SweepCase]
    ]:
        """``(mine, theirs)`` partition of ``cases``, order preserved."""
        mine: List[SweepCase] = []
        theirs: List[SweepCase] = []
        for case in cases:
            (mine if self.owns(case) else theirs).append(case)
        return mine, theirs

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# ---------------------------------------------------------------------------
# lease-based claiming


class LeaseBoard:
    """Atomic per-case claim files under ``<store>/claims/``.

    A claim is one file named after the store key, created with
    ``O_CREAT | O_EXCL`` (atomic on POSIX, including NFS for regular
    ``open``): exactly one claimant wins.  The payload records worker
    id, pid and host for diagnostics; liveness is the file *mtime* --
    a claim older than ``ttl_s`` is an orphan whose worker crashed.

    Reaping an orphan cannot be a bare unlink (two reapers could each
    unlink-then-create and both win).  Instead the reaper renames the
    claim to a private name -- rename is atomic, so exactly one reaper
    gets the file -- then *verifies the stolen file is still expired*:
    if a fresh claim was swapped in between the stat and the rename,
    the reaper restores it via ``os.link`` (which cannot clobber a
    newer claimant) and backs off.
    """

    def __init__(self, store: ResultStore, *,
                 worker: str = "", ttl_s: float = 30.0,
                 tracer=None) -> None:
        self.root = store.claims_root
        self.worker = worker or f"{socket.gethostname()}:{os.getpid()}"
        self.ttl_s = float(ttl_s)
        self.tracer = resolve_tracer(tracer)
        self.root.mkdir(parents=True, exist_ok=True)

    def _event(self, name: str, key: str) -> None:
        REGISTRY.counter(name).inc()
        if self.tracer.enabled:
            self.tracer.event(name, key=key, worker=self.worker)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def _create(self, path: Path) -> bool:
        payload = json.dumps({
            "worker": self.worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }, separators=(",", ":")).encode("utf-8")
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True

    def _expired(self, mtime: float) -> bool:
        # A future mtime (NTP step, cross-host clock skew on a shared
        # store) would make the signed age negative forever, so the
        # claim could never expire and the case would be wedged.  Treat
        # any claim further than ttl_s from "now" -- in either
        # direction -- as orphaned: a legitimate holder refreshes or
        # releases within a TTL, while a claim stamped deep in the
        # future can only be a skewed writer.
        return abs(time.time() - mtime) > self.ttl_s

    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; reap an expired claim if one blocks us."""
        path = self._path(key)
        if self._create(path):
            self._event("lease_claims", key)
            return True
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            # Holder released between our create attempt and the stat:
            # contend again on the next pass rather than spinning here.
            return False
        if not self._expired(mtime):
            self._event("lease_denied", key)
            return False
        # Reap: atomically take the (apparently expired) claim file.
        stolen = self.root / f"{path.name}.reap-{uuid.uuid4().hex[:12]}"
        try:
            os.rename(path, stolen)
        except FileNotFoundError:
            return False  # another reaper got it first
        try:
            still_expired = self._expired(stolen.stat().st_mtime)
        except FileNotFoundError:  # pragma: no cover - we own the file
            return False
        if not still_expired:
            # We stole a *live* claim created after our stat.  Restore
            # it: link() refuses to clobber, so if a third worker has
            # already re-claimed, the newer claim stands and we lose.
            try:
                os.link(stolen, path)
            except FileExistsError:
                pass
            os.unlink(stolen)
            self._event("lease_restores", key)
            return False
        os.unlink(stolen)
        self._event("lease_reaps", key)
        if self._create(path):
            self._event("lease_claims", key)
            return True
        return False

    def release(self, key: str) -> None:
        """Drop our claim (after the result landed in the store)."""
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass  # reaped from under us: the result still counts once

    def held(self, key: str) -> bool:
        """Whether a live (unexpired) claim exists for ``key``."""
        try:
            return not self._expired(self._path(key).stat().st_mtime)
        except FileNotFoundError:
            return False


# ---------------------------------------------------------------------------
# cooperative drain


@dataclass(frozen=True)
class DrainReport:
    """What one worker's :func:`drain_cases` call did.

    ``evaluated_keys`` is the exact set of store keys this worker
    computed -- the scaling bench asserts the per-worker sets are
    disjoint and cover the grid.  ``stolen`` counts evaluations outside
    the worker's own shard slice (work taken over from crashed or slow
    peers); ``lease_denied`` counts cases skipped because a live peer
    claim held them.  ``case_timings`` records ``(case_id, start_s,
    end_s)`` -- relative to drain start -- for every case this worker
    ran the evaluator on (successes and failures), so fleet timeouts
    name their stragglers.
    """

    worker: str
    total: int
    store_hits: int
    evaluated_keys: Tuple[str, ...]
    stolen: int
    lease_denied: int
    passes: int
    elapsed_s: float
    failures: Tuple[SweepResult, ...] = ()
    case_timings: Tuple[Tuple[str, float, float], ...] = ()

    @property
    def evaluated(self) -> int:
        return len(self.evaluated_keys)

    @property
    def slowest_case(self) -> Optional[Tuple[str, float]]:
        """``(case_id, duration_s)`` of the slowest evaluated case."""
        if not self.case_timings:
            return None
        case_id, start, end = max(
            self.case_timings, key=lambda t: t[2] - t[1]
        )
        return case_id, end - start

    def to_json(self) -> str:
        return json.dumps({
            "worker": self.worker,
            "total": self.total,
            "store_hits": self.store_hits,
            "evaluated_keys": list(self.evaluated_keys),
            "stolen": self.stolen,
            "lease_denied": self.lease_denied,
            "passes": self.passes,
            "elapsed_s": self.elapsed_s,
            "failures": [r.case.case_id for r in self.failures],
            "case_timings": [list(t) for t in self.case_timings],
        }, separators=(",", ":"))


def drain_cases(
    store: ResultStore,
    evaluate: Callable,
    cases: Iterable[SweepCase],
    *,
    shard: Optional[ShardSpec] = None,
    lease_ttl_s: float = 30.0,
    poll_s: float = 0.05,
    max_poll_s: float = 2.0,
    worker: str = "",
    deadline_s: Optional[float] = None,
    trace=None,
) -> DrainReport:
    """Cooperatively drain ``cases`` into ``store`` as one worker.

    Walks the grid in passes, own shard slice first, then everyone
    else's (work stealing): a case already in the store is a hit, a
    case under a live peer lease is skipped, anything else is claimed,
    evaluated inline and ``put``.  The call returns when every case is
    either in the store or failed locally (failed evaluations are never
    cached, and each worker retries a failing case at most once).
    Between passes that make no progress the worker sleeps -- that is
    where it waits out live peer leases, and where a crashed peer's
    lease ages past ``lease_ttl_s`` and gets reaped.  The sleep starts
    at ``poll_s`` and doubles per fruitless pass up to ``max_poll_s``
    (resetting whenever a pass progresses), so a worker parked behind
    a slow peer scans the store a logarithmic number of times instead
    of busy-polling at a fixed interval.

    Run N processes with ``shard=ShardSpec(i, N)`` for distributed
    execution; parallelism comes from the process count, so each drain
    evaluates inline (one case at a time) and lease granularity stays
    per-case.  Raises ``TimeoutError`` if ``deadline_s`` elapses first
    -- the deadline is checked before every case, not just between
    passes, so one long pass cannot overshoot it by a whole grid; the
    message names the slowest completed case as the likely culprit
    scale.  ``trace=`` accepts a tracer or trace directory (default:
    the ``REPRO_TRACE`` environment); each processed case becomes a
    ``drain_case`` span with its outcome, and the DrainReport carries
    the same per-case timings in ``case_timings``.
    """
    watch = Stopwatch()
    cases = list(cases)
    fingerprint = evaluator_fingerprint(evaluate)
    keys = [case_key(c, fingerprint) for c in cases]
    if shard is not None:
        own = {i for i, c in enumerate(cases) if shard.owns(c)}
        order = [i for i in range(len(cases)) if i in own]
        order += [i for i in range(len(cases)) if i not in own]
    else:
        order = list(range(len(cases)))
        own = set(order)
    tracer = resolve_tracer(trace, worker=worker)
    board = LeaseBoard(store, worker=worker, ttl_s=lease_ttl_s,
                       tracer=tracer)

    done: set = set()
    failed: Dict[int, SweepResult] = {}
    evaluated_keys: List[str] = []
    case_timings: List[Tuple[str, float, float]] = []
    store_hits = 0
    stolen = 0
    denied_cases: set = set()
    passes = 0

    def check_deadline() -> None:
        if not watch.expired(deadline_s):
            return
        missing = [cases[i].case_id for i in order
                   if i not in done and i not in failed]
        message = (
            f"shard drain deadline ({deadline_s}s) with "
            f"{len(missing)} cases outstanding: {missing[:5]}"
        )
        if case_timings:
            slow_id, start, end = max(case_timings,
                                      key=lambda t: t[2] - t[1])
            message += (
                f"; slowest completed case {slow_id} "
                f"took {end - start:.3f}s"
            )
        raise TimeoutError(message)

    def span_case(i: int, outcome: str,
                  start_s: float, end_s: float) -> None:
        if tracer.enabled:
            tracer.record_span(
                "drain_case",
                wall() - (watch.elapsed_s - start_s),
                end_s - start_s,
                case=cases[i].case_id,
                key=keys[i],
                outcome=outcome,
                worker=board.worker,
            )

    def record_case(i: int, outcome: str,
                    start_s: float, end_s: float) -> None:
        case_timings.append((cases[i].case_id, start_s, end_s))
        span_case(i, outcome, start_s, end_s)
        REGISTRY.histogram("drain_case_s").observe(end_s - start_s)

    backoff_s = max(poll_s, 1e-4)
    max_poll_s = max(max_poll_s, poll_s)
    while True:
        passes += 1
        progressed = False
        for i in order:
            if i in done or i in failed:
                continue
            check_deadline()
            start_s = watch.elapsed_s
            if store.has(keys[i]):
                done.add(i)
                store_hits += 1
                progressed = True
                span_case(i, "hit", start_s, watch.elapsed_s)
                continue
            if not board.acquire(keys[i]):
                denied_cases.add(i)
                continue
            try:
                # Re-check under the lease: the result may have landed
                # between the membership check and the claim.
                if store.has(keys[i]):
                    done.add(i)
                    store_hits += 1
                    progressed = True
                    span_case(i, "hit", start_s, watch.elapsed_s)
                    continue
                start_s = watch.elapsed_s
                result = _evaluate_one(evaluate, cases[i])
                if result.ok:
                    store.put(keys[i], result)
                    evaluated_keys.append(keys[i])
                    done.add(i)
                    if i not in own:
                        stolen += 1
                        REGISTRY.counter("cases_stolen").inc()
                    record_case(i, "stolen" if i not in own
                                else "evaluated",
                                start_s, watch.elapsed_s)
                else:
                    failed[i] = result
                    record_case(i, "failed", start_s, watch.elapsed_s)
                progressed = True
            finally:
                board.release(keys[i])
        if len(done) + len(failed) >= len(cases):
            break
        check_deadline()
        if progressed:
            backoff_s = max(poll_s, 1e-4)
        else:
            # Cap the sleep at the remaining deadline budget so backoff
            # cannot overshoot a tight deadline by a whole max_poll_s.
            sleep_s = backoff_s
            if deadline_s is not None:
                sleep_s = min(sleep_s,
                              max(deadline_s - watch.elapsed_s, 0.0))
            time.sleep(sleep_s)
            backoff_s = min(backoff_s * 2.0, max_poll_s)
    report = DrainReport(
        worker=board.worker,
        total=len(cases),
        store_hits=store_hits,
        evaluated_keys=tuple(evaluated_keys),
        stolen=stolen,
        lease_denied=len(denied_cases),
        passes=passes,
        elapsed_s=watch.elapsed_s,
        failures=tuple(failed[i] for i in sorted(failed)),
        case_timings=tuple(case_timings),
    )
    if tracer.enabled:
        tracer.record_span(
            "drain", wall() - report.elapsed_s, report.elapsed_s,
            worker=board.worker,
            total=report.total,
            evaluated=report.evaluated,
            store_hits=report.store_hits,
            stolen=report.stolen,
            lease_denied=report.lease_denied,
            passes=report.passes,
            failures=len(report.failures),
        )
        tracer.metrics(REGISTRY)
        tracer.flush()
    return report


# ---------------------------------------------------------------------------
# coordinator: tail + merge


def wait_for_cases(
    store: ResultStore,
    evaluate: Callable,
    cases: Sequence[SweepCase],
    *,
    timeout_s: Optional[float] = None,
    poll_s: float = 0.2,
    max_poll_s: float = 5.0,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> None:
    """Tail the shared store until every case of the grid is present.

    ``on_progress(done, total)`` fires whenever the completed count
    changes (and once up front).  Raises ``TimeoutError`` with the
    outstanding case ids when ``timeout_s`` elapses -- a worker fleet
    that lost its last member leaves the grid permanently short, and a
    coordinator must say which cases are missing, not hang silently.

    The poll interval starts at ``poll_s`` and doubles while the done
    count stands still, capped at ``max_poll_s`` and reset by any
    progress -- a coordinator parked behind a long-running fleet scans
    the store a logarithmic number of times per quiet stretch instead
    of hammering it at a fixed interval, while a lively fleet is still
    tailed at ``poll_s`` granularity.
    """
    fingerprint = evaluator_fingerprint(evaluate)
    keys = [case_key(c, fingerprint) for c in cases]
    watch = Stopwatch()
    last = -1
    last_progress_s = 0.0
    backoff_s = max(poll_s, 1e-4)
    max_poll_s = max(max_poll_s, poll_s)
    while True:
        missing = store.missing(keys)
        done = len(keys) - len(missing)
        if done != last and on_progress is not None:
            on_progress(done, len(keys))
        if done != last:
            last = done
            last_progress_s = watch.elapsed_s
            backoff_s = max(poll_s, 1e-4)
        if not missing:
            return
        if watch.expired(timeout_s):
            outstanding = [
                case.case_id for case, key in zip(cases, keys)
                if key in missing
            ]
            raise TimeoutError(
                f"grid incomplete after {timeout_s}s: "
                f"{len(outstanding)} cases outstanding "
                f"(e.g. {outstanding[:5]}); last progress "
                f"{watch.elapsed_s - last_progress_s:.1f}s ago"
            )
        sleep_s = backoff_s
        if timeout_s is not None:
            # Never sleep past the timeout: the deadline check above
            # must fire within one poll of it, not one max_poll_s.
            sleep_s = min(sleep_s, max(timeout_s - watch.elapsed_s, 1e-4))
        time.sleep(sleep_s)
        backoff_s = min(backoff_s * 2.0, max_poll_s)


def merge_stream(
    store: ResultStore,
    evaluate: Callable,
    cases: Sequence[SweepCase],
    aggregators: Sequence[object] = (),
    *,
    require_complete: bool = True,
):
    """Reconstruct the single-host streaming outcome from the store.

    Replays ``cases`` in submission order through a store-backed
    :class:`~repro.eval.stream.StreamingSweepRunner`, folding
    ``aggregators`` exactly as a single-host ``run_stream`` would:
    the emission order is the grid order regardless of which worker
    produced each result or when it landed, and JSON float round-trip
    is exact, so the resulting aggregates are *bit-identical* to a
    one-process streaming run of the same grid.

    With ``require_complete`` (the default) a missing case raises
    ``ValueError`` naming it -- a coordinator merging a half-drained
    grid is a bug.  Pass ``require_complete=False`` to let the
    coordinator evaluate stragglers inline instead (single-process
    fallback when the worker fleet died).
    """
    from .stream import StreamingSweepRunner

    cases = list(cases)
    runner = StreamingSweepRunner(evaluate, workers=1, store=store)
    if require_complete:
        fingerprint = evaluator_fingerprint(evaluate)
        keys = [case_key(c, fingerprint) for c in cases]
        missing = store.missing(keys)
        if missing:
            outstanding = [
                case.case_id for case, key in zip(cases, keys)
                if key in missing
            ]
            raise ValueError(
                f"cannot merge: {len(outstanding)} of {len(cases)} cases "
                f"not in the store (e.g. {outstanding[:5]}); drain the "
                "grid first or pass require_complete=False"
            )
    return runner.run_stream(cases, aggregators)


# ---------------------------------------------------------------------------
# grid specification (CLI-serialisable)


@dataclass(frozen=True)
class GridSpec:
    """A sweep grid as data, so workers on other hosts can rebuild it.

    Mirrors :func:`~repro.eval.sweeps.sweep_grid`'s axes; round-trips
    through JSON (:meth:`to_json`/:meth:`from_json`) so one spec string
    can be handed to every ``python -m repro.eval.shard`` worker and
    the merge coordinator, guaranteeing they all mean the same cases.
    """

    archs: Tuple[str, ...]
    sizes: Tuple[int, ...] = (36,)
    workloads: Tuple[str, ...] = ("uniform",)
    seeds: Tuple[int, ...] = (0,)
    overrides: Tuple[Overrides, ...] = ((),)
    tag: str = ""

    def cases(self) -> List[SweepCase]:
        return sweep_grid(
            archs=self.archs, sizes=self.sizes, workloads=self.workloads,
            seeds=self.seeds, overrides=self.overrides, tag=self.tag,
        )

    def to_json(self) -> str:
        return json.dumps({
            "archs": list(self.archs),
            "sizes": list(self.sizes),
            "workloads": list(self.workloads),
            "seeds": list(self.seeds),
            "overrides": [
                [list(pair) for pair in over] for over in self.overrides
            ],
            "tag": self.tag,
        }, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GridSpec":
        data = json.loads(text)
        return cls(
            archs=tuple(data["archs"]),
            sizes=tuple(int(n) for n in data.get("sizes", (36,))),
            workloads=tuple(data.get("workloads", ("uniform",))),
            seeds=tuple(int(s) for s in data.get("seeds", (0,))),
            overrides=tuple(
                tuple((str(name), value) for name, value in over)
                for over in data.get("overrides", ((),))
            ),
            tag=str(data.get("tag", "")),
        )


def _resolve_evaluator(name: str) -> Callable:
    """CLI evaluator lookup: ``repro.eval`` name or ``module:function``.

    Bare names resolve against the :mod:`repro.eval` namespace
    (``evaluate_comm_case``, ``evaluate_load_sweep_case``, ...);
    ``pkg.mod:func`` imports any module-level evaluator, so downstream
    grids are not limited to the built-ins.
    """
    import importlib

    if ":" in name:
        module_name, _, attr = name.partition(":")
        module = importlib.import_module(module_name)
    else:
        module = importlib.import_module("repro.eval")
        attr = name
    evaluate = getattr(module, attr, None)
    if evaluate is None or not callable(evaluate):
        raise SystemExit(
            f"unknown evaluator {name!r} (use a repro.eval name like "
            "'evaluate_comm_case' or 'package.module:function')"
        )
    return evaluate


def _load_grid(text: str) -> GridSpec:
    """Grid argument: inline JSON or a path to a JSON file."""
    candidate = Path(text)
    if not text.lstrip().startswith("{") and candidate.is_file():
        text = candidate.read_text(encoding="utf-8")
    return GridSpec.from_json(text)


# ---------------------------------------------------------------------------
# CLI: python -m repro.eval.shard {worker,merge}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", required=True,
                        help="shared result-store directory")
    parser.add_argument("--grid", required=True,
                        help="GridSpec JSON (inline or a file path)")
    parser.add_argument("--evaluator", default="evaluate_comm_case",
                        help="repro.eval name or module:function")


def _cmd_worker(args: argparse.Namespace) -> int:
    evaluate = _resolve_evaluator(args.evaluator)
    cases = _load_grid(args.grid).cases()
    shard = ShardSpec.parse(args.shard) if args.shard else None
    report = drain_cases(
        ResultStore(args.store), evaluate, cases,
        shard=shard,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
        max_poll_s=args.max_poll,
        worker=args.worker_id,
        deadline_s=args.deadline,
        trace=args.trace or None,
    )
    print(
        f"worker {report.worker} shard {shard or 'whole-grid'}: "
        f"{report.evaluated} evaluated ({report.stolen} stolen), "
        f"{report.store_hits} store hits, {report.lease_denied} lease "
        f"denials, {len(report.failures)} failures, "
        f"{report.passes} passes, {report.elapsed_s:.2f}s"
    )
    for failure in report.failures:
        print(f"  FAILED {failure.case.case_id}: "
              f"{(failure.error or '').strip().splitlines()[-1]}")
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n",
                                     encoding="utf-8")
    return 1 if report.failures else 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .report import format_shard_progress, format_table
    from .stream import RunningStats

    evaluate = _resolve_evaluator(args.evaluator)
    cases = _load_grid(args.grid).cases()
    store = ResultStore(args.store)
    if args.wait is not None:
        wait_for_cases(
            store, evaluate, cases, timeout_s=args.wait, poll_s=args.poll,
            max_poll_s=args.max_poll,
            on_progress=lambda done, total: print(
                format_shard_progress(done, total), flush=True
            ),
        )
    metrics = [m for m in (args.metrics or "").split(",") if m]
    aggregators = tuple(RunningStats(m) for m in metrics)
    outcome = merge_stream(store, evaluate, cases, aggregators,
                           require_complete=not args.allow_incomplete)
    print(
        f"merged {outcome.total} cases from {args.store}: "
        f"{outcome.store_hits} store hits, {outcome.evaluated} evaluated "
        f"inline, {len(outcome.failures)} failures"
    )
    if aggregators:
        print(format_table(
            ["metric", "count", "mean", "min", "max"],
            [(s.metric, s.count, s.mean, s.min, s.max)
             for s in aggregators],
            float_format="{:.6g}",
        ))
    return 1 if outcome.failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.shard",
        description="Sharded sweep execution over a shared ResultStore.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser(
        "worker", help="drain one shard of a grid (plus work stealing)"
    )
    _add_common(worker)
    worker.add_argument("--shard", default="",
                        help="'INDEX/COUNT' slice (default: whole grid)")
    worker.add_argument("--lease-ttl", type=float, default=30.0,
                        help="seconds before a claim counts as orphaned")
    worker.add_argument("--poll", type=float, default=0.05,
                        help="initial sleep between no-progress passes")
    worker.add_argument("--max-poll", type=float, default=2.0,
                        help="backoff cap for the no-progress sleep")
    worker.add_argument("--deadline", type=float, default=None,
                        help="give up after this many seconds")
    worker.add_argument("--worker-id", default="",
                        help="label for claims/reports (default host:pid)")
    worker.add_argument("--report", default="",
                        help="write a JSON DrainReport here")
    worker.add_argument("--trace", default="",
                        help="trace directory (default: $REPRO_TRACE)")

    merge = sub.add_parser(
        "merge", help="tail the store and reconstruct the aggregates"
    )
    _add_common(merge)
    merge.add_argument("--wait", type=float, default=None,
                       help="tail the store up to this many seconds first")
    merge.add_argument("--poll", type=float, default=0.2,
                       help="initial tail poll interval")
    merge.add_argument("--max-poll", type=float, default=5.0,
                       help="backoff cap for the tail poll interval")
    merge.add_argument("--metrics", default="",
                       help="comma-separated metrics to summarise")
    merge.add_argument("--allow-incomplete", action="store_true",
                       help="evaluate missing cases inline instead of "
                            "failing on an incomplete grid")

    args = parser.parse_args(argv)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_merge(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
