"""Plain-text table rendering and perf-ratio history for benchmarks.

Every benchmark prints its table/figure through these helpers so the
regenerated rows read like the paper's tables.  The ratio-history
helpers back the CI drift watch: each run of an engine-speedup gate
appends its measured ratios to a JSONL file inside the sweep-results
artifact, and a run warns (never fails) when its ratio drifts more
than a tolerance below the trailing median -- slow regressions that a
single-run threshold would miss.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from pathlib import Path
from statistics import median
from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def load_ratio_history(path) -> List[dict]:
    """All records of a ratio-history JSONL file, oldest first.

    Tolerant of a corrupted file (a torn tail line from a crashed
    writer, or a truncated actions-cache restore): lines that do not
    parse as a JSON *object* are skipped with a warning, mirroring the
    result store's reader semantics, so a damaged history can degrade
    the drift watch but never fail the bench step.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    skipped = 0
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            records.append(record)
    if skipped:
        warnings.warn(
            f"ratio history {path}: skipped {skipped} corrupted line(s)",
            RuntimeWarning,
            stacklevel=2,
        )
    return records


def append_ratio_history(path, record: Mapping) -> None:
    """Append one record to a ratio-history JSONL file.

    One ``O_APPEND`` write of a complete line, so concurrent benchmark
    runs sharing a store directory cannot interleave partial records.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(dict(record), separators=(",", ":")) + "\n").encode(
        "utf-8"
    )
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def ratio_drift_warning(
    history: Sequence[Mapping],
    current: float,
    *,
    key: str = "speedup",
    window: int = 20,
    tolerance: float = 0.2,
    min_history: int = 3,
) -> Optional[str]:
    """Drift-watch verdict for one new ratio measurement.

    Compares ``current`` against the median of the last ``window``
    prior values of ``key`` in ``history`` and returns a warning
    message when it falls more than ``tolerance`` below that median --
    ``None`` otherwise, or when fewer than ``min_history`` prior values
    exist (a short history has no meaningful trend).  Degenerate
    history entries -- missing/null/non-numeric values, NaN or
    infinities, and a zero or negative trailing median (which would
    make the relative comparison meaningless) -- are ignored rather
    than raised on, so a damaged history file can never fail a bench.
    """
    values = []
    for rec in history[-window:]:
        if not isinstance(rec, Mapping) or key not in rec:
            continue
        try:
            value = float(rec[key])
        except (TypeError, ValueError):
            continue
        if math.isfinite(value):
            values.append(value)
    if len(values) < min_history:
        return None
    trailing = median(values)
    if not math.isfinite(trailing) or trailing <= 0:
        return None
    if not math.isfinite(current) or current >= (1.0 - tolerance) * trailing:
        return None
    return (
        f"{key} ratio {current:.2f}x drifted more than "
        f"{tolerance:.0%} below the trailing median {trailing:.2f}x "
        f"over the last {len(values)} runs"
    )


def format_shard_progress(
    done: int,
    total: int,
    *,
    width: int = 32,
    label: str = "grid",
) -> str:
    """One-line progress bar for shard coordinators tailing a store.

    >>> format_shard_progress(3, 8, width=8)
    'grid [###.....] 3/8 (37%)'
    """
    if total <= 0:
        return f"{label} [{'.' * width}] 0/0"
    filled = min(width, (done * width) // total)
    bar = "#" * filled + "." * (width - filled)
    return f"{label} [{bar}] {done}/{total} ({100 * done // total}%)"


def format_ratio_series(
    baseline: str,
    ratios: Sequence[tuple],
    *,
    metric: str = "ratio",
) -> str:
    """One-line-per-entry ratio report, e.g. for normalised figures."""
    lines = [f"normalised to {baseline} (=1.00), metric: {metric}"]
    for name, value in ratios:
        lines.append(f"  {name:>12s}: {value:.2f}x")
    return "\n".join(lines)
