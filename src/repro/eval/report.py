"""Plain-text table rendering for experiment outputs.

Every benchmark prints its table/figure through these helpers so the
regenerated rows read like the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_ratio_series(
    baseline: str,
    ratios: Sequence[tuple],
    *,
    metric: str = "ratio",
) -> str:
    """One-line-per-entry ratio report, e.g. for normalised figures."""
    lines = [f"normalised to {baseline} (=1.00), metric: {metric}"]
    for name, value in ratios:
        lines.append(f"  {name:>12s}: {value:.2f}x")
    return "\n".join(lines)
