"""Design-space exploration over NoI topologies and parameters.

Turns the reproduction from "re-run the paper's figures" into a search:
a :class:`DesignSpace` spans architecture, system size and discrete
``NoIParams`` knob values; :func:`dse_search` runs an NSGA-II-style
multi-objective loop (reusing :mod:`repro.core.moo`'s dominance
machinery) that proposes candidate :class:`~repro.eval.sweeps.SweepCase`
genomes, evaluates each generation through the store-backed streaming
runner, and returns the Pareto front over minimised objectives --
latency, energy and EDP by default.

Two properties keep it honest:

* **Archive semantics.**  Every evaluated design lands in an archive
  keyed by its genome; the reported front is the non-dominated subset
  of the *archive*, not of the last generation, so the search never
  "forgets" a good design.  With a :class:`~repro.eval.store.ResultStore`
  attached, repeated searches (or a widened re-search) replay evaluated
  genomes from disk.
* **Oracle pattern.**  :func:`reference_search` is the scalar reference:
  exhaustive inline evaluation of the whole space plus a naive
  O(n^2) dominance filter, with no NSGA-II, no pool and no store.  The
  equivalence test pins ``dse_search`` to it on a small grid.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, replace
from itertools import product
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.moo import (
    crowding_distance_objectives,
    dominates_objectives,
    non_dominated_sort_objectives,
    pareto_front_indices,
)
from ..obs.trace import resolve_tracer
from .stream import StreamingSweepRunner
from .sweeps import Overrides, SweepCase

__all__ = [
    "DEFAULT_OBJECTIVES",
    "DSEResult",
    "DesignPoint",
    "DesignSpace",
    "FC_OBJECTIVES",
    "dse_search",
    "extract_objectives",
    "fc_design_space",
    "reference_search",
]

#: Default minimised objectives; ``edp`` is derived when absent.
DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "latency_cycles", "energy_pj", "edp",
)

#: A genome: one value per design axis, in :meth:`DesignSpace.axes`
#: order -- hashable so archives and dedup sets can key on it.
Genome = Tuple[object, ...]


def extract_objectives(
    metrics: Mapping[str, float], names: Sequence[str]
) -> Tuple[float, ...]:
    """Objective vector from a metric dict, deriving ``edp`` on demand.

    ``edp`` (energy-delay product) falls back to
    ``latency_cycles * energy_pj`` when the evaluator does not report it
    directly.
    """
    values = []
    for name in names:
        if name in metrics:
            values.append(float(metrics[name]))
        elif name == "edp":
            values.append(
                float(metrics["latency_cycles"]) * float(metrics["energy_pj"])
            )
        else:
            raise KeyError(
                f"objective {name!r} not in metrics "
                f"{sorted(metrics)} and not derivable"
            )
    return tuple(values)


@dataclass(frozen=True)
class DesignSpace:
    """Discrete search space over (arch, size, ``NoIParams`` knobs).

    Attributes:
        archs: Architecture axis (``"floret"``, ``"siam"``, ...).
        sizes: System-size axis (chiplet counts).
        knobs: ``NoIParams`` field -> candidate values, as a tuple of
            ``(field, (value, ...))`` pairs (hashable); use
            :func:`design_space` to build one from keyword arguments.
        workload: Fixed evaluation workload -- objectives are only
            comparable across designs evaluated on the same traffic.
        seed: Fixed workload RNG seed, same rationale.
        tag: Label stamped on every generated case.
    """

    archs: Tuple[str, ...]
    sizes: Tuple[int, ...] = (36,)
    knobs: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    workload: str = "uniform"
    seed: int = 0
    tag: str = "dse"

    def __post_init__(self) -> None:
        for name, values in (("archs", self.archs), ("sizes", self.sizes)):
            if not values:
                raise ValueError(f"empty design axis {name!r}")
        for knob, values in self.knobs:
            if not values:
                raise ValueError(f"empty value set for knob {knob!r}")

    # -- axes --------------------------------------------------------------

    def axes(self) -> List[Tuple[str, Tuple[object, ...]]]:
        """All design axes as ``(name, values)``, genome order."""
        return [
            ("arch", tuple(self.archs)),
            ("num_chiplets", tuple(self.sizes)),
            *[(knob, tuple(values)) for knob, values in self.knobs],
        ]

    @property
    def num_designs(self) -> int:
        n = 1
        for _, values in self.axes():
            n *= len(values)
        return n

    # -- genome <-> case ---------------------------------------------------

    def case(self, genome: Genome) -> SweepCase:
        """Materialise a genome as a sweep case."""
        axes = self.axes()
        if len(genome) != len(axes):
            raise ValueError(
                f"genome length {len(genome)} != {len(axes)} axes"
            )
        overrides: Overrides = tuple(
            (name, value)
            for (name, _), value in zip(axes[2:], genome[2:])
        )
        return SweepCase(
            arch=genome[0],
            num_chiplets=genome[1],
            workload=self.workload,
            seed=self.seed,
            noi_overrides=overrides,
            tag=self.tag,
        )

    def all_genomes(self) -> List[Genome]:
        """Every genome in the space, axis-major order."""
        return [
            tuple(combo)
            for combo in product(*(values for _, values in self.axes()))
        ]

    def all_cases(self) -> List[SweepCase]:
        return [self.case(g) for g in self.all_genomes()]

    # -- variation operators ----------------------------------------------

    def random_genome(self, rng: random.Random) -> Genome:
        return tuple(rng.choice(values) for _, values in self.axes())

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        """Reassign one uniformly chosen axis to a random value."""
        axes = self.axes()
        index = rng.randrange(len(axes))
        mutated = list(genome)
        mutated[index] = rng.choice(axes[index][1])
        return tuple(mutated)

    def crossover(
        self, a: Genome, b: Genome, rng: random.Random
    ) -> Genome:
        """Uniform crossover: each axis inherits from either parent."""
        return tuple(
            x if rng.random() < 0.5 else y for x, y in zip(a, b)
        )


def design_space(
    archs: Sequence[str],
    sizes: Sequence[int] = (36,),
    *,
    workload: str = "uniform",
    seed: int = 0,
    tag: str = "dse",
    **knobs: Sequence[float],
) -> DesignSpace:
    """Convenience builder: ``NoIParams`` knobs as keyword arguments.

    >>> space = design_space(("siam", "kite"), (16, 36),
    ...                      flit_bytes=(16, 32, 64))
    """
    return DesignSpace(
        archs=tuple(archs),
        sizes=tuple(sizes),
        knobs=tuple(
            (name, tuple(values)) for name, values in sorted(knobs.items())
        ),
        workload=workload,
        seed=seed,
        tag=tag,
    )


#: Minimised objectives for closed-loop flow-control searches: the
#: load-sweep evaluator reports no ``latency_cycles``/``energy_pj``;
#: under backpressure the interesting trade-off is mean steady-state
#: latency against the tail.
FC_OBJECTIVES: Tuple[str, ...] = (
    "steady_mean_latency", "steady_max_latency",
)


def fc_design_space(
    archs: Sequence[str] = ("siam",),
    sizes: Sequence[int] = (16,),
    *,
    workload: str = "uniform@0.05:w64+256",
    buffer_flits: Sequence[int] = (4, 16),
    credit_rtt: Sequence[int] = (1, 2),
    seed: int = 0,
    tag: str = "dse-fc",
) -> DesignSpace:
    """Stock closed-loop flow-control space: buffer depth x credit RTT.

    Spans the ``NoIParams.fc_buffer_flits`` / ``fc_credit_rtt`` knobs
    over a :func:`~repro.eval.experiments.parse_load_workload` traffic
    string, so :func:`~repro.eval.experiments.evaluate_load_sweep_case`
    runs every candidate through the credit-backpressure simulator.
    Search it with ``objectives=FC_OBJECTIVES`` -- finite buffers trade
    mean steady-state latency against the stalled tail, which is the
    trade-off the DSE should surface.  Keep ``buffer_flits`` values
    comfortably above 1 on ring-like architectures: tiny buffers
    genuinely deadlock there
    (:class:`~repro.net.flowcontrol.FlowControlDeadlockError`), and an
    oracle search propagates the failure instead of skipping it.
    """
    return design_space(
        archs, sizes,
        workload=workload, seed=seed, tag=tag,
        fc_buffer_flits=tuple(int(v) for v in buffer_flits),
        fc_credit_rtt=tuple(int(v) for v in credit_rtt),
    )


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its case, metrics and objective vector."""

    genome: Genome
    case: SweepCase
    metrics: Dict[str, float]
    objectives: Tuple[float, ...]

    def dominates(self, other: "DesignPoint") -> bool:
        return dominates_objectives(self.objectives, other.objectives)


@dataclass(frozen=True)
class DSEResult:
    """Outcome of one design-space search."""

    pareto_front: Tuple[DesignPoint, ...]
    objectives: Tuple[str, ...]
    archive: Tuple[DesignPoint, ...]
    evaluations: int
    store_hits: int
    generations: int
    failures: int

    def front_case_ids(self) -> Tuple[str, ...]:
        return tuple(p.case.case_id for p in self.pareto_front)


def _front_of(
    points: Sequence[DesignPoint],
) -> Tuple[DesignPoint, ...]:
    """Non-dominated subset, sorted by objective vector (deterministic)."""
    indices = pareto_front_indices([p.objectives for p in points])
    front = [points[i] for i in indices]
    front.sort(key=lambda p: (p.objectives, p.case.case_id))
    return tuple(front)


def reference_search(
    space: DesignSpace,
    evaluate,
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> Tuple[DesignPoint, ...]:
    """Scalar oracle: exhaustive inline evaluation + naive O(n^2) front.

    No NSGA-II, no process pool, no store -- deliberately the slowest,
    most obviously correct implementation, following the repo's oracle
    pattern.  Evaluation errors propagate (an oracle must not skip).
    """
    points = []
    for genome in space.all_genomes():
        case = space.case(genome)
        metrics = dict(evaluate(case))
        scalar_metrics = {
            k: float(v) for k, v in metrics.items()
            if isinstance(v, (int, float))
        }
        points.append(
            DesignPoint(
                genome=genome,
                case=case,
                metrics=scalar_metrics,
                objectives=extract_objectives(scalar_metrics,
                                              tuple(objectives)),
            )
        )
    front = [
        p for p in points
        if not any(q.dominates(p) for q in points)
    ]
    front.sort(key=lambda p: (p.objectives, p.case.case_id))
    return tuple(front)


def _drain_generation(
    store, evaluate, cases, *, shard, lease_ttl_s, deadline_s, trace=None
):
    """Drain one generation's cases across the worker fleet.

    Runs this worker's :func:`repro.eval.shard.drain_cases` share (own
    shard slice first, then lease-claimed takeover of orphaned work),
    then reads the whole generation back from the shared store --
    the inter-worker barrier every generation's selection needs.

    Returns ``(results, own_evaluations)`` with ``results`` aligned to
    ``cases``: the stored :class:`~repro.eval.sweeps.SweepResult`, this
    worker's own failure record (store contract: errors are never
    cached), or ``None`` for a case no worker could complete.
    """
    from .shard import drain_cases
    from .store import case_key, evaluator_fingerprint

    report = drain_cases(
        store, evaluate, cases,
        shard=shard, lease_ttl_s=lease_ttl_s, deadline_s=deadline_s,
        trace=trace,
    )
    local_failures = {r.case.case_id: r for r in report.failures}
    fingerprint = evaluator_fingerprint(evaluate)
    results = []
    for case in cases:
        result = store.get(case_key(case, fingerprint), case)
        if result is None:
            result = local_failures.get(case.case_id)
        results.append(result)
    return results, report.evaluated


def dse_search(
    space: DesignSpace,
    evaluate,
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    population_size: int = 16,
    generations: int = 8,
    mutation_rate: float = 0.3,
    seed: int = 0,
    workers: Optional[int] = None,
    chunksize: int = 4,
    store=None,
    shard=None,
    lease_ttl_s: float = 30.0,
    sync_timeout_s: Optional[float] = None,
    trace=None,
) -> DSEResult:
    """NSGA-II-style search for the Pareto-optimal designs of ``space``.

    Each generation's unevaluated genomes go through a store-backed
    :class:`~repro.eval.stream.StreamingSweepRunner` batch (parallel
    across worker processes, cache-hot across searches); selection is
    binary tournament on (non-domination rank, crowding distance);
    variation is uniform crossover plus per-axis mutation.  When the
    population covers the whole space (small grids), generation zero
    already evaluates every design and the result equals
    :func:`reference_search` -- the equivalence test pins exactly that.

    **Sharded generations.**  With ``shard=ShardSpec(i, n)`` (requires
    ``store``), each generation's population drains across the worker
    fleet before selection: this process evaluates its deterministic
    slice through :func:`repro.eval.shard.drain_cases` -- own cases
    first, then lease-claimed work stolen from crashed or slow peers --
    and reads the rest of the generation back from the shared store.
    The search itself (RNG, selection, variation) runs redundantly and
    identically on every worker, since all of them fold the same
    store-exact metrics with the same ``seed``: launching ``n`` workers
    with the same arguments and shards ``0/n .. n-1/n`` yields the same
    :class:`DSEResult` on each, ``n`` times faster per generation.
    ``evaluations``/``store_hits`` count *this worker's* share.
    ``sync_timeout_s`` bounds the per-generation drain (a dead fleet
    raises ``TimeoutError`` instead of hanging the barrier).

    ``trace=`` (a tracer, a trace directory, or the ``REPRO_TRACE``
    default) emits one ``dse_generation`` span per generation carrying
    population, fresh-evaluation and Pareto-front sizes.
    """
    objectives = tuple(objectives)
    if shard is not None and store is None:
        raise ValueError(
            "sharded DSE needs a shared ResultStore: the store is how "
            "generation results cross worker processes"
        )
    rng = random.Random(seed)
    tracer = resolve_tracer(trace)
    runner = StreamingSweepRunner(
        evaluate, workers=workers, chunksize=chunksize, store=store,
        trace=trace,
    )
    archive: Dict[Genome, DesignPoint] = {}
    #: Genomes that failed evaluation -- memoised so tournament
    #: offspring re-proposing a deterministically broken design do not
    #: burn an evaluation (and a warning) every generation.
    failed: set = set()
    evaluations = 0
    store_hits = 0
    failures = 0

    def evaluate_batch(genomes: Sequence[Genome], generation: int) -> None:
        nonlocal evaluations, store_hits, failures
        fresh = [
            g for g in dict.fromkeys(genomes)
            if g not in archive and g not in failed
        ]
        if not fresh:
            return
        # The generation index rides the case tag ("dse@g3").  Tags are
        # excluded from store keys, so relabelling costs nothing, and
        # the store becomes a per-generation archive that
        # ``repro.viz.render_pareto_fronts`` can replay.
        cases = [
            replace(space.case(g), tag=f"{space.tag}@g{generation}")
            for g in fresh
        ]
        if shard is not None:
            results, own_evaluations = _drain_generation(
                store, evaluate, cases,
                shard=shard, lease_ttl_s=lease_ttl_s,
                deadline_s=sync_timeout_s, trace=trace,
            )
            evaluations += own_evaluations
            store_hits += (
                sum(1 for r in results if r is not None and r.ok)
                - own_evaluations
            )
        else:
            results = list(runner.stream(cases))
            evaluations += len(fresh) - runner.last_store_hits
            store_hits += runner.last_store_hits
        for genome, result in zip(fresh, results):
            if result is None or not result.ok:
                failures += 1
                failed.add(genome)
                case_id = space.case(genome).case_id
                error = result.error if result is not None else (
                    "evaluation failed on every worker that attempted it "
                    "(errors are never cached; see the worker logs)"
                )
                warnings.warn(
                    f"DSE evaluation failed for {case_id}: {error}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            archive[genome] = DesignPoint(
                genome=genome,
                case=result.case,
                metrics=dict(result.metrics),
                objectives=extract_objectives(result.metrics, objectives),
            )

    # Generation zero: distinct random sample (the whole space if the
    # population covers it).
    all_genomes = space.all_genomes()
    if len(all_genomes) <= population_size:
        population = list(all_genomes)
    else:
        population = rng.sample(all_genomes, population_size)
    with tracer.span("dse_generation", generation=0,
                     population=len(population)) as gen_span:
        evaluate_batch(population, 0)
        gen_span.add(archive=len(archive))

    for _generation in range(generations):
        with tracer.span("dse_generation", generation=_generation + 1,
                         population=len(population)) as gen_span:
            parents = [g for g in population if g in archive]
            if not parents:
                break
            points = [archive[g] for g in parents]
            fronts = non_dominated_sort_objectives(
                [p.objectives for p in points]
            )
            gen_span.add(fronts=[len(front) for front in fronts])
            rank: Dict[int, int] = {}
            crowding: Dict[int, float] = {}
            for depth, front in enumerate(fronts):
                dist = crowding_distance_objectives(
                    [p.objectives for p in points], front
                )
                for i in front:
                    rank[i] = depth
                    crowding[i] = dist[i]

            def tournament() -> Genome:
                a = rng.randrange(len(parents))
                b = rng.randrange(len(parents))
                if rank[a] != rank[b]:
                    return parents[a if rank[a] < rank[b] else b]
                return parents[a if crowding[a] >= crowding[b] else b]

            offspring: List[Genome] = []
            while len(offspring) < population_size:
                child = space.crossover(tournament(), tournament(), rng)
                if rng.random() < mutation_rate:
                    child = space.mutate(child, rng)
                offspring.append(child)
            evaluate_batch(offspring, _generation + 1)
            gen_span.add(fresh_archive=len(archive))
            population = offspring

    points = list(archive.values())
    tracer.flush()
    return DSEResult(
        pareto_front=_front_of(points),
        objectives=objectives,
        archive=tuple(points),
        evaluations=evaluations,
        store_hits=store_hits,
        generations=generations,
        failures=failures,
    )
