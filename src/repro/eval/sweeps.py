"""Parallel parameter-sweep runner over (topology x workload x params).

The vectorized engine (:mod:`repro.net.vectorized`) makes one scenario
cheap; this module makes *many* scenarios cheap by fanning a grid of
:class:`SweepCase` descriptors across worker processes and aggregating
the per-case metric dictionaries into a structured
:class:`SweepOutcome`.  Benchmarks (``benchmarks/bench_fig*.py``,
``benchmarks/bench_sweep_engine.py``) and future scaling work all drive
their scenario fan-out through :class:`SweepRunner`.

Design notes:

* Cases and results are small picklable dataclasses; evaluation
  functions must be module-level callables so the process pool can ship
  them (the built-ins below cover communication sweeps, full mix
  schedules and structural topology censuses).
* ``workers <= 1`` runs inline -- deterministic, dependency-free, and
  what the unit tests use.  Pool construction failures (restricted
  sandboxes without POSIX semaphores, for instance) degrade to the
  inline path instead of erroring, so a sweep always completes.
* Per-process caches (topology builders, routing tables) are warmed
  lazily inside the workers; a chunked submission order keeps cases of
  the same topology together to maximise cache reuse.
"""

from __future__ import annotations

import os
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import lru_cache, partial
from itertools import product
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..noi.topology import Topology
from ..obs.clock import Stopwatch
from ..obs.metrics import REGISTRY
from ..obs.trace import default_tracer, resolve_tracer
from ..params import NoIParams

#: Environment knob: hard override of worker count for every runner.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

Overrides = Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class SweepCase:
    """One scenario: an architecture, a workload and parameter overrides.

    Attributes:
        arch: Architecture name (``"floret"``, ``"siam"``, ``"kite"``,
            ``"swap"``).
        num_chiplets: System size.
        workload: Workload selector -- a Table II mix name (``"WL1"``)
            for schedule sweeps or a synthetic traffic pattern name
            (``"uniform"``, ``"neighbor"``, ``"hotspot"``,
            ``"transpose"``) for communication sweeps.
        seed: RNG seed for randomised workloads.
        noi_overrides: ``NoIParams`` field overrides as a hashable,
            picklable tuple of ``(field, value)`` pairs.
        tag: Free-form label for grouping in reports.
    """

    arch: str
    num_chiplets: int = 36
    workload: str = "uniform"
    seed: int = 0
    noi_overrides: Overrides = ()
    tag: str = ""

    @property
    def case_id(self) -> str:
        over = ",".join(f"{k}={v}" for k, v in self.noi_overrides)
        return (
            f"{self.arch}/{self.num_chiplets}/{self.workload}/s{self.seed}"
            + (f"/{over}" if over else "")
        )

    def params(self) -> NoIParams:
        return replace(NoIParams(), **dict(self.noi_overrides))


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one case: metric dict or a captured error.

    Array-valued outputs (thermal tier maps and the like) ride in
    ``arrays`` rather than ``metrics`` so scalar aggregation
    (``pivot``/``metric``) stays uniform; evaluators simply return
    ``np.ndarray`` values in their mapping and :func:`_evaluate_one`
    routes them here.
    """

    case: SweepCase
    metrics: Dict[str, float]
    elapsed_s: float
    error: Optional[str] = None
    arrays: Optional[Dict[str, np.ndarray]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepOutcome:
    """Aggregated sweep results with query helpers."""

    results: Tuple[SweepResult, ...]
    elapsed_s: float
    workers: int
    #: Cases answered from the :class:`~repro.eval.store.ResultStore`
    #: instead of being evaluated (0 when no store is attached).
    store_hits: int = 0

    @property
    def evaluated(self) -> int:
        """Cases that actually ran the evaluation function."""
        return len(self.results) - self.store_hits

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> Tuple[SweepResult, ...]:
        return tuple(r for r in self.results if r.ok)

    @property
    def failures(self) -> Tuple[SweepResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def metric(self, name: str) -> np.ndarray:
        """Values of one metric over all successful cases, sweep order."""
        return np.array([r.metrics[name] for r in self.ok], dtype=np.float64)

    def group_by(
        self, key: Callable[[SweepCase], object]
    ) -> Dict[object, List[SweepResult]]:
        out: Dict[object, List[SweepResult]] = {}
        for r in self.ok:
            out.setdefault(key(r.case), []).append(r)
        return out

    def by_arch(self) -> Dict[str, List[SweepResult]]:
        return self.group_by(lambda c: c.arch)

    def pivot(
        self, metric: str,
        row: Callable[[SweepCase], object] = lambda c: c.workload,
        col: Callable[[SweepCase], object] = lambda c: c.arch,
    ) -> Dict[object, Dict[object, float]]:
        """``{row_key: {col_key: mean metric}}`` table of one metric."""
        table: Dict[object, Dict[object, List[float]]] = {}
        for r in self.ok:
            cell = table.setdefault(row(r.case), {}).setdefault(
                col(r.case), []
            )
            cell.append(r.metrics[metric])
        return {
            rk: {ck: float(np.mean(vs)) for ck, vs in cols.items()}
            for rk, cols in table.items()
        }

    def rows(self, metric_names: Sequence[str]) -> List[List[object]]:
        """Table rows ``[case_id, *metrics]`` for ``format_table``."""
        return [
            [r.case.case_id] + [r.metrics.get(m, float("nan"))
                                for m in metric_names]
            for r in self.ok
        ]


def sweep_grid(
    archs: Sequence[str],
    sizes: Sequence[int] = (36,),
    workloads: Sequence[str] = ("uniform",),
    seeds: Sequence[int] = (0,),
    overrides: Sequence[Overrides] = ((),),
    tag: str = "",
) -> List[SweepCase]:
    """Cartesian product of sweep axes, topology-major for cache reuse."""
    return [
        SweepCase(
            arch=a, num_chiplets=n, workload=w, seed=s,
            noi_overrides=o, tag=tag,
        )
        for a, n, o, w, s in product(archs, sizes, overrides,
                                     workloads, seeds)
    ]


def is_pool_failure(exc: BaseException) -> bool:
    """Whether ``exc`` is a known pool-level (not evaluation) failure.

    Covers pool construction/worker loss (``OSError`` in sandboxes
    without POSIX semaphores, ``BrokenProcessPool`` after a worker
    crash) and evaluator-pickling failures.  CPython reports the latter
    inconsistently: ``pickle.PicklingError`` on direct submission, but
    ``AttributeError("Can't pickle local object ...")`` or
    ``TypeError("cannot pickle ...")`` when the queue feeder thread hits
    it -- so those are matched by message.  Worker-side evaluation
    errors never reach here: :func:`_evaluate_one` captures them into
    ``SweepResult.error``.
    """
    if isinstance(exc, (OSError, BrokenProcessPool, pickle.PicklingError)):
        return True
    if isinstance(exc, (AttributeError, TypeError)):
        return "pickle" in str(exc).lower()
    return False


def _record_case(result: SweepResult) -> SweepResult:
    """Metrics/trace bookkeeping for one evaluated case.

    Runs in whichever process evaluated the case (pool workers pick up
    ``REPRO_TRACE`` from the inherited environment), so per-worker
    trace files attribute each case to the process that ran it.
    """
    if result.ok:
        REGISTRY.counter("cases_evaluated").inc()
    else:
        REGISTRY.counter("cases_failed").inc()
    REGISTRY.histogram("case_latency_s").observe(result.elapsed_s)
    tracer = default_tracer()
    if tracer.enabled:
        from ..obs.clock import wall

        tracer.record_span(
            "evaluate_case",
            wall() - result.elapsed_s,
            result.elapsed_s,
            case=result.case.case_id,
            ok=result.ok,
        )
    return result


def _evaluate_one(
    evaluate: Callable[[SweepCase], Mapping[str, float]],
    case: SweepCase,
) -> SweepResult:
    watch = Stopwatch()
    try:
        raw = dict(evaluate(case))
    except Exception:
        return _record_case(SweepResult(
            case=case,
            metrics={},
            elapsed_s=watch.elapsed_s,
            error=traceback.format_exc(limit=8),
        ))
    metrics: Dict[str, float] = {}
    arrays: Dict[str, np.ndarray] = {}
    for name, value in raw.items():
        if isinstance(value, np.ndarray):
            arrays[name] = value
        else:
            metrics[name] = value
    return _record_case(SweepResult(
        case=case,
        metrics=metrics,
        elapsed_s=watch.elapsed_s,
        arrays=arrays or None,
    ))


class SweepRunner:
    """Fan a list of :class:`SweepCase` over worker processes.

    Args:
        evaluate: Module-level callable mapping a case to a metric dict
            (must be picklable for ``workers > 1``).
        workers: Process count.  ``None`` picks ``min(cpu, cases)``;
            ``<= 1`` runs inline.  The ``REPRO_SWEEP_WORKERS`` env var
            overrides either.
        chunksize: Cases per pool task; larger chunks amortise IPC and
            keep same-topology cases on one worker's warm caches.
        store: Optional :class:`~repro.eval.store.ResultStore`.  When
            set, cached cases are answered without dispatch and fresh
            results are appended as they land, so a completed sweep
            replays with zero evaluations.
        shard: Optional :class:`~repro.eval.shard.ShardSpec`.  When
            set, :meth:`run` silently restricts any grid to this
            worker's deterministic slice of it -- the partition-only
            half of distributed execution, for fleets whose shards
            share a ``store`` directory.  Lease-based claiming and
            work stealing (crash recovery) live in
            :func:`repro.eval.shard.drain_cases`; a bare ``shard=``
            runner never evaluates outside its slice.
        trace: Optional tracing target -- a
            :class:`~repro.obs.trace.Tracer`, a trace directory path,
            or ``None`` to defer to the ``REPRO_TRACE`` environment
            variable (the default, which is a no-op tracer when the
            variable is unset).
    """

    def __init__(
        self,
        evaluate: Callable[[SweepCase], Mapping[str, float]],
        *,
        workers: Optional[int] = None,
        chunksize: int = 4,
        store=None,
        shard=None,
        trace=None,
    ) -> None:
        self.evaluate = evaluate
        self.workers = workers
        self.chunksize = max(1, chunksize)
        self.store = store
        self.shard = shard
        self.trace = trace
        self._trace_tracer = None
        if shard is not None and store is None:
            raise ValueError(
                "shard= without store= would evaluate a slice and "
                "discard the rest of the grid's substrate; sharded "
                "runners must share a ResultStore directory"
            )

    def _tracer(self):
        """This runner's tracer, opened once per explicit ``trace=``.

        ``trace=None`` defers to :func:`~repro.obs.trace.default_tracer`
        on every call (the env can change between runs, and forked pool
        workers must open their own files); an explicit path or tracer
        resolves once, so every run of this runner appends to one file.
        """
        if self.trace is None:
            return default_tracer()
        if self._trace_tracer is None:
            self._trace_tracer = resolve_tracer(self.trace)
        return self._trace_tracer

    def _shard_slice(self, cases: List[SweepCase]) -> List[SweepCase]:
        if self.shard is None:
            return cases
        return [c for c in cases if self.shard.owns(c)]

    def case_keys(self, cases: Sequence[SweepCase]) -> List[str]:
        """Store keys of ``cases`` under this runner's evaluator."""
        from .store import case_key, evaluator_fingerprint

        fingerprint = evaluator_fingerprint(self.evaluate)
        return [case_key(c, fingerprint) for c in cases]

    def _resolve_workers(self, num_cases: int) -> int:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            return max(1, int(env))
        if self.workers is not None:
            return max(1, self.workers)
        return max(1, min(os.cpu_count() or 1, num_cases))

    def run(self, cases: Iterable[SweepCase]) -> SweepOutcome:
        cases = self._shard_slice(list(cases))
        tracer = self._tracer()
        watch = Stopwatch()
        with tracer.span("sweep_run", cases=len(cases)) as sweep_span:
            results: List[Optional[SweepResult]] = [None] * len(cases)
            keys: Optional[List[str]] = None
            pending: List[int] = list(range(len(cases)))
            if self.store is not None:
                keys = self.case_keys(cases)
                pending = []
                for i, case in enumerate(cases):
                    hit = self.store.get(keys[i], case)
                    if hit is not None:
                        results[i] = hit
                    else:
                        pending.append(i)
            store_hits = len(cases) - len(pending)
            if store_hits:
                REGISTRY.counter("cases_cached").inc(store_hits)
            workers = self._resolve_workers(len(pending))
            evaluated: Optional[List[SweepResult]] = None
            pending_cases = [cases[i] for i in pending]
            if workers > 1 and len(pending) > 1:
                evaluated = self._run_pool(pending_cases, workers)
            if evaluated is None:
                workers = 1
                evaluated = [_evaluate_one(self.evaluate, c)
                             for c in pending_cases]
            for i, result in zip(pending, evaluated):
                results[i] = result
                if self.store is not None and keys is not None:
                    self.store.put(keys[i], result)
            sweep_span.add(
                store_hits=store_hits,
                evaluated=len(pending),
                workers=workers,
            )
        tracer.flush()
        return SweepOutcome(
            results=tuple(r for r in results if r is not None),
            elapsed_s=watch.elapsed_s,
            workers=workers,
            store_hits=store_hits,
        )

    def _run_pool(
        self, cases: List[SweepCase], workers: int
    ) -> Optional[List[SweepResult]]:
        """Pool execution; ``None`` signals fall-back to inline."""
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        partial(_evaluate_one, self.evaluate),
                        cases,
                        chunksize=self.chunksize,
                    )
                )
        except Exception as exc:
            # Known pool-level failures -- restricted sandboxes without
            # /dev/shm semaphores, crashed workers, unpicklable
            # evaluate -- degrade to inline so the sweep still
            # completes, but loudly: silent serial re-runs read as an
            # unexplained performance cliff.  Anything else (a bug in
            # aggregation, KeyboardInterrupt) propagates.
            if not is_pool_failure(exc):
                raise
            warnings.warn(
                f"sweep process pool failed ({exc!r}); "
                f"re-running {len(cases)} cases inline",
                RuntimeWarning,
                stacklevel=3,
            )
            return None


# ---------------------------------------------------------------------------
# built-in case evaluators (module-level: picklable for the pool)


@lru_cache(maxsize=32)
def _case_topology(arch: str, num_chiplets: int,
                   noi_overrides: Overrides) -> Topology:
    from ..core.floret import build_floret
    from ..noi.kite import build_kite
    from ..noi.mesh import build_mesh
    from ..noi.swap import build_swap

    params = replace(NoIParams(), **dict(noi_overrides))
    if arch == "floret":
        return build_floret(num_chiplets, params=params).topology
    builders = {"siam": build_mesh, "kite": build_kite, "swap": build_swap}
    try:
        builder = builders[arch]
    except KeyError:
        raise ValueError(f"unknown architecture {arch!r}") from None
    return builder(num_chiplets, params=params)


def case_topology(case: SweepCase) -> Topology:
    """The (per-process cached) topology of a sweep case."""
    return _case_topology(case.arch, case.num_chiplets, case.noi_overrides)


def synthetic_traffic(
    pattern: str, num_chiplets: int, seed: int,
    *,
    flows: Optional[int] = None,
    max_payload: int = 4096,
) -> np.ndarray:
    """Deterministic synthetic transfer sets for communication sweeps.

    Patterns: ``uniform`` (random pairs), ``neighbor`` (ring successor),
    ``hotspot`` (all-to-one plus background), ``transpose``
    (``i -> n-1-i``).
    """
    n = num_chiplets
    rng = np.random.default_rng(seed * 7919 + n)
    flows = flows if flows is not None else 4 * n
    if pattern == "uniform":
        src = rng.integers(0, n, flows)
        dst = rng.integers(0, n, flows)
    elif pattern == "neighbor":
        src = np.arange(n, dtype=np.int64)
        dst = (src + 1) % n
    elif pattern == "hotspot":
        hot = int(rng.integers(0, n))
        src = rng.integers(0, n, flows)
        dst = np.where(rng.random(flows) < 0.5, hot, rng.integers(0, n, flows))
    elif pattern == "transpose":
        src = np.arange(n, dtype=np.int64)
        dst = n - 1 - src
    else:
        raise ValueError(f"unknown traffic pattern {pattern!r}")
    payload = rng.integers(1, max_payload, src.shape[0])
    return np.stack(
        [src.astype(np.int64), dst.astype(np.int64), payload], axis=1
    )


def evaluate_comm_case(case: SweepCase) -> Dict[str, float]:
    """Vectorized-engine communication metrics for one synthetic case."""
    from ..net.vectorized import communication_cost_vec

    topo = case_topology(case)
    transfers = synthetic_traffic(
        case.workload, case.num_chiplets, case.seed
    )
    report = communication_cost_vec(topo, transfers)
    return {
        "latency_cycles": float(report.latency_cycles),
        "serial_latency_cycles": float(report.serial_latency_cycles),
        "energy_pj": report.energy_pj,
        "total_flits": float(report.total_flits),
        "weighted_hops": report.weighted_hops,
        "mean_packet_latency": report.mean_packet_latency,
    }


def evaluate_mix_case(case: SweepCase) -> Dict[str, float]:
    """Full Table II mix schedule metrics for one case (Figs. 3/4/5).

    The schedule path builds its topologies through the
    :mod:`repro.eval.experiments` caches, which do not take parameter
    overrides; silently returning default-parameter results for an
    override sweep would mislabel identical data, so such cases fail
    loudly instead.
    """
    from .experiments import schedule

    _reject_schedule_axes(case, "evaluate_mix_case")
    result = schedule(case.arch, case.workload, case.num_chiplets)
    return {
        "mean_packet_latency": result.mean_packet_latency,
        "noi_energy_pj": result.total_noi_energy_pj,
        "utilization": result.utilization,
        "makespan_cycles": float(result.makespan_cycles),
    }


def _reject_schedule_axes(case: SweepCase, evaluator: str) -> None:
    """Refuse axes the deterministic schedule/MOO paths cannot honour.

    Those paths build their systems through the
    :mod:`repro.eval.experiments` caches, which take no parameter
    overrides and no RNG seed; silently returning identical
    default-parameter results for a swept axis would mislabel
    duplicated data, so such cases fail loudly instead.
    """
    if case.noi_overrides:
        raise ValueError(
            f"{evaluator} does not support noi_overrides "
            f"(got {case.noi_overrides}); add parameter plumbing to "
            "repro.eval.experiments first"
        )
    if case.seed != 0:
        raise ValueError(
            f"{evaluator} is deterministic; sweeping seed {case.seed} "
            "would duplicate identical results"
        )


def evaluate_utilization_case(case: SweepCase) -> Dict[str, float]:
    """Fig. 4 runtime-utilisation metrics for one (arch, mix) case.

    ``workload`` is a Table II mix name.  Baselines schedule under the
    paper's 2-hop contiguity QoS budget (rejections strand chiplets);
    Floret's contiguous mapper runs unconstrained.  The missing budget
    on Floret is encoded as ``hop_budget = -1``.
    """
    from .experiments import utilization_row

    _reject_schedule_axes(case, "evaluate_utilization_case")
    row = utilization_row(case.arch, case.workload,
                          num_chiplets=case.num_chiplets)
    return {
        "utilization": row.utilization,
        "constraint_failures": float(row.constraint_failures),
        "relaxed_mappings": float(row.relaxed_mappings),
        "makespan_cycles": float(row.makespan_cycles),
        "hop_budget": float(row.hop_budget)
        if row.hop_budget is not None else -1.0,
    }


def evaluate_moo_case(case: SweepCase) -> Dict[str, object]:
    """Section III joint perf-thermal MOO census for one Table I DNN.

    ``workload`` is a DNN id (``"DNN1"``..``"DNN13"``).  Runs (per
    process, cached) the NSGA-II mapping optimisation on the 100-PE
    Floret-3D stack and summarises both the performance-only and the
    joint design: EDP, peak temperature, inference-accuracy drop and
    bottom-tier hotspot census, plus the tier temperature maps as array
    payloads (Figs. 6-7 derive entirely from this one evaluator).
    """
    from .experiments import moo_candidate_summary, moo_result

    if case.arch != "floret":
        raise ValueError(
            "evaluate_moo_case runs on the Floret-3D stack only "
            f"(got arch={case.arch!r})"
        )
    if case.num_chiplets != 100:
        raise ValueError(
            "evaluate_moo_case has no size plumbing: repro.eval."
            "experiments.moo_result builds the paper's 100-PE stack "
            f"(got num_chiplets={case.num_chiplets})"
        )
    _reject_schedule_axes(case, "evaluate_moo_case")
    problem, result = moo_result(case.workload)
    floret = moo_candidate_summary(problem, result.performance_only,
                                   "floret")
    joint = moo_candidate_summary(problem, result.joint, "joint")
    return {
        "floret_edp": floret.edp,
        "joint_edp": joint.edp,
        "floret_peak_k": floret.peak_k,
        "joint_peak_k": joint.peak_k,
        "floret_accuracy_drop_pct": floret.accuracy_drop_pct,
        "joint_accuracy_drop_pct": joint.accuracy_drop_pct,
        "floret_hotspot_pes": float(floret.tier.hotspot_pes),
        "joint_hotspot_pes": float(joint.tier.hotspot_pes),
        "floret_tier_peak_k": floret.tier.tier_peak_k,
        "joint_tier_peak_k": joint.tier.tier_peak_k,
        "evaluations": float(result.evaluations),
        "floret_tier_map_k": floret.tier.tier_map_k,
        "joint_tier_map_k": joint.tier.tier_map_k,
    }


def evaluate_table1_case(case: SweepCase) -> Dict[str, float]:
    """Table I parameter census for one DNN id in ``workload``.

    ``arch``/``num_chiplets`` are carried as labels only -- the model
    zoo's shape inference involves no interconnect.
    """
    from ..workloads.zoo import TABLE1_SPEC, table1_model

    _reject_schedule_axes(case, "evaluate_table1_case")
    paper_m = {row[0]: row[3] for row in TABLE1_SPEC}[case.workload]
    model = table1_model(case.workload)
    return {
        "paper_params_millions": paper_m,
        "measured_params_millions": model.total_params / 1e6,
    }


def evaluate_topology_case(case: SweepCase) -> Dict[str, float]:
    """Structural census of one case's topology (Fig. 2 metrics).

    Flattens :func:`repro.noi.properties.summarize` -- the shared census
    implementation -- into sweep metrics, so definitions like the
    single-hop link fraction live in exactly one place.
    """
    from ..noi.properties import summarize

    summary = summarize(case_topology(case))
    metrics: Dict[str, float] = {
        "num_links": float(summary.num_links),
        "mean_ports": summary.mean_ports,
        "total_link_length_mm": summary.total_link_length_mm,
        "noi_area_mm2": summary.noi_area_mm2,
        "bisection_links": float(summary.bisection_links),
        "diameter_hops": float(summary.diameter_hops),
        "average_hops": summary.average_hops,
        "fraction_single_hop": summary.fraction_single_hop_links(),
    }
    for ports, count in summary.port_histogram.items():
        metrics[f"ports_{ports}"] = float(count)
    for length, count in summary.link_length_histogram.items():
        metrics[f"linklen_{length}"] = float(count)
    return metrics
