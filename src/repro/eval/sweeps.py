"""Parallel parameter-sweep runner over (topology x workload x params).

The vectorized engine (:mod:`repro.net.vectorized`) makes one scenario
cheap; this module makes *many* scenarios cheap by fanning a grid of
:class:`SweepCase` descriptors across worker processes and aggregating
the per-case metric dictionaries into a structured
:class:`SweepOutcome`.  Benchmarks (``benchmarks/bench_fig*.py``,
``benchmarks/bench_sweep_engine.py``) and future scaling work all drive
their scenario fan-out through :class:`SweepRunner`.

Design notes:

* Cases and results are small picklable dataclasses; evaluation
  functions must be module-level callables so the process pool can ship
  them (the built-ins below cover communication sweeps, full mix
  schedules and structural topology censuses).
* ``workers <= 1`` runs inline -- deterministic, dependency-free, and
  what the unit tests use.  Pool construction failures (restricted
  sandboxes without POSIX semaphores, for instance) degrade to the
  inline path instead of erroring, so a sweep always completes.
* Per-process caches (topology builders, routing tables) are warmed
  lazily inside the workers; a chunked submission order keeps cases of
  the same topology together to maximise cache reuse.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import lru_cache, partial
from itertools import product
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..noi.topology import Topology
from ..params import NoIParams

#: Environment knob: hard override of worker count for every runner.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

Overrides = Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class SweepCase:
    """One scenario: an architecture, a workload and parameter overrides.

    Attributes:
        arch: Architecture name (``"floret"``, ``"siam"``, ``"kite"``,
            ``"swap"``).
        num_chiplets: System size.
        workload: Workload selector -- a Table II mix name (``"WL1"``)
            for schedule sweeps or a synthetic traffic pattern name
            (``"uniform"``, ``"neighbor"``, ``"hotspot"``,
            ``"transpose"``) for communication sweeps.
        seed: RNG seed for randomised workloads.
        noi_overrides: ``NoIParams`` field overrides as a hashable,
            picklable tuple of ``(field, value)`` pairs.
        tag: Free-form label for grouping in reports.
    """

    arch: str
    num_chiplets: int = 36
    workload: str = "uniform"
    seed: int = 0
    noi_overrides: Overrides = ()
    tag: str = ""

    @property
    def case_id(self) -> str:
        over = ",".join(f"{k}={v}" for k, v in self.noi_overrides)
        return (
            f"{self.arch}/{self.num_chiplets}/{self.workload}/s{self.seed}"
            + (f"/{over}" if over else "")
        )

    def params(self) -> NoIParams:
        return replace(NoIParams(), **dict(self.noi_overrides))


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one case: metric dict or a captured error."""

    case: SweepCase
    metrics: Dict[str, float]
    elapsed_s: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepOutcome:
    """Aggregated sweep results with query helpers."""

    results: Tuple[SweepResult, ...]
    elapsed_s: float
    workers: int

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> Tuple[SweepResult, ...]:
        return tuple(r for r in self.results if r.ok)

    @property
    def failures(self) -> Tuple[SweepResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def metric(self, name: str) -> np.ndarray:
        """Values of one metric over all successful cases, sweep order."""
        return np.array([r.metrics[name] for r in self.ok], dtype=np.float64)

    def group_by(
        self, key: Callable[[SweepCase], object]
    ) -> Dict[object, List[SweepResult]]:
        out: Dict[object, List[SweepResult]] = {}
        for r in self.ok:
            out.setdefault(key(r.case), []).append(r)
        return out

    def by_arch(self) -> Dict[str, List[SweepResult]]:
        return self.group_by(lambda c: c.arch)

    def pivot(
        self, metric: str,
        row: Callable[[SweepCase], object] = lambda c: c.workload,
        col: Callable[[SweepCase], object] = lambda c: c.arch,
    ) -> Dict[object, Dict[object, float]]:
        """``{row_key: {col_key: mean metric}}`` table of one metric."""
        table: Dict[object, Dict[object, List[float]]] = {}
        for r in self.ok:
            cell = table.setdefault(row(r.case), {}).setdefault(
                col(r.case), []
            )
            cell.append(r.metrics[metric])
        return {
            rk: {ck: float(np.mean(vs)) for ck, vs in cols.items()}
            for rk, cols in table.items()
        }

    def rows(self, metric_names: Sequence[str]) -> List[List[object]]:
        """Table rows ``[case_id, *metrics]`` for ``format_table``."""
        return [
            [r.case.case_id] + [r.metrics.get(m, float("nan"))
                                for m in metric_names]
            for r in self.ok
        ]


def sweep_grid(
    archs: Sequence[str],
    sizes: Sequence[int] = (36,),
    workloads: Sequence[str] = ("uniform",),
    seeds: Sequence[int] = (0,),
    overrides: Sequence[Overrides] = ((),),
    tag: str = "",
) -> List[SweepCase]:
    """Cartesian product of sweep axes, topology-major for cache reuse."""
    return [
        SweepCase(
            arch=a, num_chiplets=n, workload=w, seed=s,
            noi_overrides=o, tag=tag,
        )
        for a, n, o, w, s in product(archs, sizes, overrides,
                                     workloads, seeds)
    ]


def _evaluate_one(
    evaluate: Callable[[SweepCase], Mapping[str, float]],
    case: SweepCase,
) -> SweepResult:
    t0 = time.perf_counter()
    try:
        metrics = dict(evaluate(case))
    except Exception:
        return SweepResult(
            case=case,
            metrics={},
            elapsed_s=time.perf_counter() - t0,
            error=traceback.format_exc(limit=8),
        )
    return SweepResult(
        case=case, metrics=metrics, elapsed_s=time.perf_counter() - t0
    )


class SweepRunner:
    """Fan a list of :class:`SweepCase` over worker processes.

    Args:
        evaluate: Module-level callable mapping a case to a metric dict
            (must be picklable for ``workers > 1``).
        workers: Process count.  ``None`` picks ``min(cpu, cases)``;
            ``<= 1`` runs inline.  The ``REPRO_SWEEP_WORKERS`` env var
            overrides either.
        chunksize: Cases per pool task; larger chunks amortise IPC and
            keep same-topology cases on one worker's warm caches.
    """

    def __init__(
        self,
        evaluate: Callable[[SweepCase], Mapping[str, float]],
        *,
        workers: Optional[int] = None,
        chunksize: int = 4,
    ) -> None:
        self.evaluate = evaluate
        self.workers = workers
        self.chunksize = max(1, chunksize)

    def _resolve_workers(self, num_cases: int) -> int:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            return max(1, int(env))
        if self.workers is not None:
            return max(1, self.workers)
        return max(1, min(os.cpu_count() or 1, num_cases))

    def run(self, cases: Iterable[SweepCase]) -> SweepOutcome:
        cases = list(cases)
        t0 = time.perf_counter()
        workers = self._resolve_workers(len(cases))
        results: Optional[List[SweepResult]] = None
        if workers > 1 and len(cases) > 1:
            results = self._run_pool(cases, workers)
        if results is None:
            workers = 1
            results = [_evaluate_one(self.evaluate, c) for c in cases]
        return SweepOutcome(
            results=tuple(results),
            elapsed_s=time.perf_counter() - t0,
            workers=workers,
        )

    def _run_pool(
        self, cases: List[SweepCase], workers: int
    ) -> Optional[List[SweepResult]]:
        """Pool execution; ``None`` signals fall-back to inline."""
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        partial(_evaluate_one, self.evaluate),
                        cases,
                        chunksize=self.chunksize,
                    )
                )
        except (OSError, BrokenProcessPool, pickle.PicklingError) as exc:
            # Known pool-level failures -- restricted sandboxes without
            # /dev/shm semaphores, crashed workers, unpicklable
            # evaluate -- degrade to inline so the sweep still
            # completes, but loudly: silent serial re-runs read as an
            # unexplained performance cliff.  Anything else (a bug in
            # aggregation, KeyboardInterrupt) propagates.
            warnings.warn(
                f"sweep process pool failed ({exc!r}); "
                f"re-running {len(cases)} cases inline",
                RuntimeWarning,
                stacklevel=3,
            )
            return None


# ---------------------------------------------------------------------------
# built-in case evaluators (module-level: picklable for the pool)


@lru_cache(maxsize=32)
def _case_topology(arch: str, num_chiplets: int,
                   noi_overrides: Overrides) -> Topology:
    from ..core.floret import build_floret
    from ..noi.kite import build_kite
    from ..noi.mesh import build_mesh
    from ..noi.swap import build_swap

    params = replace(NoIParams(), **dict(noi_overrides))
    if arch == "floret":
        return build_floret(num_chiplets, params=params).topology
    builders = {"siam": build_mesh, "kite": build_kite, "swap": build_swap}
    try:
        builder = builders[arch]
    except KeyError:
        raise ValueError(f"unknown architecture {arch!r}") from None
    return builder(num_chiplets, params=params)


def case_topology(case: SweepCase) -> Topology:
    """The (per-process cached) topology of a sweep case."""
    return _case_topology(case.arch, case.num_chiplets, case.noi_overrides)


def synthetic_traffic(
    pattern: str, num_chiplets: int, seed: int,
    *,
    flows: Optional[int] = None,
    max_payload: int = 4096,
) -> np.ndarray:
    """Deterministic synthetic transfer sets for communication sweeps.

    Patterns: ``uniform`` (random pairs), ``neighbor`` (ring successor),
    ``hotspot`` (all-to-one plus background), ``transpose``
    (``i -> n-1-i``).
    """
    n = num_chiplets
    rng = np.random.default_rng(seed * 7919 + n)
    flows = flows if flows is not None else 4 * n
    if pattern == "uniform":
        src = rng.integers(0, n, flows)
        dst = rng.integers(0, n, flows)
    elif pattern == "neighbor":
        src = np.arange(n, dtype=np.int64)
        dst = (src + 1) % n
    elif pattern == "hotspot":
        hot = int(rng.integers(0, n))
        src = rng.integers(0, n, flows)
        dst = np.where(rng.random(flows) < 0.5, hot, rng.integers(0, n, flows))
    elif pattern == "transpose":
        src = np.arange(n, dtype=np.int64)
        dst = n - 1 - src
    else:
        raise ValueError(f"unknown traffic pattern {pattern!r}")
    payload = rng.integers(1, max_payload, src.shape[0])
    return np.stack(
        [src.astype(np.int64), dst.astype(np.int64), payload], axis=1
    )


def evaluate_comm_case(case: SweepCase) -> Dict[str, float]:
    """Vectorized-engine communication metrics for one synthetic case."""
    from ..net.vectorized import communication_cost_vec

    topo = case_topology(case)
    transfers = synthetic_traffic(
        case.workload, case.num_chiplets, case.seed
    )
    report = communication_cost_vec(topo, transfers)
    return {
        "latency_cycles": float(report.latency_cycles),
        "serial_latency_cycles": float(report.serial_latency_cycles),
        "energy_pj": report.energy_pj,
        "total_flits": float(report.total_flits),
        "weighted_hops": report.weighted_hops,
        "mean_packet_latency": report.mean_packet_latency,
    }


def evaluate_mix_case(case: SweepCase) -> Dict[str, float]:
    """Full Table II mix schedule metrics for one case (Figs. 3/4/5).

    The schedule path builds its topologies through the
    :mod:`repro.eval.experiments` caches, which do not take parameter
    overrides; silently returning default-parameter results for an
    override sweep would mislabel identical data, so such cases fail
    loudly instead.
    """
    from .experiments import schedule

    if case.noi_overrides:
        raise ValueError(
            "evaluate_mix_case does not support noi_overrides "
            f"(got {case.noi_overrides}); use evaluate_comm_case or add "
            "parameter plumbing to repro.eval.experiments.schedule"
        )
    if case.seed != 0:
        raise ValueError(
            "evaluate_mix_case is deterministic; sweeping seed "
            f"{case.seed} would duplicate identical results"
        )
    result = schedule(case.arch, case.workload, case.num_chiplets)
    return {
        "mean_packet_latency": result.mean_packet_latency,
        "noi_energy_pj": result.total_noi_energy_pj,
        "utilization": result.utilization,
        "makespan_cycles": float(result.makespan_cycles),
    }


def evaluate_topology_case(case: SweepCase) -> Dict[str, float]:
    """Structural census of one case's topology (Fig. 2 metrics).

    Flattens :func:`repro.noi.properties.summarize` -- the shared census
    implementation -- into sweep metrics, so definitions like the
    single-hop link fraction live in exactly one place.
    """
    from ..noi.properties import summarize

    summary = summarize(case_topology(case))
    metrics: Dict[str, float] = {
        "num_links": float(summary.num_links),
        "mean_ports": summary.mean_ports,
        "total_link_length_mm": summary.total_link_length_mm,
        "noi_area_mm2": summary.noi_area_mm2,
        "bisection_links": float(summary.bisection_links),
        "diameter_hops": float(summary.diameter_hops),
        "average_hops": summary.average_hops,
        "fraction_single_hop": summary.fraction_single_hop_links(),
    }
    for ports, count in summary.port_histogram.items():
        metrics[f"ports_{ports}"] = float(count)
    for length, count in summary.link_length_histogram.items():
        metrics[f"linklen_{length}"] = float(count)
    return metrics
