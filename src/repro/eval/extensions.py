"""Extension experiments beyond the paper's figures.

These probe claims the paper makes in prose (scalability with system
size, inherent redundancy of multiple SFCs, heterogeneous transformer
acceleration) and design choices DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.floret import build_floret
from ..core.hetero import HeteroParams, HeteroReport, compare_systems
from ..core.mapping import ContiguousMapper, GreedyMapper
from ..core.scheduler import SystemScheduler
from ..noi.kite import build_kite
from ..noi.mesh import build_mesh
from ..workloads.tasks import mix_by_name
from ..workloads.transformer import BERT_BASE, BERT_TINY, TransformerConfig


# ---------------------------------------------------------------------------
# scaling with system size


@dataclass(frozen=True)
class ScalingRow:
    """One (system size, architecture) evaluation."""

    num_chiplets: int
    arch: str
    packet_latency: float
    noi_energy_pj: float
    utilization: float


def exp_scaling(
    sizes: Sequence[int] = (81, 100, 121, 144),
    mix_name: str = "WL5",
) -> List[ScalingRow]:
    """Latency/energy vs system size for Floret, mesh and Kite.

    The paper argues multi-hop NoIs "do not scale with more chiplets";
    here the mesh/torus latency penalty relative to Floret should not
    shrink as the system grows.
    """
    tasks = mix_by_name(mix_name).tasks()
    rows: List[ScalingRow] = []
    for size in sizes:
        design = build_floret(size, petals=6)
        systems = [
            ("floret", design.topology,
             ContiguousMapper(design.allocation_order, design.topology)),
            ("siam", build_mesh(size), None),
            ("kite", build_kite(size), None),
        ]
        for arch, topology, mapper in systems:
            if mapper is None:
                mapper = GreedyMapper(topology)
            result = SystemScheduler(topology, mapper).run(tasks)
            rows.append(
                ScalingRow(
                    num_chiplets=size,
                    arch=arch,
                    packet_latency=result.mean_packet_latency,
                    noi_energy_pj=result.total_noi_energy_pj,
                    utilization=result.utilization,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# redundancy of multiple SFCs


@dataclass(frozen=True)
class RedundancyRow:
    """Single-link-failure tolerance of one design."""

    label: str
    num_links: int
    disconnecting_links: int

    @property
    def survival_fraction(self) -> float:
        """Fraction of single-link cuts the NoI survives connected."""
        if self.num_links == 0:
            return 1.0
        return 1.0 - self.disconnecting_links / self.num_links


def _count_disconnecting_links(graph: nx.Graph) -> int:
    """Number of bridges (links whose loss disconnects the graph)."""
    return sum(1 for _ in nx.bridges(graph))


def exp_redundancy(num_chiplets: int = 100) -> List[RedundancyRow]:
    """Paper claim: multiple SFCs add inherent redundancy vs one SFC.

    Counts bridge links (single points of failure) in a monolithic
    1-petal curve, the 6-petal Floret, and the mesh baseline.
    """
    from ..core.sfc import single_sfc_curve
    from ..noi.topology import grid_dimensions

    cols, rows = grid_dimensions(num_chiplets)
    designs = [
        ("floret-1sfc", build_floret(
            num_chiplets, curve=single_sfc_curve(cols, rows))),
        ("floret-6sfc", build_floret(num_chiplets, 6)),
    ]
    out: List[RedundancyRow] = []
    for label, design in designs:
        graph = design.topology.graph
        out.append(
            RedundancyRow(
                label=label,
                num_links=design.topology.num_links,
                disconnecting_links=_count_disconnecting_links(graph),
            )
        )
    mesh = build_mesh(num_chiplets)
    out.append(
        RedundancyRow(
            label="siam",
            num_links=mesh.num_links,
            disconnecting_links=_count_disconnecting_links(mesh.graph),
        )
    )
    return out


# ---------------------------------------------------------------------------
# heterogeneous transformer acceleration (Section IV quantified)


@dataclass(frozen=True)
class HeteroRow:
    config_name: str
    pim_only: HeteroReport
    heterogeneous: HeteroReport

    @property
    def speedup(self) -> float:
        """Heterogeneous speedup over PIM-only (latency)."""
        if self.heterogeneous.latency_cycles == 0:
            return float("inf")
        return self.pim_only.latency_cycles / self.heterogeneous.latency_cycles

    @property
    def energy_ratio(self) -> float:
        """PIM-only energy as a multiple of heterogeneous."""
        if self.heterogeneous.total_energy_pj == 0:
            return float("inf")
        return (
            self.pim_only.total_energy_pj
            / self.heterogeneous.total_energy_pj
        )


def exp_hetero_transformer(
    configs: Sequence[TransformerConfig] = (BERT_TINY, BERT_BASE),
    params: Optional[HeteroParams] = None,
) -> List[HeteroRow]:
    """Quantify Section IV: PIM-only vs heterogeneous encoder stacks."""
    rows = []
    for cfg in configs:
        reports = compare_systems(cfg, params=params)
        rows.append(
            HeteroRow(
                config_name=cfg.name,
                pim_only=reports["pim-only"],
                heterogeneous=reports["heterogeneous"],
            )
        )
    return rows
