"""Experiment drivers: one function per paper table/figure.

Each ``exp_*`` function regenerates the data behind one table or figure
of the paper and returns it in a structured form; the ``benchmarks/``
harness times them and prints the rows.  Heavyweight artefacts
(topologies, schedules, MOO runs) are cached per process so that a
benchmark session builds each system exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.floret import FloretDesign, build_floret
from ..core.mapping import ContiguousMapper, GreedyMapper
from ..core.moo import MappingProblem, MOOResult, optimize_mapping
from ..core.scheduler import ScheduleResult, SystemScheduler
from ..core.sfc import build_floret_curve, single_sfc_curve
from ..cost.fabrication import compare_costs
from ..noc3d.grid3d import Floret3DDesign, build_floret_3d
from ..noi.kite import build_kite
from ..noi.mesh import build_mesh
from ..noi.properties import TopologySummary, summarize
from ..noi.swap import build_swap
from ..noi.topology import Topology
from ..pim.accuracy import AccuracyReport, assess
from ..pim.chiplet import ChipletSpec
from ..thermal.hotspot import HotspotReport, analyze_tier
from ..thermal.power import weight_fractions_per_pe
from ..workloads.tasks import TABLE2_MIXES, TaskMix, mix_by_name
from ..workloads.traffic import summarize_traffic
from ..workloads.transformer import (
    BERT_BASE,
    BERT_TINY,
    TransformerConfig,
    pim_suitability,
    storage_report,
)
from ..workloads.zoo import Table1Row, build_model, table1_model, table1_rows

#: Architectures compared in Section II, in the paper's order.
BASELINE_ARCHS = ("kite", "siam", "swap")
ALL_ARCHS = ("floret",) + BASELINE_ARCHS

#: The paper's system size for the 2.5D evaluation.
NUM_CHIPLETS = 100

#: Petal count of the running Floret example.
NUM_PETALS = 6


# ---------------------------------------------------------------------------
# cached system builders


@lru_cache(maxsize=8)
def floret_design(num_chiplets: int = NUM_CHIPLETS,
                  petals: int = NUM_PETALS) -> FloretDesign:
    return build_floret(num_chiplets, petals)


@lru_cache(maxsize=8)
def baseline_topology(name: str, num_chiplets: int = NUM_CHIPLETS) -> Topology:
    builders = {
        "siam": build_mesh,
        "kite": build_kite,
        "swap": build_swap,
    }
    try:
        return builders[name](num_chiplets)
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}") from None


def topology_for(name: str, num_chiplets: int = NUM_CHIPLETS) -> Topology:
    """Resolve an architecture name to its (cached) topology."""
    if name == "floret":
        return floret_design(num_chiplets).topology
    return baseline_topology(name, num_chiplets)


def mapper_for(name: str, num_chiplets: int = NUM_CHIPLETS):
    """The mapping strategy the paper applies to each architecture."""
    if name == "floret":
        design = floret_design(num_chiplets)
        return ContiguousMapper(design.allocation_order, design.topology)
    return GreedyMapper(topology_for(name, num_chiplets))


def mix_task_placements(
    arch: str,
    mix_name: str,
    num_chiplets: int = NUM_CHIPLETS,
) -> List[Tuple[object, object, Tuple[int, ...]]]:
    """Idle-system ``(model, plan, chiplet_ids)`` per distinct mix model.

    Places each distinct DNN of a Table II mix once on an empty
    ``arch`` system with the paper's mapper for that architecture --
    the (model, placement) grid the task-evaluation benches and the
    batched-vs-per-layer equivalence tests run over.  Models that do
    not fit ``num_chiplets`` (or that the mapper rejects) are skipped.
    """
    from ..pim.allocation import plan_allocation

    spec = ChipletSpec.from_params()
    mapper = mapper_for(arch, num_chiplets)
    out: List[Tuple[object, object, Tuple[int, ...]]] = []
    seen = set()
    for task in mix_by_name(mix_name).tasks():
        model = task.model
        if (model.name, model.dataset) in seen:
            continue
        seen.add((model.name, model.dataset))
        plan = plan_allocation(model, spec)
        if plan.num_chiplets > num_chiplets:
            continue
        placement = mapper.map_task(
            task.task_id, model, plan, frozenset(range(num_chiplets))
        )
        if placement is None:
            continue
        out.append((model, plan, placement.chiplet_ids))
    return out


@lru_cache(maxsize=64)
def schedule(arch: str, mix_name: str,
             num_chiplets: int = NUM_CHIPLETS) -> ScheduleResult:
    """Run (and cache) one Table II mix on one architecture."""
    topo = topology_for(arch, num_chiplets)
    scheduler = SystemScheduler(topo, mapper_for(arch, num_chiplets))
    return scheduler.run(mix_by_name(mix_name).tasks())


@lru_cache(maxsize=4)
def floret_3d(num_pes: int = 100, tiers: int = 4) -> Floret3DDesign:
    return build_floret_3d(num_pes, tiers)


@lru_cache(maxsize=16)
def moo_result(dnn_id: str, *, population_size: int = 24,
               generations: int = 12) -> Tuple[MappingProblem, MOOResult]:
    """Run (and cache) the Section III MOO for one Table I DNN."""
    model = table1_model(dnn_id)
    problem = MappingProblem(floret_3d(), model)
    result = optimize_mapping(
        problem, population_size=population_size, generations=generations
    )
    return problem, result


# ---------------------------------------------------------------------------
# Tables I and II


def exp_table1() -> List[Table1Row]:
    """Table I: the 13 DNN workloads with parameter counts."""
    return table1_rows()


@dataclass(frozen=True)
class Table2Row:
    mix_name: str
    num_tasks: int
    paper_total_params_billions: float
    measured_total_params_billions: float


def exp_table2() -> List[Table2Row]:
    """Table II: concurrent task mixes with total parameters."""
    return [
        Table2Row(
            mix_name=mix.name,
            num_tasks=mix.num_tasks,
            paper_total_params_billions=mix.paper_total_params_billions,
            measured_total_params_billions=mix.total_params_billions(),
        )
        for mix in TABLE2_MIXES
    ]


# ---------------------------------------------------------------------------
# Fig. 2: router ports and link counts


def exp_fig2a(num_chiplets: int = NUM_CHIPLETS) -> Dict[str, Dict[int, int]]:
    """Fig. 2(a): router-port histogram per architecture."""
    return {
        arch: dict(topology_for(arch, num_chiplets).port_histogram())
        for arch in ALL_ARCHS
    }


def exp_fig2b(num_chiplets: int = NUM_CHIPLETS) -> Dict[str, TopologySummary]:
    """Fig. 2(b): link counts (plus length census) per architecture."""
    return {
        arch: summarize(topology_for(arch, num_chiplets))
        for arch in ALL_ARCHS
    }


# ---------------------------------------------------------------------------
# Figs. 3 and 5: latency and energy over the Table II mixes


@dataclass(frozen=True)
class MixComparison:
    """One workload mix evaluated on all architectures."""

    mix_name: str
    packet_latency: Dict[str, float]
    noi_energy_pj: Dict[str, float]
    utilization: Dict[str, float]

    def latency_normalized(self) -> Dict[str, float]:
        """Per-arch latency as a multiple of Floret (Fig. 3 bars)."""
        base = self.packet_latency["floret"]
        return {a: v / base for a, v in self.packet_latency.items()}

    def energy_normalized(self) -> Dict[str, float]:
        """Per-arch NoI energy as a multiple of Floret (Fig. 5 bars)."""
        base = self.noi_energy_pj["floret"]
        return {a: v / base for a, v in self.noi_energy_pj.items()}


def exp_mix_comparison(
    mix_names: Sequence[str] = ("WL1", "WL2", "WL3", "WL4", "WL5"),
    num_chiplets: int = NUM_CHIPLETS,
) -> List[MixComparison]:
    """Shared driver for Figs. 3 and 5."""
    out = []
    for mix_name in mix_names:
        latency: Dict[str, float] = {}
        energy: Dict[str, float] = {}
        util: Dict[str, float] = {}
        for arch in ALL_ARCHS:
            result = schedule(arch, mix_name, num_chiplets)
            latency[arch] = result.mean_packet_latency
            energy[arch] = result.total_noi_energy_pj
            util[arch] = result.utilization
        out.append(
            MixComparison(
                mix_name=mix_name,
                packet_latency=latency,
                noi_energy_pj=energy,
                utilization=util,
            )
        )
    return out


def exp_fig3(num_chiplets: int = NUM_CHIPLETS) -> List[MixComparison]:
    """Fig. 3: NoI latency normalised to Floret."""
    return exp_mix_comparison(num_chiplets=num_chiplets)


def exp_fig5(num_chiplets: int = NUM_CHIPLETS) -> List[MixComparison]:
    """Fig. 5: NoI energy normalised to Floret."""
    return exp_mix_comparison(num_chiplets=num_chiplets)


# ---------------------------------------------------------------------------
# Fig. 4: design-time NoIs strand chiplets at runtime


@dataclass(frozen=True)
class UtilizationRow:
    arch: str
    hop_budget: Optional[int]
    utilization: float
    constraint_failures: int
    relaxed_mappings: int
    makespan_cycles: int


def utilization_row(
    arch: str,
    mix_name: str = "WL3",
    hop_budget: int = 2,
    num_chiplets: int = NUM_CHIPLETS,
) -> UtilizationRow:
    """One architecture's Fig. 4 row: scheduling under the contiguity QoS.

    Baselines map greedily but *reject* placements whose consecutive
    loads exceed ``hop_budget`` hops (the paper's contiguity
    requirement); the rejections stall the queue and strand free
    chiplets.  Floret's contiguous mapping never rejects, so it runs
    without a budget.  Shared by :func:`exp_fig4` and the
    :func:`repro.eval.sweeps.evaluate_utilization_case` sweep evaluator.
    """
    tasks = mix_by_name(mix_name).tasks()
    if arch == "floret":
        design = floret_design(num_chiplets)
        scheduler = SystemScheduler(
            design.topology,
            ContiguousMapper(design.allocation_order, design.topology),
        )
        budget: Optional[int] = None
    else:
        topo = baseline_topology(arch, num_chiplets)
        scheduler = SystemScheduler(
            topo,
            GreedyMapper(topo, max_hops=hop_budget),
            fallback_mapper=GreedyMapper(topo),
        )
        budget = hop_budget
    result = scheduler.run(tasks)
    return UtilizationRow(
        arch=arch,
        hop_budget=budget,
        utilization=result.utilization,
        constraint_failures=result.constraint_failures,
        relaxed_mappings=result.relaxed_mappings,
        makespan_cycles=result.makespan_cycles,
    )


def exp_fig4(
    mix_name: str = "WL3",
    hop_budget: int = 2,
    num_chiplets: int = NUM_CHIPLETS,
) -> List[UtilizationRow]:
    """Fig. 4: mapped/unmapped behaviour under a contiguity QoS budget."""
    return [
        utilization_row(arch, mix_name, hop_budget, num_chiplets)
        for arch in ALL_ARCHS
    ]


# ---------------------------------------------------------------------------
# fabrication cost (Section II, Eqs. (2)-(5))


def exp_cost(num_chiplets: int = NUM_CHIPLETS) -> Dict[str, Dict[str, float]]:
    """Fabrication-cost comparison relative to Floret."""
    topologies = [topology_for(a, num_chiplets) for a in ALL_ARCHS]
    return compare_costs(topologies, baseline="floret")


# ---------------------------------------------------------------------------
# Fig. 6: EDP / peak temperature / accuracy on the 3D system


@dataclass(frozen=True)
class Fig6Row:
    dnn_id: str
    model_name: str
    floret_edp: float
    joint_edp: float
    floret_peak_k: float
    joint_peak_k: float
    floret_accuracy_drop_pct: float
    joint_accuracy_drop_pct: float

    @property
    def edp_advantage(self) -> float:
        """Floret EDP as a fraction of joint EDP (paper: ~0.91)."""
        if self.joint_edp == 0:
            return 1.0
        return self.floret_edp / self.joint_edp

    @property
    def peak_delta_k(self) -> float:
        """Floret peak minus joint peak (paper: ~13 K average)."""
        return self.floret_peak_k - self.joint_peak_k


FIG6_DNNS: Tuple[str, ...] = ("DNN1", "DNN2", "DNN3", "DNN4", "DNN5")


@dataclass(frozen=True)
class MOOCandidateSummary:
    """One MOO mapping fully characterised: EDP, thermal, accuracy."""

    edp: float
    peak_k: float
    accuracy_drop_pct: float
    tier: HotspotReport


def moo_candidate_summary(
    problem: MappingProblem, candidate, label: str = ""
) -> MOOCandidateSummary:
    """Thermal/accuracy census of one mapping (one thermal solve).

    Shared by :func:`exp_fig6`, :func:`exp_fig7` and the
    :func:`repro.eval.sweeps.evaluate_moo_case` sweep evaluator.
    """
    thermal = problem.thermal_report(candidate.chiplet_ids)
    n = problem.design.topology.num_chiplets
    fractions = weight_fractions_per_pe(
        n, problem.plan, candidate.chiplet_ids
    )
    drop = assess(
        problem.model.name, thermal.temperatures_k, fractions
    ).drop_pct
    return MOOCandidateSummary(
        edp=candidate.edp,
        peak_k=candidate.peak_k,
        accuracy_drop_pct=drop,
        tier=analyze_tier(thermal, problem.design.grid, tier=0, label=label),
    )


def exp_fig6(
    dnn_ids: Sequence[str] = FIG6_DNNS,
    *,
    population_size: int = 24,
    generations: int = 12,
) -> List[Fig6Row]:
    """Figs. 6(a)-(c): Floret-3D vs joint perf-thermal optimisation."""
    rows: List[Fig6Row] = []
    for dnn_id in dnn_ids:
        problem, result = moo_result(
            dnn_id,
            population_size=population_size,
            generations=generations,
        )
        floret = moo_candidate_summary(
            problem, result.performance_only, "floret"
        )
        joint = moo_candidate_summary(problem, result.joint, "joint")
        rows.append(
            Fig6Row(
                dnn_id=dnn_id,
                model_name=problem.model.name,
                floret_edp=floret.edp,
                joint_edp=joint.edp,
                floret_peak_k=floret.peak_k,
                joint_peak_k=joint.peak_k,
                floret_accuracy_drop_pct=floret.accuracy_drop_pct,
                joint_accuracy_drop_pct=joint.accuracy_drop_pct,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 7: bottom-tier hotspot maps for ResNet-34


@dataclass(frozen=True)
class Fig7Result:
    floret: HotspotReport
    joint: HotspotReport
    floret_map: "object"
    joint_map: "object"

    @property
    def peak_delta_k(self) -> float:
        """Floret bottom-tier peak minus joint (paper: ~17 K)."""
        return self.floret.peak_k - self.joint.peak_k


def exp_fig7(dnn_id: str = "DNN10") -> Fig7Result:
    """Fig. 7: thermal hotspots, ResNet-34 on the 100-PE 3D stack.

    The paper uses DNN10 (ResNet-34/CIFAR-10) as the running example.
    """
    problem, result = moo_result(dnn_id)
    floret = moo_candidate_summary(problem, result.performance_only,
                                   "floret")
    joint = moo_candidate_summary(problem, result.joint, "joint")
    return Fig7Result(
        floret=floret.tier,
        joint=joint.tier,
        floret_map=floret.tier.tier_map_k,
        joint_map=joint.tier.tier_map_k,
    )


# ---------------------------------------------------------------------------
# Section IV: transformer storage analysis


@dataclass(frozen=True)
class Sec4Row:
    config_name: str
    weight_elements: int
    intermediate_elements: int
    ratio: float
    paper_ratio: Optional[float]
    dynamic_mac_fraction: float


SEC4_PAPER_RATIOS = {"bert-base": 8.98, "bert-tiny": 2.06}


def exp_sec4_transformer(
    configs: Sequence[TransformerConfig] = (BERT_TINY, BERT_BASE),
) -> List[Sec4Row]:
    """Section IV: intermediate-to-weight storage ratios for BERT."""
    rows = []
    for cfg in configs:
        report = storage_report(cfg)
        suit = pim_suitability(cfg)
        rows.append(
            Sec4Row(
                config_name=cfg.name,
                weight_elements=report.weight_elements,
                intermediate_elements=report.intermediate_elements,
                ratio=report.intermediate_to_weight_ratio,
                paper_ratio=SEC4_PAPER_RATIOS.get(cfg.name),
                dynamic_mac_fraction=suit["dynamic_fraction"],
            )
        )
    return rows


@dataclass(frozen=True)
class SkipTrafficRow:
    model_name: str
    skip_fraction: float
    linear_to_skip_ratio: float


def exp_sec2_skip_traffic(
    names: Sequence[Tuple[str, str]] = (("resnet34", "imagenet"),),
) -> List[SkipTrafficRow]:
    """Section II claim: ResNet-34 skips carry ~19% of activations."""
    rows = []
    for name, dataset in names:
        summary = summarize_traffic(build_model(name, dataset))
        rows.append(
            SkipTrafficRow(
                model_name=f"{name}/{dataset}",
                skip_fraction=summary.skip_fraction,
                linear_to_skip_ratio=summary.linear_to_skip_ratio,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# injection-rate load sweeps (saturation scenarios on the epoch engine)


#: Default warm-up window before steady-state measurement, cycles.
LOAD_SWEEP_WARMUP_CYCLES = 256

#: Default steady-state measurement window, cycles.
LOAD_SWEEP_MEASURE_CYCLES = 1024


@dataclass(frozen=True)
class LoadSweepSpec:
    """One load-sweep scenario: open-loop injection into a NoI.

    Every node injects one ``payload_bytes`` message per cycle with
    probability ``injection_rate`` (Bernoulli injection, the standard
    open-loop NoC load model); destinations follow ``pattern``.
    Packets injected during the first ``warmup_cycles`` fill the
    network; steady-state metrics cover packets injected in the
    ``measure_cycles`` that follow.
    """

    pattern: str
    injection_rate: float
    warmup_cycles: int = LOAD_SWEEP_WARMUP_CYCLES
    measure_cycles: int = LOAD_SWEEP_MEASURE_CYCLES

    @property
    def window_cycles(self) -> int:
        """Total injection window (warm-up + measurement)."""
        return self.warmup_cycles + self.measure_cycles

    @property
    def workload(self) -> str:
        """The :class:`~repro.eval.sweeps.SweepCase` workload string."""
        return (
            f"{self.pattern}@{self.injection_rate:g}"
            f":w{self.warmup_cycles}+{self.measure_cycles}"
        )


def _parse_window_suffix(
    workload: str, window: str, family: str = "load workload"
) -> Tuple[int, int]:
    """Parse a ``wWARMUP+MEASURE`` window suffix, shared by both
    workload-string families (load sweeps and saturation ramps --
    ``family`` labels the error messages accordingly).

    ``isdigit`` deliberately rejects signs, so a negative warm-up
    (``w-5+128``) fails the format check with the same clear message as
    any other malformed window.
    """
    head, sep, tail = window.partition("+")
    if not (head.startswith("w") and sep and head[1:].isdigit()
            and tail.isdigit()):
        raise ValueError(
            f"{family} {workload!r}: bad window {window!r} "
            "(expected wWARMUP+MEASURE with non-negative integer "
            "warm-up and measure cycles)"
        )
    warmup, measure = int(head[1:]), int(tail)
    if measure <= 0:
        raise ValueError(
            f"{family} {workload!r}: measurement window must "
            "be positive"
        )
    return warmup, measure


def parse_load_workload(workload: str) -> LoadSweepSpec:
    """Parse a load-sweep workload string into a :class:`LoadSweepSpec`.

    Format: ``pattern@rate`` with an optional ``:wWARMUP+MEASURE``
    window suffix -- e.g. ``"uniform@0.05"`` or
    ``"hotspot@0.1:w512+2048"``.  Keeping every axis inside the
    workload string lets load sweeps ride :class:`SweepCase` (and thus
    the store/streaming machinery) unchanged.
    """
    spec, _, window = workload.partition(":")
    pattern, sep, rate_text = spec.partition("@")
    if not sep or not pattern or not rate_text:
        raise ValueError(
            f"load workload {workload!r} is not 'pattern@rate"
            "[:wWARMUP+MEASURE]'"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise ValueError(
            f"load workload {workload!r}: bad injection rate {rate_text!r}"
        ) from None
    if not 0.0 < rate <= 1.0:
        raise ValueError(
            f"load workload {workload!r}: injection rate must be in "
            f"(0, 1], got {rate}"
        )
    warmup = LOAD_SWEEP_WARMUP_CYCLES
    measure = LOAD_SWEEP_MEASURE_CYCLES
    if window:
        warmup, measure = _parse_window_suffix(workload, window)
    return LoadSweepSpec(
        pattern=pattern,
        injection_rate=rate,
        warmup_cycles=warmup,
        measure_cycles=measure,
    )


def load_sweep_traffic(
    spec: LoadSweepSpec,
    num_chiplets: int,
    seed: int,
    *,
    payload_bytes: int = 64,
) -> np.ndarray:
    """Deterministic open-loop message table for one load-sweep case.

    Returns the packed ``(k, 5)`` message array
    (:func:`repro.net.simulator.message_array` layout) that the
    simulator engines consume directly: source, pattern destination,
    payload, injection cycle and message id per Bernoulli injection.
    Destination patterns mirror
    :func:`repro.eval.sweeps.synthetic_traffic`.
    """
    n = num_chiplets
    rng = np.random.default_rng(seed * 9973 + n)
    fire = rng.random((spec.window_cycles, n)) < spec.injection_rate
    cycle, src = np.nonzero(fire)
    k = cycle.shape[0]
    if spec.pattern == "uniform":
        dst = rng.integers(0, n, k)
    elif spec.pattern == "neighbor":
        dst = (src + 1) % n
    elif spec.pattern == "transpose":
        dst = n - 1 - src
    elif spec.pattern == "hotspot":
        hot = int(rng.integers(0, n))
        dst = np.where(rng.random(k) < 0.5, hot, rng.integers(0, n, k))
    else:
        raise ValueError(f"unknown traffic pattern {spec.pattern!r}")
    return np.column_stack([
        src.astype(np.int64),
        dst.astype(np.int64),
        np.full(k, payload_bytes, dtype=np.int64),
        cycle.astype(np.int64),
        np.arange(k, dtype=np.int64),
    ])


def evaluate_load_sweep_case(case) -> Dict[str, float]:
    """Load-sweep metrics for one (arch, size, ``pattern@rate``) case.

    The case's ``workload`` is a :func:`parse_load_workload` string, so
    injection rate and warm-up/steady-state windows sweep as ordinary
    :class:`~repro.eval.sweeps.SweepCase` axes (store keys included).
    Runs the packet simulator with the params' ``sim_engine`` tier
    (default ``"auto"``: the fastest available vectorized tier for any
    real load) and reports steady-state latency and throughput --
    warm-up packets fill the network but are excluded from the steady
    metrics.  Flow-control knobs set through the case's
    ``noi_overrides`` (``fc_buffer_flits``, ``fc_source_queue``,
    ``fc_credit_rtt``) turn the same sweep closed-loop, a
    ``sim_engine`` override pins an engine tier for oracle runs, and a
    ``sim_attribution`` override adds the latency-attribution arrays
    (:func:`repro.net.journey.latency_breakdown`) to the result: the
    component totals as ``attr_*_cycles`` scalar metrics and the
    per-packet/per-link arrays through the store's npz payload.
    """
    from ..net.simulator import simulate_packets
    from .sweeps import case_topology

    spec = parse_load_workload(case.workload)
    topo = case_topology(case)
    table = load_sweep_traffic(spec, case.num_chiplets, case.seed)
    attribution = bool(getattr(topo.params, "sim_attribution", False))
    sim = simulate_packets(
        topo, table, engine=topo.params.sim_engine,
        attribution=attribution,
    )
    n = case.num_chiplets
    window = spec.window_cycles
    metrics: Dict[str, float] = {
        "offered_rate": sim.packets / (n * window) if window else 0.0,
        "injected_packets": float(sim.packets),
        "contended_fraction": (
            sim.contended_packets / sim.packets if sim.packets else 0.0
        ),
        "sim_epochs": float(sim.epochs),
    }
    if attribution:
        from ..net.journey import latency_breakdown

        breakdown = latency_breakdown(sim, topo)
        metrics.update({
            f"attr_{name}_cycles": float(total)
            for name, total in breakdown.totals().items()
        })
        # ndarray values are routed into SweepResult.arrays (and the
        # store's npz payload) by _evaluate_one.
        metrics.update(breakdown.arrays())
    if sim.packets == 0:
        metrics.update(
            makespan_cycles=0.0, drain_cycles=0.0,
            steady_packets=0.0, steady_mean_latency=0.0,
            steady_max_latency=0.0, steady_throughput=0.0,
        )
        return metrics
    makespan = int(sim.completion.max())
    steady = sim.inject >= spec.warmup_cycles
    steady_n = int(steady.sum())
    steady_lat = sim.latency[steady]
    metrics.update(
        makespan_cycles=float(makespan),
        drain_cycles=float(max(0, makespan - window)),
        steady_packets=float(steady_n),
        steady_mean_latency=(
            float(steady_lat.mean()) if steady_n else 0.0
        ),
        steady_max_latency=(
            float(steady_lat.max()) if steady_n else 0.0
        ),
        # Accepted steady-state throughput in packets/node/cycle: the
        # steady packets delivered over the span they occupied the
        # network.  Tracks offered rate below saturation and flattens
        # at the saturation point.
        steady_throughput=(
            steady_n / (n * (makespan - spec.warmup_cycles))
            if makespan > spec.warmup_cycles else 0.0
        ),
    )
    return metrics


# ---------------------------------------------------------------------------
# saturation-throughput ramps (closed-loop flow control)


@dataclass(frozen=True)
class SaturationSpec:
    """One saturation scenario: an injection-rate ramp on one pattern.

    The workload-string form is ``pattern@MIN-MAX/STEPS`` with the same
    optional ``:wWARMUP+MEASURE`` suffix as load sweeps, e.g.
    ``"uniform@0.02-0.3/8:w64+256"``.  Flow-control knobs ride the
    ``NoIParams`` fields (``fc_buffer_flits`` & co.) via the sweep
    case's ``noi_overrides``, so closed-loop and open-loop ramps hash
    to distinct store keys automatically.
    """

    pattern: str
    min_rate: float
    max_rate: float
    steps: int
    warmup_cycles: int = LOAD_SWEEP_WARMUP_CYCLES
    measure_cycles: int = LOAD_SWEEP_MEASURE_CYCLES

    def rates(self) -> np.ndarray:
        """The offered injection-rate grid, ascending."""
        return np.linspace(self.min_rate, self.max_rate, self.steps)

    def load_spec(self, rate: float) -> LoadSweepSpec:
        """The single-rate :class:`LoadSweepSpec` of one ramp point."""
        return LoadSweepSpec(
            pattern=self.pattern,
            injection_rate=float(rate),
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
        )

    @property
    def workload(self) -> str:
        """The :class:`~repro.eval.sweeps.SweepCase` workload string."""
        return (
            f"{self.pattern}@{self.min_rate:g}-{self.max_rate:g}"
            f"/{self.steps}:w{self.warmup_cycles}+{self.measure_cycles}"
        )


def parse_saturation_workload(workload: str) -> SaturationSpec:
    """Parse a ``pattern@MIN-MAX/STEPS[:wWARMUP+MEASURE]`` ramp string."""
    spec, _, window = workload.partition(":")
    pattern, sep, ramp = spec.partition("@")
    span, slash, steps_text = ramp.partition("/")
    lo_text, dash, hi_text = span.partition("-")
    if not (sep and pattern and slash and dash and lo_text and hi_text):
        raise ValueError(
            f"saturation workload {workload!r} is not "
            "'pattern@MIN-MAX/STEPS[:wWARMUP+MEASURE]'"
        )
    try:
        lo, hi = float(lo_text), float(hi_text)
    except ValueError:
        raise ValueError(
            f"saturation workload {workload!r}: bad rate span "
            f"{span!r}"
        ) from None
    if not steps_text.isdigit() or int(steps_text) < 2:
        raise ValueError(
            f"saturation workload {workload!r}: STEPS must be an "
            f"integer >= 2, got {steps_text!r}"
        )
    if not 0.0 < lo < hi <= 1.0:
        raise ValueError(
            f"saturation workload {workload!r}: rates must satisfy "
            f"0 < MIN < MAX <= 1, got {lo}..{hi}"
        )
    warmup = LOAD_SWEEP_WARMUP_CYCLES
    measure = LOAD_SWEEP_MEASURE_CYCLES
    if window:
        warmup, measure = _parse_window_suffix(
            workload, window, family="saturation workload"
        )
    return SaturationSpec(
        pattern=pattern,
        min_rate=lo,
        max_rate=hi,
        steps=int(steps_text),
        warmup_cycles=warmup,
        measure_cycles=measure,
    )


def saturation_knee(
    offered: np.ndarray,
    accepted: np.ndarray,
    *,
    tolerance: float = 0.1,
) -> Tuple[float, float]:
    """Locate the saturation knee of an accepted-throughput curve.

    Returns ``(knee_rate, saturation_throughput)``: the smallest
    offered rate at which accepted throughput falls more than
    ``tolerance`` below offered (the network stops keeping up), and the
    peak accepted throughput over the ramp.  When the ramp never
    saturates, the knee is the last offered rate.
    """
    offered = np.asarray(offered, dtype=np.float64)
    accepted = np.asarray(accepted, dtype=np.float64)
    if offered.shape != accepted.shape or offered.size == 0:
        raise ValueError("offered/accepted must be equal-length, non-empty")
    saturated = accepted < (1.0 - tolerance) * offered
    knee_index = (
        int(np.argmax(saturated)) if saturated.any()
        else int(offered.size - 1)
    )
    return float(offered[knee_index]), float(accepted.max())


def evaluate_saturation_case(case) -> Dict[str, object]:
    """Saturation-ramp metrics for one (arch, size, ramp) case.

    Runs the packet simulator once per ramp point with telemetry on and
    the case's flow-control knobs (``fc_*`` fields through
    ``noi_overrides``) applied, then locates the knee where accepted
    throughput stops tracking offered load.  Scalar metrics summarise
    the knee; per-rate curves (offered/accepted/latency/utilisation)
    ride the array channel into the store's ``.npz`` payloads, which is
    what ``benchmarks/bench_saturation.py`` plots.
    """
    from ..net.simulator import simulate_packets
    from .sweeps import case_topology

    spec = parse_saturation_workload(case.workload)
    topo = case_topology(case)
    n = case.num_chiplets
    offered = []
    accepted = []
    latency = []
    util_mean = []
    util_max = []
    credit_stalls = []
    for rate in spec.rates():
        load = spec.load_spec(rate)
        table = load_sweep_traffic(load, n, case.seed)
        sim = simulate_packets(topo, table, engine=topo.params.sim_engine,
                               telemetry=True)
        window = load.window_cycles
        offered.append(sim.packets / (n * window) if window else 0.0)
        if sim.packets == 0:
            accepted.append(0.0)
            latency.append(0.0)
            util_mean.append(0.0)
            util_max.append(0.0)
            credit_stalls.append(0.0)
            continue
        # Accepted throughput: deliveries inside the measurement window
        # per node-cycle.  Tracks offered load below the knee and
        # plateaus at network capacity past it (the closed loop never
        # drops packets; the excess just completes after the window).
        window_end = load.warmup_cycles + load.measure_cycles
        in_window = (
            (sim.completion >= load.warmup_cycles)
            & (sim.completion < window_end)
        )
        accepted.append(
            float(in_window.sum()) / (n * load.measure_cycles)
        )
        steady = sim.inject >= load.warmup_cycles
        steady_count = int(steady.sum())
        latency.append(
            float(sim.latency[steady].mean()) if steady_count else 0.0
        )
        utilization = sim.telemetry.utilization()
        util_mean.append(float(utilization.mean()))
        util_max.append(float(utilization.max()))
        credit_stalls.append(
            float(sim.telemetry.credit_stall_cycles.sum())
        )
    offered_arr = np.array(offered)
    accepted_arr = np.array(accepted)
    knee_rate, sat_throughput = saturation_knee(offered_arr, accepted_arr)
    return {
        "knee_rate": knee_rate,
        "saturation_throughput": sat_throughput,
        "peak_offered": float(offered_arr[-1]),
        "accepted_at_peak": float(accepted_arr[-1]),
        "peak_steady_latency": float(np.max(latency)),
        "peak_link_utilization": float(np.max(util_max)),
        "total_credit_stall_cycles": float(np.sum(credit_stalls)),
        "offered_rates": offered_arr,
        "accepted_throughput": accepted_arr,
        "steady_mean_latency": np.array(latency),
        "link_utilization_mean": np.array(util_mean),
        "link_utilization_max": np.array(util_max),
    }


def evaluate_sim_crosscheck_case(case) -> Dict[str, float]:
    """Analytic-vs-simulator cross-check metrics for one architecture.

    The disjoint chain traffic pattern (``i -> i+1`` transfers on even
    ``i``) from ``benchmarks/bench_sim_crosscheck.py``: the analytic
    serial latency must be a sound lower bound of -- and close to --
    the simulated completion total.  Module-level and derived entirely
    from the case so simulator runs cache in a
    :class:`~repro.eval.store.ResultStore` and sweeps are resumable.
    """
    from ..net.simulator import simulate_transfers
    from ..net.vectorized import communication_cost_vec
    from .sweeps import case_topology

    topo = case_topology(case)
    transfers = [
        (i, i + 1, 512) for i in range(0, case.num_chiplets - 2, 2)
    ]
    analytic = communication_cost_vec(topo, transfers)
    sim = simulate_transfers(topo, transfers,
                             engine=topo.params.sim_engine)
    return {
        "analytic_total_cycles": float(analytic.serial_latency_cycles),
        "sim_total_cycles": float(sum(sim.message_completion.values())),
        "sim_mean_packet_latency": sim.mean_packet_latency,
        "sim_max_packet_latency": float(sim.max_packet_latency),
        "packets_delivered": float(sim.packets_delivered),
        "batched_packets": float(sim.batched_packets),
    }


# ---------------------------------------------------------------------------
# Eq. (1) ablation: head/tail placement optimisation


@dataclass(frozen=True)
class Eq1Row:
    petals: int
    optimized_d: float
    unoptimized_d: float

    @property
    def improvement(self) -> float:
        if self.optimized_d == 0:
            return 1.0
        return self.unoptimized_d / self.optimized_d


def exp_eq1_headtail(
    cols: int = 10, rows: int = 10,
    petal_counts: Sequence[int] = (2, 4, 5, 6, 10),
) -> List[Eq1Row]:
    """Eq. (1): the head/tail orientation optimiser's effect on d."""
    out = []
    for petals in petal_counts:
        optimized = build_floret_curve(cols, rows, petals, optimize=True)
        unoptimized = build_floret_curve(cols, rows, petals, optimize=False)
        out.append(
            Eq1Row(
                petals=petals,
                optimized_d=optimized.eq1_distance,
                unoptimized_d=unoptimized.eq1_distance,
            )
        )
    return out
