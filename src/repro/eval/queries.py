"""Query layer over a :class:`~repro.eval.store.ResultStore`.

The store is a content-addressed cache keyed for *exact replay*; a
service answering ad-hoc questions needs the complementary access
path: *which results match these scenario axes, and what do they
aggregate to?*  This module is that path -- the ``GET /v1/results``
endpoint of :mod:`repro.svc` is a thin HTTP shim over it, and it is
equally usable from scripts against any store directory.

Three properties matter for serving queries at scale:

* **No payload I/O.**  Filtering and aggregation walk the store's raw
  JSONL records (:meth:`~repro.eval.store.ResultStore.iter_records`)
  -- scalar metrics and case axes only.  Array payloads (npz) are
  never opened; a row merely reports ``has_arrays`` so a client can
  fetch the heavy data by key through other means.  Combined with the
  store's (mtime, size) refresh guard, a repeated query over a
  quiescent store touches no file contents at all.
* **Deterministic pagination.**  Matches are ordered by
  ``(case_id, key)`` before the ``offset``/``limit`` window is cut, so
  the same query against the same store content always returns the
  same page -- regardless of which worker wrote which record when.
* **Server-side aggregates.**  Requested metrics fold through
  :class:`~repro.eval.stream.RunningStats` (Neumaier-compensated, the
  same machinery as the streaming sweeps) over *all* matches -- not
  just the returned page -- in the deterministic order above, so
  identical store content yields bit-identical aggregates.  An
  optional pivot metric folds a :class:`~repro.eval.stream
  .RunningPivot` (workload rows x arch columns, like
  ``SweepOutcome.pivot``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .store import ResultStore, case_from_record
from .stream import RunningPivot, RunningStats
from .sweeps import SweepCase, SweepResult

__all__ = [
    "ResultQuery",
    "parse_result_query",
    "query_results",
]

#: Pagination ceiling: one page never ships more rows than this, no
#: matter what ``limit`` a client asks for.
MAX_PAGE_ROWS = 1000


@dataclass(frozen=True)
class ResultQuery:
    """One query: axis filters + pagination + requested aggregates.

    Empty filter tuples mean "any value" for that axis.  ``overrides``
    is a *subset* match on the case's ``noi_overrides``: every listed
    ``(name, value)`` pair must be present (numeric values compare as
    floats, so ``8`` matches ``8.0``); cases may carry more overrides
    than the query names.
    """

    archs: Tuple[str, ...] = ()
    sizes: Tuple[int, ...] = ()
    workloads: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = ()
    tags: Tuple[str, ...] = ()
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: Metrics to aggregate server-side over every match.
    metrics: Tuple[str, ...] = ()
    #: Optional metric to pivot into a {workload: {arch: mean}} table.
    pivot: str = ""
    offset: int = 0
    limit: int = 50

    def matches(self, case: SweepCase) -> bool:
        if self.archs and case.arch not in self.archs:
            return False
        if self.sizes and case.num_chiplets not in self.sizes:
            return False
        if self.workloads and case.workload not in self.workloads:
            return False
        if self.seeds and case.seed not in self.seeds:
            return False
        if self.tags and case.tag not in self.tags:
            return False
        if self.overrides:
            have = dict(case.noi_overrides)
            for name, value in self.overrides:
                if name not in have or not _values_equal(have[name], value):
                    return False
        return True


def _values_equal(a: object, b: object) -> bool:
    """Override-value equality: numbers numerically, the rest exactly."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


def _parse_override(text: str) -> Tuple[str, object]:
    """``"name=value"`` with the value parsed as JSON when possible."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise ValueError(
            f"override filter {text!r} is not 'name=value'"
        )
    try:
        value: object = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return name, value


def parse_result_query(
    params: Mapping[str, Sequence[str]],
) -> ResultQuery:
    """Build a :class:`ResultQuery` from parsed query-string params.

    ``params`` is the ``urllib.parse.parse_qs`` shape -- each key maps
    to a list of values, and repeating a key widens the filter
    (``arch=siam&arch=kite`` matches either).  ``metrics`` accepts
    comma-separated lists as well as repeats.  Unknown parameter names
    raise ``ValueError`` so a typo'd filter fails loudly instead of
    silently matching everything.
    """
    known = {
        "arch", "size", "workload", "seed", "tag", "override",
        "metric", "metrics", "pivot", "offset", "limit",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown query parameters {unknown} "
            f"(known: {sorted(known)})"
        )

    def values(name: str) -> List[str]:
        return [v for v in params.get(name, ()) if v != ""]

    def split_csv(name: str) -> List[str]:
        out: List[str] = []
        for chunk in values(name):
            out.extend(p for p in chunk.split(",") if p)
        return out

    def one_int(name: str, default: int) -> int:
        got = values(name)
        if not got:
            return default
        try:
            return int(got[-1])
        except ValueError:
            raise ValueError(
                f"query parameter {name}={got[-1]!r} is not an integer"
            ) from None

    try:
        sizes = tuple(int(v) for v in values("size"))
        seeds = tuple(int(v) for v in values("seed"))
    except ValueError:
        raise ValueError(
            "size/seed filters must be integers"
        ) from None
    return ResultQuery(
        archs=tuple(values("arch")),
        sizes=sizes,
        workloads=tuple(values("workload")),
        seeds=seeds,
        tags=tuple(values("tag")),
        overrides=tuple(_parse_override(v) for v in values("override")),
        metrics=tuple(split_csv("metric") + split_csv("metrics")),
        pivot=(values("pivot") or [""])[-1],
        offset=max(0, one_int("offset", 0)),
        limit=one_int("limit", 50),
    )


@dataclass
class _MetricFold:
    """One metric's server-side aggregate over the matched results."""

    stats: RunningStats
    #: Matches that lacked the metric (mixed-evaluator stores are
    #: normal; the count is surfaced instead of raising mid-fold).
    missing: int = 0

    def payload(self) -> Dict[str, object]:
        count = self.stats.count
        return {
            "count": count,
            "sum": self.stats.sum if count else 0.0,
            "mean": self.stats.mean if count else None,
            "min": self.stats.min if count else None,
            "max": self.stats.max if count else None,
            "missing": self.missing,
        }


def _row(key: str, record: Mapping, case: SweepCase) -> Dict[str, object]:
    return {
        "key": key,
        "case_id": case.case_id,
        "case": {
            "arch": case.arch,
            "num_chiplets": case.num_chiplets,
            "workload": case.workload,
            "seed": case.seed,
            "noi_overrides": [list(p) for p in case.noi_overrides],
            "tag": case.tag,
        },
        "metrics": dict(record["metrics"]),
        "elapsed_s": float(record["elapsed_s"]),
        "has_arrays": bool(record.get("arrays")),
    }


def query_results(store: ResultStore, query: ResultQuery) -> Dict[str, object]:
    """Execute ``query`` against ``store``; JSON-ready response dict.

    Returns ``{"total", "offset", "limit", "results", "aggregates",
    "pivot"}``: ``total`` counts every match, ``results`` is the
    deterministic ``(case_id, key)``-ordered page, ``aggregates`` maps
    each requested metric to its fold over all matches, and ``pivot``
    (present only when requested) is the mean table of the pivot
    metric over workload rows x arch columns.
    """
    matched: List[Tuple[str, str, Mapping, SweepCase]] = []
    for key, record in store.iter_records():
        case = case_from_record(record)
        if query.matches(case):
            matched.append((case.case_id, key, record, case))
    matched.sort(key=lambda item: (item[0], item[1]))

    folds = {name: _MetricFold(RunningStats(name)) for name in query.metrics}
    pivot = RunningPivot(query.pivot) if query.pivot else None
    pivot_missing = 0
    for _, key, record, case in matched:
        metrics = record["metrics"]
        for name, fold in folds.items():
            if name in metrics:
                value = metrics[name]
                if isinstance(value, (int, float)) and math.isfinite(value):
                    fold.stats.add(float(value))
                else:
                    fold.missing += 1
            else:
                fold.missing += 1
        if pivot is not None:
            if query.pivot in metrics:
                pivot.update(SweepResult(
                    case=case, metrics=dict(metrics), elapsed_s=0.0,
                ))
            else:
                pivot_missing += 1

    limit = max(0, min(query.limit, MAX_PAGE_ROWS))
    page = matched[query.offset:query.offset + limit]
    out: Dict[str, object] = {
        "total": len(matched),
        "offset": query.offset,
        "limit": limit,
        "results": [_row(key, record, case)
                    for _, key, record, case in page],
        "aggregates": {
            name: fold.payload() for name, fold in folds.items()
        },
    }
    if pivot is not None:
        out["pivot"] = {
            "metric": query.pivot,
            "missing": pivot_missing,
            "rows": {
                str(row): {str(col): mean for col, mean in cols.items()}
                for row, cols in pivot.table().items()
            },
        }
    return out
