"""Content-addressed on-disk result store for NoI sweeps.

Every :class:`~repro.eval.sweeps.SweepCase` evaluated under a given
evaluation function maps to a stable hex key (:func:`case_key`) derived
from the case's scenario axes *and* the evaluator's identity -- its
qualified name plus a hash of its source code -- so editing an evaluator
invalidates exactly its own cached results and nothing else.  The store
is the substrate for warm re-runs (a completed sweep replays with zero
evaluations), checkpoint/resume of interrupted sweeps, and result reuse
across processes and hosts sharing a filesystem.

On-disk layout (all under one root directory):

* ``shard-XX.jsonl`` -- 256 append-only JSONL shards, bucketed by the
  first key byte.  One line per result: the key, the case axes, the
  scalar metrics and the elapsed time.  Appends go through a single
  ``O_APPEND`` ``write`` of one complete line, which POSIX keeps atomic
  for concurrent writer processes; readers tolerate a torn tail line by
  never consuming bytes past the last newline.
* ``arrays/<key>.npz`` -- array-valued payloads (thermal tier maps and
  the like), written to a temp file and ``os.replace``d into place so a
  reader never observes a partial archive.

Duplicate keys resolve last-writer-wins.  Failed evaluations are never
stored: a crashed case must be re-attempted on the next run, not
replayed from cache.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..obs.metrics import REGISTRY
from .sweeps import Overrides, SweepCase, SweepResult

#: Bump to invalidate every stored result (record format change).
STORE_SCHEMA_VERSION = 1


def evaluator_fingerprint(evaluate) -> str:
    """Identity of an evaluation function: qualified name + source hash.

    The source hash makes the cache self-invalidating when the
    *evaluator's own body* changes.  It deliberately does not chase the
    call graph: fixing a bug in a callee (say
    ``net/vectorized.communication_cost_vec``) leaves wrapper
    fingerprints unchanged, so such fixes must be accompanied by a
    ``repro.__version__`` bump -- which :func:`case_key` folds into
    every key -- or by clearing the store directory.

    Evaluators whose behaviour depends on state the source cannot see
    are rejected outright, because identical source would collide
    distinct configurations onto one key (served each other's results)
    or embed per-process addresses (never hit):

    * ``functools.partial`` / callable instances (no ``__qualname__``),
    * bound methods (``__self__`` instance state),
    * closures with captured variables (``__closure__`` cells).

    Wrap such evaluators in a module-level function that derives
    everything from the :class:`~repro.eval.sweeps.SweepCase` itself.
    Builtins/callables without retrievable source fall back to the name
    alone (documented, weaker invalidation).
    """
    qualname = getattr(evaluate, "__qualname__", None)
    if qualname is None:
        raise TypeError(
            f"cannot fingerprint {evaluate!r}: no __qualname__ "
            "(functools.partial / callable instances have no stable "
            "identity); wrap it in a module-level function to use a "
            "ResultStore"
        )
    if getattr(evaluate, "__self__", None) is not None:
        raise TypeError(
            f"cannot fingerprint bound method {qualname}: instance "
            "state is invisible to the source hash, so distinct "
            "instances would collide onto one cache key; use a "
            "module-level function"
        )
    if getattr(evaluate, "__closure__", None):
        raise TypeError(
            f"cannot fingerprint closure {qualname}: captured variables "
            "are invisible to the source hash, so closures from one "
            "factory would collide onto one cache key; use a "
            "module-level function parameterised through the SweepCase"
        )
    name = f"{getattr(evaluate, '__module__', '?')}.{qualname}"
    try:
        source = inspect.getsource(evaluate)
    except (OSError, TypeError):
        return f"{name}@nosource"
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    return f"{name}@{digest}"


def case_key(case: SweepCase, fingerprint: str) -> str:
    """Stable content hash of (scenario axes, evaluator identity).

    ``tag`` is deliberately excluded: it is a free-form display label,
    and relabelling a grid must not recompute it.  Override order is
    canonicalised so ``(a=1, b=2)`` and ``(b=2, a=1)`` share a key (they
    produce identical :class:`~repro.params.NoIParams`).  The package
    version participates so that model-code fixes below the evaluator
    layer invalidate the whole store with one ``repro.__version__``
    bump.
    """
    from .. import __version__ as code_version

    payload = json.dumps(
        [
            STORE_SCHEMA_VERSION,
            code_version,
            fingerprint,
            case.arch,
            case.num_chiplets,
            case.workload,
            case.seed,
            sorted([k, v] for k, v in case.noi_overrides),
        ],
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Consultation counters for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    skipped_errors: int = 0
    #: Shard files actually opened and read by ``_refresh_shard`` --
    #: the (mtime, size) guard keeps this flat across repeated queries
    #: over a quiescent store, which is what lets a service answer hot
    #: queries at memory speed.
    shard_reads: int = 0

    @property
    def consultations(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.consultations
        return self.hits / total if total else 0.0


class ResultStore:
    """Append-only, content-addressed cache of sweep results.

    Safe for concurrent writers (multiple sweep runners sharing a
    directory): appends are single atomic ``O_APPEND`` writes and array
    payloads land via ``os.replace``.  Each instance keeps an in-memory
    index per shard and incrementally re-reads only bytes appended by
    other processes since its last look, so ``get`` stays cheap inside
    a streaming loop.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._arrays_dir = self.root / "arrays"
        self.stats = StoreStats()
        #: Where :class:`repro.eval.shard.LeaseBoard` keeps per-case
        #: claim files.  Owned by the store so the whole shared-
        #: directory layout is defined in one place; claim files are
        #: transient coordination state, never results.
        self.claims_root = self.root / "claims"
        self._records: Dict[str, dict] = {}
        #: Bytes of each shard already folded into ``_records``.
        self._consumed: Dict[str, int] = {}
        #: ``(st_mtime_ns, st_size)`` of each shard at its last
        #: refresh: an unchanged signature means no appender has
        #: touched the file, so the refresh can return without opening
        #: it -- repeated queries over a quiescent store do no read
        #: I/O beyond one ``stat`` per consulted shard.
        self._sig: Dict[str, Tuple[int, int]] = {}

    # -- keys and paths ----------------------------------------------------

    def _shard_path(self, key: str) -> Path:
        return self.root / f"shard-{key[:2]}.jsonl"

    def _npz_path(self, key: str) -> Path:
        return self._arrays_dir / f"{key}.npz"

    # -- reading -----------------------------------------------------------

    def _refresh_shard(self, shard: Path) -> None:
        """Fold lines appended since the last read into the index.

        Guarded by an ``(st_mtime_ns, st_size)`` signature: a shard
        whose signature matches the last refresh has not been touched
        by any appender, so the method returns after the single
        ``stat`` -- no open, no read.  This also covers a torn tail
        (bytes past the last newline): re-reading it before the writer
        finishes the line cannot yield anything new, and the finishing
        append changes the signature.  A shard *shorter* than the
        consumed offset was rewritten out from under us (an external
        compaction or restore-from-backup); its indexed records are
        dropped and the file re-read from the start.
        """
        try:
            stat = shard.stat()
        except FileNotFoundError:
            return
        sig = (stat.st_mtime_ns, stat.st_size)
        if self._sig.get(shard.name) == sig:
            return
        consumed = self._consumed.get(shard.name, 0)
        size = stat.st_size
        if size < consumed:
            # Rewritten shorter: forget everything this shard
            # contributed (keys carry their shard prefix) and rebuild.
            prefix = shard.name[len("shard-"):len("shard-") + 2]
            for key in [k for k in self._records if k[:2] == prefix]:
                del self._records[key]
            consumed = 0
        if size == consumed:
            self._sig[shard.name] = sig
            self._consumed[shard.name] = consumed
            return
        with shard.open("rb") as fh:
            fh.seek(consumed)
            chunk = fh.read(size - consumed)
        self.stats.shard_reads += 1
        self._sig[shard.name] = sig
        # Never consume past the last newline: the tail may be a line
        # another process is mid-append on; it is re-read (from the
        # same offset) once a later append moves the signature.
        end = chunk.rfind(b"\n")
        if end < 0:
            self._consumed[shard.name] = consumed
            return
        for line in chunk[: end + 1].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn or corrupt line: skip, last-wins anyway
            if record.get("v") == STORE_SCHEMA_VERSION and "k" in record:
                self._records[record["k"]] = record
        self._consumed[shard.name] = consumed + end + 1

    def _refresh_all(self) -> None:
        for shard in sorted(self.root.glob("shard-*.jsonl")):
            self._refresh_shard(shard)

    def _peek(self, key: str) -> Optional[dict]:
        """Complete record for ``key`` or ``None``; never touches stats.

        "Complete" includes the array payload: a record whose flagged
        ``.npz`` is absent (crash between the two writes) is treated as
        missing, so ``has``/``__contains__`` never disagree with
        ``get``.
        """
        self._refresh_shard(self._shard_path(key))
        record = self._records.get(key)
        if record is None:
            return None
        if record.get("arrays") and not self._npz_path(key).exists():
            return None
        return record

    def _result_from(
        self, key: str, record: dict, case: SweepCase
    ) -> Optional[SweepResult]:
        arrays = None
        if record.get("arrays"):
            try:
                with np.load(self._npz_path(key)) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except (FileNotFoundError, OSError, ValueError):
                return None
        return SweepResult(
            case=case,
            metrics=dict(record["metrics"]),
            elapsed_s=float(record["elapsed_s"]),
            arrays=arrays,
        )

    def get(self, key: str, case: SweepCase) -> Optional[SweepResult]:
        """Stored result for ``key``, rebound to the caller's ``case``.

        Counts a hit or miss on ``stats``.  The caller's case object is
        authoritative (its ``tag`` may differ from the stored one, and
        the tag is not part of the key).
        """
        record = self._peek(key)
        result = (
            self._result_from(key, record, case)
            if record is not None else None
        )
        if result is None:
            self.stats.misses += 1
            REGISTRY.counter("store_misses").inc()
            return None
        self.stats.hits += 1
        REGISTRY.counter("store_hits").inc()
        return result

    def has(self, key: str) -> bool:
        """Whether a complete result for ``key`` is on disk.

        Stats-neutral (no hit/miss counted) -- for reporting and ad-hoc
        membership checks that must not skew the consultation counters.
        """
        return self._peek(key) is not None

    def probe(self, key: str) -> bool:
        """Sweep-planning membership check without loading payloads.

        Counts a **miss** when absent; counts nothing when present,
        because the planner's later :meth:`get` at emission records the
        hit.  This keeps ``stats`` consistent across the gather runner
        (one ``get`` per case) and the streaming runner (``probe`` all,
        ``get`` hits only): both report the same hit/miss totals for
        the same sweep.
        """
        if self._peek(key) is None:
            self.stats.misses += 1
            REGISTRY.counter("store_misses").inc()
            return False
        return True

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def missing(self, keys: Iterable[str]) -> "frozenset[str]":
        """Subset of ``keys`` without a complete stored result.

        Stats-neutral bulk membership for shard coordination (drain
        termination, coordinator tails): polling a grid's completion
        every few hundred milliseconds must not drown the hit/miss
        counters that describe sweep behaviour.
        """
        return frozenset(key for key in keys if self._peek(key) is None)

    def _complete_items(self) -> list:
        """All ``(key, record)`` pairs that pass the completeness check.

        Shared by ``__len__``/``keys``/``iter_results`` so enumeration
        can never disagree with ``has``/``get`` about what the store
        contains (a record whose ``.npz`` payload is gone counts
        nowhere).
        """
        self._refresh_all()
        return [
            (key, record)
            for key, record in self._records.items()
            if not (record.get("arrays")
                    and not self._npz_path(key).exists())
        ]

    def __len__(self) -> int:
        return len(self._complete_items())

    def keys(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self._complete_items())

    def iter_records(self) -> Iterator[Tuple[str, dict]]:
        """All complete ``(key, record)`` pairs, payloads *not* loaded.

        The record dicts are the raw JSONL lines (scalar metrics, case
        axes, an ``arrays`` flag) -- what the query layer
        (:mod:`repro.eval.queries`) filters and aggregates over without
        paying npz I/O per candidate.  Treat the dicts as read-only.
        Stats-neutral, like :meth:`iter_results`.
        """
        return iter(self._complete_items())

    def iter_results(self) -> Iterator[SweepResult]:
        """All stored results, cases reconstructed from the records.

        Stats-neutral: enumerating the store for a report must not
        inflate the hit counters that describe sweep behaviour.
        """
        for key, record in self._complete_items():
            result = self._result_from(key, record, case_from_record(record))
            if result is not None:
                yield result

    # -- writing -----------------------------------------------------------

    def put(self, key: str, result: SweepResult) -> bool:
        """Persist one successful result; errors are never cached."""
        if not result.ok:
            self.stats.skipped_errors += 1
            return False
        record = {
            "v": STORE_SCHEMA_VERSION,
            "k": key,
            "case": {
                "arch": result.case.arch,
                "num_chiplets": result.case.num_chiplets,
                "workload": result.case.workload,
                "seed": result.case.seed,
                "noi_overrides": [
                    list(pair) for pair in result.case.noi_overrides
                ],
                "tag": result.case.tag,
            },
            "metrics": result.metrics,
            "elapsed_s": result.elapsed_s,
            "arrays": bool(result.arrays),
        }
        if result.arrays:
            self._write_npz(key, result.arrays)
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        fd = os.open(
            self._shard_path(key),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self._records[key] = record
        self.stats.puts += 1
        REGISTRY.counter("store_puts").inc()
        return True

    def _write_npz(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        # Failure hygiene: a raising np.savez (disk full, bad array) or
        # even a failing os.fdopen must leave neither an orphaned
        # ``.tmp`` file (directory walks would pick it up) nor an open
        # descriptor behind -- only the atomic os.replace publishes.
        self._arrays_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self._arrays_dir, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        published = False
        try:
            try:
                fh = os.fdopen(fd, "wb")
            except BaseException:
                os.close(fd)  # fdopen never took ownership of the fd
                raise
            with fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp, self._npz_path(key))
            published = True
        finally:
            if not published:
                try:
                    os.unlink(tmp)
                except FileNotFoundError:
                    pass


def _overrides_from_json(pairs) -> Overrides:
    return tuple(
        (str(name), value) for name, value in pairs
    )


def case_from_record(record: Mapping) -> SweepCase:
    """Rebuild the :class:`SweepCase` a store record was written from."""
    case = record["case"]
    return SweepCase(
        arch=case["arch"],
        num_chiplets=case["num_chiplets"],
        workload=case["workload"],
        seed=case["seed"],
        noi_overrides=_overrides_from_json(case["noi_overrides"]),
        tag=case.get("tag", ""),
    )
