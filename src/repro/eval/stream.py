"""Streaming sweep execution with bounded-memory aggregation.

:class:`~repro.eval.sweeps.SweepRunner` gathers every result before
returning -- fine for hundreds of cases, wrong for the very large grids
the ROADMAP targets.  This module replaces gather-at-end with an
incremental pipeline:

* :class:`StreamingSweepRunner.stream` yields :class:`SweepResult`\\ s
  one by one as worker processes complete them.  Futures retire via
  ``as_completed`` under a bounded in-flight window (backpressure: at
  most ``window`` chunks are submitted at once), and a small reorder
  buffer re-emits them in submission order, so downstream consumers see
  a deterministic sequence regardless of worker scheduling -- which is
  what makes warm re-runs reproduce cold-run aggregates bit-for-bit.
* Running aggregators (:class:`RunningStats`, :class:`RunningPivot`,
  :class:`RunningGroups`) fold each result into O(groups) state instead
  of retaining O(cases) results.
* A :class:`~repro.eval.store.ResultStore` attached to the runner turns
  the stream into a checkpoint: results are appended as they complete,
  cached cases short-circuit the pool entirely, and re-running an
  interrupted sweep resumes from the last persisted case.

Pool-level failures (restricted sandboxes, crashed workers, unpicklable
evaluators) degrade to inline evaluation mid-stream with a loud
``RuntimeWarning``, mirroring ``SweepRunner``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.clock import Stopwatch
from ..obs.metrics import REGISTRY, StreamingStats
from .sweeps import (
    SweepCase,
    SweepResult,
    SweepRunner,
    _evaluate_one,
    is_pool_failure,
)

__all__ = [
    "RunningGroups",
    "RunningPivot",
    "RunningStats",
    "StreamOutcome",
    "StreamingSweepRunner",
]


# ---------------------------------------------------------------------------
# running aggregators: bounded-memory folds over the result stream


class RunningStats(StreamingStats):
    """Count/sum/extrema of one metric, folded one result at a time.

    The numeric machinery -- Neumaier-compensated sum (Kahan's variant
    that also survives addends larger than the running sum, so a
    million-case stream does not drift), extrema, ``mean = sum /
    count`` -- lives in :class:`repro.obs.metrics.StreamingStats`; this
    class binds it to one named metric of a result stream.

    A successful result that lacks the metric raises ``KeyError`` --
    the same contract as the gather-path ``SweepOutcome.metric`` -- so
    a typo'd metric name fails on the first result instead of silently
    producing empty aggregates.  Failed results are skipped.
    """

    def __init__(self, metric: str) -> None:
        super().__init__()
        self.metric = metric

    def update(self, result: SweepResult) -> None:
        if not result.ok:
            return
        self.add(float(result.metrics[self.metric]))


class RunningPivot:
    """Streaming counterpart of :meth:`SweepOutcome.pivot`.

    Keeps one :class:`RunningStats` per ``(row, col)`` cell -- memory is
    bounded by the number of distinct cells, not the number of cases.
    ``table()`` returns the same ``{row: {col: mean}}`` shape as the
    gather-at-end pivot (cell means agree to float summation order);
    like it, a successful result lacking the metric raises ``KeyError``.
    """

    def __init__(
        self,
        metric: str,
        row: Callable[[SweepCase], object] = lambda c: c.workload,
        col: Callable[[SweepCase], object] = lambda c: c.arch,
    ) -> None:
        self.metric = metric
        self._row = row
        self._col = col
        self._cells: Dict[object, Dict[object, RunningStats]] = {}

    def update(self, result: SweepResult) -> None:
        if not result.ok:
            return
        if self.metric not in result.metrics:
            raise KeyError(
                f"metric {self.metric!r} absent from "
                f"{result.case.case_id} (has {sorted(result.metrics)})"
            )
        cols = self._cells.setdefault(self._row(result.case), {})
        col = self._col(result.case)
        cell = cols.get(col)
        if cell is None:
            cell = cols[col] = RunningStats(self.metric)
        cell.update(result)

    def table(self) -> Dict[object, Dict[object, float]]:
        return {
            rk: {ck: stats.mean for ck, stats in cols.items()}
            for rk, cols in self._cells.items()
        }


class RunningGroups:
    """Streaming counterpart of :meth:`SweepOutcome.group_by`.

    Folds per-group counts and per-metric :class:`RunningStats` instead
    of retaining the grouped results themselves.
    """

    def __init__(
        self,
        key: Callable[[SweepCase], object],
        metrics: Sequence[str] = (),
    ) -> None:
        self._key = key
        self._metric_names = tuple(metrics)
        self.counts: Dict[object, int] = {}
        self.stats: Dict[object, Dict[str, RunningStats]] = {}

    def update(self, result: SweepResult) -> None:
        if not result.ok:
            return
        group = self._key(result.case)
        self.counts[group] = self.counts.get(group, 0) + 1
        per_metric = self.stats.get(group)
        if per_metric is None:
            per_metric = self.stats[group] = {
                name: RunningStats(name) for name in self._metric_names
            }
        for stats in per_metric.values():
            stats.update(result)


@dataclass(frozen=True)
class StreamOutcome:
    """Summary of one streamed sweep: counts, not retained results.

    Only failures are kept verbatim (they are rare and need their
    tracebacks); successful results live in the aggregators and, when a
    store is attached, on disk.
    """

    total: int
    ok_count: int
    failures: Tuple[SweepResult, ...]
    elapsed_s: float
    workers: int
    store_hits: int
    aggregators: Tuple[object, ...] = ()

    @property
    def evaluated(self) -> int:
        """Cases that actually ran the evaluation function."""
        return self.total - self.store_hits


# ---------------------------------------------------------------------------
# streaming runner


def _evaluate_chunk(evaluate, chunk: List[SweepCase]) -> List[SweepResult]:
    """Worker-side: evaluate one chunk of cases (amortises IPC)."""
    return [_evaluate_one(evaluate, case) for case in chunk]


class _OrderedPoolDrain:
    """Iterator of chunk results in submission order, eagerly primed.

    The first window of chunks is submitted at *construction* -- not on
    first ``next`` -- so workers start evaluating while the consumer is
    still replaying a store-hit prefix.  Chunks retire through
    ``wait(FIRST_COMPLETED)`` (the ``as_completed`` primitive); a
    reorder buffer restores submission order, and the window bounds
    pending AND completed-but-unemitted chunks, so one slow head chunk
    stalls submission instead of letting the buffer absorb the grid.

    The owner must call :meth:`close` when done or abandoning the
    iterator (cancels queued futures, releases the pool).
    """

    def __init__(self, evaluate, chunks: List[List[SweepCase]],
                 workers: int, window: int) -> None:
        self._evaluate = evaluate
        self._chunks = chunks
        self._window = window
        self._pending: Dict[object, int] = {}
        self._buffered: Dict[int, List[SweepResult]] = {}
        self._next_submit = 0
        self._next_emit = 0
        self._pool = ProcessPoolExecutor(max_workers=workers)
        try:
            self._submit_more()
        except BaseException:
            self.close()
            raise

    def _submit_more(self) -> None:
        while (self._next_submit < len(self._chunks)
               and len(self._pending) + len(self._buffered) < self._window):
            future = self._pool.submit(
                _evaluate_chunk, self._evaluate,
                self._chunks[self._next_submit],
            )
            self._pending[future] = self._next_submit
            self._next_submit += 1

    def __iter__(self) -> "_OrderedPoolDrain":
        return self

    def __next__(self) -> List[SweepResult]:
        if self._next_emit >= len(self._chunks):
            raise StopIteration
        while self._next_emit not in self._buffered:
            done, _ = wait(self._pending, return_when=FIRST_COMPLETED)
            for future in done:
                self._buffered[self._pending.pop(future)] = future.result()
        out = self._buffered.pop(self._next_emit)
        self._next_emit += 1
        self._submit_more()
        return out

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class StreamingSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that yields results as they complete.

    Args:
        evaluate, workers, chunksize, store, shard: as for
            :class:`SweepRunner`.  A ``shard`` restricts every stream
            to this worker's deterministic slice of the grid (the
            store directory is the shards' common substrate; the
            coordinator merge in :func:`repro.eval.shard.merge_stream`
            reassembles the full-grid aggregates).
        window: Maximum chunks in flight in the pool at once
            (backpressure + reorder-buffer bound).  Default:
            ``2 * workers``.
    """

    def __init__(
        self,
        evaluate,
        *,
        workers: Optional[int] = None,
        chunksize: int = 4,
        store=None,
        shard=None,
        window: Optional[int] = None,
        trace=None,
    ) -> None:
        super().__init__(evaluate, workers=workers, chunksize=chunksize,
                         store=store, shard=shard, trace=trace)
        self.window = window
        #: Workers the most recent stream actually used (1 after
        #: inline degradation); mirrors ``SweepOutcome.workers``.
        self.last_workers = 1
        self.last_store_hits = 0

    # -- the stream itself -------------------------------------------------

    def stream(self, cases: Iterable[SweepCase]) -> Iterator[SweepResult]:
        """Yield one :class:`SweepResult` per case, in submission order.

        Store-cached cases are emitted without touching the pool; fresh
        results are appended to the store the moment they are emitted,
        so abandoning this generator mid-flight leaves a resumable
        checkpoint: a later call with the same store re-evaluates only
        the cases that never completed.
        """
        cases = self._shard_slice(list(cases))
        tracer = self._tracer()
        keys: Optional[List[str]] = None
        hit_indices: set = set()
        if self.store is not None:
            keys = self.case_keys(cases)
            # Membership probes only (misses counted, payloads not
            # loaded): hits are loaded lazily at emission so a warm
            # replay of a huge grid never materialises all payloads at
            # once.
            hit_indices = {
                i for i in range(len(cases)) if self.store.probe(keys[i])
            }
        self.last_store_hits = len(hit_indices)
        miss_indices = [i for i in range(len(cases))
                        if i not in hit_indices]
        workers = self._resolve_workers(len(miss_indices))
        self.last_workers = workers if len(miss_indices) > 1 else 1
        # Built (and pool-primed) eagerly: workers start on the misses
        # while the cached prefix below replays.
        fresh, close_fresh = self._stream_evaluate(
            [cases[i] for i in miss_indices], workers
        )
        try:
            for i, case in enumerate(cases):
                if i in hit_indices:
                    replay = Stopwatch()
                    hit = self.store.get(keys[i], case)
                    if hit is None:
                        # Payload vanished between probe and emission
                        # (a concurrent cleanup, a lost npz): evaluate
                        # inline rather than dropping the case.
                        hit = _evaluate_one(self.evaluate, case)
                        self.store.put(keys[i], hit)
                        self.last_store_hits -= 1
                    else:
                        REGISTRY.counter("cases_cached").inc()
                        if tracer.enabled:
                            from ..obs.clock import wall

                            tracer.record_span(
                                "replay_case",
                                wall() - replay.elapsed_s,
                                replay.elapsed_s,
                                case=case.case_id,
                            )
                    yield hit
                    continue
                result = next(fresh)
                if self.store is not None and keys is not None:
                    self.store.put(keys[i], result)
                yield result
        finally:
            # Runs on abandonment too (GeneratorExit): queued futures
            # are cancelled even if no miss was ever consumed.
            close_fresh()
            tracer.flush()

    def run_stream(
        self,
        cases: Iterable[SweepCase],
        aggregators: Sequence[object] = (),
    ) -> StreamOutcome:
        """Consume the stream, folding each result into ``aggregators``.

        Each aggregator only needs an ``update(result)`` method; the
        built-ins above cover metric stats, pivot tables and group
        counts.  Memory stays bounded by the aggregator state -- no
        result list is retained.
        """
        tracer = self._tracer()
        watch = Stopwatch()
        total = 0
        ok_count = 0
        failures: List[SweepResult] = []
        with tracer.span("stream_run") as span:
            for result in self.stream(cases):
                total += 1
                if result.ok:
                    ok_count += 1
                else:
                    failures.append(result)
                for aggregator in aggregators:
                    aggregator.update(result)
            span.add(
                total=total,
                failures=len(failures),
                store_hits=self.last_store_hits,
                workers=self.last_workers,
            )
        tracer.flush()
        return StreamOutcome(
            total=total,
            ok_count=ok_count,
            failures=tuple(failures),
            elapsed_s=watch.elapsed_s,
            workers=self.last_workers,
            store_hits=self.last_store_hits,
            aggregators=tuple(aggregators),
        )

    # -- evaluation paths --------------------------------------------------

    def _stream_evaluate(
        self, cases: List[SweepCase], workers: int
    ) -> Tuple[Iterator[SweepResult], Callable[[], None]]:
        """Per-case result iterator plus its cleanup callable.

        Not a generator itself: pool construction and the first window
        of submissions happen HERE, at call time, so callers that emit
        a store-hit prefix before consuming a miss still overlap replay
        with evaluation.  The cleanup must be invoked by the caller
        (also on abandonment) -- closing an unstarted generator would
        never reach a ``finally`` inside it.
        """
        if workers <= 1 or len(cases) <= 1:
            return (
                (_evaluate_one(self.evaluate, case) for case in cases),
                lambda: None,
            )
        chunks = [
            cases[i: i + self.chunksize]
            for i in range(0, len(cases), self.chunksize)
        ]
        window = self.window if self.window is not None else 2 * workers
        try:
            drain = _OrderedPoolDrain(self.evaluate, chunks, workers,
                                      max(1, window))
        except Exception as exc:
            if not is_pool_failure(exc):
                raise
            self._warn_degrade(exc, len(cases))
            self.last_workers = 1
            return (
                (_evaluate_one(self.evaluate, case) for case in cases),
                lambda: None,
            )
        return self._drain_results(drain, cases), drain.close

    def _drain_results(
        self, drain: _OrderedPoolDrain, cases: List[SweepCase]
    ) -> Iterator[SweepResult]:
        emitted = 0
        try:
            for chunk_results in drain:
                for result in chunk_results:
                    emitted += 1
                    yield result
        except Exception as exc:
            # Same contract as SweepRunner._run_pool: known pool-level
            # failures degrade to inline evaluation -- loudly -- and the
            # stream picks up exactly where the pool stopped emitting
            # (the reorder buffer guarantees `emitted` is a clean
            # submission-order prefix).
            if not is_pool_failure(exc):
                raise
            self._warn_degrade(exc, len(cases) - emitted)
            self.last_workers = 1
            drain.close()
            for case in cases[emitted:]:
                yield _evaluate_one(self.evaluate, case)

    @staticmethod
    def _warn_degrade(exc: BaseException, remaining: int) -> None:
        warnings.warn(
            f"streaming sweep pool failed ({exc!r}); evaluating "
            f"remaining {remaining} cases inline",
            RuntimeWarning,
            stacklevel=3,
        )
