"""Activation-traffic extraction from DNN layer graphs.

The NoI/NoC sees a DNN as a set of producer->consumer activation transfers.
This module turns a :class:`~repro.workloads.dnn.DNNModel` into classified
traffic edges (linear vs. skip) and aggregate statistics, reproducing the
paper's Section II observation that in ResNet-34 skip connections carry
about 19% of all propagated activations while linear (chain) activations
are ~4.5x larger in volume.

Classification rule: for a multi-input merge layer (``ADD``/``CONCAT``),
the input arriving via the *deepest* weighted path is the main (linear)
branch; every other input edge is a skip edge.  Single-input edges are
always linear.  Weighted-path depth is the longest-path count of weighted
layers from the network input, which makes identity and 1x1-projection
shortcuts (depth +0 / +1) lose against residual branches (depth +2 / +3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .dnn import DNNModel
from .layers import LayerKind

#: Default activation precision on the interconnect (bytes per element).
ACTIVATION_BYTES = 1

#: Default NoI packet payload in bytes (one packet = several flits).
PACKET_BYTES = 64

#: Default flit size in bytes.
FLIT_BYTES = 16


@dataclass(frozen=True)
class TrafficEdge:
    """One activation transfer between two layers of a model.

    Attributes:
        src: Producer layer index.
        dst: Consumer layer index.
        elements: Activation elements carried (producer's output volume).
        is_skip: True when this edge is a skip/bypass branch of a merge.
    """

    src: int
    dst: int
    elements: int
    is_skip: bool

    def bytes(self, bytes_per_element: int = ACTIVATION_BYTES) -> int:
        """Payload bytes for one inference."""
        return self.elements * bytes_per_element

    def packets(self, bytes_per_element: int = ACTIVATION_BYTES,
                packet_bytes: int = PACKET_BYTES) -> int:
        """Number of NoI packets needed for one inference (ceil division)."""
        payload = self.bytes(bytes_per_element)
        return -(-payload // packet_bytes)


def weighted_depths(model: DNNModel) -> Dict[int, int]:
    """Longest-path weighted-layer depth for every layer index.

    The input layer has depth 0; a layer's depth is the max over its
    producers plus one if the layer itself is weighted.
    """
    depths: Dict[int, int] = {}
    for layer in model.layers:
        base = max((depths[src] for src in layer.inputs), default=0)
        depths[layer.index] = base + (1 if layer.is_weighted else 0)
    return depths


def classify_edges(model: DNNModel) -> List[TrafficEdge]:
    """All producer->consumer edges of the model, classified linear/skip."""
    depths = weighted_depths(model)
    edges: List[TrafficEdge] = []
    for layer in model.layers:
        if not layer.inputs:
            continue
        if layer.kind in (LayerKind.ADD, LayerKind.CONCAT) and len(layer.inputs) > 1:
            # Main branch: deepest weighted path; ties -> later layer wins,
            # matching the convention that the freshly computed branch is
            # appended after the bypass in construction order.
            main = max(layer.inputs, key=lambda s: (depths[s], s))
        else:
            main = layer.inputs[0]
        for src in layer.inputs:
            edges.append(
                TrafficEdge(
                    src=src,
                    dst=layer.index,
                    elements=model.layers[src].out_elements,
                    is_skip=(src != main),
                )
            )
    return edges


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate linear-vs-skip activation statistics for one model."""

    model_name: str
    linear_elements: int
    skip_elements: int

    @property
    def total_elements(self) -> int:
        return self.linear_elements + self.skip_elements

    @property
    def skip_fraction(self) -> float:
        """Skip share of all propagated activations (paper: ~19% for R34)."""
        if self.total_elements == 0:
            return 0.0
        return self.skip_elements / self.total_elements

    @property
    def linear_to_skip_ratio(self) -> float:
        """Linear / skip volume ratio (paper: ~4.5x for ResNet-34)."""
        if self.skip_elements == 0:
            return float("inf")
        return self.linear_elements / self.skip_elements


def summarize_traffic(model: DNNModel) -> TrafficSummary:
    """Compute the linear/skip activation summary for ``model``."""
    linear = skip = 0
    for edge in classify_edges(model):
        if edge.is_skip:
            skip += edge.elements
        else:
            linear += edge.elements
    return TrafficSummary(
        model_name=model.name, linear_elements=linear, skip_elements=skip
    )


def interlayer_traffic(
    model: DNNModel, bytes_per_element: int = ACTIVATION_BYTES
) -> List[Tuple[int, int, int]]:
    """Traffic between *weighted* layers as ``(src, dst, bytes)`` triples.

    Weightless layers are contracted onto their weighted ancestors (see
    :func:`repro.workloads.dnn.weighted_chain_edges`): the mapper never
    places a pooling or add node on a chiplet, so the NoI only ever carries
    weighted-layer-to-weighted-layer transfers.  Input-layer sources are
    kept (index 0) because the first weighted layer receives the image from
    the system boundary.
    """
    from .dnn import weighted_chain_edges

    return [
        (src, dst, elements * bytes_per_element)
        for src, dst, elements in weighted_chain_edges(model)
    ]
