"""DNN model container: an immutable layer graph plus aggregate queries.

A :class:`DNNModel` is what the rest of the system consumes: the mapping
engine walks :meth:`DNNModel.weight_layers` in order, the traffic model
walks the edges, and the PIM allocator reads per-layer weight counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

from .layers import Layer, LayerKind, validate_layer_graph


@dataclass(frozen=True)
class DNNModel:
    """An immutable DNN workload.

    Attributes:
        name: Model identifier, e.g. ``"resnet34"``.
        dataset: Dataset identifier, e.g. ``"imagenet"`` or ``"cifar10"``.
        layers: Topologically ordered layer tuple (see
            :func:`repro.workloads.layers.validate_layer_graph`).
    """

    name: str
    dataset: str
    layers: Tuple[Layer, ...]

    def __post_init__(self) -> None:
        validate_layer_graph(self.layers)

    # ------------------------------------------------------------------
    # aggregates

    @cached_property
    def total_params(self) -> int:
        """Total trainable parameters over all layers."""
        return sum(layer.weights for layer in self.layers)

    @cached_property
    def total_macs(self) -> int:
        """Total MAC operations for a single inference."""
        return sum(layer.macs for layer in self.layers)

    @cached_property
    def total_activations(self) -> int:
        """Total activation elements propagated over all edges.

        Each edge producer->consumer carries the producer's full output;
        an output consumed by two layers (skip connection) is counted twice
        because it is physically sent twice on the NoI.
        """
        return sum(
            self.layers[src].out_elements
            for layer in self.layers
            for src in layer.inputs
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # structure queries

    def weight_layers(self) -> List[Layer]:
        """Layers that hold parameters, in execution order.

        These are the units the mapper places on PIM chiplets.
        """
        return [layer for layer in self.layers if layer.is_weighted]

    @cached_property
    def consumers(self) -> Dict[int, Tuple[int, ...]]:
        """Map layer index -> indices of layers consuming its output."""
        out: Dict[int, List[int]] = {layer.index: [] for layer in self.layers}
        for layer in self.layers:
            for src in layer.inputs:
                out[src].append(layer.index)
        return {k: tuple(v) for k, v in out.items()}

    def edges(self) -> List[Tuple[int, int]]:
        """All producer->consumer edges as (src, dst) index pairs."""
        return [
            (src, layer.index) for layer in self.layers for src in layer.inputs
        ]

    @cached_property
    def weighted_site_edges(self) -> Tuple[Tuple[int, int, int], ...]:
        """Cached site-contracted edges (see :func:`weighted_chain_edges`).

        The contraction is a pure function of the (immutable) layer
        graph, and every task evaluation walks it, so it is computed
        once per model instance.
        """
        return tuple(_compute_weighted_chain_edges(self))

    def layer_by_name(self, name: str) -> Layer:
        """Look up a layer by its unique name.

        Raises:
            KeyError: If no layer has that name.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"{self.name}: no layer named {name!r}")

    def params_millions(self) -> float:
        """Total parameters in millions (for Table I style reporting)."""
        return self.total_params / 1e6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DNNModel({self.name!r}, dataset={self.dataset!r}, "
            f"layers={len(self.layers)}, params={self.params_millions():.2f}M)"
        )


def weighted_chain_edges(model: DNNModel) -> List[Tuple[int, int, int]]:
    """Contract the layer graph onto weighted layers via output *sites*.

    Cached on the model (:attr:`DNNModel.weighted_site_edges`); callers
    get a fresh list over the cached tuples.

    Weightless layers (pool/add/concat/flatten/...) execute in the
    peripheral logic of a PIM chiplet rather than occupying crossbars, so
    each one is assigned a *site*: the weighted layer (or network input)
    whose chiplet materialises its output.  A weightless node sits with
    its main-branch producer (deepest weighted path; ties -> later layer,
    i.e. the freshly computed branch); its remaining inputs must be
    shipped to that site, and its consumers read from that site.

    This keeps residual/dense merges physical: an identity-skip chain of
    K blocks produces K short site-to-site transfers (one per merge), not
    K long-range re-sends of every ancestor's output.

    Returns edges ``(src_site, dst_site, elements)`` where ``elements``
    is the output volume of the immediate producer node being shipped.
    Sites can be the network input (index 0).
    """
    return list(model.weighted_site_edges)


def _compute_weighted_chain_edges(
    model: DNNModel,
) -> List[Tuple[int, int, int]]:
    # Longest-path weighted depth, used to pick main branches.
    depths: Dict[int, int] = {}
    for layer in model.layers:
        base = max((depths[src] for src in layer.inputs), default=0)
        depths[layer.index] = base + (1 if layer.is_weighted else 0)

    site: Dict[int, int] = {}
    edges: List[Tuple[int, int, int]] = []
    for layer in model.layers:
        if layer.kind is LayerKind.INPUT or layer.is_weighted:
            site[layer.index] = layer.index
            for src in layer.inputs:
                src_site = site[src]
                if src_site != layer.index:
                    edges.append(
                        (src_site, layer.index,
                         model.layers[src].out_elements)
                    )
        else:
            main = max(layer.inputs, key=lambda s: (depths[s], s))
            home = site[main]
            site[layer.index] = home
            for src in layer.inputs:
                if src == main:
                    continue
                src_site = site[src]
                if src_site != home:
                    edges.append(
                        (src_site, home, model.layers[src].out_elements)
                    )
    return edges
