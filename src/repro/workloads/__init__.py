"""DNN/Transformer workload models: the paper's Tables I and II.

Public surface:

* :class:`~repro.workloads.layers.Layer`,
  :class:`~repro.workloads.layers.LayerKind`,
  :class:`~repro.workloads.layers.LayerGraphBuilder` -- layer graphs.
* :class:`~repro.workloads.dnn.DNNModel` -- immutable workload container.
* :func:`~repro.workloads.zoo.build_model`, :func:`~repro.workloads.zoo.table1_rows`
  -- the 13-model zoo.
* :class:`~repro.workloads.tasks.TaskMix`, :data:`~repro.workloads.tasks.TABLE2_MIXES`
  -- concurrent datacenter mixes.
* :func:`~repro.workloads.traffic.summarize_traffic` -- skip/linear stats.
* :mod:`~repro.workloads.transformer` -- Section IV storage analysis.
"""

from .dnn import DNNModel, weighted_chain_edges
from .layers import Layer, LayerGraphBuilder, LayerKind, validate_layer_graph
from .tasks import TABLE2_MIXES, DNNTask, TaskMix, all_mixes, mix_by_name
from .traffic import (
    TrafficEdge,
    TrafficSummary,
    classify_edges,
    interlayer_traffic,
    summarize_traffic,
)
from .zoo import (
    TABLE1_SPEC,
    Table1Row,
    available_models,
    build_model,
    table1_model,
    table1_rows,
)

__all__ = [
    "DNNModel",
    "DNNTask",
    "Layer",
    "LayerGraphBuilder",
    "LayerKind",
    "TABLE1_SPEC",
    "TABLE2_MIXES",
    "Table1Row",
    "TaskMix",
    "TrafficEdge",
    "TrafficSummary",
    "all_mixes",
    "available_models",
    "build_model",
    "classify_edges",
    "interlayer_traffic",
    "mix_by_name",
    "summarize_traffic",
    "table1_model",
    "table1_rows",
    "validate_layer_graph",
    "weighted_chain_edges",
]
