"""Layer-level DNN modelling with shape inference.

This module provides the building blocks used by the model zoo
(:mod:`repro.workloads.zoo`): a :class:`Layer` record describing one neural
layer (weights, MACs, activation volume, producers) and a
:class:`LayerGraphBuilder` that performs convolution/pooling shape inference
so model definitions read like framework code.

Shapes are ``(channels, height, width)`` for feature maps and
``(features,)`` for vectors.  All counts are exact integer element counts;
byte volumes are derived later by the traffic model so that precision is a
single knob (:mod:`repro.workloads.traffic`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class LayerKind(enum.Enum):
    """The kinds of layers the workload model distinguishes.

    Only ``CONV`` and ``FC`` carry weights (and therefore occupy PIM
    chiplets); the other kinds shape the dataflow graph and contribute
    activation traffic.
    """

    INPUT = "input"
    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    GLOBAL_POOL = "global_pool"
    ADD = "add"
    CONCAT = "concat"
    FLATTEN = "flatten"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Layer:
    """One node of a DNN dataflow graph.

    Attributes:
        index: Position of the layer in the model's topological order.
        name: Human-readable unique name (e.g. ``"conv2_1/conv1"``).
        kind: The :class:`LayerKind`.
        out_shape: Output tensor shape, ``(C, H, W)`` or ``(F,)``.
        weights: Number of trainable parameters held by this layer.
        macs: Multiply-accumulate operations for one inference.
        inputs: Indices of producer layers (graph edges point producer
            -> consumer).  ``INPUT`` layers have no producers.
    """

    index: int
    name: str
    kind: LayerKind
    out_shape: Tuple[int, ...]
    weights: int = 0
    macs: int = 0
    inputs: Tuple[int, ...] = ()

    @property
    def out_elements(self) -> int:
        """Number of activation elements this layer emits per inference."""
        return int(math.prod(self.out_shape))

    @property
    def is_weighted(self) -> bool:
        """Whether the layer stores parameters (and thus occupies PIM)."""
        return self.weights > 0

    def __post_init__(self) -> None:
        if self.weights < 0:
            raise ValueError(f"layer {self.name!r}: negative weights")
        if self.macs < 0:
            raise ValueError(f"layer {self.name!r}: negative macs")
        if not self.out_shape:
            raise ValueError(f"layer {self.name!r}: empty output shape")
        if any(d <= 0 for d in self.out_shape):
            raise ValueError(
                f"layer {self.name!r}: non-positive dim in {self.out_shape}"
            )


def conv_out_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> Tuple[int, int]:
    """Standard convolution output spatial size.

    Raises:
        ValueError: If the configuration produces a non-positive size.
    """
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"conv reduces {h}x{w} to {oh}x{ow} "
            f"(kernel={kernel}, stride={stride}, padding={padding})"
        )
    return oh, ow


class LayerGraphBuilder:
    """Incremental builder for DNN layer graphs with shape inference.

    Each ``add_*`` method appends a layer, infers its output shape from its
    producers and returns the new layer's index so definitions can be
    written in dataflow style::

        b = LayerGraphBuilder("toy", input_shape=(3, 32, 32))
        x = b.add_conv(b.input_index, out_channels=16, kernel=3, padding=1)
        y = b.add_conv(x, out_channels=16, kernel=3, padding=1)
        s = b.add_add([x, y])
        layers = b.build()

    Batch-norm parameters are folded into the preceding convolution's
    weight count when ``batchnorm=True`` is passed to :meth:`add_conv`,
    matching how PIM mappers fold BN at inference time.
    """

    def __init__(self, model_name: str, input_shape: Tuple[int, ...]) -> None:
        self.model_name = model_name
        self._layers: List[Layer] = []
        self._append(
            Layer(index=0, name="input", kind=LayerKind.INPUT, out_shape=input_shape)
        )

    # ------------------------------------------------------------------
    # internals

    def _append(self, layer: Layer) -> int:
        self._layers.append(layer)
        return layer.index

    def _shape(self, index: int) -> Tuple[int, ...]:
        try:
            return self._layers[index].out_shape
        except IndexError:
            raise IndexError(
                f"{self.model_name}: layer index {index} out of range "
                f"({len(self._layers)} layers)"
            ) from None

    def _next_index(self) -> int:
        return len(self._layers)

    @property
    def input_index(self) -> int:
        """Index of the synthetic input layer (always 0)."""
        return 0

    # ------------------------------------------------------------------
    # layer constructors

    def add_conv(
        self,
        src: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
        batchnorm: bool = True,
        name: Optional[str] = None,
    ) -> int:
        """Append a 2-D convolution (optionally with folded batch-norm)."""
        c, h, w = self._shape(src)
        if c % groups != 0 or out_channels % groups != 0:
            raise ValueError(
                f"groups={groups} does not divide channels {c}->{out_channels}"
            )
        oh, ow = conv_out_hw(h, w, kernel, stride, padding)
        weights = (c // groups) * out_channels * kernel * kernel
        if bias:
            weights += out_channels
        if batchnorm:
            # Folded scale + shift per output channel.
            weights += 2 * out_channels
        macs = (c // groups) * out_channels * kernel * kernel * oh * ow
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"conv{idx}",
                kind=LayerKind.CONV,
                out_shape=(out_channels, oh, ow),
                weights=weights,
                macs=macs,
                inputs=(src,),
            )
        )

    def add_fc(
        self,
        src: int,
        out_features: int,
        bias: bool = True,
        name: Optional[str] = None,
    ) -> int:
        """Append a fully connected layer (flattens its input implicitly)."""
        in_features = int(math.prod(self._shape(src)))
        weights = in_features * out_features + (out_features if bias else 0)
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"fc{idx}",
                kind=LayerKind.FC,
                out_shape=(out_features,),
                weights=weights,
                macs=in_features * out_features,
                inputs=(src,),
            )
        )

    def add_pool(
        self,
        src: int,
        kernel: int,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ) -> int:
        """Append a max/avg pooling layer (weightless)."""
        stride = kernel if stride is None else stride
        c, h, w = self._shape(src)
        oh, ow = conv_out_hw(h, w, kernel, stride, padding)
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"pool{idx}",
                kind=LayerKind.POOL,
                out_shape=(c, oh, ow),
                inputs=(src,),
            )
        )

    def add_global_pool(self, src: int, name: Optional[str] = None) -> int:
        """Append a global average pool collapsing spatial dims to 1x1."""
        c, _h, _w = self._shape(src)
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"gap{idx}",
                kind=LayerKind.GLOBAL_POOL,
                out_shape=(c, 1, 1),
                inputs=(src,),
            )
        )

    def add_add(self, srcs: Sequence[int], name: Optional[str] = None) -> int:
        """Append an element-wise residual addition of two or more inputs."""
        if len(srcs) < 2:
            raise ValueError("residual add needs at least two inputs")
        shapes = {self._shape(s) for s in srcs}
        if len(shapes) != 1:
            raise ValueError(f"residual add over mismatched shapes: {shapes}")
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"add{idx}",
                kind=LayerKind.ADD,
                out_shape=next(iter(shapes)),
                inputs=tuple(srcs),
            )
        )

    def add_concat(self, srcs: Sequence[int], name: Optional[str] = None) -> int:
        """Append a channel-wise concatenation (DenseNet/GoogLeNet style)."""
        if len(srcs) < 2:
            raise ValueError("concat needs at least two inputs")
        shapes = [self._shape(s) for s in srcs]
        spatial = {s[1:] for s in shapes}
        if len(spatial) != 1:
            raise ValueError(f"concat over mismatched spatial dims: {spatial}")
        channels = sum(s[0] for s in shapes)
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"concat{idx}",
                kind=LayerKind.CONCAT,
                out_shape=(channels,) + shapes[0][1:],
                inputs=tuple(srcs),
            )
        )

    def add_flatten(self, src: int, name: Optional[str] = None) -> int:
        """Append an explicit flatten (kept for graph readability)."""
        elements = int(math.prod(self._shape(src)))
        idx = self._next_index()
        return self._append(
            Layer(
                index=idx,
                name=name or f"flatten{idx}",
                kind=LayerKind.FLATTEN,
                out_shape=(elements,),
                inputs=(src,),
            )
        )

    # ------------------------------------------------------------------

    def build(self) -> Tuple[Layer, ...]:
        """Finish and return the immutable layer tuple."""
        validate_layer_graph(self._layers)
        return tuple(self._layers)


def validate_layer_graph(layers: Iterable[Layer]) -> None:
    """Check structural invariants of a layer graph.

    Invariants: indices are ``0..n-1`` in order, every edge points backwards
    (producers precede consumers -- i.e. the list is a topological order),
    exactly one ``INPUT`` layer exists and it is first, and names are unique.

    Raises:
        ValueError: If any invariant is violated.
    """
    layer_list = list(layers)
    if not layer_list:
        raise ValueError("empty layer graph")
    names = set()
    for pos, layer in enumerate(layer_list):
        if layer.index != pos:
            raise ValueError(
                f"layer {layer.name!r}: index {layer.index} != position {pos}"
            )
        if layer.name in names:
            raise ValueError(f"duplicate layer name {layer.name!r}")
        names.add(layer.name)
        for src in layer.inputs:
            if not 0 <= src < pos:
                raise ValueError(
                    f"layer {layer.name!r}: edge from {src} is not backwards"
                )
        if layer.kind is LayerKind.INPUT and pos != 0:
            raise ValueError("INPUT layer must be first")
    if layer_list[0].kind is not LayerKind.INPUT:
        raise ValueError("first layer must be INPUT")
