"""Concurrent DNN task mixes: the paper's Table II datacenter workloads.

Table II lists five workload mixes (WL1..WL5) for the 100-chiplet system.
Each mix is a *sequence* of DNN inference tasks -- e.g. ``16xDNN1`` means
sixteen independent ResNet-18/ImageNet inference tasks arrive back to
back.  The scheduler (:mod:`repro.core.mapping`) treats the expanded
sequence as a queue and maps one task at a time, which is the paper's
deadlock-avoidance argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from .dnn import DNNModel
from .zoo import table1_model


@dataclass(frozen=True)
class DNNTask:
    """One independent inference task instance inside a mix.

    Attributes:
        task_id: Unique id within the mix, e.g. ``"WL1/03-DNN2"``.
        dnn_id: Table I identifier (``"DNN1"``..``"DNN13"``).
        model: The resolved workload model.
    """

    task_id: str
    dnn_id: str
    model: DNNModel


@dataclass(frozen=True)
class TaskMix:
    """A Table II workload mix: an ordered multiset of DNN tasks.

    Attributes:
        name: Mix identifier (``"WL1"``..``"WL5"``).
        spec: Ordered ``(dnn_id, count)`` pairs as printed in Table II.
        paper_total_params_billions: The total-parameter figure Table II
            reports for the mix (for paper-vs-measured comparison).
    """

    name: str
    spec: Tuple[Tuple[str, int], ...]
    paper_total_params_billions: float

    def tasks(self) -> List[DNNTask]:
        """Expand the mix into its ordered task queue."""
        out: List[DNNTask] = []
        seq = 0
        for dnn_id, count in self.spec:
            model = table1_model(dnn_id)
            for _ in range(count):
                out.append(
                    DNNTask(
                        task_id=f"{self.name}/{seq:02d}-{dnn_id}",
                        dnn_id=dnn_id,
                        model=model,
                    )
                )
                seq += 1
        return out

    @property
    def num_tasks(self) -> int:
        return sum(count for _, count in self.spec)

    def total_params(self) -> int:
        """Total parameters across every task instance in the mix."""
        return sum(
            table1_model(dnn_id).total_params * count
            for dnn_id, count in self.spec
        )

    def total_params_billions(self) -> float:
        return self.total_params() / 1e9

    def __iter__(self) -> Iterator[DNNTask]:
        return iter(self.tasks())


#: Table II mixes.  The printed table is typographically damaged in the
#: paper PDF; the reconstruction below follows the readable multiplicities
#: and the DNN numbering of Table I, and the per-mix paper totals are kept
#: for comparison in EXPERIMENTS.md.
TABLE2_MIXES: Tuple[TaskMix, ...] = (
    TaskMix(
        name="WL1",
        spec=(("DNN1", 16), ("DNN2", 1), ("DNN3", 3), ("DNN4", 4),
              ("DNN5", 2), ("DNN6", 1), ("DNN7", 1)),
        paper_total_params_billions=1.1,
    ),
    TaskMix(
        name="WL2",
        spec=(("DNN3", 2), ("DNN8", 1), ("DNN4", 7), ("DNN7", 4),
              ("DNN8", 2), ("DNN1", 1), ("DNN5", 1)),
        paper_total_params_billions=1.4,
    ),
    TaskMix(
        name="WL3",
        spec=(("DNN1", 12), ("DNN2", 9), ("DNN4", 3), ("DNN5", 10),
              ("DNN1", 12), ("DNN7", 5), ("DNN8", 1)),
        paper_total_params_billions=8.8,
    ),
    TaskMix(
        name="WL4",
        spec=(("DNN6", 1), ("DNN2", 3), ("DNN3", 5), ("DNN6", 4),
              ("DNN1", 3), ("DNN7", 4), ("DNN8", 2)),
        paper_total_params_billions=3.8,
    ),
    TaskMix(
        name="WL5",
        spec=(("DNN3", 1), ("DNN8", 3), ("DNN7", 4), ("DNN2", 6),
              ("DNN3", 4), ("DNN7", 3), ("DNN8", 2)),
        paper_total_params_billions=1.8,
    ),
)


def mix_by_name(name: str) -> TaskMix:
    """Look up a Table II mix by name (``"WL1"``..``"WL5"``).

    Raises:
        KeyError: For unknown mix names.
    """
    for mix in TABLE2_MIXES:
        if mix.name == name:
            return mix
    raise KeyError(f"unknown task mix {name!r} (expected WL1..WL5)")


def all_mixes() -> Sequence[TaskMix]:
    """All five Table II mixes in order."""
    return TABLE2_MIXES
