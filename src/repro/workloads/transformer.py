"""Transformer kernel inventory and PIM storage analysis (paper Section IV).

The paper argues that NVM (ReRAM) PIM is unsuitable for the attention
kernels of Transformer encoders: the operand matrices of the two attention
matrix-matrix products (``Q.K^T`` and ``A.V``) are *activations* that
change for every input, so mapping them onto crossbars means rewriting
cells constantly -- and the intermediate matrices are large relative to
the static weights (the paper quotes 8.98x for BERT-Base and 2.06x for
BERT-Tiny).  The feed-forward (FF) blocks, by contrast, are static FC
layers that map exactly like DNN layers along an SFC.

This module models an encoder stack's kernels, splits storage into
*static* (weights, PIM-resident) and *dynamic* (intermediate matrices that
would need crossbar rewrites), and computes the intermediate-to-weight
storage ratio for arbitrary configurations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class KernelClass(enum.Enum):
    """How a kernel's stationary operand behaves across inputs."""

    STATIC_WEIGHT = "static"      # fixed weights -> PIM friendly
    DYNAMIC_MATMUL = "dynamic"    # activation x activation -> PIM hostile
    ELEMENTWISE = "elementwise"   # softmax / layernorm / residual


@dataclass(frozen=True)
class TransformerConfig:
    """Encoder-stack hyperparameters.

    Attributes:
        name: Configuration name (e.g. ``"bert-base"``).
        num_layers: Number of encoder blocks.
        d_model: Hidden size.
        num_heads: Attention heads (must divide ``d_model``).
        d_ff: Feed-forward inner size (typically ``4 * d_model``).
        seq_len: Input sequence length.
        vocab_size: Vocabulary for the embedding table.
    """

    name: str
    num_layers: int
    d_model: int
    num_heads: int
    d_ff: int
    seq_len: int
    vocab_size: int = 30522

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"{self.name}: heads {self.num_heads} must divide "
                f"d_model {self.d_model}"
            )
        for field_name in ("num_layers", "d_model", "num_heads", "d_ff", "seq_len"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive")

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads


BERT_TINY = TransformerConfig(
    name="bert-tiny", num_layers=2, d_model=128, num_heads=2,
    d_ff=512, seq_len=128,
)
BERT_BASE = TransformerConfig(
    name="bert-base", num_layers=12, d_model=768, num_heads=12,
    d_ff=3072, seq_len=512,
)
BERT_LARGE = TransformerConfig(
    name="bert-large", num_layers=24, d_model=1024, num_heads=16,
    d_ff=4096, seq_len=512,
)


@dataclass(frozen=True)
class Kernel:
    """One computational kernel of an encoder block.

    Attributes:
        name: Kernel name, e.g. ``"attn/qk_matmul"``.
        kind: PIM-friendliness class.
        weight_elements: Static parameter elements (0 for dynamic kernels).
        intermediate_elements: Activation-operand elements that would have
            to be written into crossbars (stationary operand of a dynamic
            matmul) plus the produced intermediate matrix that must be
            buffered before the next kernel.
        macs: Multiply-accumulates for one inference pass.
    """

    name: str
    kind: KernelClass
    weight_elements: int
    intermediate_elements: int
    macs: int


def encoder_kernels(cfg: TransformerConfig) -> List[Kernel]:
    """Kernel inventory for ONE encoder block of ``cfg``.

    Static kernels: Q/K/V/output projections and the two FF layers.
    Dynamic kernels: ``Q.K^T`` (stationary operand ``K``, produces the
    ``h x L x L`` score matrix) and ``A.V`` (stationary operand ``V``,
    consumes the ``h x L x L`` probability matrix).
    """
    d, h, L, dff = cfg.d_model, cfg.num_heads, cfg.seq_len, cfg.d_ff
    kernels = [
        Kernel("attn/q_proj", KernelClass.STATIC_WEIGHT, d * d, L * d, L * d * d),
        Kernel("attn/k_proj", KernelClass.STATIC_WEIGHT, d * d, L * d, L * d * d),
        Kernel("attn/v_proj", KernelClass.STATIC_WEIGHT, d * d, L * d, L * d * d),
        Kernel(
            "attn/qk_matmul",
            KernelClass.DYNAMIC_MATMUL,
            0,
            # stationary K (L*d) + produced score matrix (h*L*L)
            L * d + h * L * L,
            h * L * L * cfg.d_head,
        ),
        Kernel("attn/softmax", KernelClass.ELEMENTWISE, 0, h * L * L, 0),
        Kernel(
            "attn/av_matmul",
            KernelClass.DYNAMIC_MATMUL,
            0,
            # stationary V (L*d) + probability matrix operand (h*L*L)
            L * d + h * L * L,
            h * L * L * cfg.d_head,
        ),
        Kernel("attn/out_proj", KernelClass.STATIC_WEIGHT, d * d, L * d, L * d * d),
        Kernel("attn/residual_ln", KernelClass.ELEMENTWISE, 2 * d, L * d, 0),
        Kernel("ff/fc1", KernelClass.STATIC_WEIGHT, d * dff, L * dff, L * d * dff),
        Kernel("ff/fc2", KernelClass.STATIC_WEIGHT, dff * d, L * d, L * d * dff),
        Kernel("ff/residual_ln", KernelClass.ELEMENTWISE, 2 * d, L * d, 0),
    ]
    return kernels


@dataclass(frozen=True)
class StorageReport:
    """Static-vs-dynamic storage split for an encoder stack."""

    config_name: str
    weight_elements: int
    intermediate_elements: int
    dynamic_matmul_elements: int

    @property
    def intermediate_to_weight_ratio(self) -> float:
        """Intermediate storage as a multiple of static weight storage.

        The paper quotes 8.98x (BERT-Base) and 2.06x (BERT-Tiny) for this
        metric; the exact accounting of the authors' flow is not public,
        so EXPERIMENTS.md compares shapes (Base >> Tiny > 1) rather than
        absolute values.
        """
        if self.weight_elements == 0:
            return float("inf")
        return self.intermediate_elements / self.weight_elements


def storage_report(cfg: TransformerConfig) -> StorageReport:
    """Whole-stack storage analysis for ``cfg`` (embeddings excluded)."""
    weights = 0
    intermediates = 0
    dynamic = 0
    for kernel in encoder_kernels(cfg):
        weights += kernel.weight_elements
        intermediates += kernel.intermediate_elements
        if kernel.kind is KernelClass.DYNAMIC_MATMUL:
            dynamic += kernel.intermediate_elements
    return StorageReport(
        config_name=cfg.name,
        weight_elements=weights * cfg.num_layers,
        intermediate_elements=intermediates * cfg.num_layers,
        dynamic_matmul_elements=dynamic * cfg.num_layers,
    )


def ff_block_chain(cfg: TransformerConfig) -> List[Tuple[str, int]]:
    """The static FC chain of an encoder stack, as (name, weights) pairs.

    These are the layers the paper says should be mapped contiguously on
    the SFC exactly like DNN layers (data flows i-th -> (i+1)-th chiplet).
    """
    chain: List[Tuple[str, int]] = []
    for i in range(cfg.num_layers):
        chain.append((f"enc{i}/ff/fc1", cfg.d_model * cfg.d_ff))
        chain.append((f"enc{i}/ff/fc2", cfg.d_ff * cfg.d_model))
    return chain


def pim_suitability(cfg: TransformerConfig) -> dict:
    """Summary dict used by the Section IV benchmark.

    Keys: ``static_fraction`` of MACs that are PIM-friendly,
    ``dynamic_fraction`` of MACs in activation-activation matmuls, and
    ``rewrite_bytes_per_inference`` -- bytes that would be written into
    crossbars per inference if dynamic matmuls used NVM PIM (endurance
    killer).
    """
    static_macs = dynamic_macs = rewrite_elements = 0
    for kernel in encoder_kernels(cfg):
        if kernel.kind is KernelClass.STATIC_WEIGHT:
            static_macs += kernel.macs
        elif kernel.kind is KernelClass.DYNAMIC_MATMUL:
            dynamic_macs += kernel.macs
            rewrite_elements += kernel.intermediate_elements
    total = static_macs + dynamic_macs
    return {
        "config": cfg.name,
        "static_fraction": static_macs / total if total else 0.0,
        "dynamic_fraction": dynamic_macs / total if total else 0.0,
        "rewrite_bytes_per_inference": rewrite_elements * cfg.num_layers,
    }
