"""Model zoo: the thirteen DNN workloads of the paper's Table I.

Every model is built from scratch with exact shape inference
(:mod:`repro.workloads.layers`), so parameter counts, MAC counts and
activation volumes are the real architectural values -- not looked-up
constants.  Table I of the paper is reproduced by
:func:`table1_rows`; where the paper's printed parameter counts disagree
with the canonical architectures (several ImageNet rows do), both values
are reported and EXPERIMENTS.md discusses the discrepancy.

Supported models (name, datasets):

* ``resnet18/34/50/101/152`` -- ImageNet stem, CIFAR stem.
* ``resnet110`` -- canonical CIFAR 6n+2 residual network (n=18).
* ``vgg11/vgg19`` -- ImageNet classifier (4096-4096-1000) or CIFAR head.
* ``densenet169`` -- growth 32, blocks (6, 12, 32, 32).
* ``googlenet`` -- Inception-v1 (no auxiliary heads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .dnn import DNNModel
from .layers import LayerGraphBuilder

IMAGENET_SHAPE = (3, 224, 224)
CIFAR_SHAPE = (3, 32, 32)

_NUM_CLASSES = {"imagenet": 1000, "cifar10": 10}


def _input_shape(dataset: str) -> Tuple[int, int, int]:
    if dataset == "imagenet":
        return IMAGENET_SHAPE
    if dataset == "cifar10":
        return CIFAR_SHAPE
    raise ValueError(f"unknown dataset {dataset!r}")


# ---------------------------------------------------------------------------
# ResNet family


def _basic_block(
    b: LayerGraphBuilder, x: int, channels: int, stride: int, tag: str
) -> int:
    """Two 3x3 convolutions with identity / projection shortcut."""
    y = b.add_conv(x, channels, kernel=3, stride=stride, padding=1,
                   name=f"{tag}/conv1")
    y = b.add_conv(y, channels, kernel=3, stride=1, padding=1,
                   name=f"{tag}/conv2")
    in_channels = b._shape(x)[0]
    if stride != 1 or in_channels != channels:
        x = b.add_conv(x, channels, kernel=1, stride=stride,
                       name=f"{tag}/proj")
    return b.add_add([x, y], name=f"{tag}/add")


def _bottleneck_block(
    b: LayerGraphBuilder, x: int, channels: int, stride: int, tag: str
) -> int:
    """1x1 -> 3x3 -> 1x1 bottleneck with 4x expansion."""
    expanded = channels * 4
    y = b.add_conv(x, channels, kernel=1, stride=1, name=f"{tag}/conv1")
    y = b.add_conv(y, channels, kernel=3, stride=stride, padding=1,
                   name=f"{tag}/conv2")
    y = b.add_conv(y, expanded, kernel=1, stride=1, name=f"{tag}/conv3")
    in_channels = b._shape(x)[0]
    if stride != 1 or in_channels != expanded:
        x = b.add_conv(x, expanded, kernel=1, stride=stride,
                       name=f"{tag}/proj")
    return b.add_add([x, y], name=f"{tag}/add")


def build_resnet(
    depth: int, dataset: str = "imagenet", name: str = ""
) -> DNNModel:
    """Build a standard ImageNet-style ResNet (18/34/50/101/152)."""
    configs: Dict[int, Tuple[str, Tuple[int, ...]]] = {
        18: ("basic", (2, 2, 2, 2)),
        34: ("basic", (3, 4, 6, 3)),
        50: ("bottleneck", (3, 4, 6, 3)),
        101: ("bottleneck", (3, 4, 23, 3)),
        152: ("bottleneck", (3, 8, 36, 3)),
    }
    if depth not in configs:
        raise ValueError(f"unsupported ResNet depth {depth}")
    block_kind, stage_blocks = configs[depth]
    block = _basic_block if block_kind == "basic" else _bottleneck_block
    expansion = 1 if block_kind == "basic" else 4

    b = LayerGraphBuilder(name or f"resnet{depth}", _input_shape(dataset))
    if dataset == "imagenet":
        x = b.add_conv(b.input_index, 64, kernel=7, stride=2, padding=3,
                       name="stem/conv")
        x = b.add_pool(x, kernel=3, stride=2, padding=1, name="stem/pool")
    else:
        x = b.add_conv(b.input_index, 64, kernel=3, stride=1, padding=1,
                       name="stem/conv")
    channels = 64
    for stage, blocks in enumerate(stage_blocks):
        for i in range(blocks):
            stride = 2 if (stage > 0 and i == 0) else 1
            x = block(b, x, channels, stride, tag=f"stage{stage + 1}/block{i + 1}")
        channels *= 2
    x = b.add_global_pool(x, name="head/gap")
    x = b.add_fc(x, _NUM_CLASSES[dataset], name="head/fc")
    return DNNModel(name or f"resnet{depth}", dataset, b.build())


def build_resnet_cifar(depth: int, dataset: str = "cifar10") -> DNNModel:
    """Build the canonical CIFAR 6n+2 ResNet (He et al.), e.g. ResNet-110.

    Three stages of ``n`` basic blocks at 16/32/64 channels; ``depth`` must
    satisfy ``depth = 6n + 2``.
    """
    if (depth - 2) % 6 != 0:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
    n = (depth - 2) // 6
    b = LayerGraphBuilder(f"resnet{depth}", _input_shape(dataset))
    x = b.add_conv(b.input_index, 16, kernel=3, stride=1, padding=1,
                   name="stem/conv")
    for stage, channels in enumerate((16, 32, 64)):
        for i in range(n):
            stride = 2 if (stage > 0 and i == 0) else 1
            x = _basic_block(b, x, channels, stride,
                             tag=f"stage{stage + 1}/block{i + 1}")
    x = b.add_global_pool(x, name="head/gap")
    x = b.add_fc(x, _NUM_CLASSES[dataset], name="head/fc")
    return DNNModel(f"resnet{depth}", dataset, b.build())


# ---------------------------------------------------------------------------
# VGG family

_VGG_PLANS: Dict[int, Sequence[object]] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    19: (64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"),
}


def build_vgg(depth: int, dataset: str = "imagenet") -> DNNModel:
    """Build VGG-11 or VGG-19 with batch-norm convolutions."""
    if depth not in _VGG_PLANS:
        raise ValueError(f"unsupported VGG depth {depth}")
    b = LayerGraphBuilder(f"vgg{depth}", _input_shape(dataset))
    x = b.input_index
    conv_i = pool_i = 0
    for item in _VGG_PLANS[depth]:
        if item == "M":
            pool_i += 1
            x = b.add_pool(x, kernel=2, stride=2, name=f"pool{pool_i}")
        else:
            conv_i += 1
            x = b.add_conv(x, int(item), kernel=3, padding=1,
                           name=f"conv{conv_i}")
    x = b.add_flatten(x, name="flatten")
    if dataset == "imagenet":
        x = b.add_fc(x, 4096, name="fc1")
        x = b.add_fc(x, 4096, name="fc2")
        x = b.add_fc(x, 1000, name="fc3")
    else:
        x = b.add_fc(x, 512, name="fc1")
        x = b.add_fc(x, _NUM_CLASSES[dataset], name="fc2")
    return DNNModel(f"vgg{depth}", dataset, b.build())


# ---------------------------------------------------------------------------
# DenseNet


def build_densenet(
    depth: int = 169,
    dataset: str = "imagenet",
    growth: int = 32,
) -> DNNModel:
    """Build DenseNet-121/169/201 (bottleneck blocks, 0.5 compression)."""
    blocks = {121: (6, 12, 24, 16), 169: (6, 12, 32, 32),
              201: (6, 12, 48, 32)}.get(depth)
    if blocks is None:
        raise ValueError(f"unsupported DenseNet depth {depth}")
    b = LayerGraphBuilder(f"densenet{depth}", _input_shape(dataset))
    if dataset == "imagenet":
        x = b.add_conv(b.input_index, 2 * growth, kernel=7, stride=2,
                       padding=3, name="stem/conv")
        x = b.add_pool(x, kernel=3, stride=2, padding=1, name="stem/pool")
    else:
        x = b.add_conv(b.input_index, 2 * growth, kernel=3, padding=1,
                       name="stem/conv")
    for stage, num_layers in enumerate(blocks):
        for i in range(num_layers):
            tag = f"dense{stage + 1}/layer{i + 1}"
            y = b.add_conv(x, 4 * growth, kernel=1, name=f"{tag}/conv1")
            y = b.add_conv(y, growth, kernel=3, padding=1, name=f"{tag}/conv2")
            x = b.add_concat([x, y], name=f"{tag}/concat")
        if stage != len(blocks) - 1:
            channels = b._shape(x)[0] // 2
            x = b.add_conv(x, channels, kernel=1,
                           name=f"transition{stage + 1}/conv")
            x = b.add_pool(x, kernel=2, stride=2,
                           name=f"transition{stage + 1}/pool")
    x = b.add_global_pool(x, name="head/gap")
    x = b.add_fc(x, _NUM_CLASSES[dataset], name="head/fc")
    return DNNModel(f"densenet{depth}", dataset, b.build())


# ---------------------------------------------------------------------------
# GoogLeNet (Inception v1)

# (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj) per inception module.
_INCEPTION_PLAN: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("POOL", ()),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("POOL", ()),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
)


def _inception(b: LayerGraphBuilder, x: int, cfg: Tuple[int, ...], tag: str) -> int:
    c1, c3r, c3, c5r, c5, cp = cfg
    b1 = b.add_conv(x, c1, kernel=1, name=f"{tag}/1x1")
    b3 = b.add_conv(x, c3r, kernel=1, name=f"{tag}/3x3_reduce")
    b3 = b.add_conv(b3, c3, kernel=3, padding=1, name=f"{tag}/3x3")
    b5 = b.add_conv(x, c5r, kernel=1, name=f"{tag}/5x5_reduce")
    b5 = b.add_conv(b5, c5, kernel=5, padding=2, name=f"{tag}/5x5")
    bp = b.add_pool(x, kernel=3, stride=1, padding=1, name=f"{tag}/pool")
    bp = b.add_conv(bp, cp, kernel=1, name=f"{tag}/pool_proj")
    return b.add_concat([b1, b3, b5, bp], name=f"{tag}/concat")


def build_googlenet(dataset: str = "imagenet") -> DNNModel:
    """Build GoogLeNet / Inception-v1 (auxiliary classifiers omitted)."""
    b = LayerGraphBuilder("googlenet", _input_shape(dataset))
    if dataset == "imagenet":
        x = b.add_conv(b.input_index, 64, kernel=7, stride=2, padding=3,
                       name="stem/conv1")
        x = b.add_pool(x, kernel=3, stride=2, padding=1, name="stem/pool1")
        x = b.add_conv(x, 64, kernel=1, name="stem/conv2")
        x = b.add_conv(x, 192, kernel=3, padding=1, name="stem/conv3")
        x = b.add_pool(x, kernel=3, stride=2, padding=1, name="stem/pool2")
    else:
        x = b.add_conv(b.input_index, 64, kernel=3, padding=1,
                       name="stem/conv1")
        x = b.add_conv(x, 64, kernel=1, name="stem/conv2")
        x = b.add_conv(x, 192, kernel=3, padding=1, name="stem/conv3")
    pool_i = 0
    for tag, cfg in _INCEPTION_PLAN:
        if tag == "POOL":
            pool_i += 1
            x = b.add_pool(x, kernel=3, stride=2, padding=1,
                           name=f"maxpool{pool_i}")
        else:
            x = _inception(b, x, cfg, tag=f"inception{tag}")
    x = b.add_global_pool(x, name="head/gap")
    x = b.add_fc(x, _NUM_CLASSES[dataset], name="head/fc")
    return DNNModel("googlenet", dataset, b.build())


# ---------------------------------------------------------------------------
# Registry and Table I


_BUILDERS: Dict[str, Callable[[str], DNNModel]] = {
    "resnet18": lambda ds: build_resnet(18, ds),
    "resnet34": lambda ds: build_resnet(34, ds),
    "resnet50": lambda ds: build_resnet(50, ds),
    "resnet101": lambda ds: build_resnet(101, ds),
    "resnet110": lambda ds: build_resnet_cifar(110, ds),
    "resnet152": lambda ds: build_resnet(152, ds),
    "vgg11": lambda ds: build_vgg(11, ds),
    "vgg19": lambda ds: build_vgg(19, ds),
    "densenet169": lambda ds: build_densenet(169, ds),
    "googlenet": lambda ds: build_googlenet(ds),
}

_CACHE: Dict[Tuple[str, str], DNNModel] = {}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, dataset: str = "imagenet") -> DNNModel:
    """Build (and cache) a zoo model by name.

    Raises:
        ValueError: For unknown model names or datasets.
    """
    key = (name, dataset)
    if key not in _CACHE:
        builder = _BUILDERS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown model {name!r}; available: {available_models()}"
            )
        if dataset == "cifar10" and name == "resnet110":
            _CACHE[key] = build_resnet_cifar(110, dataset)
        else:
            _CACHE[key] = builder(dataset)
    return _CACHE[key]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I, paper value alongside ours."""

    dnn_id: str
    model_name: str
    dataset: str
    paper_params_millions: float
    measured_params_millions: float


#: (DNN id, model, dataset, paper-reported params in millions).
TABLE1_SPEC: Tuple[Tuple[str, str, str, float], ...] = (
    ("DNN1", "resnet18", "imagenet", 24.76),
    ("DNN2", "resnet34", "imagenet", 36.5),
    ("DNN3", "resnet50", "imagenet", 25.94),
    ("DNN4", "resnet101", "imagenet", 9.42),
    ("DNN5", "resnet110", "imagenet", 43.6),
    ("DNN6", "resnet152", "imagenet", 54.84),
    ("DNN7", "vgg19", "imagenet", 93.4),
    ("DNN8", "densenet169", "imagenet", 54.84),
    ("DNN9", "resnet18", "cifar10", 11.22),
    ("DNN10", "resnet34", "cifar10", 21.34),
    ("DNN11", "vgg11", "cifar10", 9.62),
    ("DNN12", "vgg19", "cifar10", 20.42),
    ("DNN13", "googlenet", "cifar10", 6.16),
)


def table1_model(dnn_id: str) -> DNNModel:
    """Resolve a paper DNN id (``"DNN1"``..``"DNN13"``) to its model.

    Note: the paper lists ResNet-110 under ImageNet, but ResNet-110 is only
    defined as a CIFAR architecture (6n+2); we build the canonical CIFAR
    network and record the discrepancy in EXPERIMENTS.md.
    """
    for row_id, model_name, dataset, _ in TABLE1_SPEC:
        if row_id == dnn_id:
            if model_name == "resnet110":
                dataset = "cifar10"
            return build_model(model_name, dataset)
    raise ValueError(f"unknown DNN id {dnn_id!r} (expected DNN1..DNN13)")


def table1_rows() -> List[Table1Row]:
    """Reproduce Table I: per-DNN parameter counts, paper vs measured."""
    rows = []
    for dnn_id, model_name, dataset, paper_m in TABLE1_SPEC:
        model = table1_model(dnn_id)
        rows.append(
            Table1Row(
                dnn_id=dnn_id,
                model_name=model_name,
                dataset=dataset,
                paper_params_millions=paper_m,
                measured_params_millions=model.params_millions(),
            )
        )
    return rows
