"""Central hardware parameters shared by all models.

Every physical constant used by the latency/energy/area/thermal models
lives here so that calibration is a single-file affair.  Values are
representative of a 32 nm-class interposer NoI + ReRAM PIM chiplet stack
(SIAM [11] / SWAP [2] lineage); the paper's comparisons are *relative*
between NoI architectures, so consistent constants matter more than
absolute process accuracy.

Unit conventions (repo-wide):

* time: clock cycles at ``clock_ghz`` (1 cycle = 1 ns at 1 GHz)
* energy: picojoules (pJ)
* length: millimetres (mm)
* area: square millimetres (mm^2)
* temperature: kelvin (K)
* power: watts (W)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NoIParams:
    """Interconnect constants for the 2.5D NoI (and 3D NoC) models."""

    #: System clock in GHz; 1.0 => one cycle is one nanosecond.
    clock_ghz: float = 1.0

    #: Centre-to-centre chiplet pitch on the interposer.
    chiplet_pitch_mm: float = 3.0

    #: PE pitch inside a 3D stack (per-tier planar pitch).
    pe_pitch_mm: float = 1.0

    #: Router pipeline depth: cycles a head flit spends per router.
    router_pipeline_cycles: int = 2

    #: Wire reach per cycle on the interposer (repeated RC wire).
    mm_per_cycle: float = 3.0

    #: Flit width in bytes (link width).
    flit_bytes: int = 32

    #: Packet payload in bytes (one packet = packet_bytes / flit_bytes
    #: flits); the unit of the average-packet-latency metric (Fig. 3).
    packet_bytes: int = 64

    #: Routers with at least this many ports pay one extra pipeline
    #: stage (larger crossbar + arbitration), which is how Kite's 4-port
    #: and a mesh's interior routers cost more per hop than Floret's
    #: 2-port chain routers.
    router_extra_stage_ports: int = 4

    #: Router crossbar+buffer energy per flit, per port of the router.
    router_energy_pj_per_flit_port: float = 0.35

    #: Link wire energy per flit per millimetre.
    link_energy_pj_per_flit_mm: float = 0.45

    #: Router area model: ``area = router_area_coeff * ports^2`` (crossbar
    #: dominated).
    router_area_coeff_mm2: float = 0.5

    #: Interposer routing-channel area per mm of link (wires + spacing +
    #: microbump overhead for one link).
    link_area_mm2_per_mm: float = 0.15

    #: Vertical (MIV/TSV) hop delay in cycles for 3D stacks.
    vertical_hop_cycles: int = 1

    #: Vertical hop energy per flit (MIVs are tiny).
    vertical_energy_pj_per_flit: float = 0.05

    #: Closed-loop flow control (packet simulator): downstream
    #: input-buffer capacity per directed link, in flits.  ``None``
    #: keeps the open-loop infinite-buffer model -- exact backward
    #: compatibility with every pre-flow-control result.
    fc_buffer_flits: "int | None" = None

    #: Closed-loop flow control: packets a source may have waiting to
    #: start their first link before the generator defers injection.
    #: ``None`` = unbounded (open-loop injection).
    fc_source_queue: "int | None" = None

    #: Cycles for a freed buffer credit to travel back upstream
    #: (credit round-trip).  Only consulted when flow control is
    #: active; must be >= 1.
    fc_credit_rtt: int = 2

    #: Packet-simulator engine tier the experiment evaluators (load
    #: sweeps, saturation ramps, sim crosschecks) pass through to
    #: :func:`repro.net.simulator.simulate_packets` -- one of
    #: ``repro.net.simulator.ENGINES``.  ``"auto"`` picks the fastest
    #: available tier; pin ``"events"``/``"epochs"`` to force an oracle
    #: run, e.g. as a sweep override when validating a new tier.
    sim_engine: str = "auto"

    #: Packet-simulator latency attribution: when truthy, experiment
    #: evaluators pass ``attribution=True`` to
    #: :func:`repro.net.simulator.simulate_packets`, reduce the grant
    #: trace with :func:`repro.net.journey.latency_breakdown`, and ship
    #: the per-component/per-link arrays through the sweep result's
    #: npz payload.  Off by default (the trace costs memory
    #: proportional to total hops).  Sweep overrides arrive as floats;
    #: consumers coerce with ``bool(...)``.
    sim_attribution: bool = False

    def flow_control(self):
        """Materialise the ``fc_*`` knobs as a ``FlowControlParams``.

        Sweep overrides arrive as floats, so integral values are
        coerced back to ints here.  Imported lazily to keep
        :mod:`repro.params` free of package-internal dependencies.
        """
        from .net.flowcontrol import FlowControlParams

        def as_int(value):
            return None if value is None else int(value)

        return FlowControlParams(
            buffer_flits=as_int(self.fc_buffer_flits),
            source_queue=as_int(self.fc_source_queue),
            credit_rtt=int(self.fc_credit_rtt),
        )

    def router_stage_cycles(self, ports: int) -> int:
        """Pipeline depth of a router with ``ports`` network ports."""
        extra = 1 if ports >= self.router_extra_stage_ports else 0
        return self.router_pipeline_cycles + extra

    @property
    def flits_per_packet(self) -> int:
        return -(-self.packet_bytes // self.flit_bytes)

    def link_delay_cycles(self, length_mm: float) -> int:
        """Cycles for a flit to traverse a link of ``length_mm``."""
        if length_mm < 0:
            raise ValueError(f"negative link length {length_mm}")
        if length_mm == 0:
            return 0
        return max(1, math.ceil(length_mm / self.mm_per_cycle))

    def router_area_mm2(self, ports: int) -> float:
        """Router silicon area as a function of port count."""
        if ports < 0:
            raise ValueError(f"negative port count {ports}")
        return self.router_area_coeff_mm2 * ports * ports

    def link_area_mm2(self, length_mm: float) -> float:
        """Interposer routing area consumed by one link."""
        return self.link_area_mm2_per_mm * length_mm


@dataclass(frozen=True)
class PIMParams:
    """ReRAM PIM chiplet constants (SIAM-style)."""

    #: Crossbar dimension (rows = cols).
    crossbar_size: int = 128

    #: ReRAM cell precision in bits.
    bits_per_cell: int = 2

    #: Weight precision in bits.
    weight_bits: int = 8

    #: Activation precision in bits (on-NoI payloads use this too).
    activation_bits: int = 8

    #: Crossbars (ReRAM arrays) per IMC tile.
    crossbars_per_tile: int = 16

    #: IMC tiles per chiplet.  Sized so the largest Table I workload
    #: (VGG-19/ImageNet, 143.7M weights) fits inside the paper's
    #: 100-chiplet system with headroom (69 chiplets at 2M weights each).
    tiles_per_chiplet: int = 32

    #: Cycles for one full-array analog MVM incl. ADC readout.
    mvm_latency_cycles: int = 100

    #: Energy of one full-array MVM in pJ (array + DAC/ADC + S&H).
    mvm_energy_pj: float = 180.0

    #: Static (leakage + peripheral idle) power per chiplet, W.
    chiplet_static_power_w: float = 0.08

    @property
    def cells_per_weight(self) -> int:
        """ReRAM cells needed to store one weight (bit slicing)."""
        return -(-self.weight_bits // self.bits_per_cell)

    @property
    def weights_per_crossbar(self) -> int:
        """Weights storable in one crossbar (column-sliced)."""
        cells = self.crossbar_size * self.crossbar_size
        return cells // self.cells_per_weight

    @property
    def chiplet_weight_capacity(self) -> int:
        """Weights storable on one chiplet."""
        return (
            self.weights_per_crossbar
            * self.crossbars_per_tile
            * self.tiles_per_chiplet
        )


@dataclass(frozen=True)
class ThermalParams:
    """Coarse finite-difference thermal model constants for the 3D stack."""

    #: Ambient / heat-sink temperature.
    ambient_k: float = 300.0

    #: Lateral thermal conductance between adjacent PEs on a tier, W/K.
    lateral_conductance_w_per_k: float = 0.002

    #: Vertical conductance between vertically adjacent PEs (thin ILD,
    #: M3D), W/K.  Much larger than lateral per the paper's Section I.
    vertical_conductance_w_per_k: float = 0.015

    #: Conductance from each top-tier PE to the heat sink, W/K.
    sink_conductance_w_per_k: float = 0.03

    #: ReRAM conductance-window knee: above this temperature the
    #: G_on/G_off window shrinks exponentially [20].
    window_knee_k: float = 330.0

    #: Exponential shrink rate of the conductance window per K above knee.
    window_shrink_per_k: float = 0.028


@dataclass(frozen=True)
class CostParams:
    """Fabrication-cost model constants (paper Eq. (2)-(5))."""

    #: Wafer defect density, defects per mm^2.
    defect_density_per_mm2: float = 0.0015

    #: Reference 2.5D system: AMD 864 mm^2 interposer, 64 chiplets [1].
    reference_interposer_area_mm2: float = 864.0
    reference_chiplets: int = 64

    #: NoI share of total 2.5D system area (paper: up to 85%).
    noi_area_fraction: float = 0.85

    @property
    def reference_noi_area_mm2(self) -> float:
        return self.reference_interposer_area_mm2 * self.noi_area_fraction


@dataclass(frozen=True)
class SystemParams:
    """Bundle of all hardware parameter groups."""

    noi: NoIParams = field(default_factory=NoIParams)
    pim: PIMParams = field(default_factory=PIMParams)
    thermal: ThermalParams = field(default_factory=ThermalParams)
    cost: CostParams = field(default_factory=CostParams)

    def with_noi(self, **kwargs) -> "SystemParams":
        """Copy with NoI fields overridden (calibration helper)."""
        return replace(self, noi=replace(self.noi, **kwargs))

    def with_pim(self, **kwargs) -> "SystemParams":
        return replace(self, pim=replace(self.pim, **kwargs))

    def with_thermal(self, **kwargs) -> "SystemParams":
        return replace(self, thermal=replace(self.thermal, **kwargs))

    def with_cost(self, **kwargs) -> "SystemParams":
        return replace(self, cost=replace(self.cost, **kwargs))


DEFAULT_PARAMS = SystemParams()
