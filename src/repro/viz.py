"""ASCII visualisation of NoI designs, runtime state and sweep results.

Renders the paper's illustrative figures in the terminal:

* :func:`render_petals` -- Fig. 1: the petal decomposition of the grid,
  with heads/tails marked;
* :func:`render_occupancy` -- Fig. 4: mapped vs unmapped chiplets at a
  point in time;
* :func:`render_placement` -- one task's footprint on the grid;
* :func:`render_link_utilization` -- per-link busy-fraction heatmap
  from a simulator :class:`~repro.net.flowcontrol.LinkTelemetry`;
* :func:`render_saturation_curves` -- accepted-throughput (or any
  metric) vs offered load, one glyph per architecture;
* :func:`render_pareto_fronts` -- DSE archive fronts per generation,
  replayed from a :class:`~repro.eval.store.ResultStore` directory.

Everything is plain strings -- headless by construction, no plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .core.floret import FloretDesign
from .core.moo import pareto_front_indices
from .core.sfc import FloretCurve
from .noi.topology import Topology

#: Petal glyphs (petal i -> letter), wraps after 26.
_PETAL_GLYPHS = "abcdefghijklmnopqrstuvwxyz"


def render_petals(curve: FloretCurve, *, mark_heads: bool = True) -> str:
    """Fig. 1 style map: one letter per petal, H/T for heads and tails.

    Heads are upper-cased; tails are rendered as ``*`` overlaying the
    petal letter when ``mark_heads`` is set.
    """
    grid: List[List[str]] = [
        ["?" for _ in range(curve.cols)] for _ in range(curve.rows)
    ]
    for seg in curve.segments:
        glyph = _PETAL_GLYPHS[seg.petal_id % len(_PETAL_GLYPHS)]
        for x, y in seg.cells:
            grid[y][x] = glyph
        if mark_heads:
            hx, hy = seg.head
            tx, ty = seg.tail
            grid[hy][hx] = glyph.upper()
            grid[ty][tx] = "*"
    return "\n".join("".join(row) for row in grid)


def render_occupancy(
    topology: Topology,
    owner_by_chiplet: Mapping[int, str],
    *,
    free_glyph: str = ".",
) -> str:
    """Fig. 4 style map: which task owns each chiplet (``.`` = unmapped).

    Each distinct owner gets a stable single-character glyph (first
    letters of sorted owner names, cycling through digits on collision).
    """
    owners = sorted(set(owner_by_chiplet.values()))
    glyphs: Dict[str, str] = {}
    used = set()
    pool = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for owner in owners:
        candidate = owner[:1].upper() or "?"
        if candidate in used:
            candidate = next(c for c in pool if c not in used)
        glyphs[owner] = candidate
        used.add(candidate)

    cols = max(c.x for c in topology.chiplets) + 1
    rows = max(c.y for c in topology.chiplets) + 1
    grid = [[" " for _ in range(cols)] for _ in range(rows)]
    for chiplet in topology.chiplets:
        owner = owner_by_chiplet.get(chiplet.index)
        grid[chiplet.y][chiplet.x] = (
            glyphs[owner] if owner is not None else free_glyph
        )
    legend = ", ".join(f"{g}={o}" for o, g in sorted(glyphs.items()))
    body = "\n".join("".join(row) for row in grid)
    return f"{body}\n[{legend or 'all free'}]"


def render_placement(
    design: FloretDesign, chiplet_ids: Sequence[int]
) -> str:
    """One task's footprint: ``#`` occupied, ``.`` free, petal letters dim."""
    owner = {cid: "task" for cid in chiplet_ids}
    return render_occupancy(design.topology, owner)


#: Utilization deciles 0..9 then ``#`` for (near-)saturated links.
_HEAT_GLYPHS = ".123456789#"


def _heat_glyph(value: float) -> str:
    """Bucket a 0..1 utilization into a single heat glyph."""
    if value <= 0.0:
        return _HEAT_GLYPHS[0]
    if value >= 0.95:
        return _HEAT_GLYPHS[-1]
    return _HEAT_GLYPHS[max(1, min(9, int(value * 10)))]


def render_link_utilization(
    topology: Topology,
    telemetry,
    *,
    top: int = 5,
) -> str:
    """Per-link utilization heatmap over the chiplet grid.

    Each chiplet cell shows the busy-fraction decile of its hottest
    *outgoing* directed link (``.`` idle .. ``9``, ``#`` saturated);
    the hottest ``top`` links are listed below with their stall split,
    so backpressure hot spots are visible at a glance.

    ``telemetry`` is the :class:`~repro.net.flowcontrol.LinkTelemetry`
    of a ``simulate_packets(..., telemetry=True)`` run on the same
    topology.
    """
    tables = topology.routing_tables()
    if telemetry.num_directed_links != tables.num_directed_links:
        raise ValueError(
            f"telemetry covers {telemetry.num_directed_links} links but "
            f"{topology.name} has {tables.num_directed_links}"
        )
    util = telemetry.utilization()
    per_node = [0.0] * topology.num_chiplets
    for link, u in enumerate(util):
        node = int(tables.link_u[link])
        per_node[node] = max(per_node[node], float(u))

    cols = max(c.x for c in topology.chiplets) + 1
    rows = max(c.y for c in topology.chiplets) + 1
    grid = [[" " for _ in range(cols)] for _ in range(rows)]
    for chiplet in topology.chiplets:
        grid[chiplet.y][chiplet.x] = _heat_glyph(per_node[chiplet.index])
    body = "\n".join("".join(row) for row in grid)

    order = sorted(range(util.shape[0]), key=lambda e: -util[e])[:top]
    lines = [
        f"link utilization over {telemetry.horizon_cycles} cycles "
        f"(max outgoing link per chiplet; . idle, # saturated)",
        body,
    ]
    for link in order:
        if util[link] <= 0:
            break
        lines.append(
            f"  {int(tables.link_u[link]):>3d}->"
            f"{int(tables.link_v[link]):<3d} "
            f"util {util[link]:.2f}  "
            f"stall {int(telemetry.stall_cycles[link])}cy "
            f"(credit {int(telemetry.credit_stall_cycles[link])}cy)  "
            f"peak queue {int(telemetry.peak_queue_flits[link])} flits"
        )
    return "\n".join(lines)


def _series_glyphs(names: Sequence[str]) -> Dict[str, str]:
    """Stable single-character glyph per series name."""
    glyphs: Dict[str, str] = {}
    used = set()
    pool = "abcdefghijklmnopqrstuvwxyz0123456789"
    for name in names:
        candidate = name[:1].upper() or "?"
        if candidate in used:
            candidate = next(
                c.upper() for c in name[1:] + pool
                if c.upper() not in used
            )
        glyphs[name] = candidate
        used.add(candidate)
    return glyphs


def render_saturation_curves(
    offered: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 52,
    height: int = 14,
    ylabel: str = "accepted throughput (pkt/node/cycle)",
) -> str:
    """ASCII chart of per-architecture curves against offered load.

    Plots one glyph per architecture over a shared y-range, with the
    ``y = x`` ideal-acceptance diagonal dotted in for reference --
    below the knee, curves ride the diagonal; past it they plateau.
    """
    xs = [float(x) for x in offered]
    if not xs or not series:
        raise ValueError("offered rates and series must be non-empty")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(xs)}"
            )
    xmin, xmax = min(xs), max(xs)
    xspan = (xmax - xmin) or 1.0
    ymax = max(max(float(v) for v in values) for values in series.values())
    ymax = max(ymax, xmax)

    def cell(x: float, y: float) -> "tuple[int, int]":
        col = round((x - xmin) / xspan * (width - 1))
        row = (height - 1) - round(
            min(max(y, 0.0), ymax) / ymax * (height - 1)
        )
        return row, col

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x in xs:
        row, col = cell(x, x)
        grid[row][col] = "."
    glyphs = _series_glyphs(list(series))
    for name, values in series.items():
        for x, y in zip(xs, values):
            row, col = cell(x, float(y))
            grid[row][col] = glyphs[name]
    top_label = f"{ymax:.3f} "
    bottom_label = f"{0.0:.3f} "
    gutter = max(len(top_label), len(bottom_label))
    lines = []
    for i, row in enumerate(grid):
        label = top_label if i == 0 else (
            bottom_label if i == height - 1 else ""
        )
        lines.append(f"{label:>{gutter}}|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * (gutter + 1) + f"{xmin:.3f}"
        + " " * max(1, width - 12) + f"{xmax:.3f}"
    )
    legend = ", ".join(f"{g}={n}" for n, g in glyphs.items())
    lines.append(f"offered load (pkt/node/cycle) -> ; y: {ylabel}")
    lines.append(f"[{legend}; . = ideal acceptance]")
    return "\n".join(lines)


def _dse_objective_points(
    results,
    objectives: Sequence[str],
    tag_prefix: Optional[str],
) -> List["tuple[int, float, float]"]:
    """``(generation, x, y)`` triples from stored DSE sweep results.

    Shared extraction behind :func:`render_pareto_fronts` and
    :func:`render_hypervolume_trend`: accepts a
    :class:`~repro.eval.store.ResultStore`, a store directory path or
    any iterable of :class:`~repro.eval.sweeps.SweepResult`; the
    generation comes from the ``tag@gN`` labels
    :func:`repro.eval.dse.dse_search` stamps on its cases.
    """
    from .eval.dse import extract_objectives

    if isinstance(results, (str, bytes)) or hasattr(results, "__fspath__"):
        from .eval.store import ResultStore

        results = ResultStore(results).iter_results()
    elif hasattr(results, "iter_results"):
        results = results.iter_results()

    xo, yo = objectives[0], objectives[1]
    points: List["tuple[int, float, float]"] = []
    for result in results:
        tag = result.case.tag
        if tag_prefix is not None and not tag.startswith(tag_prefix):
            continue
        prefix, sep, gen_text = tag.rpartition("@g")
        generation = int(gen_text) if sep and gen_text.isdigit() else 0
        try:
            x, y = extract_objectives(result.metrics, (xo, yo))
        except KeyError:
            continue
        points.append((generation, x, y))
    if not points:
        raise ValueError(
            "no stored results with the requested objectives"
            + (f" and tag prefix {tag_prefix!r}" if tag_prefix else "")
        )
    return points


def hypervolume_2d(
    points: Sequence["tuple[float, float]"],
    ref_point: "tuple[float, float]",
) -> float:
    """Exact 2-objective hypervolume (minimisation) w.r.t. ``ref_point``.

    Area of the union of boxes ``[x_i, ref_x] x [y_i, ref_y]`` -- the
    region dominated by ``points`` and bounded by the reference.
    Points at or beyond the reference contribute nothing; dominated or
    duplicate points are handled by the sweep (no front filter needed).
    """
    ref_x, ref_y = float(ref_point[0]), float(ref_point[1])
    inside = sorted(
        (float(x), float(y)) for x, y in points if x < ref_x and y < ref_y
    )
    volume = 0.0
    y_cover = ref_y
    for i, (x, y) in enumerate(inside):
        y_cover = min(y_cover, y)
        next_x = inside[i + 1][0] if i + 1 < len(inside) else ref_x
        volume += (next_x - x) * (ref_y - y_cover)
    return volume


def render_hypervolume_trend(
    results,
    objectives: Sequence[str] = ("latency_cycles", "energy_pj"),
    *,
    height: int = 10,
    tag_prefix: Optional[str] = None,
    ref_point: Optional["tuple[float, float]"] = None,
    ref_margin: float = 0.05,
) -> str:
    """Hypervolume-over-generations bar chart from stored DSE results.

    Replays the ``dse@gN`` generation tags out of a store (directory,
    :class:`~repro.eval.store.ResultStore` or result iterable) and
    charts the hypervolume of the *cumulative* archive after each
    generation -- the standard scalar summary of front quality, so a
    search that stopped improving is visible as a flat tail.  Archive
    semantics make the trend monotonically non-decreasing by
    construction; a drop means the store holds results from mixed
    searches (use ``tag_prefix`` to isolate one).

    The reference point defaults to the archive-wide nadir pushed out
    by ``ref_margin`` of each objective's span, so every evaluated
    design contributes volume; pass ``ref_point`` explicitly to compare
    trends across stores.
    """
    points = _dse_objective_points(results, objectives, tag_prefix)
    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    if ref_point is None:
        xspan = (max(xs) - min(xs)) or 1.0
        yspan = (max(ys) - min(ys)) or 1.0
        ref_point = (max(xs) + ref_margin * xspan,
                     max(ys) + ref_margin * yspan)

    generations = sorted({p[0] for p in points})
    archive: List["tuple[float, float]"] = []
    volumes: List[float] = []
    fronts: List[int] = []
    for generation in generations:
        archive.extend((x, y) for g, x, y in points if g == generation)
        volumes.append(hypervolume_2d(archive, ref_point))
        fronts.append(len(pareto_front_indices(archive)))

    peak = max(volumes) or 1.0
    col_w = max(4, max(len(f"g{g}") for g in generations) + 1)
    grid = [[" " * col_w for _ in generations] for _ in range(height)]
    for j, volume in enumerate(volumes):
        level = round(volume / peak * height)
        for i in range(height):
            if height - i <= level:
                grid[i][j] = ("#" * (col_w - 1)).center(col_w)
    gutter = len(f"{peak:.3g} ")
    lines = [
        f"hypervolume of the cumulative DSE archive "
        f"({objectives[0]} x {objectives[1]}, "
        f"ref ({ref_point[0]:.4g}, {ref_point[1]:.4g}))"
    ]
    for i, row in enumerate(grid):
        label = f"{peak:.3g} " if i == 0 else ""
        lines.append(f"{label:>{gutter}}|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * (col_w * len(generations)))
    lines.append(
        " " * gutter + " "
        + "".join(f"g{g}".center(col_w) for g in generations)
    )
    for generation, volume, front in zip(generations, volumes, fronts):
        lines.append(
            f"  g{generation}: hv {volume:.6g} "
            f"({volume / peak:6.1%} of peak), front {front}"
        )
    return "\n".join(lines)


def render_pareto_fronts(
    results,
    objectives: Sequence[str] = ("latency_cycles", "energy_pj"),
    *,
    width: int = 44,
    height: int = 12,
    tag_prefix: Optional[str] = None,
) -> str:
    """DSE archive fronts per generation, from stored sweep results.

    ``results`` is a :class:`~repro.eval.store.ResultStore`, a store
    directory path, or any iterable of
    :class:`~repro.eval.sweeps.SweepResult`.  Generations come from the
    ``tag@gN`` labels :func:`repro.eval.dse.dse_search` stamps on its
    cases; for each generation the *cumulative* archive is scattered
    (``.``) with its current Pareto front marked (``O``) on shared
    axes, so the front's march toward the origin is visible across
    panels.  Only the first two ``objectives`` are plotted.
    """
    points = _dse_objective_points(results, objectives, tag_prefix)
    xo, yo = objectives[0], objectives[1]
    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    panels = []
    archive: List["tuple[float, float]"] = []
    for generation in sorted({p[0] for p in points}):
        archive.extend((x, y) for g, x, y in points if g == generation)
        front = set(pareto_front_indices(archive))
        grid = [[" " for _ in range(width)] for _ in range(height)]
        for i, (x, y) in enumerate(archive):
            col = round((x - xmin) / xspan * (width - 1))
            row = (height - 1) - round((y - ymin) / yspan * (height - 1))
            if grid[row][col] != "O":
                grid[row][col] = "O" if i in front else "."
        body = "\n".join("|" + "".join(row) for row in grid)
        panels.append(
            f"generation {generation}: archive {len(archive)}, "
            f"front {len(front)}\n{body}\n+" + "-" * width
        )
    header = (
        f"archive Pareto fronts ({xo} ->, {yo} v; O = front, . = "
        f"dominated; x {xmin:.3g}..{xmax:.3g}, y {ymin:.3g}..{ymax:.3g})"
    )
    return header + "\n" + "\n".join(panels)


def occupancy_from_schedule(
    completed: Iterable,  # Iterable[ScheduledTask]
    at_cycle: int,
) -> Dict[int, str]:
    """Owner map at time ``at_cycle`` from a schedule's completed tasks.

    A chiplet is owned by task T if T was active (start <= t < finish)
    at the query time; the result feeds :func:`render_occupancy`.
    """
    owners: Dict[int, str] = {}
    for scheduled in completed:
        if scheduled.start_cycle <= at_cycle < scheduled.finish_cycle:
            for cid in scheduled.placement.chiplet_ids:
                owners[cid] = scheduled.perf.task_id
    return owners
