"""ASCII visualisation of NoI designs and runtime occupancy.

Renders the paper's illustrative figures in the terminal:

* :func:`render_petals` -- Fig. 1: the petal decomposition of the grid,
  with heads/tails marked;
* :func:`render_occupancy` -- Fig. 4: mapped vs unmapped chiplets at a
  point in time;
* :func:`render_placement` -- one task's footprint on the grid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .core.floret import FloretDesign
from .core.sfc import FloretCurve
from .noi.topology import Topology

#: Petal glyphs (petal i -> letter), wraps after 26.
_PETAL_GLYPHS = "abcdefghijklmnopqrstuvwxyz"


def render_petals(curve: FloretCurve, *, mark_heads: bool = True) -> str:
    """Fig. 1 style map: one letter per petal, H/T for heads and tails.

    Heads are upper-cased; tails are rendered as ``*`` overlaying the
    petal letter when ``mark_heads`` is set.
    """
    grid: List[List[str]] = [
        ["?" for _ in range(curve.cols)] for _ in range(curve.rows)
    ]
    for seg in curve.segments:
        glyph = _PETAL_GLYPHS[seg.petal_id % len(_PETAL_GLYPHS)]
        for x, y in seg.cells:
            grid[y][x] = glyph
        if mark_heads:
            hx, hy = seg.head
            tx, ty = seg.tail
            grid[hy][hx] = glyph.upper()
            grid[ty][tx] = "*"
    return "\n".join("".join(row) for row in grid)


def render_occupancy(
    topology: Topology,
    owner_by_chiplet: Mapping[int, str],
    *,
    free_glyph: str = ".",
) -> str:
    """Fig. 4 style map: which task owns each chiplet (``.`` = unmapped).

    Each distinct owner gets a stable single-character glyph (first
    letters of sorted owner names, cycling through digits on collision).
    """
    owners = sorted(set(owner_by_chiplet.values()))
    glyphs: Dict[str, str] = {}
    used = set()
    pool = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for owner in owners:
        candidate = owner[:1].upper() or "?"
        if candidate in used:
            candidate = next(c for c in pool if c not in used)
        glyphs[owner] = candidate
        used.add(candidate)

    cols = max(c.x for c in topology.chiplets) + 1
    rows = max(c.y for c in topology.chiplets) + 1
    grid = [[" " for _ in range(cols)] for _ in range(rows)]
    for chiplet in topology.chiplets:
        owner = owner_by_chiplet.get(chiplet.index)
        grid[chiplet.y][chiplet.x] = (
            glyphs[owner] if owner is not None else free_glyph
        )
    legend = ", ".join(f"{g}={o}" for o, g in sorted(glyphs.items()))
    body = "\n".join("".join(row) for row in grid)
    return f"{body}\n[{legend or 'all free'}]"


def render_placement(
    design: FloretDesign, chiplet_ids: Sequence[int]
) -> str:
    """One task's footprint: ``#`` occupied, ``.`` free, petal letters dim."""
    owner = {cid: "task" for cid in chiplet_ids}
    return render_occupancy(design.topology, owner)


def occupancy_from_schedule(
    completed: Iterable,  # Iterable[ScheduledTask]
    at_cycle: int,
) -> Dict[int, str]:
    """Owner map at time ``at_cycle`` from a schedule's completed tasks.

    A chiplet is owned by task T if T was active (start <= t < finish)
    at the query time; the result feeds :func:`render_occupancy`.
    """
    owners: Dict[int, str] = {}
    for scheduled in completed:
        if scheduled.start_cycle <= at_cycle < scheduled.finish_cycle:
            for cid in scheduled.placement.chiplet_ids:
                owners[cid] = scheduled.perf.task_id
    return owners
