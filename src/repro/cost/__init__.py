"""Fabrication-cost models (paper Eqs. (2)-(5))."""

from .fabrication import CostReport, compare_costs, cost_ratio, normalized_cost

__all__ = ["CostReport", "compare_costs", "cost_ratio", "normalized_cost"]
