"""Fabrication-cost model: the paper's Eqs. (2)-(5).

The NoI dominates 2.5D system area (the paper cites up to 85%), so the
fabrication cost of the system tracks NoI area through wafer yield: with
defect density ``delta`` (defects/mm^2), the yield of an area-``A`` part
falls off exponentially and the normalised cost of an NoI relative to a
reference system is

    C = (N_ref / N) * exp(delta * (A_noi - A_ref))          (Eq. 2)

so the cost *ratio* of two NoIs on the same chiplet count reduces to the
difference of their NoI areas (Eq. 5):

    C_a / C_b = exp(delta * (A_a - A_b))

The reference system is AMD's 864 mm^2 / 64-chiplet interposer [1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..noi.topology import Topology
from ..params import CostParams


@dataclass(frozen=True)
class CostReport:
    """Fabrication-cost assessment of one NoI."""

    name: str
    num_chiplets: int
    noi_area_mm2: float
    normalized_cost: float

    def relative_to(self, other: "CostReport") -> float:
        """``self`` cost as a multiple of ``other`` (Eq. 5 style)."""
        if other.normalized_cost == 0:
            raise ZeroDivisionError("reference cost is zero")
        return self.normalized_cost / other.normalized_cost


def normalized_cost(
    topology: Topology, params: Optional[CostParams] = None
) -> CostReport:
    """Evaluate Eq. (2) for one NoI.

    ``N_ref / N`` uses chiplet counts (chiplets per wafer scale inversely
    with system chiplet count at fixed wafer size) and the exponential
    yield term uses the NoI area difference to the reference NoI area.
    """
    params = params or CostParams()
    area = topology.noi_area_mm2()
    scale = params.reference_chiplets / topology.num_chiplets
    cost = scale * math.exp(
        params.defect_density_per_mm2 * (area - params.reference_noi_area_mm2)
    )
    return CostReport(
        name=topology.name,
        num_chiplets=topology.num_chiplets,
        noi_area_mm2=area,
        normalized_cost=cost,
    )


def cost_ratio(
    a: Topology, b: Topology, params: Optional[CostParams] = None
) -> float:
    """Cost of NoI ``a`` relative to NoI ``b`` (paper Eq. (5)).

    For equal chiplet counts this is
    ``exp(delta * (A_a - A_b))``; the paper reports Floret cheaper than
    Kite/SIAM/SWAP by about 2.8x / 2.1x / 1.89x at 100 chiplets.
    """
    params = params or CostParams()
    return normalized_cost(a, params).relative_to(normalized_cost(b, params))


def compare_costs(
    topologies: Sequence[Topology],
    baseline: str = "floret",
    params: Optional[CostParams] = None,
) -> Dict[str, Dict[str, float]]:
    """Cost table for several NoIs, each relative to ``baseline``.

    Raises:
        KeyError: If ``baseline`` is not among the topologies.
    """
    params = params or CostParams()
    reports = {t.name: normalized_cost(t, params) for t in topologies}
    if baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not in {sorted(reports)}")
    ref = reports[baseline]
    return {
        name: {
            "noi_area_mm2": r.noi_area_mm2,
            "normalized_cost": r.normalized_cost,
            "relative_cost": r.relative_to(ref),
        }
        for name, r in reports.items()
    }
