"""3D-integration substrate: stacked PE grids and 3D SFC NoCs."""

from .grid3d import (
    VERTICAL_LINK_MM,
    Floret3DDesign,
    Grid3D,
    build_floret_3d,
    build_mesh_3d,
    grid_for_pes,
)

__all__ = [
    "Floret3DDesign",
    "Grid3D",
    "VERTICAL_LINK_MM",
    "build_floret_3d",
    "build_mesh_3d",
    "grid_for_pes",
]
