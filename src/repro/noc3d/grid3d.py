"""3D PE grid and Floret-inspired 3D SFC NoC (paper Section III).

A 3D-integrated (M3D) PIM system stacks ``tiers`` layers of PEs with the
heat sink above the top tier; the bottom tier (z = 0) is farthest from
the sink, which is why Fig. 7 examines its hotspots.  The 3D SFC NoC
threads a single contiguous curve through every PE: a boustrophedon
serpentine per tier, with a nano-scale MIV vertical hop connecting the
end of one tier to the start of the next (tiers alternate orientation so
the vertical hop connects vertically adjacent PEs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.sfc import serpentine_order
from ..noi.topology import Chiplet, Link, Topology
from ..params import NoIParams

#: Physical length of an MIV vertical hop in mm (M3D inter-tier via).
VERTICAL_LINK_MM = 0.01


@dataclass(frozen=True)
class Grid3D:
    """Shape of a 3D PE stack.

    Attributes:
        cols, rows: Planar dimensions of each tier.
        tiers: Number of stacked tiers (z = tiers - 1 touches the sink).
    """

    cols: int
    rows: int
    tiers: int

    def __post_init__(self) -> None:
        if min(self.cols, self.rows, self.tiers) <= 0:
            raise ValueError("grid dimensions must be positive")

    @property
    def num_pes(self) -> int:
        return self.cols * self.rows * self.tiers

    def index(self, x: int, y: int, z: int) -> int:
        """Dense PE index for coordinates (x, y, z)."""
        if not (0 <= x < self.cols and 0 <= y < self.rows
                and 0 <= z < self.tiers):
            raise IndexError(f"({x},{y},{z}) outside {self}")
        return z * self.cols * self.rows + y * self.cols + x

    def coords(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.num_pes:
            raise IndexError(f"PE {index} outside {self}")
        per_tier = self.cols * self.rows
        z, rem = divmod(index, per_tier)
        y, x = divmod(rem, self.cols)
        return x, y, z

    def bottom_tier_indices(self) -> List[int]:
        """PE indices of the tier farthest from the heat sink (z = 0)."""
        return list(range(self.cols * self.rows))


def grid_for_pes(num_pes: int, tiers: int = 4) -> Grid3D:
    """Choose a near-square per-tier layout for ``num_pes`` PEs.

    Raises:
        ValueError: If ``num_pes`` is not divisible by ``tiers`` or the
            per-tier count has no near-square factorisation.
    """
    if num_pes % tiers != 0:
        raise ValueError(f"{num_pes} PEs not divisible by {tiers} tiers")
    per_tier = num_pes // tiers
    from ..noi.topology import grid_dimensions

    cols, rows = grid_dimensions(per_tier)
    if cols * rows != per_tier:
        raise ValueError(f"per-tier count {per_tier} does not fill a grid")
    return Grid3D(cols=cols, rows=rows, tiers=tiers)


@dataclass(frozen=True)
class Floret3DDesign:
    """A built 3D SFC NoC.

    Attributes:
        topology: The NoC graph over all PEs.
        grid: The stack shape.
        allocation_order: PE indices in SFC visit order (the
            performance-optimal mapping order).
    """

    topology: Topology
    grid: Grid3D
    allocation_order: Tuple[int, ...]


def build_floret_3d(
    num_pes: int = 100,
    tiers: int = 4,
    *,
    params: Optional[NoIParams] = None,
    start_at_bottom: bool = True,
) -> Floret3DDesign:
    """Build the Floret-inspired 3D SFC NoC.

    The SFC serpentines through tier 0 (bottom, farthest from the sink),
    crosses one MIV to tier 1 directly above its last PE, serpentines
    back, and so on.  ``start_at_bottom=False`` starts at the sink-side
    tier instead (an ablation: performance-identical, thermally better,
    foreshadowing the MOO result).

    Intra-tier links span one PE pitch; vertical links are MIVs
    (:data:`VERTICAL_LINK_MM`), flagged ``vertical`` for the energy model.
    """
    params = params or NoIParams()
    grid = grid_for_pes(num_pes, tiers)
    pitch = params.pe_pitch_mm

    tier_range = (
        range(grid.tiers) if start_at_bottom
        else range(grid.tiers - 1, -1, -1)
    )
    order: List[int] = []
    prev_end: Optional[Tuple[int, int]] = None
    for z in tier_range:
        cells = serpentine_order(grid.cols, grid.rows)
        if prev_end is not None and cells[0] != prev_end:
            # Orient this tier's serpentine to start above the previous
            # tier's endpoint so the MIV connects vertical neighbours.
            for flip_x in (False, True):
                for flip_y in (False, True):
                    for cm in (False, True):
                        cand = serpentine_order(
                            grid.cols, grid.rows, column_major=cm,
                            flip_x=flip_x, flip_y=flip_y,
                        )
                        if cand[0] == prev_end:
                            cells = cand
                            break
                    else:
                        continue
                    break
                else:
                    continue
                break
        order.extend(grid.index(x, y, z) for x, y in cells)
        prev_end = cells[-1]

    chiplets = [
        Chiplet(index=i, x=x, y=y, z=z)
        for i in range(grid.num_pes)
        for x, y, z in [grid.coords(i)]
    ]
    links: List[Link] = []
    for a, b in zip(order, order[1:]):
        ax, ay, az = grid.coords(a)
        bx, by, bz = grid.coords(b)
        if az != bz:
            links.append(Link(a, b, length_mm=VERTICAL_LINK_MM, vertical=True))
        else:
            dist = abs(ax - bx) + abs(ay - by)
            links.append(Link(a, b, length_mm=pitch * dist))
    topology = Topology(
        "floret3d", chiplets, links, params=params, multicast_capable=True
    )
    return Floret3DDesign(
        topology=topology, grid=grid, allocation_order=tuple(order)
    )


def build_mesh_3d(
    num_pes: int = 100,
    tiers: int = 4,
    *,
    params: Optional[NoIParams] = None,
) -> Tuple[Topology, Grid3D]:
    """3D mesh NoC (planar mesh per tier + full vertical MIV columns).

    Extension baseline for 3D ablations.
    """
    params = params or NoIParams()
    grid = grid_for_pes(num_pes, tiers)
    pitch = params.pe_pitch_mm
    chiplets = [
        Chiplet(index=i, x=x, y=y, z=z)
        for i in range(grid.num_pes)
        for x, y, z in [grid.coords(i)]
    ]
    links: List[Link] = []
    for i in range(grid.num_pes):
        x, y, z = grid.coords(i)
        if x + 1 < grid.cols:
            links.append(Link(i, grid.index(x + 1, y, z), length_mm=pitch))
        if y + 1 < grid.rows:
            links.append(Link(i, grid.index(x, y + 1, z), length_mm=pitch))
        if z + 1 < grid.tiers:
            links.append(
                Link(i, grid.index(x, y, z + 1),
                     length_mm=VERTICAL_LINK_MM, vertical=True)
            )
    return (
        Topology("mesh3d", chiplets, links, params=params),
        grid,
    )
