"""SWAP NoI: application-specific small-world network synthesis.

SWAP [2] synthesises an irregular, communication-aware NoI at design
time: routers keep few ports (mostly 2-3), the link budget is small, and
link placement is optimised -- by simulated annealing -- against the
traffic of a *design-time* set of DNN workloads mapped linearly over the
chiplet sequence.  Because the optimisation is offline, the resulting
network serves the design workloads well but generalises poorly when
different task mixes arrive at runtime (the paper's Fig. 4 utilisation
argument, reproduced in ``benchmarks/bench_fig4_utilization.py``).

The synthesis here follows the small-world recipe: start from a ring
backbone (guaranteeing connectivity and 2-port routers), scatter a small
budget of chord links, then anneal chord placement to minimise
traffic-weighted path length, with a router-port cap and a physical
link-length cap of five pitches (paper: SWAP has "some longer links,
with four or five hops").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..params import NoIParams
from .topology import Chiplet, Link, Topology, grid_chiplets

#: Physical cap on synthesised link span, in pitches.
MAX_LINK_SPAN_PITCHES = 5

#: Router port cap during synthesis (SWAP uses mostly 2-3 port routers).
MAX_PORTS = 3


@dataclass(frozen=True)
class SwapSynthesisConfig:
    """Knobs of the simulated-annealing synthesis."""

    chord_budget_fraction: float = 0.25
    iterations: int = 1200
    initial_temperature: float = 1.0
    cooling: float = 0.9985
    seed: int = 2024


def design_time_traffic(
    num_chiplets: int,
    *,
    seed: int = 7,
    skip_fraction: float = 0.2,
) -> List[Tuple[int, int, float]]:
    """Synthetic design-time traffic for SWAP synthesis.

    DNN layers mapped in sequence produce dominant next-neighbour
    (chain) traffic plus a minority of skip transfers a few chiplets
    ahead -- the characteristic PIM-inference pattern the SWAP authors
    optimise for.  Volumes are normalised.
    """
    rng = random.Random(seed)
    traffic: List[Tuple[int, int, float]] = []
    for i in range(num_chiplets - 1):
        traffic.append((i, i + 1, 1.0))
    num_skips = int(skip_fraction * num_chiplets)
    for _ in range(num_skips):
        src = rng.randrange(0, num_chiplets - 3)
        dst = min(num_chiplets - 1, src + rng.randint(2, 6))
        traffic.append((src, dst, 0.35))
    return traffic


def _traffic_cost(
    graph: nx.Graph, traffic: Sequence[Tuple[int, int, float]]
) -> float:
    """Total traffic-weighted hop count (the SA objective).

    Uses a hand-rolled early-exit BFS per source: traffic sources need
    only a handful of nearby destinations, so stopping as soon as all of
    a source's destinations are found keeps each SA iteration cheap.
    """
    adjacency = {node: list(graph.adj[node]) for node in graph}
    by_src: Dict[int, List[Tuple[int, float]]] = {}
    for src, dst, volume in traffic:
        by_src.setdefault(src, []).append((dst, volume))

    cost = 0.0
    for src, wants in by_src.items():
        pending = {dst for dst, _ in wants}
        dist = {src: 0}
        frontier = [src]
        pending.discard(src)
        while frontier and pending:
            nxt: List[int] = []
            for u in frontier:
                du = dist[u]
                for v in adjacency[u]:
                    if v not in dist:
                        dist[v] = du + 1
                        pending.discard(v)
                        nxt.append(v)
            frontier = nxt
        for dst, volume in wants:
            cost += volume * dist.get(dst, len(adjacency) * 2)
    return cost


def build_swap(
    num_chiplets: int = 100,
    *,
    params: Optional[NoIParams] = None,
    config: Optional[SwapSynthesisConfig] = None,
    traffic: Optional[Sequence[Tuple[int, int, float]]] = None,
) -> Topology:
    """Synthesise a SWAP-style small-world NoI.

    Args:
        num_chiplets: Chiplet count (100 in the paper's evaluation).
        params: Hardware constants.
        config: Annealing knobs; defaults are deterministic (fixed seed).
        traffic: Design-time traffic; defaults to
            :func:`design_time_traffic`.
    """
    params = params or NoIParams()
    config = config or SwapSynthesisConfig()
    traffic = list(traffic) if traffic is not None else design_time_traffic(
        num_chiplets
    )
    rng = random.Random(config.seed)
    pitch = params.chiplet_pitch_mm
    chiplets = grid_chiplets(num_chiplets)

    def span(u: int, v: int) -> int:
        cu, cv = chiplets[u], chiplets[v]
        return abs(cu.x - cv.x) + abs(cu.y - cv.y)

    # Ring backbone over a serpentine walk so ring neighbours are
    # physically adjacent (single-pitch links).
    from ..core.sfc import serpentine_order

    cols = max(c.x for c in chiplets) + 1
    rows = max(c.y for c in chiplets) + 1
    order = [
        cell for cell in serpentine_order(cols, rows)
        if cell[1] * cols + cell[0] < num_chiplets
    ]
    cell_index = {(c.x, c.y): c.index for c in chiplets}
    walk = [cell_index[cell] for cell in order]
    backbone = {
        (min(a, b), max(a, b)) for a, b in zip(walk, walk[1:])
    }

    graph = nx.Graph()
    graph.add_nodes_from(range(num_chiplets))
    graph.add_edges_from(backbone)

    def candidate_chord() -> Optional[Tuple[int, int]]:
        for _ in range(64):
            u = rng.randrange(num_chiplets)
            v = rng.randrange(num_chiplets)
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in backbone or graph.has_edge(*key):
                continue
            if span(*key) > MAX_LINK_SPAN_PITCHES:
                continue
            if graph.degree[u] >= MAX_PORTS or graph.degree[v] >= MAX_PORTS:
                continue
            return key
        return None

    budget = max(1, int(config.chord_budget_fraction * num_chiplets))
    chords: List[Tuple[int, int]] = []
    while len(chords) < budget:
        chord = candidate_chord()
        if chord is None:
            break
        graph.add_edge(*chord)
        chords.append(chord)

    cost = _traffic_cost(graph, traffic)
    temperature = config.initial_temperature * cost / max(1, num_chiplets)
    for _ in range(config.iterations):
        if not chords:
            break
        # Move: rewire one chord.
        victim = rng.randrange(len(chords))
        old = chords[victim]
        graph.remove_edge(*old)
        new = candidate_chord()
        if new is None:
            graph.add_edge(*old)
            continue
        graph.add_edge(*new)
        new_cost = _traffic_cost(graph, traffic)
        delta = new_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            chords[victim] = new
            cost = new_cost
        else:
            graph.remove_edge(*new)
            graph.add_edge(*old)
        temperature *= config.cooling

    links = [
        Link(u, v, length_mm=pitch * span(u, v))
        for u, v in sorted(graph.edges())
    ]
    return Topology("swap", chiplets, links, params=params)
