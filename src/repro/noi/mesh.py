"""2D-mesh NoI: the SIAM / SIMBA / IntAct baseline class.

The paper treats SIAM [11] as representative of mesh-based NoIs: every
chiplet has a router linked to its 4-neighbours with single-hop
(one-pitch) links, giving mostly 3- and 4-port routers (2-port at the
corners), exactly the Fig. 2(a) mesh signature.
"""

from __future__ import annotations

from typing import List, Optional

from ..params import NoIParams
from .topology import Chiplet, Link, Topology, grid_chiplets, grid_dimensions


def build_mesh(
    num_chiplets: int = 100,
    *,
    params: Optional[NoIParams] = None,
    name: str = "siam",
) -> Topology:
    """Build a 2D-mesh NoI over a near-square chiplet grid.

    Args:
        num_chiplets: Total chiplets (100 in the paper's evaluation).
        params: Hardware constants; pitch sets all link lengths.
        name: Topology name (default ``"siam"``).
    """
    params = params or NoIParams()
    cols, rows = grid_dimensions(num_chiplets)
    chiplets = grid_chiplets(num_chiplets)
    index = {(c.x, c.y): c.index for c in chiplets}
    pitch = params.chiplet_pitch_mm

    links: List[Link] = []
    for c in chiplets:
        right = index.get((c.x + 1, c.y))
        if right is not None:
            links.append(Link(c.index, right, length_mm=pitch))
        up = index.get((c.x, c.y + 1))
        if up is not None:
            links.append(Link(c.index, up, length_mm=pitch))
    return Topology(name, chiplets, links, params=params)


def build_cmesh(
    num_chiplets: int = 100,
    concentration: int = 4,
    *,
    params: Optional[NoIParams] = None,
) -> Topology:
    """Concentrated mesh: ``concentration`` chiplets share one router.

    Provided as an extension baseline (several 2.5D works use cmesh).
    Chiplets in one concentration group link to the group leader with a
    short local link; leaders form a coarser mesh with longer links.
    """
    params = params or NoIParams()
    if concentration < 1:
        raise ValueError("concentration must be >= 1")
    cols, rows = grid_dimensions(num_chiplets)
    chiplets = grid_chiplets(num_chiplets)
    index = {(c.x, c.y): c.index for c in chiplets}
    pitch = params.chiplet_pitch_mm

    import math

    group = max(1, int(math.isqrt(concentration)))
    links: List[Link] = []

    def leader_of(c: Chiplet) -> int:
        lx = (c.x // group) * group
        ly = (c.y // group) * group
        lead = index.get((lx, ly))
        return c.index if lead is None else lead

    leaders = sorted({leader_of(c) for c in chiplets})
    for c in chiplets:
        lead = leader_of(c)
        if lead != c.index:
            dist = abs(c.x - chiplets[lead].x) + abs(c.y - chiplets[lead].y)
            links.append(Link(c.index, lead, length_mm=pitch * dist))
    leader_set = set(leaders)
    for li in leaders:
        lc = chiplets[li]
        for dx, dy in ((group, 0), (0, group)):
            neighbour = index.get((lc.x + dx, lc.y + dy))
            if neighbour is not None and neighbour in leader_set:
                links.append(
                    Link(li, neighbour, length_mm=pitch * group)
                )
    return Topology("cmesh", chiplets, links, params=params)
