"""Kite-family NoIs: torus-based interposer topologies with long links.

The Kite family [3] comprises torus-like interposer networks whose links
skip over neighbouring chiplets.  The paper's Fig. 2 characterises Kite
as: four-port routers are the most frequent, and links are "mainly
two-hop".  We build Kite as a *folded torus*: a standard 2D torus laid
out with the folding trick so that every link (including the logical
wrap-around) has a physical span of two chiplet pitches.  Variants of
the family (Butter Donut, Double Butterfly) are provided for the
extension benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..params import NoIParams
from .topology import Chiplet, Link, Topology, grid_chiplets, grid_dimensions


def _folded_position(i: int, n: int) -> int:
    """Physical column of logical index ``i`` in a folded 1-D torus.

    Folding interleaves the ring 0,1,...,n-1 as 0,2,4,...,5,3,1 so each
    logical neighbour pair sits two physical slots apart.
    """
    if i < (n + 1) // 2:
        return 2 * i
    return 2 * (n - 1 - i) + 1


def build_kite(
    num_chiplets: int = 100,
    *,
    params: Optional[NoIParams] = None,
    name: str = "kite",
) -> Topology:
    """Build the Kite (folded-torus) NoI.

    Every router has four network ports; physical link spans are two
    pitches in the folded layout (one pitch at the fold edges), matching
    the paper's "mainly two-hop links, inherently bigger routers"
    description.
    """
    params = params or NoIParams()
    cols, rows = grid_dimensions(num_chiplets)
    pitch = params.chiplet_pitch_mm

    # Logical torus coordinates -> folded physical coordinates.
    chiplets: List[Chiplet] = []
    logical_to_index: Dict[Tuple[int, int], int] = {}
    for i in range(num_chiplets):
        lx, ly = i % cols, i // cols
        px = _folded_position(lx, cols)
        py = _folded_position(ly, rows)
        logical_to_index[(lx, ly)] = i
        chiplets.append(Chiplet(index=i, x=px, y=py))

    def physical_span(a: int, b: int) -> float:
        ca, cb = chiplets[a], chiplets[b]
        return pitch * (abs(ca.x - cb.x) + abs(ca.y - cb.y))

    links: List[Link] = []
    for i in range(num_chiplets):
        lx, ly = i % cols, i // cols
        right = logical_to_index[((lx + 1) % cols, ly)]
        up = logical_to_index[(lx, (ly + 1) % rows)]
        for j in (right, up):
            key = (min(i, j), max(i, j))
            links.append(Link(key[0], key[1], length_mm=physical_span(i, j)))

    # De-duplicate wrap links that coincide for tiny grids.
    unique: Dict[Tuple[int, int], Link] = {}
    for link in links:
        unique[(min(link.u, link.v), max(link.u, link.v))] = link
    return Topology(name, chiplets, list(unique.values()), params=params)


def build_butter_donut(
    num_chiplets: int = 100,
    *,
    params: Optional[NoIParams] = None,
) -> Topology:
    """Butter Donut variant: folded torus plus diagonal express links.

    Adds an express diagonal from each even-indexed chiplet two rows and
    two columns away, increasing bisection bandwidth at the price of
    6-port routers -- used by the extension/ablation benches.
    """
    base = build_kite(num_chiplets, params=params, name="butter_donut")
    params = base.params
    cols, rows = grid_dimensions(num_chiplets)
    pitch = params.chiplet_pitch_mm
    existing = {(min(l.u, l.v), max(l.u, l.v)) for l in base.links}
    links = list(base.links)
    for i in range(num_chiplets):
        lx, ly = i % cols, i // cols
        if (lx + ly) % 2:
            continue
        tx, ty = lx + 2, ly + 2
        if tx >= cols or ty >= rows:
            continue
        j = ty * cols + tx
        key = (min(i, j), max(i, j))
        if key in existing:
            continue
        existing.add(key)
        ca, cb = base.chiplets[i], base.chiplets[j]
        span = pitch * (abs(ca.x - cb.x) + abs(ca.y - cb.y))
        links.append(Link(key[0], key[1], length_mm=span))
    return Topology("butter_donut", base.chiplets, links, params=params)


def build_double_butterfly(
    num_chiplets: int = 100,
    *,
    params: Optional[NoIParams] = None,
) -> Topology:
    """Double Butterfly variant: row-wise butterfly express channels.

    Each chiplet gains an express link to the chiplet ``2^k`` columns away
    (largest power of two fitting in its row half), a flattened-butterfly
    style shortcut [18]; provided for extension benches.
    """
    params = params or NoIParams()
    cols, rows = grid_dimensions(num_chiplets)
    pitch = params.chiplet_pitch_mm
    chiplets = grid_chiplets(num_chiplets)
    index = {(c.x, c.y): c.index for c in chiplets}

    links: List[Link] = []
    existing = set()

    def add(u: int, v: int) -> None:
        key = (min(u, v), max(u, v))
        if key in existing:
            return
        existing.add(key)
        ca, cb = chiplets[u], chiplets[v]
        span = pitch * (abs(ca.x - cb.x) + abs(ca.y - cb.y))
        links.append(Link(key[0], key[1], length_mm=span))

    for c in chiplets:
        right = index.get((c.x + 1, c.y))
        if right is not None:
            add(c.index, right)
        up = index.get((c.x, c.y + 1))
        if up is not None:
            add(c.index, up)
    # Express links: distance-4 row shortcuts on alternating rows.
    for c in chiplets:
        if c.y % 2 == 0:
            far = index.get((c.x + 4, c.y))
            if far is not None:
                add(c.index, far)
        else:
            far = index.get((c.x, c.y + 4))
            if far is not None:
                add(c.index, far)
    return Topology("double_butterfly", chiplets, links, params=params)
