"""NoI topology substrate: meshes, tori, small-world and SFC networks."""

from .kite import build_butter_donut, build_double_butterfly, build_kite
from .mesh import build_cmesh, build_mesh
from .properties import TopologySummary, compare, summarize
from .swap import SwapSynthesisConfig, build_swap, design_time_traffic
from .topology import (
    Chiplet,
    Link,
    Topology,
    grid_chiplets,
    grid_dimensions,
)

__all__ = [
    "Chiplet",
    "Link",
    "SwapSynthesisConfig",
    "Topology",
    "TopologySummary",
    "build_butter_donut",
    "build_cmesh",
    "build_double_butterfly",
    "build_kite",
    "build_mesh",
    "build_swap",
    "compare",
    "design_time_traffic",
    "grid_chiplets",
    "grid_dimensions",
    "summarize",
]
