"""Structural NoI metrics: the raw material of the paper's Fig. 2.

:func:`summarize` condenses a topology into the quantities the paper
compares across architectures -- router-port histogram (Fig. 2a), link
count and length census (Fig. 2b), NoI area, bisection width and hop
statistics -- so benchmarks and tests share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from .topology import Topology


@dataclass(frozen=True)
class TopologySummary:
    """Structural summary of one NoI architecture.

    Attributes:
        name: Topology name.
        num_chiplets: Chiplet count.
        num_links: Total link count (Fig. 2b).
        port_histogram: {router ports: count} (Fig. 2a).
        link_length_histogram: {span in pitches: count}.
        total_link_length_mm: Aggregate wire length.
        noi_area_mm2: Router + link-channel area.
        bisection_links: Links crossing the median vertical cut.
        diameter_hops: Network diameter in hops.
        average_hops: Mean shortest-path hop count.
    """

    name: str
    num_chiplets: int
    num_links: int
    port_histogram: Mapping[int, int]
    link_length_histogram: Mapping[int, int]
    total_link_length_mm: float
    noi_area_mm2: float
    bisection_links: int
    diameter_hops: int
    average_hops: float

    @property
    def mean_ports(self) -> float:
        total = sum(p * n for p, n in self.port_histogram.items())
        routers = sum(self.port_histogram.values())
        return total / routers if routers else 0.0

    def fraction_single_hop_links(self) -> float:
        """Share of links spanning exactly one pitch."""
        if self.num_links == 0:
            return 0.0
        return self.link_length_histogram.get(1, 0) / self.num_links


def summarize(topology: Topology) -> TopologySummary:
    """Compute the full structural summary of ``topology``."""
    return TopologySummary(
        name=topology.name,
        num_chiplets=topology.num_chiplets,
        num_links=topology.num_links,
        port_histogram=topology.port_histogram(),
        link_length_histogram=topology.link_length_histogram(),
        total_link_length_mm=topology.total_link_length_mm(),
        noi_area_mm2=topology.noi_area_mm2(),
        bisection_links=topology.bisection_links(),
        diameter_hops=topology.diameter_hops(),
        average_hops=topology.average_hops(),
    )


def compare(summaries: Sequence[TopologySummary]) -> Dict[str, Dict[str, float]]:
    """Cross-architecture comparison table keyed by topology name."""
    return {
        s.name: {
            "links": float(s.num_links),
            "mean_ports": s.mean_ports,
            "area_mm2": s.noi_area_mm2,
            "bisection": float(s.bisection_links),
            "avg_hops": s.average_hops,
            "diameter": float(s.diameter_hops),
            "single_hop_frac": s.fraction_single_hop_links(),
        }
        for s in summaries
    }
