"""Topology substrate: chiplet placements plus an interconnect graph.

A :class:`Topology` is the common currency of the repo: every NoI
architecture (mesh/SIAM, torus/Kite, small-world/SWAP, SFC/Floret) builds
one, and every downstream model (latency, energy, area, cost, mapping)
consumes one.  Nodes are chiplet sites on a 2D grid (3D adds a tier
coordinate); edges carry their physical length so the performance and
area models can distinguish single-hop from long links -- the distinction
the paper's Fig. 2(b) discussion hinges on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..params import NoIParams


@dataclass(frozen=True)
class Chiplet:
    """A chiplet (or PE) site.

    Attributes:
        index: Dense integer id, 0..n-1.
        x, y: Grid coordinates (grid units, multiply by pitch for mm).
        z: Tier for 3D stacks (0 = bottom, farthest from the heat sink
            when the sink is on top).
    """

    index: int
    x: int
    y: int
    z: int = 0

    def manhattan_to(self, other: "Chiplet") -> int:
        """Grid Manhattan distance (including tier difference)."""
        return (
            abs(self.x - other.x)
            + abs(self.y - other.y)
            + abs(self.z - other.z)
        )


@dataclass(frozen=True)
class Link:
    """An undirected interconnect link between two chiplet sites.

    Attributes:
        u, v: Endpoint chiplet indices.
        length_mm: Physical wire length.
        vertical: True for inter-tier (MIV/TSV) links in 3D stacks.
    """

    u: int
    v: int
    length_mm: float
    vertical: bool = False

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-link at chiplet {self.u}")
        if self.length_mm < 0:
            raise ValueError(f"link ({self.u},{self.v}): negative length")


class Topology:
    """An immutable interconnect topology over a set of chiplet sites.

    Args:
        name: Architecture name (``"floret"``, ``"siam"``, ...).
        chiplets: Chiplet sites; indices must be dense 0..n-1.
        links: Undirected links (duplicates rejected).
        params: Hardware constants used for delay/area derivations.

    The routing used by hop/latency queries is minimal-hop shortest path
    (ties broken by physical length), computed lazily and cached.
    """

    def __init__(
        self,
        name: str,
        chiplets: Sequence[Chiplet],
        links: Iterable[Link],
        params: Optional[NoIParams] = None,
        multicast_capable: bool = False,
    ) -> None:
        self.name = name
        self.params = params or NoIParams()
        #: Whether the NoI forwards one payload copy per tree link
        #: (dataflow-aware relay, the SFC feature) instead of replicating
        #: broadcast traffic as per-destination unicasts (conventional
        #: mesh/torus/small-world routers).
        self.multicast_capable = multicast_capable
        self.chiplets: Tuple[Chiplet, ...] = tuple(chiplets)
        indices = [c.index for c in self.chiplets]
        if indices != list(range(len(indices))):
            raise ValueError(f"{name}: chiplet indices must be dense 0..n-1")
        positions = Counter((c.x, c.y, c.z) for c in self.chiplets)
        clash = [pos for pos, cnt in positions.items() if cnt > 1]
        if clash:
            raise ValueError(f"{name}: multiple chiplets at {clash[:3]}")

        self.graph = nx.Graph()
        for c in self.chiplets:
            self.graph.add_node(c.index, chiplet=c)
        self.links: Tuple[Link, ...] = tuple(links)
        seen = set()
        for link in self.links:
            if not (0 <= link.u < len(self.chiplets)
                    and 0 <= link.v < len(self.chiplets)):
                raise ValueError(f"{name}: link {link} references unknown chiplet")
            key = (min(link.u, link.v), max(link.u, link.v))
            if key in seen:
                raise ValueError(f"{name}: duplicate link {key}")
            seen.add(key)
            self.graph.add_edge(
                link.u, link.v, length_mm=link.length_mm, vertical=link.vertical
            )
        self._hops_cache: Dict[int, Dict[int, int]] = {}
        self._path_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        #: Lazily built all-pairs NumPy route tables (see
        #: :mod:`repro.net.routing`); one build serves every vectorized
        #: consumer because topologies are immutable after construction.
        self._routing_tables = None

    # ------------------------------------------------------------------
    # basic shape

    @property
    def num_chiplets(self) -> int:
        return len(self.chiplets)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def chiplet(self, index: int) -> Chiplet:
        return self.chiplets[index]

    def is_connected(self) -> bool:
        """Whether every chiplet can reach every other chiplet."""
        return nx.is_connected(self.graph)

    # ------------------------------------------------------------------
    # router structure (paper Fig. 2a)

    def router_ports(self, index: int) -> int:
        """Network ports of the router at ``index`` (= graph degree).

        Matches the paper's convention: Floret's intra-petal routers count
        as 2-port routers, so the local chiplet-injection port is not
        included in the count.
        """
        return int(self.graph.degree[index])

    def port_histogram(self) -> Dict[int, int]:
        """Router-port-count histogram: {ports: number of routers}."""
        counts = Counter(self.router_ports(c.index) for c in self.chiplets)
        return dict(sorted(counts.items()))

    def mean_ports(self) -> float:
        """Average router port count."""
        return 2.0 * self.num_links / max(1, self.num_chiplets)

    # ------------------------------------------------------------------
    # link structure (paper Fig. 2b)

    def link_length_histogram(self) -> Dict[int, int]:
        """Histogram of link lengths in *hop units* (pitch multiples)."""
        pitch = self.params.chiplet_pitch_mm
        counts = Counter(
            max(1, round(link.length_mm / pitch)) if link.length_mm > 0 else 0
            for link in self.links
        )
        return dict(sorted(counts.items()))

    def total_link_length_mm(self) -> float:
        return sum(link.length_mm for link in self.links)

    # ------------------------------------------------------------------
    # routing queries

    def routing_tables(self):
        """All-pairs NumPy route tables, built once and memoized.

        Returns:
            repro.net.routing.RoutingTables: Dense hop/pipeline/energy
            matrices plus the CSR link incidence of every minimal route.
            Building the tables also warms :meth:`route`'s cache, so the
            scalar reference model and the vectorized engine share the
            exact same routes.
        """
        if self._routing_tables is None:
            from ..net.routing import build_routing_tables

            self._routing_tables = build_routing_tables(self)
        return self._routing_tables

    def hops(self, src: int, dst: int) -> int:
        """Minimal router-to-router hop count between two chiplets.

        Raises:
            nx.NetworkXNoPath: If the chiplets are disconnected.
        """
        if src == dst:
            return 0
        if self._routing_tables is not None:
            hop = int(self._routing_tables.hops[src, dst])
            if hop < 0:
                raise nx.NetworkXNoPath(f"{self.name}: no path {src}->{dst}")
            return hop
        cached = self._hops_cache.get(src)
        if cached is None:
            cached = nx.single_source_shortest_path_length(self.graph, src)
            self._hops_cache[src] = cached
        try:
            return cached[dst]
        except KeyError:
            raise nx.NetworkXNoPath(
                f"{self.name}: no path {src}->{dst}"
            ) from None

    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """A minimal-hop route as a node sequence (src..dst inclusive).

        Among minimal-hop routes, the physically shortest one is chosen,
        deterministically.
        """
        if src == dst:
            return (src,)
        key = (src, dst)
        path = self._path_cache.get(key)
        if path is None:
            # Weight = 1 + tiny * length biases ties toward short wires
            # while preserving minimal hop count.
            def weight(u: int, v: int, data: Mapping) -> float:
                return 1.0 + 1e-6 * data["length_mm"]

            path = tuple(
                nx.dijkstra_path(self.graph, src, dst, weight=weight)
            )
            self._path_cache[key] = path
        return path

    def path_length_mm(self, src: int, dst: int) -> float:
        """Total wire length along the chosen route."""
        route = self.route(src, dst)
        return sum(
            self.graph.edges[u, v]["length_mm"]
            for u, v in zip(route, route[1:])
        )

    def diameter_hops(self) -> int:
        """Maximum over all pairs of the minimal hop count."""
        return int(nx.diameter(self.graph))

    def average_hops(self) -> float:
        """Mean minimal hop count over all distinct pairs."""
        return float(nx.average_shortest_path_length(self.graph))

    # ------------------------------------------------------------------
    # global metrics

    def bisection_links(self) -> int:
        """Links crossing the median-x vertical cut (bisection width)."""
        xs = sorted(c.x for c in self.chiplets)
        median = xs[len(xs) // 2]
        count = 0
        for link in self.links:
            ux = self.chiplets[link.u].x
            vx = self.chiplets[link.v].x
            if (ux < median) != (vx < median):
                count += 1
        return count

    def noi_area_mm2(self) -> float:
        """Total NoI area: router silicon + interposer link channels."""
        router_area = sum(
            self.params.router_area_mm2(self.router_ports(c.index))
            for c in self.chiplets
        )
        link_area = sum(
            self.params.link_area_mm2(link.length_mm) for link in self.links
        )
        return router_area + link_area

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, chiplets={self.num_chiplets}, "
            f"links={self.num_links})"
        )


def grid_dimensions(num_chiplets: int) -> Tuple[int, int]:
    """Choose a near-square (cols, rows) grid holding ``num_chiplets``.

    Prefers exact factorisations closest to square (e.g. 100 -> 10x10,
    60 -> 10x6); falls back to ceil-square with a ragged last row.
    """
    if num_chiplets <= 0:
        raise ValueError("need at least one chiplet")
    best: Optional[Tuple[int, int]] = None
    for rows in range(1, int(num_chiplets ** 0.5) + 1):
        if num_chiplets % rows == 0:
            best = (num_chiplets // rows, rows)
    if best is not None and best[0] / best[1] <= 2.5:
        return best
    cols = int(num_chiplets ** 0.5 + 0.9999)
    rows = -(-num_chiplets // cols)
    return cols, rows


def grid_chiplets(num_chiplets: int) -> List[Chiplet]:
    """Place ``num_chiplets`` row-major on the :func:`grid_dimensions` grid."""
    cols, _rows = grid_dimensions(num_chiplets)
    return [
        Chiplet(index=i, x=i % cols, y=i // cols) for i in range(num_chiplets)
    ]
