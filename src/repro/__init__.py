"""repro: dataflow-aware PIM-enabled manycore architectures for DL.

Reproduction of Sharma et al., "Dataflow-Aware PIM-Enabled Manycore
Architecture for Deep Learning Workloads" (DATE 2024).

Quickstart::

    from repro import build_floret, ContiguousMapper, SystemScheduler
    from repro.workloads import mix_by_name

    design = build_floret(num_chiplets=100, petals=6)
    mapper = ContiguousMapper(design.allocation_order, design.topology)
    scheduler = SystemScheduler(design.topology, mapper)
    result = scheduler.run(mix_by_name("WL1").tasks())
    print(result.mean_packet_latency, result.utilization)

Packages:

* :mod:`repro.core` -- SFC generation, the Floret NoI, dataflow mapping,
  the multi-task scheduler, and the joint performance-thermal MOO.
* :mod:`repro.workloads` -- DNN/Transformer workload models (Tables I-II).
* :mod:`repro.noi` -- baseline NoI topologies (SIAM mesh, Kite, SWAP).
* :mod:`repro.noc3d` -- 3D stacked PE grids and the 3D SFC NoC.
* :mod:`repro.pim` -- ReRAM crossbar/chiplet models and thermal accuracy.
* :mod:`repro.net` -- analytic interconnect models + packet simulator.
* :mod:`repro.thermal` -- finite-difference thermal solver, hotspots.
* :mod:`repro.cost` -- fabrication-cost model (paper Eqs. (2)-(5)).
* :mod:`repro.eval` -- per-figure experiment drivers.
"""

from .core import (
    ContiguousMapper,
    FloretDesign,
    GreedyMapper,
    MappingProblem,
    MOOResult,
    ScheduleResult,
    SystemScheduler,
    TaskPlacement,
    build_floret,
    optimize_mapping,
)
from .params import (
    DEFAULT_PARAMS,
    CostParams,
    NoIParams,
    PIMParams,
    SystemParams,
    ThermalParams,
)

# Participates in every ResultStore key: bump on model-code changes
# below the evaluator layer so stale cached results self-invalidate.
# 1.2.0: closed-loop flow control (finite buffers / backpressure) in the
# packet simulator -- pre-flow-control cached sweep results are stale.
# 1.3.0: engine tiers epochs-par/epochs-jit and the params.sim_engine
# knob the evaluators consume -- cached results predate the engine
# field and must re-evaluate.
# 1.4.0: cross-layer batched task evaluation (evaluate_task rides
# multicast_step_cost_steps + layer_compute_vec) and the corrected
# payload-weighted hop recombination -- weighted_hops changed below
# the evaluator layer, so cached mix results must re-evaluate.
__version__ = "1.4.0"

__all__ = [
    "ContiguousMapper",
    "CostParams",
    "DEFAULT_PARAMS",
    "FloretDesign",
    "GreedyMapper",
    "MOOResult",
    "MappingProblem",
    "NoIParams",
    "PIMParams",
    "ScheduleResult",
    "SystemParams",
    "SystemScheduler",
    "TaskPlacement",
    "ThermalParams",
    "build_floret",
    "optimize_mapping",
    "__version__",
]
