"""Sweep jobs: the service-side bridge onto the drain substrate.

A job is *not* a new execution engine.  ``POST /v1/sweeps`` turns a
:class:`~repro.eval.shard.GridSpec` into the same
:func:`~repro.eval.shard.drain_cases` calls a CLI fleet makes: each
in-process worker thread opens its own :class:`~repro.eval.store
.ResultStore` handle on the shared directory, takes
``ShardSpec(i, N)`` of the grid, and claims cases through the same
``LeaseBoard`` claim files.  That is the whole point -- an external
``python -m repro.eval.shard worker`` pointed at the same store joins
the drain as a peer, steals stragglers, and everything still lands
exactly once.  Cached cases cost a store hit, never a re-evaluation,
so re-POSTing a finished grid is pure replay.

Evaluators are named through a registry rather than imported from
request bodies: store keys fold in the evaluator *source fingerprint*
(:func:`~repro.eval.store.evaluator_fingerprint`), which requires a
module-level function -- and an HTTP service that imports arbitrary
dotted paths on demand would be an injection surface.  The built-in
sweep evaluators are pre-registered; embedders add their own with
:func:`register_evaluator` before starting the service.
"""

from __future__ import annotations

import threading
import traceback
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..eval.queries import parse_result_query, query_results
from ..eval.shard import GridSpec, ShardSpec, drain_cases
from ..eval.store import (
    ResultStore,
    case_key,
    evaluator_fingerprint,
)
from ..obs.clock import Stopwatch
from ..obs.metrics import REGISTRY

__all__ = [
    "EVALUATORS",
    "JobManager",
    "SweepJob",
    "register_evaluator",
]

#: name -> module-level evaluator, the only callables the service runs.
EVALUATORS: Dict[str, Callable] = {}


def register_evaluator(name: str, evaluate: Callable) -> None:
    """Expose ``evaluate`` to ``POST /v1/sweeps`` under ``name``.

    The callable must satisfy the store's fingerprint contract (a
    module-level function -- no lambdas, closures or bound methods), so
    a bad registration fails here at startup instead of on the first
    request.
    """
    evaluator_fingerprint(evaluate)
    EVALUATORS[name] = evaluate


def _register_builtins() -> None:
    from ..eval.experiments import (
        evaluate_load_sweep_case,
        evaluate_saturation_case,
    )
    from ..eval.sweeps import evaluate_comm_case, evaluate_mix_case

    register_evaluator("evaluate_comm_case", evaluate_comm_case)
    register_evaluator("evaluate_mix_case", evaluate_mix_case)
    register_evaluator("evaluate_load_sweep_case", evaluate_load_sweep_case)
    register_evaluator("evaluate_saturation_case", evaluate_saturation_case)


_register_builtins()


class SweepJob:
    """One submitted grid being drained by in-process worker threads.

    Worker ``i`` of ``N`` runs ``drain_cases(..., shard=ShardSpec(i,
    N))`` on its *own* store handle (``ResultStore`` instances are
    single-threaded; the directory is the shared substrate) and traces
    into the job's trace directory -- the same directory the SSE
    endpoint tails, and the one an external fleet should be pointed at
    with ``--trace`` to appear in the stream.
    """

    def __init__(
        self,
        job_id: str,
        spec: GridSpec,
        evaluator_name: str,
        store_root: Path,
        trace_dir: Path,
        *,
        workers: int = 2,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.05,
        deadline_s: Optional[float] = None,
    ) -> None:
        if evaluator_name not in EVALUATORS:
            raise ValueError(
                f"unknown evaluator {evaluator_name!r} "
                f"(registered: {sorted(EVALUATORS)})"
            )
        self.job_id = job_id
        self.spec = spec
        self.evaluator_name = evaluator_name
        self.evaluate = EVALUATORS[evaluator_name]
        self.store_root = Path(store_root)
        self.trace_dir = Path(trace_dir)
        self.workers = max(1, int(workers))
        self.lease_ttl_s = float(lease_ttl_s)
        self.poll_s = float(poll_s)
        self.deadline_s = deadline_s
        self.cases = spec.cases()
        fingerprint = evaluator_fingerprint(self.evaluate)
        self.keys = [case_key(c, fingerprint) for c in self.cases]
        self.watch = Stopwatch()
        self.reports: List = []
        self.errors: List[str] = []
        self._lock = threading.Lock()
        self._live = 0
        self._done = threading.Event()
        self._threads: List[threading.Thread] = []

    # -- execution ---------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError(f"job {self.job_id} already started")
        if not self.cases:
            self._done.set()
            return
        self._live = self.workers
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run, args=(index,),
                name=f"{self.job_id}-w{index}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _run(self, index: int) -> None:
        try:
            # Own handle: the store directory is multi-writer safe, the
            # in-memory ResultStore object is not.
            store = ResultStore(self.store_root)
            report = drain_cases(
                store, self.evaluate, self.cases,
                shard=ShardSpec(index, self.workers),
                lease_ttl_s=self.lease_ttl_s,
                poll_s=self.poll_s,
                worker=f"{self.job_id}-w{index}",
                deadline_s=self.deadline_s,
                trace=str(self.trace_dir),
            )
            with self._lock:
                self.reports.append(report)
        except Exception:
            with self._lock:
                self.errors.append(traceback.format_exc(limit=8))
            REGISTRY.counter("svc_worker_errors").inc()
        finally:
            with self._lock:
                self._live -= 1
                if self._live <= 0:
                    self._done.set()

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def join(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every worker thread returned; True if they did."""
        return self._done.wait(timeout_s)

    # -- progress ----------------------------------------------------------

    def progress(self, store: ResultStore) -> Dict[str, object]:
        """done/total/failed + ETA, computed against ``store``.

        ``done`` is store membership of the job's keys -- it counts
        results produced by *any* participant of the drain, external
        workers included, not just this job's threads.  ``eta_s``
        extrapolates the observed completion rate over the remaining
        cases (``None`` until the first case lands); the per-case
        timings behind that rate ride in the trace stream.  Failures
        are per-worker (failed evaluations are never cached), so they
        are reported once the workers have returned.
        """
        total = len(self.keys)
        done = total - len(store.missing(self.keys))
        with self._lock:
            reports = list(self.reports)
            errors = list(self.errors)
        finished = self.finished
        failed = sorted({
            result.case.case_id
            for report in reports for result in report.failures
        })
        remaining = max(total - done - len(failed), 0)
        elapsed_s = self.watch.elapsed_s
        if finished or remaining == 0:
            eta_s: Optional[float] = 0.0
        elif done > 0 and elapsed_s > 0:
            eta_s = elapsed_s / done * remaining
        else:
            eta_s = None
        return {
            "job": self.job_id,
            "state": "done" if finished else "running",
            "evaluator": self.evaluator_name,
            "total": total,
            "done": done,
            "failed": len(failed),
            "failures": failed,
            "remaining": remaining,
            "eta_s": eta_s,
            "elapsed_s": elapsed_s,
            "workers": self.workers,
            "evaluated": sum(r.evaluated for r in reports),
            "store_hits": sum(r.store_hits for r in reports),
            "stolen": sum(r.stolen for r in reports),
            "worker_errors": errors,
        }


class JobManager:
    """Owns the store directory, the job table, and the read path.

    One locked read-only :class:`ResultStore` serves every progress
    check and ``/v1/results`` query -- with the store's (mtime, size)
    refresh guard, a poll over a quiescent store is pure dictionary
    work.  Job ids are opaque; grids are identified by their store
    keys, which is what makes a re-POST of a finished grid replay from
    cache instead of re-evaluating.
    """

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 2,
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.05,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.store_root = Path(store_dir)
        self.workers = max(1, int(workers))
        self.lease_ttl_s = float(lease_ttl_s)
        self.poll_s = float(poll_s)
        self.deadline_s = deadline_s
        self.read_store = ResultStore(self.store_root)
        self._store_lock = threading.Lock()
        self._jobs: Dict[str, SweepJob] = {}
        self._jobs_lock = threading.Lock()
        self._counter = 0

    def submit(
        self,
        spec: GridSpec,
        evaluator_name: str,
        *,
        workers: Optional[int] = None,
    ) -> SweepJob:
        """Create and start a job; raises ``ValueError`` on a bad spec."""
        with self._jobs_lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}-{uuid.uuid4().hex[:8]}"
        job = SweepJob(
            job_id, spec, evaluator_name,
            self.store_root,
            self.store_root / "svc-traces" / job_id,
            workers=self.workers if workers is None else workers,
            lease_ttl_s=self.lease_ttl_s,
            poll_s=self.poll_s,
            deadline_s=self.deadline_s,
        )
        with self._jobs_lock:
            self._jobs[job_id] = job
        job.start()
        REGISTRY.counter("svc_sweeps_submitted").inc()
        return job

    def get(self, job_id: str) -> Optional[SweepJob]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def job_count(self) -> int:
        with self._jobs_lock:
            return len(self._jobs)

    def progress(self, job: SweepJob) -> Dict[str, object]:
        with self._store_lock:
            return job.progress(self.read_store)

    def query(self, params) -> Dict[str, object]:
        """``GET /v1/results``: parse + execute under the store lock."""
        query = parse_result_query(params)
        with self._store_lock:
            return query_results(self.read_store, query)
