"""CLI: ``python -m repro.svc serve --store DIR [--workers N]``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .server import start_service


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.svc",
        description="HTTP sweep service over a shared ResultStore.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--store", required=True,
                       help="shared result-store directory")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback)")
    serve.add_argument("--port", type=int, default=8035,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="in-process drain threads per sweep job")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds before a claim counts as orphaned")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-job drain deadline in seconds")

    args = parser.parse_args(argv)
    service = start_service(
        args.store,
        host=args.host, port=args.port,
        workers=args.workers,
        lease_ttl_s=args.lease_ttl,
        deadline_s=args.deadline,
    )
    host, port = service.server_address[:2]
    print(f"serving sweeps from {args.store} on http://{host}:{port}",
          flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
