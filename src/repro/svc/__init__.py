"""Sweep-as-a-service: an HTTP API over the store/lease/shard substrate.

``python -m repro.svc serve --store DIR`` puts a stdlib-only HTTP
service (ROADMAP item 1) in front of the evaluation stack:

* ``POST /v1/sweeps`` -- submit a :class:`~repro.eval.shard.GridSpec`
  + registered evaluator name; an in-process worker pool drains it
  through the same ``LeaseBoard``/:func:`~repro.eval.shard.drain_cases`
  protocol external ``python -m repro.eval.shard worker`` fleets use,
  so both kinds of worker cooperate on one grid.
* ``GET /v1/sweeps/{id}`` -- progress (done/total/failed, ETA).
* ``GET /v1/sweeps/{id}/events`` -- Server-Sent Events; each frame is
  a :func:`repro.obs.report.report_data` dict (the ``report --json``
  wire format) over the job's trace directory.
* ``GET /v1/results`` -- the :mod:`repro.eval.queries` layer: axis/tag
  filters, deterministic pagination, server-side aggregates.
* ``GET /v1/healthz`` / ``GET /v1/metrics`` -- liveness + the process
  metrics-registry snapshot.

Hot scenarios are answered from the content-addressed
:class:`~repro.eval.store.ResultStore` at memory speed; only novel
cases cost simulation, and repeated queries over a quiescent store are
pure dictionary reads (no file I/O).
"""

from .jobs import EVALUATORS, JobManager, SweepJob, register_evaluator
from .server import SweepService, start_service

__all__ = [
    "EVALUATORS",
    "JobManager",
    "SweepJob",
    "SweepService",
    "register_evaluator",
    "start_service",
]
