"""Stdlib HTTP front end: routes, SSE streaming, JSON plumbing.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` only -- per the
repo's zero-dependency convention the service must run anywhere the
package does, so there is no web framework underneath.  One daemon
thread per connection is the right shape here: every endpoint is
either a dictionary read or a long-lived SSE tail, and the evaluation
work itself runs on the job's own worker threads (plus any external
fleet), never on request threads.

Wire formats are deliberately borrowed rather than invented:

* ``GET /v1/sweeps/{id}/events`` frames are
  :func:`repro.obs.report.report_data` dicts -- exactly what
  ``python -m repro.obs report --json`` prints -- fed by an
  incremental :class:`~repro.obs.watch.TraceTail` over the job's trace
  directory.  The final frame (``event: done``) is emitted after the
  job is observed finished *and* the tail has been polled once more,
  so it equals a post-hoc ``report_data()`` over the same directory.
* ``GET /v1/results`` responses are :func:`repro.eval.queries
  .query_results` dicts.
* ``GET /v1/metrics`` is the :data:`~repro.obs.metrics.REGISTRY`
  snapshot, with the service's own request counters and latency
  histogram (``svc_requests``, ``svc_request_s``) folded in alongside
  the drain substrate's.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..eval.shard import GridSpec
from ..obs.clock import clock
from ..obs.metrics import REGISTRY
from ..obs.report import report_data
from ..obs.watch import TraceTail
from .jobs import EVALUATORS, JobManager

__all__ = [
    "SweepService",
    "start_service",
]

_JOB_PATH = re.compile(r"^/v1/sweeps/([A-Za-z0-9._-]+)(/events)?$")

#: SSE tail poll interval: fast enough to feel live, slow enough that
#: an idle stream is a handful of directory scans per second.
SSE_POLL_S = 0.2


def _json_bytes(payload: object) -> bytes:
    # sort_keys so identical state serialises identically -- the warm
    # vs cold bit-identical-response contract is byte equality.
    return json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


class SweepService(ThreadingHTTPServer):
    """The server object: one :class:`~repro.svc.jobs.JobManager` + HTTP."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    # Connection: close keeps the threading model one-request-one-
    # thread; SSE streams end by the server closing the connection.
    protocol_version = "HTTP/1.1"
    server: SweepService

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        # Request logging rides the metrics/trace layer, not stderr.
        return

    def _reply(self, status: int, payload: object) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        REGISTRY.counter("svc_errors").inc()
        self._reply(status, {"error": message})

    def _observe(self, route: str, start: float) -> None:
        REGISTRY.counter("svc_requests").inc()
        REGISTRY.counter(f"svc_requests_{route}").inc()
        REGISTRY.histogram("svc_request_s").observe(clock() - start)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        start = clock()
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        try:
            if path == "/v1/healthz":
                self._reply(200, {
                    "ok": True,
                    "store": str(self.server.manager.store_root),
                    "jobs": self.server.manager.job_count(),
                })
                self._observe("healthz", start)
            elif path == "/v1/metrics":
                self._reply(200, REGISTRY.snapshot())
                self._observe("metrics", start)
            elif path == "/v1/results":
                self._get_results(parts.query)
                self._observe("results", start)
            else:
                match = _JOB_PATH.match(path)
                if not match:
                    self._error(404, f"no route for {path}")
                    return
                job = self.server.manager.get(match.group(1))
                if job is None:
                    self._error(404, f"unknown job {match.group(1)!r}")
                    return
                if match.group(2):
                    self._stream_events(job)
                    self._observe("events", start)
                else:
                    self._reply(200, self.server.manager.progress(job))
                    self._observe("sweep_status", start)
        except (BrokenPipeError, ConnectionResetError):
            REGISTRY.counter("svc_disconnects").inc()

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        start = clock()
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path != "/v1/sweeps":
                self._error(404, f"no route for {path}")
                return
            self._post_sweep()
            self._observe("sweeps", start)
        except (BrokenPipeError, ConnectionResetError):
            REGISTRY.counter("svc_disconnects").inc()

    # -- endpoint bodies ---------------------------------------------------

    def _read_body(self) -> Optional[Dict[str, object]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    def _post_sweep(self) -> None:
        body = self._read_body()
        if body is None:
            return
        grid = body.get("grid")
        if grid is None:
            self._error(400, "missing 'grid' (a GridSpec JSON object)")
            return
        try:
            spec = GridSpec.from_json(
                grid if isinstance(grid, str) else json.dumps(grid)
            )
        except (KeyError, TypeError, ValueError) as exc:
            self._error(400, f"bad grid: {exc}")
            return
        evaluator = body.get("evaluator", "evaluate_comm_case")
        if not isinstance(evaluator, str) or evaluator not in EVALUATORS:
            self._error(400, (
                f"unknown evaluator {evaluator!r} "
                f"(registered: {sorted(EVALUATORS)})"
            ))
            return
        workers = body.get("workers")
        if workers is not None and (
            not isinstance(workers, int) or workers < 1
        ):
            self._error(400, "'workers' must be a positive integer")
            return
        try:
            job = self.server.manager.submit(
                spec, evaluator, workers=workers,
            )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._reply(201, {
            "job": job.job_id,
            "total": len(job.cases),
            "evaluator": job.evaluator_name,
            "workers": job.workers,
            "trace_dir": str(job.trace_dir),
            "status_url": f"/v1/sweeps/{job.job_id}",
            "events_url": f"/v1/sweeps/{job.job_id}/events",
        })

    def _get_results(self, query_string: str) -> None:
        params = parse_qs(query_string, keep_blank_values=False)
        try:
            payload = self.server.manager.query(params)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._reply(200, payload)

    def _stream_events(self, job) -> None:
        """SSE: ``report`` frames while draining, one ``done`` frame.

        Ordering is the correctness story: ``finished`` is sampled
        *before* each poll, so the ``done`` frame always includes every
        record that existed when the job completed -- it is the same
        dict a post-hoc ``report_data(trace_dir)`` produces, because
        both are ``merge_traces`` over the same set of records.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        tail = TraceTail(job.trace_dir)
        seen = 0
        while True:
            finished = job.finished
            tail.poll()
            # Emit on news or state change; an idle drain produces
            # polls, not frames.
            if len(tail.records) != seen or finished:
                seen = len(tail.records)
                frame = report_data(tail.records)
                event = "done" if finished else "report"
                self.wfile.write(
                    b"event: " + event.encode("ascii") + b"\n"
                    b"data: " + _json_bytes(frame) + b"\n\n"
                )
                self.wfile.flush()
                REGISTRY.counter("svc_sse_frames").inc()
            if finished:
                return
            time.sleep(SSE_POLL_S)


def start_service(
    store_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    lease_ttl_s: float = 30.0,
    deadline_s: Optional[float] = None,
) -> SweepService:
    """Build a ready-to-serve :class:`SweepService` (not yet serving).

    ``port=0`` binds an ephemeral port -- read it back from
    ``service.server_address``.  Call ``serve_forever()`` (or run it on
    a thread) to start handling requests, ``shutdown()`` + ``
    server_close()`` to stop.
    """
    manager = JobManager(
        store_dir, workers=workers,
        lease_ttl_s=lease_ttl_s, deadline_s=deadline_s,
    )
    return SweepService((host, port), manager)
