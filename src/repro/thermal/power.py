"""Per-PE power extraction from a mapped workload.

The Section III evaluation runs one DNN in steady-state streaming on the
3D stack: every layer's PEs compute continuously at the pipeline's
bottleneck interval, so a PE's dynamic power is the energy of its resident
layer slices per inference divided by the bottleneck interval.  PEs that
execute the activation-heavy early layers burn the most power -- exactly
the PEs the paper says must not be stacked in one column far from the
heat sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..net.perf import TaskPerf, evaluate_task
from ..noi.topology import Topology
from ..pim.allocation import AllocationPlan
from ..pim.chiplet import ChipletSpec, layer_compute
from ..workloads.dnn import DNNModel


@dataclass(frozen=True)
class PowerProfile:
    """Power assignment for one mapped task on a PE array."""

    power_w: np.ndarray
    bottleneck_cycles: int
    perf: TaskPerf

    @property
    def total_w(self) -> float:
        return float(self.power_w.sum())


def streaming_power(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    *,
    spec: Optional[ChipletSpec] = None,
    include_static: bool = True,
    include_noi: bool = True,
) -> PowerProfile:
    """Per-PE power for steady-state streaming inference.

    Power composition per PE:

    * compute: resident layer slices' MVM energy per inference divided by
      the pipeline bottleneck interval (the slowest layer step);
    * NoI: the task's communication energy per inference, split over the
      task's PEs (routers sit with the PEs), divided by the same interval;
    * static: chiplet leakage, always on.

    Returns power for every PE of ``topology`` (PEs outside the task get
    only static power if ``include_static``).
    """
    spec = spec or ChipletSpec.from_params()
    perf = evaluate_task(
        topology, model, plan, chiplet_ids, spec=spec
    )
    # Bottleneck interval: the slowest per-layer step bounds streaming
    # throughput.
    from ..pim.allocation import layer_crossbar_allocation

    crossbar_shares = layer_crossbar_allocation(model, plan, spec)
    bottleneck = 1
    layer_energies: Dict[int, float] = {}
    for layer in model.weight_layers():
        places = plan.layer_chiplets.get(layer.index, ())
        compute = layer_compute(
            layer, max(1, len(places)), spec,
            crossbars_available=crossbar_shares.get(layer.index),
        )
        bottleneck = max(bottleneck, compute.latency_cycles)
        layer_energies[layer.index] = compute.energy_pj

    n = topology.num_chiplets
    power = np.zeros(n)
    clock_hz = topology.params.clock_ghz * 1e9
    interval_s = bottleneck / clock_hz
    # Compute power: split each layer's energy over its PEs by slice
    # fraction.
    for layer_index, energy_pj in layer_energies.items():
        for pos, fraction in plan.layer_chiplets.get(layer_index, ()):
            pe = chiplet_ids[pos]
            power[pe] += energy_pj * 1e-12 * fraction / interval_s
    if include_noi and perf.noi_energy_pj > 0 and chiplet_ids:
        share = perf.noi_energy_pj * 1e-12 / interval_s / len(chiplet_ids)
        for pe in chiplet_ids:
            power[pe] += share
    if include_static:
        power += spec.static_power_w
    return PowerProfile(
        power_w=power, bottleneck_cycles=bottleneck, perf=perf
    )


def weight_fractions_per_pe(
    n_pes: int, plan: AllocationPlan, chiplet_ids: Sequence[int]
) -> List[float]:
    """Fraction of the task's weights resident on each PE.

    Used by the accuracy model to weight per-PE thermal noise by how many
    of the model's weights each PE actually stores.
    """
    weights = np.zeros(n_pes)
    for pos, load in enumerate(plan.loads):
        weights[chiplet_ids[pos]] += load.total_weights
    total = weights.sum()
    if total == 0:
        return [0.0] * n_pes
    return list(weights / total)
