"""Hotspot-map utilities for the paper's Fig. 7.

Fig. 7 shows the bottom tier (farthest from the heat sink) of the 100-PE
stack running ResNet-34: the performance-only (Floret) mapping
concentrates power and produces hotspots ~17 K hotter than the joint
performance-thermal mapping.  These helpers extract tier maps, count
hotspots, and render ASCII heat maps for the benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..noc3d.grid3d import Grid3D
from .model import ThermalReport

#: Default hotspot threshold: the ReRAM conductance-window knee [20].
HOTSPOT_THRESHOLD_K = 330.0

_SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class HotspotReport:
    """Bottom-tier hotspot summary for one mapping."""

    label: str
    peak_k: float
    tier_peak_k: float
    tier_mean_k: float
    hotspot_pes: int
    tier_map_k: np.ndarray

    def delta_peak(self, other: "HotspotReport") -> float:
        """Peak-temperature difference to another mapping (K)."""
        return self.peak_k - other.peak_k


def analyze_tier(
    report: ThermalReport,
    grid: Grid3D,
    *,
    tier: int = 0,
    label: str = "",
    threshold_k: float = HOTSPOT_THRESHOLD_K,
) -> HotspotReport:
    """Summarise one tier of a thermal solution (default: bottom tier)."""
    tier_map = report.tier_map(grid, tier)
    return HotspotReport(
        label=label,
        peak_k=report.peak_k,
        tier_peak_k=float(tier_map.max()),
        tier_mean_k=float(tier_map.mean()),
        hotspot_pes=int((tier_map > threshold_k).sum()),
        tier_map_k=tier_map,
    )


def render_tier_ascii(
    tier_map: np.ndarray,
    *,
    low_k: Optional[float] = None,
    high_k: Optional[float] = None,
) -> str:
    """ASCII heat map of a tier (darker character = hotter PE).

    The scale is [low_k, high_k] (defaults: map min/max) so two mappings
    can be rendered on a shared scale for side-by-side comparison.
    """
    low = float(tier_map.min()) if low_k is None else low_k
    high = float(tier_map.max()) if high_k is None else high_k
    span = max(high - low, 1e-9)
    rows: List[str] = []
    for row in tier_map:
        chars = []
        for t in row:
            level = (float(t) - low) / span
            level = min(max(level, 0.0), 1.0)
            chars.append(_SHADES[int(level * (len(_SHADES) - 1))])
        rows.append("".join(chars))
    return "\n".join(rows)
