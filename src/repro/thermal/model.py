"""Steady-state finite-difference thermal solver for 3D PE stacks.

One thermal node per PE.  Conductances: lateral between planar
neighbours, vertical between stacked neighbours (much larger -- thin ILD,
M3D), and from every top-tier PE to the heat sink at ambient.  Solving

    G . T = P + G_sink . T_ambient

for the steady-state temperature vector is a sparse linear system; the
conductance matrix depends only on the grid, so its LU factorisation is
computed once per :class:`ThermalModel` and reused across the hundreds
of mapping evaluations the MOO performs.

This substitutes for the commercial thermal flow the paper used; the
ordering of mappings by peak temperature -- which is what the MOO and
Figs. 6(b)/7 need -- is governed by where power sits relative to the
sink, which the coarse FD model captures (DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.sparse import csc_matrix, lil_matrix
from scipy.sparse.linalg import splu

from ..noc3d.grid3d import Grid3D
from ..params import ThermalParams


@dataclass(frozen=True)
class ThermalReport:
    """Solved temperature field for one power assignment."""

    temperatures_k: np.ndarray
    ambient_k: float

    @property
    def peak_k(self) -> float:
        return float(self.temperatures_k.max())

    @property
    def mean_k(self) -> float:
        return float(self.temperatures_k.mean())

    def tier_map(self, grid: Grid3D, tier: int) -> np.ndarray:
        """Temperature map of one tier as a (rows, cols) array."""
        per_tier = grid.cols * grid.rows
        start = tier * per_tier
        return self.temperatures_k[start:start + per_tier].reshape(
            grid.rows, grid.cols
        )

    def hotspot_count(self, threshold_k: float) -> int:
        """PEs hotter than ``threshold_k``."""
        return int((self.temperatures_k > threshold_k).sum())


class ThermalModel:
    """Reusable thermal solver for one 3D grid.

    Args:
        grid: Stack shape; the heat sink sits above tier ``tiers - 1``.
        params: Conductance constants.
    """

    def __init__(self, grid: Grid3D, params: Optional[ThermalParams] = None):
        self.grid = grid
        self.params = params or ThermalParams()
        self._lu = splu(csc_matrix(self._conductance_matrix()))

    def _conductance_matrix(self) -> lil_matrix:
        grid = self.grid
        p = self.params
        n = grid.num_pes
        g = lil_matrix((n, n))

        def couple(i: int, j: int, conductance: float) -> None:
            g[i, i] += conductance
            g[j, j] += conductance
            g[i, j] -= conductance
            g[j, i] -= conductance

        for i in range(n):
            x, y, z = grid.coords(i)
            if x + 1 < grid.cols:
                couple(i, grid.index(x + 1, y, z),
                       p.lateral_conductance_w_per_k)
            if y + 1 < grid.rows:
                couple(i, grid.index(x, y + 1, z),
                       p.lateral_conductance_w_per_k)
            if z + 1 < grid.tiers:
                couple(i, grid.index(x, y, z + 1),
                       p.vertical_conductance_w_per_k)
            if z == grid.tiers - 1:
                g[i, i] += p.sink_conductance_w_per_k
        return g

    def solve(self, power_w: Sequence[float]) -> ThermalReport:
        """Steady-state temperatures for a per-PE power vector (watts).

        Raises:
            ValueError: On length mismatch or negative power.
        """
        power = np.asarray(power_w, dtype=float)
        if power.shape != (self.grid.num_pes,):
            raise ValueError(
                f"power vector has shape {power.shape}, expected "
                f"({self.grid.num_pes},)"
            )
        if (power < 0).any():
            raise ValueError("negative PE power")
        p = self.params
        rhs = power.copy()
        # Sink boundary: top-tier nodes exchange with ambient.
        per_tier = self.grid.cols * self.grid.rows
        top = slice((self.grid.tiers - 1) * per_tier, self.grid.num_pes)
        rhs[top] += p.sink_conductance_w_per_k * p.ambient_k
        temps = self._lu.solve(rhs)
        return ThermalReport(temperatures_k=temps, ambient_k=p.ambient_k)
