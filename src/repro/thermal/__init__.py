"""Thermal substrate: FD solver, power extraction, hotspot analysis."""

from .hotspot import (
    HOTSPOT_THRESHOLD_K,
    HotspotReport,
    analyze_tier,
    render_tier_ascii,
)
from .model import ThermalModel, ThermalReport
from .power import PowerProfile, streaming_power, weight_fractions_per_pe

__all__ = [
    "HOTSPOT_THRESHOLD_K",
    "HotspotReport",
    "PowerProfile",
    "ThermalModel",
    "ThermalReport",
    "analyze_tier",
    "render_tier_ascii",
    "streaming_power",
    "weight_fractions_per_pe",
]
