"""Closed-loop flow control: finite buffers, credits and link telemetry.

The open-loop simulator engines in :mod:`repro.net.simulator` inject on
schedule regardless of network state, so past saturation their latency
curves diverge unboundedly.  This module adds the closed loop:

* **finite per-link buffers with credit-based backpressure** -- each
  directed link owns a downstream input buffer of
  ``buffer_flits`` flits.  A packet may only start serialising onto a
  link when the link is free *and* enough credits (buffer space) remain;
  it returns the credits of its *previous* link when it is granted the
  next one (or ejects), ``credit_rtt`` cycles later.  Packets therefore
  stall at the upstream hop while the downstream queue is full.
* **per-source injection queues** -- with ``source_queue = Q`` at most
  ``Q`` packets per source may be waiting to start their first link;
  the generator defers further injections (their effective inject time
  shifts) until a slot frees, one cycle after the blocking packet
  starts serialising.

Per the repo's oracle pattern the semantics are implemented twice and
pinned bit-exactly to each other (``tests/test_flowcontrol.py``):

* :func:`simulate_fc_events` -- an event-heap oracle.  Credit returns
  are first-class heap events; FIFO per link follows (event cycle,
  packet id) order, releases processed before requests on ties.  (The
  open-loop engines break same-cycle ties by event *push* order
  instead; with flow control inactive the open-loop engines run
  untouched, so pre-flow-control results are bit-stable.)
* :func:`simulate_fc_epochs` -- the vectorized epoch-synchronous
  engine.  Credit counters ride as per-link arrays inside the same
  segmented-scan grant loop the open-loop epoch engine uses; each
  epoch finalises the provably-safe prefix of every link's FIFO queue.

  Safety argument: let ``b_e`` be the FIFO bound of link ``e``'s head
  request (ready vs. link busy time) and ``c_e`` its credit bound under
  the currently *known* release schedule.  Every future grant starts at
  or after ``T = min over heads of max(b_e, c_e)`` (the least fixed
  point of ``T = min_e max(b_e, min(c_e, T + credit_rtt))``), so every
  not-yet-scheduled credit release lands at or after ``T + credit_rtt``
  and every not-yet-generated request event at or after ``T + guard``
  (``guard >= 1``).  A queue-prefix grant whose event cycle and credit
  bound fall below those horizons can never be invalidated, which makes
  the epoch engine event-loop exact, including FIFO tie-breaks.
  ``T`` diverging to infinity means every head waits on credits no
  possible release covers: a genuine credit deadlock, raised as
  :class:`FlowControlDeadlockError` by both engines (store-and-forward
  networks with cyclic routes *can* deadlock under tiny buffers).

Both engines record a :class:`GrantTrace` (one row per link grant);
:func:`link_telemetry` folds a trace into the order-invariant
:class:`LinkTelemetry` census (accepted flits, busy cycles, stall
cycles, peak/mean queue depth), so telemetry is bit-exact across
engines by construction.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "FlowControlDeadlockError",
    "FlowControlParams",
    "GrantTrace",
    "LinkTelemetry",
    "link_telemetry",
    "simulate_fc_events",
    "simulate_fc_epochs",
]

#: Sentinels for "no known release satisfies this deficit" (huge) and
#: "no credit constraint at all" (tiny); both comfortably inside int64.
_INF = np.int64(2 ** 62)
_NEG = np.int64(-(2 ** 62))


@dataclass(frozen=True)
class FlowControlParams:
    """Closed-loop injection/backpressure knobs.

    Attributes:
        buffer_flits: Downstream input-buffer capacity of every directed
            link, in flits.  ``None`` = infinite buffers (open loop,
            exact backward compatibility).  Must cover the largest
            packet (``ceil(packet_bytes / flit_bytes)`` flits) or the
            simulation raises: a packet larger than the buffer could
            never be forwarded.
        source_queue: Maximum packets per source waiting to start their
            first link; ``None`` = unbounded (open-loop injection).
        credit_rtt: Cycles for a freed credit to travel back upstream.
            At least 1 -- a credit cannot act in the cycle it is freed,
            which is also what bounds the epoch engine's safe horizon.
    """

    buffer_flits: Optional[int] = None
    source_queue: Optional[int] = None
    credit_rtt: int = 1

    def __post_init__(self) -> None:
        if self.buffer_flits is not None and self.buffer_flits < 1:
            raise ValueError(
                f"buffer_flits must be None or >= 1, got {self.buffer_flits}"
            )
        if self.source_queue is not None and self.source_queue < 1:
            raise ValueError(
                f"source_queue must be None or >= 1, got {self.source_queue}"
            )
        if self.credit_rtt < 1:
            raise ValueError(
                f"credit_rtt must be >= 1 (credits cannot act in the "
                f"cycle they are freed), got {self.credit_rtt}"
            )

    @property
    def is_active(self) -> bool:
        """Whether any closed-loop mechanism is enabled."""
        return self.buffer_flits is not None or self.source_queue is not None


class FlowControlDeadlockError(RuntimeError):
    """Credit deadlock: a cycle of full buffers that can never drain.

    Attributes:
        blocked: Packets that can never be delivered.
        links: Sorted directed-link ids with waiting (undeliverable)
            requests at detection time.
    """

    def __init__(self, fc: FlowControlParams, blocked: int, links) -> None:
        self.blocked = int(blocked)
        self.links = tuple(int(e) for e in links)
        shown = ", ".join(str(e) for e in self.links[:8])
        more = "..." if len(self.links) > 8 else ""
        super().__init__(
            f"credit deadlock: {self.blocked} packets blocked on full "
            f"buffers (links {shown}{more}) with "
            f"buffer_flits={fc.buffer_flits}, credit_rtt={fc.credit_rtt}; "
            f"enlarge the buffers or break the cyclic route dependency"
        )


@dataclass(frozen=True)
class GrantTrace:
    """One row per link grant: the shared telemetry substrate.

    Both flow-control engines (and, with ``telemetry=True``, the
    open-loop engines and the contention-free fast path) emit one of
    these; :func:`link_telemetry` reduces it with order-invariant
    aggregations, so engine-order differences cannot leak into the
    telemetry counters.

    Attributes:
        packet: Global packet index (packetisation order).
        hop: Hop position of the grant within the packet's route.
        link: Directed link id granted.
        ready: Cycle the request entered the link's queue (includes the
            injection pipeline at hop 0).
        start: Cycle serialisation started.
        flits: Packet length in flits.
        credit_wait: Cycles of ``start - ready`` attributable to credit
            starvation (0 in open loop).
    """

    packet: np.ndarray
    hop: np.ndarray
    link: np.ndarray
    ready: np.ndarray
    start: np.ndarray
    flits: np.ndarray
    credit_wait: np.ndarray

    @property
    def grants(self) -> int:
        return int(self.packet.shape[0])

    def sorted(self) -> "GrantTrace":
        """Rows in deterministic (packet, hop) order, for comparisons."""
        order = np.lexsort((self.hop, self.packet))
        return GrantTrace(*(getattr(self, f)[order] for f in _TRACE_FIELDS))

    @staticmethod
    def empty() -> "GrantTrace":
        e = np.empty(0, dtype=np.int64)
        return GrantTrace(e, e.copy(), e.copy(), e.copy(), e.copy(),
                          e.copy(), e.copy())

    @staticmethod
    def concat(parts: List["GrantTrace"]) -> "GrantTrace":
        parts = [p for p in parts if p.grants]
        if not parts:
            return GrantTrace.empty()
        return GrantTrace(*(
            np.concatenate([getattr(p, f) for p in parts])
            for f in _TRACE_FIELDS
        ))


_TRACE_FIELDS = ("packet", "hop", "link", "ready", "start", "flits",
                 "credit_wait")


def _trace_from_chunks(chunks) -> GrantTrace:
    """Build a :class:`GrantTrace` from per-epoch/per-grant column tuples."""
    if not chunks:
        return GrantTrace.empty()
    cols = []
    for i in range(len(_TRACE_FIELDS)):
        cols.append(np.concatenate([
            np.atleast_1d(np.asarray(chunk[i], dtype=np.int64))
            for chunk in chunks
        ]))
    return GrantTrace(*cols)


@dataclass(frozen=True)
class LinkTelemetry:
    """Per-directed-link census of one simulation run.

    All arrays are ``(L,)`` over the topology's directed links.  Under
    store-and-forward serialisation at one flit per cycle,
    ``busy_cycles`` equals ``accepted_flits``; both are kept because
    they answer different questions (traffic vs. occupancy).

    Attributes:
        horizon_cycles: Completion cycle of the last packet (makespan).
        accepted_packets: Packets serialised onto each link.
        accepted_flits: Flits serialised onto each link.
        busy_cycles: Cycles each link spent serialising.
        stall_cycles: Total cycles packets waited in each link's queue
            (sum of ``start - ready``).
        credit_stall_cycles: The share of ``stall_cycles`` attributable
            to credit starvation (backpressure); 0 in open loop.
        peak_queue_flits: Peak simultaneous flits waiting for the link.
        mean_queue_flits: Time-averaged waiting flits over the horizon.
    """

    horizon_cycles: int
    accepted_packets: np.ndarray
    accepted_flits: np.ndarray
    busy_cycles: np.ndarray
    stall_cycles: np.ndarray
    credit_stall_cycles: np.ndarray
    peak_queue_flits: np.ndarray
    mean_queue_flits: np.ndarray

    @property
    def num_directed_links(self) -> int:
        return int(self.accepted_flits.shape[0])

    def utilization(self) -> np.ndarray:
        """Busy fraction of each link over the simulation horizon."""
        horizon = max(1, self.horizon_cycles)
        return self.busy_cycles.astype(np.float64) / horizon

    @property
    def total_accepted_flits(self) -> int:
        return int(self.accepted_flits.sum())

    @property
    def total_stall_cycles(self) -> int:
        return int(self.stall_cycles.sum())


def link_telemetry(trace: GrantTrace, num_links: int,
                   horizon_cycles: int) -> LinkTelemetry:
    """Reduce a :class:`GrantTrace` to per-link telemetry counters.

    Every aggregation is order-invariant over trace rows, so engines
    that emit grants in different orders (heap: decision order; epochs:
    link-major per epoch) produce identical telemetry.
    """
    L = int(num_links)
    link = trace.link
    f = trace.flits
    wait = trace.start - trace.ready
    accepted_packets = np.bincount(link, minlength=L)
    accepted_flits = np.bincount(link, weights=f, minlength=L).astype(
        np.int64
    )
    stall = np.bincount(link, weights=wait, minlength=L).astype(np.int64)
    credit_stall = np.bincount(
        link, weights=trace.credit_wait, minlength=L
    ).astype(np.int64)
    mean_queue = (
        np.bincount(link, weights=f * wait, minlength=L)
        / max(1, horizon_cycles)
    )
    peak = np.zeros(L, dtype=np.int64)
    if trace.grants:
        # Waiting interval of each grant is [ready, start): +flits at
        # ready, -flits at start, departures before arrivals on ties so
        # zero-length waits contribute nothing.
        ev_link = np.concatenate([link, link])
        ev_time = np.concatenate([trace.ready, trace.start])
        ev_kind = np.concatenate([
            np.ones(trace.grants, dtype=np.int64),
            np.zeros(trace.grants, dtype=np.int64),
        ])
        ev_delta = np.concatenate([f, -f])
        order = np.lexsort((ev_kind, ev_time, ev_link))
        el, ed = ev_link[order], ev_delta[order]
        seg_head = np.empty(el.shape[0], dtype=bool)
        seg_head[0] = True
        seg_head[1:] = el[1:] != el[:-1]
        seg_starts = np.flatnonzero(seg_head)
        running = np.cumsum(ed)
        base = np.zeros(seg_starts.shape[0], dtype=np.int64)
        base[1:] = running[seg_starts[1:] - 1]
        seg_id = np.cumsum(seg_head) - 1
        running -= base[seg_id]
        seg_peak = np.maximum.reduceat(running, seg_starts)
        peak[el[seg_starts]] = np.maximum(seg_peak, 0)
    return LinkTelemetry(
        horizon_cycles=int(horizon_cycles),
        accepted_packets=accepted_packets.astype(np.int64),
        accepted_flits=accepted_flits,
        busy_cycles=accepted_flits.copy(),
        stall_cycles=stall,
        credit_stall_cycles=credit_stall,
        peak_queue_flits=peak,
        mean_queue_flits=mean_queue,
    )


# ---------------------------------------------------------------------------
# event-heap oracle


def _source_groups(inject, src, ids, queue: int):
    """Per-source packet order for the injection-queue gate.

    Returns ``(initial, successor)``: the packets eligible at their
    natural inject cycle (the first ``queue`` per source) and the map
    ``packet -> packet released by its first-link grant`` (the packet
    ``queue`` positions later in the same source's (inject, id) order).
    """
    by_src = {}
    for i in sorted(ids.tolist(), key=lambda i: (int(inject[i]), i)):
        by_src.setdefault(int(src[i]), []).append(i)
    successor = {}
    initial = []
    for group in by_src.values():
        initial.extend(group[:queue])
        for pos, pkt in enumerate(group):
            if pos + queue < len(group):
                successor[pkt] = group[pos + queue]
    return initial, successor


def simulate_fc_events(
    tables,
    fc: FlowControlParams,
    inject: np.ndarray,
    src: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    collect_trace: bool = False,
) -> Optional[GrantTrace]:
    """Event-heap oracle for closed-loop flow control, in place.

    The exact reference: :func:`simulate_fc_epochs` is pinned to this
    bit-for-bit.  Heap keys are ``(cycle, kind, ...)`` with credit
    releases (kind 0) processed before requests (kind 1) on the same
    cycle, and request ties broken by global packet id -- the FIFO
    discipline both engines implement.
    """
    route_links = tables.route_links
    stage = tables.stage_cycles
    link_u = tables.link_u
    queue_index = tables.queue_index()
    hop_delta = queue_index.hop_delta
    capacity = queue_index.buffer_capacity_flits(fc)
    rtt = int(fc.credit_rtt)
    free = capacity.copy() if capacity is not None else None

    REL, REQ = 0, 1
    events: List[Tuple[int, int, int, int]] = []
    link_free = {}
    queues = {}
    rows: Optional[list] = [] if collect_trace else None

    if fc.source_queue is not None:
        initial, successor = _source_groups(
            inject, src, contended_ids, fc.source_queue
        )
    else:
        initial, successor = contended_ids.tolist(), {}
    for i in initial:
        heapq.heappush(events, (int(inject[i]), REQ, i, 0))

    expected = int(contended_ids.size)
    delivered = 0

    def serve(edge: int, now: int) -> None:
        queue = queues.get(edge)
        while queue:
            ready, pkt, hop = queue[0]
            f = int(flits[pkt])
            if free is not None and free[edge] < f:
                return
            queue.popleft()
            floor = max(ready, link_free.get(edge, 0))
            start = max(floor, now)
            if free is not None:
                free[edge] -= f
            link_free[edge] = start + f
            if rows is not None:
                rows.append((pkt, hop, edge, ready, start, f, start - floor))
            arrival = start + f + int(hop_delta[edge])
            heapq.heappush(events, (arrival, REQ, pkt, hop + 1))
            if hop > 0 and free is not None:
                prev = int(route_links[int(starts[pkt]) + hop - 1])
                heapq.heappush(events, (start + rtt, REL, prev, f))
            if hop == 0:
                released = successor.pop(pkt, None)
                if released is not None:
                    heapq.heappush(events, (
                        max(int(inject[released]), start + 1),
                        REQ, released, 0,
                    ))

    while events:
        now, kind, a, b = heapq.heappop(events)
        if kind == REL:
            free[a] += b
            serve(a, now)
            continue
        pkt, hop = a, b
        if hop >= int(hops[pkt]):
            completion[pkt] = now
            latencies[pkt] = now - int(inject[pkt])
            delivered += 1
            if free is not None:
                last = int(route_links[int(starts[pkt]) + hop - 1])
                heapq.heappush(events, (now + rtt, REL, last,
                                        int(flits[pkt])))
            continue
        edge = int(route_links[int(starts[pkt]) + hop])
        ready = now + (int(stage[link_u[edge]]) if hop == 0 else 0)
        queues.setdefault(edge, deque()).append((ready, pkt, hop))
        serve(edge, now)

    if delivered < expected:
        waiting = sorted(e for e, q in queues.items() if q)
        raise FlowControlDeadlockError(fc, expected - delivered, waiting)
    if rows is None:
        return None
    return _trace_from_chunks([tuple(np.array(col, dtype=np.int64)
                                     for col in zip(*rows))]
                              if rows else [])


# ---------------------------------------------------------------------------
# epoch-synchronous vectorized engine


def _credit_ready_times(
    e_s: np.ndarray,
    deficit: np.ndarray,
    rel_link: np.ndarray,
    rel_time: np.ndarray,
    rel_amt: np.ndarray,
) -> np.ndarray:
    """Earliest cycle the known release schedule covers each deficit.

    ``_NEG`` where no credits are needed (deficit <= 0), ``_INF`` where
    no known release ever covers the deficit.  Releases are consulted
    per link in time order; amounts accumulate.
    """
    c = np.full(e_s.shape[0], _NEG, dtype=np.int64)
    needy = deficit > 0
    if not needy.any():
        return c
    c[needy] = _INF
    if rel_time.size == 0:
        return c
    # Releases sorted by (link, time); within-link cumulative amounts
    # lifted onto disjoint per-link key bands so one global searchsorted
    # answers "first release where this link's cumulative covers the
    # deficit" for every request at once.  A deficit beyond the band
    # (or landing in another link's band) is uncovered -> _INF.
    order = np.lexsort((rel_time, rel_link))
    rl, rt, ra = rel_link[order], rel_time[order], rel_amt[order]
    head = np.empty(rl.shape[0], dtype=bool)
    head[0] = True
    head[1:] = rl[1:] != rl[:-1]
    cum = np.cumsum(ra)
    block_first = np.flatnonzero(head)[np.cumsum(head) - 1]
    cum_in = cum - (cum[block_first] - ra[block_first])
    band = int(cum_in.max()) + 1
    keys = rl * band + cum_in
    query = e_s[needy] * band + deficit[needy]
    pos = np.searchsorted(keys, query, side="left")
    covered = pos < keys.shape[0]
    covered[covered] &= rl[pos[covered]] == e_s[needy][covered]
    times = np.full(query.shape[0], _INF, dtype=np.int64)
    times[covered] = rt[pos[covered]]
    c[needy] = times
    return c


def simulate_fc_epochs(
    tables,
    fc: FlowControlParams,
    inject: np.ndarray,
    src: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    collect_trace: bool = False,
) -> Tuple[int, Optional[GrantTrace]]:
    """Vectorized epoch-synchronous closed-loop engine, in place.

    Per epoch: sort every pending request by ``(link, cycle, packet)``,
    grant each link's FIFO queue with one segmented max-plus scan whose
    per-request lower bound folds in the credit-availability time from
    the known release schedule, then finalise the provably-safe prefix
    (see the module docstring for the horizon argument).  Returns the
    epoch count and, when requested, the grant trace.
    """
    from .simulator import _segmented_cummax

    ids = contended_ids
    m = int(ids.size)
    trace_chunks: Optional[list] = [] if collect_trace else None
    if m == 0:
        return 0, (GrantTrace.empty() if collect_trace else None)

    route_links = tables.route_links
    queue_index = tables.queue_index()
    hop_delta = queue_index.hop_delta
    inject_stage = tables.stage_cycles[tables.link_u]
    capacity = queue_index.buffer_capacity_flits(fc)
    finite = capacity is not None
    rtt = int(fc.credit_rtt)
    source_queue = fc.source_queue
    num_links = tables.num_directed_links

    gid = ids.astype(np.int64)
    inj = inject[ids].astype(np.int64)
    t = inj.copy()
    hop = np.zeros(m, dtype=np.int64)
    nhops = hops[ids].astype(np.int64)
    pflits = flits[ids].astype(np.int64)
    pstart = starts[ids].astype(np.int64)

    pending = np.ones(m, dtype=bool)
    succ = np.full(m, -1, dtype=np.int64)
    withheld = 0
    if source_queue is not None:
        src_c = src[ids].astype(np.int64)
        order = np.lexsort((gid, inj, src_c))
        so = src_c[order]
        if m > source_queue:
            k = np.arange(m - source_queue)
            same = so[k + source_queue] == so[k]
            succ[order[k[same]]] = order[k + source_queue][same]
        newseg = np.empty(m, dtype=bool)
        newseg[0] = True
        newseg[1:] = so[1:] != so[:-1]
        seg_start = np.flatnonzero(newseg)
        pos = np.arange(m) - seg_start[np.cumsum(newseg) - 1]
        held = order[pos >= source_queue]
        pending[held] = False
        withheld = int(held.size)

    link_free = np.zeros(num_links, dtype=np.int64)
    consumed = np.zeros(num_links, dtype=np.int64)
    base_rel = np.zeros(num_links, dtype=np.int64)
    rel_time = np.empty(0, dtype=np.int64)
    rel_link = np.empty(0, dtype=np.int64)
    rel_amt = np.empty(0, dtype=np.int64)

    guard_hop = int(pflits.min()) + int(queue_index.min_hop_delta)
    remaining = m
    epochs = 0

    # Working-set horizon: each epoch touches only requests within
    # ``span`` cycles of the earliest pending one (the sort is the
    # per-epoch cost).  Excluded requests fold into the safety bound as
    # the candidate ``base + span + 1`` -- strictly more conservative,
    # so exactness is untouched; the span doubles whenever an epoch
    # cannot finalise anything (the binding head was outside) and
    # resets after progress.
    span_floor = 16 * (guard_hop + rtt)
    span = span_floor

    while remaining:
        pend_idx = np.flatnonzero(pending)
        if pend_idx.size == 0:
            raise RuntimeError(
                f"flow-control epoch engine: no pending requests with "
                f"{remaining} packets unfinished"
            )
        t_pend = t[pend_idx]
        base = int(t_pend.min())
        truncated = False
        act = pend_idx
        if pend_idx.size > 64:
            near = t_pend <= base + span
            if not near.all():
                act = pend_idx[near]
                truncated = True
        epochs += 1
        hop_a = hop[act]
        link_a = route_links[pstart[act] + hop_a]
        order = np.lexsort((gid[act], t[act], link_a))
        slot = act[order]
        e_s = link_a[order]
        t_s = t[act][order]
        h_s = hop_a[order]
        f_s = pflits[slot]
        n = int(slot.size)
        ready = t_s + np.where(h_s == 0, inject_stage[e_s], 0)
        head = np.empty(n, dtype=bool)
        head[0] = True
        head[1:] = e_s[1:] != e_s[:-1]
        head_pos = np.flatnonzero(head)
        seg_id = np.cumsum(head) - 1
        seg_first = head_pos[seg_id]
        clamped = ready.copy()
        clamped[head] = np.maximum(clamped[head], link_free[e_s[head]])
        incl_global = np.cumsum(f_s)
        incl = incl_global - (incl_global[seg_first] - f_s[seg_first])
        excl = incl - f_s
        if finite:
            deficit = consumed[e_s] + incl - capacity[e_s] - base_rel[e_s]
            c = _credit_ready_times(e_s, deficit, rel_link, rel_time,
                                    rel_amt)
        else:
            c = np.full(n, _NEG, dtype=np.int64)

        # Safe horizon: every future grant starts at or after T, so
        # unknown releases land at T + rtt or later and unknown request
        # events at T + guard or later (see module docstring).
        T = int(np.maximum(clamped[head], c[head]).min())
        if truncated:
            T = min(T, base + span + 1)
        if T >= int(_INF) // 2:
            links = np.unique(e_s)
            raise FlowControlDeadlockError(fc, remaining, links)

        c_scan = np.minimum(c, T + rtt + 1)
        grant_floor = np.maximum(clamped, c_scan)
        s = excl + _segmented_cummax(grant_floor - excl, seg_id)
        fifo_bound = clamped.copy()
        nonhead = np.flatnonzero(~head)
        if nonhead.size:
            fifo_bound[nonhead] = np.maximum(
                clamped[nonhead], s[nonhead - 1] + f_s[nonhead - 1]
            )
        guard = 1 if withheld else guard_hop
        ok = t_s < T + guard
        if finite:
            ok &= (c <= fifo_bound) | (c <= T + rtt)
        pos_in_seg = np.arange(n) - seg_first
        first_bad = np.minimum.reduceat(
            np.where(ok, n + 1, pos_in_seg), head_pos
        )
        fin = pos_in_seg < first_bad[seg_id]
        if not fin.any():
            if truncated:
                span *= 2
                continue
            if finite:
                raise FlowControlDeadlockError(fc, remaining,
                                               np.unique(e_s))
            raise RuntimeError(
                "flow-control epoch engine made no progress"
            )
        span = span_floor

        fin_slot = slot[fin]
        fin_s = s[fin]
        fin_e = e_s[fin]
        fin_f = f_s[fin]
        fin_h = h_s[fin]
        if trace_chunks is not None:
            trace_chunks.append((
                gid[fin_slot], fin_h, fin_e, ready[fin], fin_s, fin_f,
                fin_s - fifo_bound[fin],
            ))
        seg_len = np.diff(np.append(head_pos, n))
        n_fin = np.minimum(first_bad, seg_len)
        with_grants = np.flatnonzero(n_fin > 0)
        tail = head_pos[with_grants] + n_fin[with_grants] - 1
        link_free[e_s[tail]] = s[tail] + f_s[tail]
        if finite:
            consumed[e_s[tail]] += incl[tail]

        arrival = fin_s + fin_f + hop_delta[fin_e]
        last = fin_h + 1 == nhops[fin_slot]
        done_slot = fin_slot[last]
        if done_slot.size:
            done_gid = ids[done_slot]
            completion[done_gid] = arrival[last]
            latencies[done_gid] = arrival[last] - inject[done_gid]
            pending[done_slot] = False
            remaining -= int(done_slot.size)
        move = fin_slot[~last]
        t[move] = arrival[~last]
        hop[move] = fin_h[~last] + 1

        if finite:
            up = fin_h >= 1
            new_t = [fin_s[up] + rtt, arrival[last] + rtt]
            new_l = [route_links[pstart[fin_slot[up]] + fin_h[up] - 1],
                     fin_e[last]]
            new_a = [fin_f[up], fin_f[last]]
            rel_time = np.concatenate([rel_time] + new_t)
            rel_link = np.concatenate([rel_link] + new_l)
            rel_amt = np.concatenate([rel_amt] + new_a)

        if source_queue is not None:
            gates = succ[fin_slot[fin_h == 0]]
            spawned = gates[gates >= 0]
            if spawned.size:
                opener = fin_s[fin_h == 0][gates >= 0]
                t[spawned] = np.maximum(inj[spawned], opener + 1)
                pending[spawned] = True
                withheld -= int(spawned.size)

        if finite and rel_time.size and remaining:
            if pending.any():
                fold = rel_time <= int(t[pending].min())
                if fold.any():
                    np.add.at(base_rel, rel_link[fold], rel_amt[fold])
                    keep = ~fold
                    rel_time = rel_time[keep]
                    rel_link = rel_link[keep]
                    rel_amt = rel_amt[keep]

    if trace_chunks is None:
        return epochs, None
    return epochs, _trace_from_chunks(trace_chunks)
