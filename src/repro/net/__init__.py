"""Interconnect performance models: analytic + packet-level simulation."""

from .analytic import (
    CommReport,
    communication_cost,
    flits_for_bytes,
    path_pipeline_cycles,
    transfer_energy_pj,
    transfer_latency_cycles,
)
from .perf import TaskPerf, evaluate_task
from .simulator import Message, SimReport, simulate, simulate_transfers

__all__ = [
    "CommReport",
    "Message",
    "SimReport",
    "TaskPerf",
    "communication_cost",
    "evaluate_task",
    "flits_for_bytes",
    "path_pipeline_cycles",
    "simulate",
    "simulate_transfers",
    "transfer_energy_pj",
    "transfer_latency_cycles",
]
