"""Interconnect performance models: analytic + packet-level simulation.

Three evaluation layers share one routing substrate:

* scalar reference models (:mod:`repro.net.analytic`) -- the oracles,
* the batched NumPy engine (:mod:`repro.net.vectorized`) over the
  precomputed :mod:`repro.net.routing` tables -- the hot path,
* the packet simulator (:mod:`repro.net.simulator`) with its own
  engine split: closed-form fast path, event-heap oracle, the
  epoch-synchronous vectorized contention engine, component-parallel
  epoch resolution (``epochs-par``) and the optionally-compiled grant
  kernel (:mod:`repro.net.grantkernel`, ``epochs-jit``), plus the
  closed-loop flow-control subsystem (:mod:`repro.net.flowcontrol`):
  finite per-link buffers with credit backpressure, per-source
  injection queues and per-link telemetry.  Every tier is pinned
  bit-exactly to the event-heap oracle.
"""

from .analytic import (
    CommReport,
    communication_cost,
    flits_for_bytes,
    multicast_step_cost,
    path_pipeline_cycles,
    transfer_energy_pj,
    transfer_latency_cycles,
)
from .flowcontrol import (
    FlowControlDeadlockError,
    FlowControlParams,
    GrantTrace,
    LinkTelemetry,
    link_telemetry,
)
from .journey import (
    COMPONENTS,
    LatencyBreakdown,
    PacketJourney,
    latency_breakdown,
    packet_journeys,
)
from .perf import (
    TaskAttribution,
    TaskPerf,
    attribute_task,
    evaluate_task,
    evaluate_task_perlayer,
)
from .routing import (
    LinkQueueIndex,
    RoutingTables,
    build_link_queue_index,
    build_routing_tables,
    contention_components,
)
from .simulator import (
    ENGINES,
    FLOW_CONTROL_FROM_PARAMS,
    Message,
    PacketSim,
    SimReport,
    message_array,
    simulate,
    simulate_packets,
    simulate_transfers,
)
from .vectorized import (
    communication_cost_vec,
    multicast_step_cost_pergroup,
    multicast_step_cost_steps,
    multicast_step_cost_vec,
    traffic_matrix_cost,
    traffic_matrix_to_transfers,
    unicast_step_cost_vec,
)

__all__ = [
    "COMPONENTS",
    "CommReport",
    "ENGINES",
    "FLOW_CONTROL_FROM_PARAMS",
    "FlowControlDeadlockError",
    "FlowControlParams",
    "GrantTrace",
    "LatencyBreakdown",
    "LinkQueueIndex",
    "LinkTelemetry",
    "Message",
    "PacketJourney",
    "PacketSim",
    "RoutingTables",
    "SimReport",
    "TaskAttribution",
    "TaskPerf",
    "attribute_task",
    "build_link_queue_index",
    "build_routing_tables",
    "contention_components",
    "latency_breakdown",
    "link_telemetry",
    "communication_cost",
    "communication_cost_vec",
    "evaluate_task",
    "packet_journeys",
    "evaluate_task_perlayer",
    "flits_for_bytes",
    "message_array",
    "multicast_step_cost",
    "multicast_step_cost_pergroup",
    "multicast_step_cost_steps",
    "multicast_step_cost_vec",
    "path_pipeline_cycles",
    "simulate",
    "simulate_packets",
    "simulate_transfers",
    "traffic_matrix_cost",
    "traffic_matrix_to_transfers",
    "transfer_energy_pj",
    "transfer_latency_cycles",
    "unicast_step_cost_vec",
]
