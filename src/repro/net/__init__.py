"""Interconnect performance models: analytic + packet-level simulation.

Two evaluation engines share one routing substrate:

* scalar reference models (:mod:`repro.net.analytic`) -- the oracles,
* the batched NumPy engine (:mod:`repro.net.vectorized`) over the
  precomputed :mod:`repro.net.routing` tables -- the hot path.
"""

from .analytic import (
    CommReport,
    communication_cost,
    flits_for_bytes,
    multicast_step_cost,
    path_pipeline_cycles,
    transfer_energy_pj,
    transfer_latency_cycles,
)
from .perf import TaskPerf, evaluate_task
from .routing import RoutingTables, build_routing_tables
from .simulator import Message, SimReport, simulate, simulate_transfers
from .vectorized import (
    communication_cost_vec,
    multicast_step_cost_vec,
    traffic_matrix_cost,
    traffic_matrix_to_transfers,
    unicast_step_cost_vec,
)

__all__ = [
    "CommReport",
    "Message",
    "RoutingTables",
    "SimReport",
    "TaskPerf",
    "build_routing_tables",
    "communication_cost",
    "communication_cost_vec",
    "evaluate_task",
    "flits_for_bytes",
    "multicast_step_cost",
    "multicast_step_cost_vec",
    "path_pipeline_cycles",
    "simulate",
    "simulate_transfers",
    "traffic_matrix_cost",
    "traffic_matrix_to_transfers",
    "transfer_energy_pj",
    "transfer_latency_cycles",
    "unicast_step_cost_vec",
]
