"""Packet-journey latency attribution: where every cycle of latency went.

The simulator engines answer *how long* each packet took; this module
answers *why*.  Every engine (and the contention-free fast path) can
emit a :class:`~repro.net.flowcontrol.GrantTrace` -- one row per link
grant with ``ready``/``start``/``flits``/``credit_wait`` -- and those
rows determine an exact, engine-independent decomposition of each
packet's latency:

    latency = injection_wait + pipeline + serialization
              + queue_wait + credit_stall

* **injection_wait** -- cycles the packet sat in its source's injection
  queue before entering the network (hop-0 ``ready`` minus the inject
  cycle and the source router's pipeline); non-zero only under
  closed-loop ``source_queue`` backpressure.
* **pipeline** -- the fixed router/wire forwarding latency of the route
  (the zero-load head-flit latency): the source router stage plus each
  hop's wire delay and downstream router stage.
* **serialization** -- ``flits`` cycles per hop (store-and-forward puts
  the whole packet on every link).
* **queue_wait** -- cycles spent waiting for links busy with *other*
  packets (``start - ready - credit_wait``, summed over hops).
* **credit_stall** -- the share of waiting attributable to credit
  starvation (downstream buffers full); 0 in open loop.

The reduction is order-invariant: rows are put into canonical
``(packet, hop)`` order first and every aggregation is a segment sum in
exact int64, so all five tiers (events / epochs / epochs-par /
epochs-jit / fast path) produce **bit-identical** breakdowns from their
differently-ordered traces (``tests/test_journey.py``).

Entry points:

* :func:`latency_breakdown` -- the aggregated
  :class:`LatencyBreakdown`: per-packet component arrays, per-link
  queue/credit/serialization totals, hotspot ranking, p50/p95/p99 per
  component, and npz-ready arrays for the result store.
* :func:`packet_journeys` -- per-packet :class:`PacketJourney` hop
  narratives for drilling into individual slow packets.

Enable trace collection with ``simulate_packets(...,
attribution=True)`` (or the ``sim_attribution`` :class:`NoIParams`
knob, which also ships the arrays through sweep results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..obs.metrics import REGISTRY

__all__ = [
    "COMPONENTS",
    "LatencyBreakdown",
    "PacketJourney",
    "latency_breakdown",
    "packet_journeys",
]

#: The additive latency components, in reporting order.  Their
#: per-packet arrays sum exactly to ``PacketSim.latency``.
COMPONENTS = (
    "injection_wait",
    "queue_wait",
    "credit_stall",
    "serialization",
    "pipeline",
)


@dataclass(frozen=True)
class PacketJourney:
    """One packet's hop-by-hop latency narrative.

    Scalars describe the whole journey; the arrays have one entry per
    hop in route order.  ``queue_wait + credit_wait + serialization +
    forward`` per hop, plus ``injection_wait`` and the source router
    stage, telescopes exactly to ``latency``.

    Attributes:
        packet: Global packet index (packetisation order).
        inject: Scheduled injection cycle.
        completion: Delivery cycle.
        latency: ``completion - inject``.
        injection_wait: Source-queue deferral before the first hop.
        links: Directed link id per hop.
        ready: Cycle the request entered each link's queue.
        start: Cycle serialisation started on each link.
        queue_wait: ``start - ready - credit_wait`` per hop.
        credit_wait: Credit-starvation share of the wait per hop.
        serialization: Flit cycles paid per hop (the packet length).
        forward: Fixed wire + downstream-router cycles per hop.
    """

    packet: int
    inject: int
    completion: int
    latency: int
    injection_wait: int
    links: np.ndarray
    ready: np.ndarray
    start: np.ndarray
    queue_wait: np.ndarray
    credit_wait: np.ndarray
    serialization: np.ndarray
    forward: np.ndarray

    @property
    def hops(self) -> int:
        return int(self.links.shape[0])


@dataclass(frozen=True, eq=False)
class LatencyBreakdown:
    """Aggregated latency attribution of one simulation run.

    Per-packet arrays are ``(P,)`` in packetisation order and sum
    (across the five components) exactly to ``latency``; per-link
    arrays are ``(L,)`` over the topology's directed links.  Built by
    :func:`latency_breakdown`; identical across engine tiers by
    construction.
    """

    #: Per-packet component arrays, ``(P,)`` int64 each.
    injection_wait: np.ndarray
    queue_wait: np.ndarray
    credit_stall: np.ndarray
    serialization: np.ndarray
    pipeline: np.ndarray
    #: Per-packet total latency (``completion - inject``).
    latency: np.ndarray
    #: Per-directed-link cycle totals, ``(L,)`` int64 each.
    link_queue_wait: np.ndarray
    link_credit_stall: np.ndarray
    link_serialization: np.ndarray
    #: Packets granted per directed link.
    link_grants: np.ndarray
    #: Engine tier that resolved the contended subset (informational;
    #: every tier yields identical arrays).
    engine: str = "none"

    @property
    def packets(self) -> int:
        return int(self.latency.shape[0])

    @property
    def num_directed_links(self) -> int:
        return int(self.link_grants.shape[0])

    def component(self, name: str) -> np.ndarray:
        if name not in COMPONENTS:
            raise KeyError(
                f"unknown component {name!r}; expected one of {COMPONENTS}"
            )
        return getattr(self, name)

    def totals(self) -> Dict[str, int]:
        """Fleet-total cycles per component (plus ``latency``)."""
        out = {name: int(self.component(name).sum()) for name in COMPONENTS}
        out["latency"] = int(self.latency.sum())
        return out

    def percentiles(
        self, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[str, Tuple[float, ...]]:
        """Per-component (and total-latency) percentile splits."""
        out: Dict[str, Tuple[float, ...]] = {}
        for name in COMPONENTS + ("latency",):
            values = self.component(name) if name in COMPONENTS \
                else self.latency
            if values.shape[0] == 0:
                out[name] = tuple(0.0 for _ in qs)
            else:
                out[name] = tuple(
                    float(np.percentile(values, q)) for q in qs
                )
        return out

    def hotspot_links(self, top: int = 10) -> List[dict]:
        """The ``top`` links ranked by queue + credit stall cycles.

        Ties break on link id, so the ranking is deterministic.
        """
        stall = self.link_queue_wait + self.link_credit_stall
        candidates = np.flatnonzero(self.link_grants > 0)
        order = candidates[
            np.lexsort((candidates, -stall[candidates]))
        ][:max(0, int(top))]
        return [
            {
                "link": int(e),
                "grants": int(self.link_grants[e]),
                "queue_wait": int(self.link_queue_wait[e]),
                "credit_stall": int(self.link_credit_stall[e]),
                "serialization": int(self.link_serialization[e]),
            }
            for e in order
        ]

    def arrays(self) -> Dict[str, np.ndarray]:
        """npz-ready arrays (the sweep layer routes these to the store).

        ``attr_components`` stacks the per-packet component arrays in
        :data:`COMPONENTS` order -- one ``(5, P)`` matrix instead of
        five keys -- alongside the per-packet latency and the per-link
        totals.
        """
        return {
            "attr_components": np.stack(
                [self.component(name) for name in COMPONENTS]
            ) if self.packets else np.zeros(
                (len(COMPONENTS), 0), dtype=np.int64
            ),
            "attr_latency": self.latency,
            "attr_link_queue_wait": self.link_queue_wait,
            "attr_link_credit_stall": self.link_credit_stall,
            "attr_link_serialization": self.link_serialization,
            "attr_link_grants": self.link_grants,
        }

    def format(self, top: int = 5) -> str:
        """Plain-text component table + hotspot-link ranking."""
        # Lazy: repro.eval.report imports nothing back, but keeping net
        # free of eval imports at module level preserves the layering.
        from ..eval.report import format_table

        totals = self.totals()
        latency_total = max(1, totals["latency"])
        pct = self.percentiles()
        parts = [format_table(
            ("component", "cycles", "share", "p50", "p95", "p99"),
            [
                (
                    name, totals[name],
                    f"{totals[name] / latency_total:.1%}",
                    *pct[name],
                )
                for name in COMPONENTS + ("latency",)
            ],
            title=(
                f"latency attribution ({self.packets} packets, "
                f"engine {self.engine})"
            ),
            float_format="{:.1f}",
        )]
        hot = self.hotspot_links(top=top)
        if hot:
            parts.append(format_table(
                ("link", "grants", "queue_wait", "credit_stall",
                 "serialization"),
                [
                    (h["link"], h["grants"], h["queue_wait"],
                     h["credit_stall"], h["serialization"])
                    for h in hot
                ],
                title=f"top {len(hot)} hotspot links (by stall cycles)",
            ))
        return "\n\n".join(parts)


def _sum_by(index: np.ndarray, values: np.ndarray, size: int) -> np.ndarray:
    """Exact int64 segment sum: ``out[i] = sum(values[index == i])``.

    ``np.add.at`` keeps the arithmetic in int64 (``np.bincount`` would
    round-trip through float64), so the reduction is exact and -- since
    integer addition commutes -- invariant to trace row order.
    """
    out = np.zeros(size, dtype=np.int64)
    np.add.at(out, index, values.astype(np.int64, copy=False))
    return out


def _require_trace(sim) -> None:
    if sim.trace is None:
        raise ValueError(
            "PacketSim carries no grant trace; run simulate_packets("
            "..., attribution=True) (or set NoIParams.sim_attribution) "
            "to collect one"
        )


def latency_breakdown(sim, topology) -> LatencyBreakdown:
    """Reduce a traced :class:`~repro.net.simulator.PacketSim` run.

    Args:
        sim: A ``simulate_packets(..., attribution=True)`` result (its
            ``trace`` must be present).
        topology: The topology the run used -- supplies the routing
            tables' fixed per-hop constants.

    Raises:
        ValueError: When ``sim.trace`` is ``None`` (attribution was not
            requested at simulation time).
    """
    _require_trace(sim)
    tables = topology.routing_tables()
    num_links = tables.num_directed_links
    num_packets = sim.packets
    tr = sim.trace.sorted()

    wait = tr.start - tr.ready
    queue_rows = wait - tr.credit_wait
    hop_delta = tables.queue_index().hop_delta

    queue_wait = _sum_by(tr.packet, queue_rows, num_packets)
    credit_stall = _sum_by(tr.packet, tr.credit_wait, num_packets)
    serialization = _sum_by(tr.packet, tr.flits, num_packets)
    forward = _sum_by(tr.packet, hop_delta[tr.link], num_packets)

    injection_wait = np.zeros(num_packets, dtype=np.int64)
    pipeline = np.zeros(num_packets, dtype=np.int64)
    if num_packets:
        src_stage = tables.stage_cycles[sim.src].astype(np.int64)
        pipeline = src_stage + forward
        hop0 = tr.hop == 0
        first = tr.packet[hop0]
        injection_wait[first] = (
            tr.ready[hop0] - sim.inject[first] - src_stage[first]
        )

    breakdown = LatencyBreakdown(
        injection_wait=injection_wait,
        queue_wait=queue_wait,
        credit_stall=credit_stall,
        serialization=serialization,
        pipeline=pipeline,
        latency=sim.latency.astype(np.int64, copy=True),
        link_queue_wait=_sum_by(tr.link, queue_rows, num_links),
        link_credit_stall=_sum_by(tr.link, tr.credit_wait, num_links),
        link_serialization=_sum_by(tr.link, tr.flits, num_links),
        link_grants=np.bincount(
            tr.link, minlength=num_links
        ).astype(np.int64),
        engine=sim.engine,
    )
    # Fleet counters: the trace report's "attribution" section sums
    # these across workers, so a traced sweep shows where its simulated
    # cycles went without reloading any npz payload.
    REGISTRY.counter("attr_runs").inc()
    REGISTRY.counter("attr_packets").inc(num_packets)
    totals = breakdown.totals()
    for name in COMPONENTS + ("latency",):
        REGISTRY.counter(f"attr_{name}_cycles").inc(totals[name])
    return breakdown


def packet_journeys(sim, topology) -> List[PacketJourney]:
    """Per-packet hop narratives of a traced run, in packet order."""
    _require_trace(sim)
    tables = topology.routing_tables()
    hop_delta = tables.queue_index().hop_delta
    tr = sim.trace.sorted()
    counts = np.bincount(tr.packet, minlength=sim.packets)
    bounds = np.cumsum(counts)
    journeys: List[PacketJourney] = []
    for pkt in range(sim.packets):
        lo, hi = int(bounds[pkt] - counts[pkt]), int(bounds[pkt])
        ready = tr.ready[lo:hi]
        start = tr.start[lo:hi]
        credit = tr.credit_wait[lo:hi]
        stage = int(tables.stage_cycles[sim.src[pkt]])
        journeys.append(PacketJourney(
            packet=pkt,
            inject=int(sim.inject[pkt]),
            completion=int(sim.completion[pkt]),
            latency=int(sim.latency[pkt]),
            injection_wait=(
                int(ready[0]) - int(sim.inject[pkt]) - stage
                if hi > lo else 0
            ),
            links=tr.link[lo:hi].copy(),
            ready=ready.copy(),
            start=start.copy(),
            queue_wait=start - ready - credit,
            credit_wait=credit.copy(),
            serialization=tr.flits[lo:hi].copy(),
            forward=hop_delta[tr.link[lo:hi]].astype(np.int64),
        ))
    return journeys
