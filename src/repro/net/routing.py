"""All-pairs routing tables: the vectorized engine's data backbone.

The scalar models in :mod:`repro.net.analytic` walk one
:meth:`Topology.route` at a time in Python.  For whole traffic matrices
that is the hot path, so this module precomputes every minimal route of
a :class:`~repro.noi.topology.Topology` **once** into dense NumPy
matrices plus a CSR link-incidence structure:

* ``hops[s, d]``               -- minimal hop count (-1 if unreachable),
* ``pipeline_cycles[s, d]``    -- head-flit pipeline latency of the route,
* ``route_router_energy[s, d]`` / ``route_link_energy[s, d]``
                               -- per-flit energy sums along the route,
* ``route_indptr`` / ``route_links``
                               -- directed link ids of each route, in
                                  route order (CSR over ``s * n + d``).

The tables are built from the *same* deterministic tie-broken Dijkstra
routes the scalar model uses, and building them populates the
topology's route cache, so the scalar oracle and the vectorized engine
are route-for-route identical by construction (see
``tests/test_routing.py`` and ``tests/test_vectorized.py``).

Tables are cached on the topology object via
:meth:`Topology.routing_tables`, so every consumer (vectorized analytic
model, simulator fast path, sweep runner) shares one build per topology
per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import networkx as nx
import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..noi.topology import Topology


@dataclass(frozen=True)
class RoutingTables:
    """Immutable all-pairs route tables for one topology.

    Attributes:
        num_nodes: Chiplet count ``n``.
        ports: ``(n,)`` router network-port counts.
        stage_cycles: ``(n,)`` per-router pipeline depth in cycles.
        router_energy_pj_per_flit: ``(n,)`` per-flit router traversal
            energy (port-count scaled).
        link_u, link_v: ``(L,)`` endpoints of each *directed* link.
        link_wire_cycles: ``(L,)`` wire delay of each directed link.
        link_length_mm: ``(L,)`` physical length of each directed link.
        link_vertical: ``(L,)`` True for inter-tier (MIV/TSV) links.
        link_energy_pj_per_flit: ``(L,)`` per-flit link energy (wire
            plus vertical-hop energy where applicable).
        link_index: ``{(u, v): directed link id}``.
        hops: ``(n, n)`` minimal hop counts; -1 where unreachable.
        pipeline_cycles: ``(n, n)`` head-flit pipeline latency.
        route_length_mm: ``(n, n)`` wire length along the chosen route.
        route_router_energy_pj_per_flit: ``(n, n)`` sum of router
            energies over the route's nodes.
        route_link_energy_pj_per_flit: ``(n, n)`` sum of link energies
            over the route's links.
        route_indptr: ``(n * n + 1,)`` CSR offsets into ``route_links``
            for pair id ``s * n + d``.
        route_links: Concatenated directed link ids of every route, in
            route order.
    """

    num_nodes: int
    ports: np.ndarray
    stage_cycles: np.ndarray
    router_energy_pj_per_flit: np.ndarray
    link_u: np.ndarray
    link_v: np.ndarray
    link_wire_cycles: np.ndarray
    link_length_mm: np.ndarray
    link_vertical: np.ndarray
    link_energy_pj_per_flit: np.ndarray
    link_index: Dict[Tuple[int, int], int]
    hops: np.ndarray
    pipeline_cycles: np.ndarray
    route_length_mm: np.ndarray
    route_router_energy_pj_per_flit: np.ndarray
    route_link_energy_pj_per_flit: np.ndarray
    route_indptr: np.ndarray
    route_links: np.ndarray

    @property
    def num_directed_links(self) -> int:
        return int(self.link_u.shape[0])

    def pair_index(self, src: int, dst: int) -> int:
        return src * self.num_nodes + dst

    def route_link_ids(self, src: int, dst: int) -> np.ndarray:
        """Directed link ids along the route ``src -> dst``, in order."""
        p = self.pair_index(src, dst)
        return self.route_links[self.route_indptr[p]:self.route_indptr[p + 1]]

    def route_nodes(self, src: int, dst: int) -> Tuple[int, ...]:
        """Reconstruct the route node sequence from the link table."""
        links = self.route_link_ids(src, dst)
        if links.size == 0:
            return (src,)
        return (int(self.link_u[links[0]]),) + tuple(
            int(v) for v in self.link_v[links]
        )

    def energy_pj_per_flit(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Per-flit transfer energy (router + link) for pair arrays."""
        return (
            self.route_router_energy_pj_per_flit[src, dst]
            + self.route_link_energy_pj_per_flit[src, dst]
        )

    def check_reachable(self, src: np.ndarray, dst: np.ndarray,
                        name: str = "topology") -> None:
        """Raise :class:`networkx.NetworkXNoPath` on unreachable pairs."""
        bad = self.hops[src, dst] < 0
        if np.any(bad):
            i = int(np.argmax(bad))
            raise nx.NetworkXNoPath(
                f"{name}: no path {int(np.asarray(src).reshape(-1)[i])}"
                f"->{int(np.asarray(dst).reshape(-1)[i])}"
            )

    def queue_index(self) -> "LinkQueueIndex":
        """Per-link FIFO queue index, built once and cached on the tables.

        The epoch-synchronous simulator engine
        (:mod:`repro.net.simulator`) resolves per-link FIFO queues as
        array operations; this index carries the per-link forward
        delays (``hop_delta``) whose minimum bounds the engine's safe
        epoch horizon, alongside the link-major transpose of the route
        CSR for link-level contention introspection.
        """
        cached = getattr(self, "_queue_index_cache", None)
        if cached is None:
            cached = build_link_queue_index(self)
            object.__setattr__(self, "_queue_index_cache", cached)
        return cached


@dataclass(frozen=True)
class LinkQueueIndex:
    """Link-major (transposed) view of the route CSR, for FIFO queues.

    ``route_indptr``/``route_links`` answer "which links does route
    ``(s, d)`` cross, in order?".  This index adds the transpose --
    "which route entries cross link ``e``?" -- for link-level
    introspection (static contention census, queue-depth analysis)
    plus the per-link timing bounds (``hop_delta``/``min_hop_delta``)
    the epoch-synchronous simulator engine uses to size its lockstep
    windows.

    Attributes:
        link_indptr: ``(L + 1,)`` CSR offsets into the entry arrays for
            directed link ``e``.
        entry_pair: Pair id ``s * n + d`` of each route entry crossing
            the link, grouped by link in route-entry order.
        entry_hop: Hop position of the entry within its route.
        route_use_count: ``(L,)`` number of minimal routes crossing each
            directed link (``np.diff(link_indptr)``) -- the static
            contention potential of the link.
        hop_delta: ``(L,)`` wire delay plus the downstream router's
            pipeline depth of each directed link: the fixed forwarding
            latency a packet pays after its serialisation finishes.
        min_hop_delta: ``hop_delta.min()``.  A packet granted a link at
            cycle ``t`` cannot request its next link before
            ``t + flits + min_hop_delta`` with ``flits >= 1``, which is
            the lookahead bound that makes epoch-synchronous FIFO
            resolution exact.
    """

    link_indptr: np.ndarray
    entry_pair: np.ndarray
    entry_hop: np.ndarray
    route_use_count: np.ndarray
    hop_delta: np.ndarray
    min_hop_delta: int

    @property
    def num_directed_links(self) -> int:
        return int(self.link_indptr.shape[0] - 1)

    def entries_for_link(self, link: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(pair ids, hop positions)`` of route entries crossing ``link``."""
        lo, hi = self.link_indptr[link], self.link_indptr[link + 1]
        return self.entry_pair[lo:hi], self.entry_hop[lo:hi]

    def buffer_capacity_flits(self, flow_control) -> "np.ndarray | None":
        """Per-link downstream input-buffer capacity under ``flow_control``.

        The buffer-capacity metadata of the queue index: ``(L,)`` int64
        flits per directed link, or ``None`` for infinite buffers (open
        loop).  Capacities are uniform today --
        :class:`~repro.net.flowcontrol.FlowControlParams.buffer_flits`
        broadcast over the links -- but both flow-control engines
        consume this array, so per-link heterogeneous buffers (deeper
        vertical-link FIFOs, say) only need a change here.
        """
        if flow_control is None or flow_control.buffer_flits is None:
            return None
        return np.full(
            self.num_directed_links,
            int(flow_control.buffer_flits),
            dtype=np.int64,
        )


def build_link_queue_index(tables: RoutingTables) -> LinkQueueIndex:
    """Build the link-major :class:`LinkQueueIndex` for ``tables``."""
    links = tables.route_links
    num_links = tables.num_directed_links
    counts = np.diff(tables.route_indptr)
    pair_of_entry = np.repeat(
        np.arange(counts.shape[0], dtype=np.int64), counts
    )
    hop_of_entry = (
        np.arange(links.shape[0], dtype=np.int64)
        - tables.route_indptr[pair_of_entry]
    )
    order = np.argsort(links, kind="stable")
    use_count = np.bincount(links, minlength=num_links)
    link_indptr = np.zeros(num_links + 1, dtype=np.int64)
    np.cumsum(use_count, out=link_indptr[1:])
    hop_delta = (
        tables.link_wire_cycles + tables.stage_cycles[tables.link_v]
    ).astype(np.int64)
    index = LinkQueueIndex(
        link_indptr=link_indptr,
        entry_pair=pair_of_entry[order],
        entry_hop=hop_of_entry[order],
        route_use_count=use_count,
        hop_delta=hop_delta,
        min_hop_delta=int(hop_delta.min()) if num_links else 0,
    )
    for arr in (index.link_indptr, index.entry_pair, index.entry_hop,
                index.route_use_count, index.hop_delta):
        arr.setflags(write=False)
    return index


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges ``[starts[i], starts[i] + counts[i])``.

    The standard vectorized gather used to pull many CSR slices at once
    (route links for a whole batch of transfers) without a Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    keep = counts > 0
    starts, counts = starts[keep], counts[keep]
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    offsets = np.cumsum(counts)[:-1]
    step[offsets] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(step)


def contention_components(
    entry_links: np.ndarray,
    pkt_of_entry: np.ndarray,
    num_packets: int,
    source_of_packet: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, int]:
    """Partition packets into disjoint contention components.

    Two packets interact only when their routes share a directed link
    (FIFO order and buffer credits are per-link state) or -- when
    ``source_of_packet`` is given, i.e. per-source injection queues are
    active -- when they share a source.  Connected components of that
    relation can therefore be resolved independently, in any order or
    in parallel, with bit-identical results: the basis of the
    ``engine="epochs-par"`` simulator tier.

    Args:
        entry_links: Directed link id of every route entry of every
            packet (the concatenated route links of the batch).
        pkt_of_entry: Packet index (0..num_packets) owning each entry.
        num_packets: Packet count; isolated packets (no entries) form
            singleton components.
        source_of_packet: Optional ``(num_packets,)`` source node per
            packet; packets sharing a source are merged.

    Returns:
        ``(labels, count)``: dense component labels in ``[0, count)``
        per packet, numbered by first appearance in packet order.
    """
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    m = int(num_packets)
    if m == 0:
        return np.empty(0, dtype=np.int64), 0
    # Bipartite graph: packet nodes [0, m) plus one node per distinct
    # used link (and per distinct source, under injection queues).
    used_links, link_node = np.unique(entry_links, return_inverse=True)
    row = [pkt_of_entry]
    col = [m + link_node]
    extra = int(used_links.shape[0])
    if source_of_packet is not None:
        _, src_node = np.unique(source_of_packet, return_inverse=True)
        row.append(np.arange(m, dtype=np.int64))
        col.append(m + extra + src_node)
        extra += int(src_node.max()) + 1
    size = m + extra
    rows = np.concatenate(row)
    cols = np.concatenate(col)
    graph = coo_matrix(
        (np.ones(rows.shape[0], dtype=np.int8), (rows, cols)),
        shape=(size, size),
    )
    _count, raw = connected_components(graph, directed=False)
    raw = raw[:m]
    # Renumber by first appearance so labels are independent of the
    # auxiliary nodes' positions.
    uniq, first = np.unique(raw, return_index=True)
    remap = np.empty(int(uniq.max()) + 1, dtype=np.int64)
    remap[uniq[np.argsort(first)]] = np.arange(uniq.shape[0])
    return remap[raw].astype(np.int64), int(uniq.shape[0])


def build_routing_tables(topology: "Topology") -> RoutingTables:
    """Build :class:`RoutingTables` for ``topology``.

    Routes come from per-source Dijkstra trees with the same
    ``1 + 1e-6 * length_mm`` tie-break weight as
    :meth:`Topology.route`; pairs the topology has already routed keep
    their cached path, and every path chosen here is written back into
    the topology's route cache so scalar and vectorized evaluations can
    never diverge on route choice.
    """
    params = topology.params
    graph = topology.graph
    n = topology.num_chiplets

    ports = np.array(
        [graph.degree[i] for i in range(n)], dtype=np.int64
    )
    stage_cycles = np.array(
        [params.router_stage_cycles(int(p)) for p in ports], dtype=np.int64
    )
    router_energy = params.router_energy_pj_per_flit_port * ports.astype(
        np.float64
    )

    link_index: Dict[Tuple[int, int], int] = {}
    link_u, link_v = [], []
    wire_cycles, length_mm, vertical = [], [], []
    for u, v, data in graph.edges(data=True):
        for a, b in ((u, v), (v, u)):
            link_index[(a, b)] = len(link_u)
            link_u.append(a)
            link_v.append(b)
            wire_cycles.append(params.link_delay_cycles(data["length_mm"]))
            length_mm.append(data["length_mm"])
            vertical.append(bool(data.get("vertical", False)))
    link_u_arr = np.array(link_u, dtype=np.int64)
    link_v_arr = np.array(link_v, dtype=np.int64)
    wire_arr = np.array(wire_cycles, dtype=np.int64)
    length_arr = np.array(length_mm, dtype=np.float64)
    vertical_arr = np.array(vertical, dtype=bool)
    link_energy = (
        params.link_energy_pj_per_flit_mm * length_arr
        + params.vertical_energy_pj_per_flit * vertical_arr
    )

    def weight(u: int, v: int, data) -> float:
        return 1.0 + 1e-6 * data["length_mm"]

    hops = np.full((n, n), -1, dtype=np.int64)
    np.fill_diagonal(hops, 0)
    counts = np.zeros(n * n, dtype=np.int64)
    per_pair_links = [()] * (n * n)
    path_cache = topology._path_cache
    for s in range(n):
        _dist, paths = nx.single_source_dijkstra(graph, s, weight=weight)
        for d in range(n):
            if d == s:
                continue
            path = path_cache.get((s, d))
            if path is None:
                found = paths.get(d)
                if found is None:
                    continue
                path = tuple(found)
                path_cache[(s, d)] = path
            pair = s * n + d
            hops[s, d] = len(path) - 1
            ids = tuple(
                link_index[(a, b)] for a, b in zip(path, path[1:])
            )
            per_pair_links[pair] = ids
            counts[pair] = len(ids)

    route_indptr = np.zeros(n * n + 1, dtype=np.int64)
    np.cumsum(counts, out=route_indptr[1:])
    route_links = np.fromiter(
        (e for ids in per_pair_links for e in ids),
        dtype=np.int64,
        count=int(route_indptr[-1]),
    )

    # Per-route sums via segment reduction over the CSR structure.
    pair_of_entry = np.repeat(np.arange(n * n, dtype=np.int64), counts)
    npairs = n * n

    def route_sum(per_link_values: np.ndarray) -> np.ndarray:
        return np.bincount(
            pair_of_entry,
            weights=per_link_values[route_links],
            minlength=npairs,
        ).reshape(n, n)

    reachable = hops > 0
    wire_sum = route_sum(wire_arr.astype(np.float64))
    dst_stage_sum = route_sum(stage_cycles[link_v_arr].astype(np.float64))
    pipeline = np.where(
        reachable,
        stage_cycles[:, None] + np.rint(wire_sum + dst_stage_sum).astype(
            np.int64
        ),
        0,
    )
    route_router = np.where(
        reachable,
        router_energy[:, None] + route_sum(router_energy[link_v_arr]),
        0.0,
    )
    route_link_e = np.where(reachable, route_sum(link_energy), 0.0)
    route_len = np.where(reachable, route_sum(length_arr), 0.0)

    tables = RoutingTables(
        num_nodes=n,
        ports=ports,
        stage_cycles=stage_cycles,
        router_energy_pj_per_flit=router_energy,
        link_u=link_u_arr,
        link_v=link_v_arr,
        link_wire_cycles=wire_arr,
        link_length_mm=length_arr,
        link_vertical=vertical_arr,
        link_energy_pj_per_flit=link_energy,
        link_index=link_index,
        hops=hops,
        pipeline_cycles=pipeline,
        route_length_mm=route_len,
        route_router_energy_pj_per_flit=route_router,
        route_link_energy_pj_per_flit=route_link_e,
        route_indptr=route_indptr,
        route_links=route_links,
    )
    for arr in (
        tables.ports, tables.stage_cycles, tables.router_energy_pj_per_flit,
        tables.link_u, tables.link_v, tables.link_wire_cycles,
        tables.link_length_mm, tables.link_vertical,
        tables.link_energy_pj_per_flit, tables.hops, tables.pipeline_cycles,
        tables.route_length_mm, tables.route_router_energy_pj_per_flit,
        tables.route_link_energy_pj_per_flit, tables.route_indptr,
        tables.route_links,
    ):
        arr.setflags(write=False)
    return tables
