"""JIT grant kernel: the contended-subset event loop as one compiled pass.

The epoch-synchronous engines in :mod:`repro.net.simulator` /
:mod:`repro.net.flowcontrol` beat the Python event heap by batching work
into NumPy array epochs, but every epoch still pays Python-level
dispatch (lexsorts, masks, bookkeeping).  This module removes that
constant entirely: the per-link FIFO grant + credit-release loop --
exactly the algorithm of the event-heap oracles -- implemented over
flat int64 arrays in a numba-compilable subset of Python.

* **numba present** -- the kernels compile with ``@njit(cache=True,
  nogil=True)`` and the whole contended subset resolves in one
  compiled call (``engine="epochs-jit"``, preferred by
  ``engine="auto"``).
* **numba absent** -- the *same functions* run interpreted.  They are
  then no faster than the oracle, so ``engine="auto"`` never picks the
  tier, but an explicit ``engine="epochs-jit"`` still works and is
  bit-exact: the fallback path is a first-class, testable code path,
  not a stub (``NUMBA_AVAILABLE`` tells the dispatcher which case it
  is in).

Bit-exactness is by construction: the open-loop kernel replicates
``_simulate_contended`` (heap keyed ``(cycle, push-seq)``), the
closed-loop kernel replicates ``simulate_fc_events`` (heap keyed
``(cycle, kind, id)``, releases before requests on ties, per-link FIFO
deques with head-of-line credit checks) -- pinned in
``tests/test_grantkernel.py`` against both the heap oracles and the
epoch engines, including FIFO tie-breaking, every ``LinkTelemetry``
counter, and credit-deadlock reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .flowcontrol import (
    FlowControlDeadlockError,
    FlowControlParams,
    GrantTrace,
    _source_groups,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "simulate_grant_kernel",
    "warmup_kernels",
]

try:  # pragma: no cover - exercised on the numba CI leg
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - default container has no numba
    _njit = None
    NUMBA_AVAILABLE = False


def _maybe_njit(fn):
    """Compile ``fn`` when numba is importable; return it unchanged
    otherwise, so the identical code runs (slowly) interpreted."""
    if _njit is None:
        return fn
    return _njit(cache=True, nogil=True)(fn)


# ---------------------------------------------------------------------------
# 4-key binary min-heap over a (cap, 4) int64 array
#
# Row layout mirrors the oracles' heap tuples exactly:
#   open loop:   (cycle, push-seq, packet, hop)
#   closed loop: (cycle, kind, id, aux)  with REL=0 < REQ=1
# Lexicographic comparison over all four columns == tuple comparison.


@_maybe_njit
def _heap_less(heap, i, j):
    for k in range(4):
        a = heap[i, k]
        b = heap[j, k]
        if a != b:
            return a < b
    return False


@_maybe_njit
def _heap_swap(heap, i, j):
    for k in range(4):
        tmp = heap[i, k]
        heap[i, k] = heap[j, k]
        heap[j, k] = tmp


@_maybe_njit
def _heap_push(heap, size, k0, k1, k2, k3):
    heap[size, 0] = k0
    heap[size, 1] = k1
    heap[size, 2] = k2
    heap[size, 3] = k3
    i = size
    while i > 0:
        parent = (i - 1) // 2
        if _heap_less(heap, i, parent):
            _heap_swap(heap, i, parent)
            i = parent
        else:
            break
    return size + 1


@_maybe_njit
def _heap_pop(heap, size):
    """Remove the root (caller reads row 0 *before* popping)."""
    size -= 1
    for k in range(4):
        heap[0, k] = heap[size, k]
    i = 0
    while True:
        left = 2 * i + 1
        right = left + 1
        smallest = i
        if left < size and _heap_less(heap, left, smallest):
            smallest = left
        if right < size and _heap_less(heap, right, smallest):
            smallest = right
        if smallest == i:
            break
        _heap_swap(heap, i, smallest)
        i = smallest
    return size


# ---------------------------------------------------------------------------
# open-loop kernel (replicates simulator._simulate_contended)


@_maybe_njit
def _open_grant_kernel(inject, flits, rstart, nhops, route_links,
                       inject_stage, hop_delta, num_links,
                       completion, latency, tr, collect):
    """Event loop over the contended subset; per-link FIFO via the heap.

    All packet arrays are local (length ``m``) and indexed by position
    in the contended subset; local order is ascending global id, so
    tie-breaking matches the oracle's global packet order.  Fills
    ``completion``/``latency`` and, when ``collect``, one trace row per
    grant into ``tr``; returns the row count.
    """
    m = inject.shape[0]
    heap = np.empty((m + 1, 4), dtype=np.int64)
    size = 0
    for i in range(m):
        size = _heap_push(heap, size, inject[i], i, i, 0)
    counter = m
    link_free = np.zeros(num_links, dtype=np.int64)
    rows = 0
    while size > 0:
        now = heap[0, 0]
        pkt = heap[0, 2]
        hop = heap[0, 3]
        size = _heap_pop(heap, size)
        if hop >= nhops[pkt]:
            completion[pkt] = now
            latency[pkt] = now - inject[pkt]
            continue
        edge = route_links[rstart[pkt] + hop]
        ready = now
        if hop == 0:
            ready += inject_stage[edge]
        start = ready
        if link_free[edge] > start:
            start = link_free[edge]
        f = flits[pkt]
        link_free[edge] = start + f
        if collect:
            tr[rows, 0] = pkt
            tr[rows, 1] = hop
            tr[rows, 2] = edge
            tr[rows, 3] = ready
            tr[rows, 4] = start
            tr[rows, 5] = f
            tr[rows, 6] = 0
            rows += 1
        size = _heap_push(heap, size, start + f + hop_delta[edge],
                          counter, pkt, hop + 1)
        counter += 1
    return rows


# ---------------------------------------------------------------------------
# closed-loop kernel (replicates flowcontrol.simulate_fc_events)


@_maybe_njit
def _fc_serve(edge, now, heap, size, rows, collect,
              inject, flits, rstart, route_links, hop_delta,
              capacity_finite, rtt, succ,
              q_head, q_tail, node_next, node_ready, node_pkt, node_hop,
              link_free, free_credits, tr):
    """Grant ``edge``'s FIFO queue head(s) while credits allow.

    The oracle's ``serve``: head-of-line blocking on credits, grant
    start ``max(ready, link_free, now)``, next-hop request at
    ``start + flits + hop_delta``, previous-hop credit release at
    ``start + rtt``, and the source-queue successor released one cycle
    after a first-link grant.  Returns the updated heap size and trace
    row count.
    """
    while q_head[edge] >= 0:
        node = q_head[edge]
        pkt = node_pkt[node]
        f = flits[pkt]
        if capacity_finite and free_credits[edge] < f:
            break
        ready = node_ready[node]
        hop = node_hop[node]
        q_head[edge] = node_next[node]
        if q_head[edge] < 0:
            q_tail[edge] = -1
        floor = ready
        if link_free[edge] > floor:
            floor = link_free[edge]
        start = floor
        if now > start:
            start = now
        if capacity_finite:
            free_credits[edge] -= f
        link_free[edge] = start + f
        if collect:
            tr[rows, 0] = pkt
            tr[rows, 1] = hop
            tr[rows, 2] = edge
            tr[rows, 3] = ready
            tr[rows, 4] = start
            tr[rows, 5] = f
            tr[rows, 6] = start - floor
            rows += 1
        size = _heap_push(heap, size, start + f + hop_delta[edge],
                          1, pkt, hop + 1)
        if hop > 0 and capacity_finite:
            prev = route_links[rstart[pkt] + hop - 1]
            size = _heap_push(heap, size, start + rtt, 0, prev, f)
        if hop == 0:
            released = succ[pkt]
            if released >= 0:
                t_rel = inject[released]
                if start + 1 > t_rel:
                    t_rel = start + 1
                size = _heap_push(heap, size, t_rel, 1, released, 0)
    return size, rows


@_maybe_njit
def _fc_grant_kernel(inject, flits, rstart, nhops, route_links,
                     inject_stage, hop_delta, capacity, rtt,
                     eligible, succ, num_links,
                     completion, latency, tr, collect, waiting):
    """Closed-loop event loop: credits, FIFO deques, injection gating.

    ``capacity`` is the per-link buffer capacity ((L,) flits) or a
    zero-length array for infinite buffers.  ``eligible`` marks packets
    injectable at their natural cycle; ``succ[i]`` is the packet whose
    injection slot packet ``i``'s first-link grant frees (-1 for none).
    Fills ``completion``/``latency`` for delivered packets, flags links
    with stranded queued requests in ``waiting``, and returns
    ``(delivered, trace rows)`` -- the caller raises the deadlock.
    """
    m = inject.shape[0]
    capacity_finite = capacity.shape[0] > 0
    total_hops = 0
    for i in range(m):
        total_hops += nhops[i]
    heap = np.empty((total_hops + 2 * m + 4, 4), dtype=np.int64)
    size = 0
    q_head = np.full(num_links, -1, dtype=np.int64)
    q_tail = np.full(num_links, -1, dtype=np.int64)
    node_ready = np.empty(total_hops + 1, dtype=np.int64)
    node_pkt = np.empty(total_hops + 1, dtype=np.int64)
    node_hop = np.empty(total_hops + 1, dtype=np.int64)
    node_next = np.empty(total_hops + 1, dtype=np.int64)
    nodes = 0
    link_free = np.zeros(num_links, dtype=np.int64)
    if capacity_finite:
        free_credits = capacity.copy()
    else:
        free_credits = np.empty(0, dtype=np.int64)
    for i in range(m):
        if eligible[i]:
            size = _heap_push(heap, size, inject[i], 1, i, 0)
    delivered = 0
    rows = 0
    while size > 0:
        now = heap[0, 0]
        kind = heap[0, 1]
        a = heap[0, 2]
        b = heap[0, 3]
        size = _heap_pop(heap, size)
        if kind == 0:  # credit release
            free_credits[a] += b
            size, rows = _fc_serve(
                a, now, heap, size, rows, collect,
                inject, flits, rstart, route_links, hop_delta,
                capacity_finite, rtt, succ,
                q_head, q_tail, node_next, node_ready, node_pkt, node_hop,
                link_free, free_credits, tr,
            )
            continue
        pkt = a
        hop = b
        if hop >= nhops[pkt]:
            completion[pkt] = now
            latency[pkt] = now - inject[pkt]
            delivered += 1
            if capacity_finite:
                last = route_links[rstart[pkt] + hop - 1]
                size = _heap_push(heap, size, now + rtt, 0, last,
                                  flits[pkt])
            continue
        edge = route_links[rstart[pkt] + hop]
        ready = now
        if hop == 0:
            ready += inject_stage[edge]
        node_ready[nodes] = ready
        node_pkt[nodes] = pkt
        node_hop[nodes] = hop
        node_next[nodes] = -1
        if q_tail[edge] >= 0:
            node_next[q_tail[edge]] = nodes
        else:
            q_head[edge] = nodes
        q_tail[edge] = nodes
        nodes += 1
        size, rows = _fc_serve(
            edge, now, heap, size, rows, collect,
            inject, flits, rstart, route_links, hop_delta,
            capacity_finite, rtt, succ,
            q_head, q_tail, node_next, node_ready, node_pkt, node_hop,
            link_free, free_credits, tr,
        )
    for e in range(num_links):
        waiting[e] = q_head[e] >= 0
    return delivered, rows


# ---------------------------------------------------------------------------
# python-side wrapper


def simulate_grant_kernel(
    tables,
    fc: "FlowControlParams | None",
    inject: np.ndarray,
    src: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    collect_trace: bool = False,
) -> Optional[GrantTrace]:
    """Resolve the contended subset through the grant kernel, in place.

    The ``engine="epochs-jit"`` entry point: same call contract as
    :func:`~repro.net.flowcontrol.simulate_fc_events` (arrays are
    global, ``contended_ids`` selects the subset), open- or closed-loop
    depending on ``fc``.  Raises
    :class:`~repro.net.flowcontrol.FlowControlDeadlockError` exactly
    where the oracles do.
    """
    ids = contended_ids
    m = int(ids.size)
    if m == 0:
        return GrantTrace.empty() if collect_trace else None
    queue_index = tables.queue_index()
    hop_delta = queue_index.hop_delta
    inject_stage = tables.stage_cycles[tables.link_u]
    num_links = int(tables.num_directed_links)

    p_inject = inject[ids].astype(np.int64)
    p_flits = flits[ids].astype(np.int64)
    p_start = starts[ids].astype(np.int64)
    p_hops = hops[ids].astype(np.int64)
    total_hops = int(p_hops.sum())
    tr = np.empty((total_hops if collect_trace else 0, 7), dtype=np.int64)
    comp = np.zeros(m, dtype=np.int64)
    lat = np.zeros(m, dtype=np.int64)

    if fc is None:
        rows = _open_grant_kernel(
            p_inject, p_flits, p_start, p_hops, tables.route_links,
            inject_stage, hop_delta, num_links, comp, lat, tr,
            collect_trace,
        )
    else:
        capacity = queue_index.buffer_capacity_flits(fc)
        cap_arr = (capacity if capacity is not None
                   else np.empty(0, dtype=np.int64))
        eligible = np.ones(m, dtype=np.bool_)
        succ = np.full(m, -1, dtype=np.int64)
        if fc.source_queue is not None:
            initial, successor = _source_groups(
                inject, src, ids, fc.source_queue
            )
            local = {int(g): i for i, g in enumerate(ids.tolist())}
            eligible[:] = False
            for g in initial:
                eligible[local[g]] = True
            for g, s in successor.items():
                succ[local[g]] = local[s]
        waiting = np.zeros(num_links, dtype=np.bool_)
        delivered, rows = _fc_grant_kernel(
            p_inject, p_flits, p_start, p_hops, tables.route_links,
            inject_stage, hop_delta, cap_arr, int(fc.credit_rtt),
            eligible, succ, num_links, comp, lat, tr, collect_trace,
            waiting,
        )
        if int(delivered) < m:
            raise FlowControlDeadlockError(
                fc, m - int(delivered), np.flatnonzero(waiting)
            )

    completion[ids] = comp
    latencies[ids] = lat
    if not collect_trace:
        return None
    rows = int(rows)
    return GrantTrace(
        packet=ids[tr[:rows, 0]],
        hop=tr[:rows, 1].copy(),
        link=tr[:rows, 2].copy(),
        ready=tr[:rows, 3].copy(),
        start=tr[:rows, 4].copy(),
        flits=tr[:rows, 5].copy(),
        credit_wait=tr[:rows, 6].copy(),
    )


def warmup_kernels() -> bool:
    """Force-compile both kernels on a trivial input (bench warm-up).

    Returns :data:`NUMBA_AVAILABLE` so callers can gate ratio floors on
    whether the warmed kernels are actually compiled.
    """
    one = np.zeros(1, dtype=np.int64)
    links = np.zeros(1, dtype=np.int64)
    tr = np.empty((0, 7), dtype=np.int64)
    _open_grant_kernel(one.copy(), one + 1, one.copy(), one + 1, links,
                       links.copy(), links + 1, 1, one.copy(), one.copy(),
                       tr, False)
    _fc_grant_kernel(one.copy(), one + 1, one.copy(), one + 1, links,
                     links.copy(), links + 1, np.empty(0, dtype=np.int64),
                     1, np.ones(1, dtype=np.bool_),
                     np.full(1, -1, dtype=np.int64), 1, one.copy(),
                     one.copy(), tr, False, np.zeros(1, dtype=np.bool_))
    return NUMBA_AVAILABLE
