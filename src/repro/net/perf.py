"""End-to-end task performance: compute + communication composition.

Evaluates one mapped DNN task on one NoI: per weighted layer, the layer's
input activations stream in from the chiplets of its producer layers
(communication step) while its crossbars replay MVMs (compute step); the
two overlap, so a layer costs ``max(comm, compute)`` and the task is the
sum over layers.  The NoI-only components (what the paper's Figs. 3 and
5 plot) are reported separately from compute.

Two engines, per the repo's oracle convention:

* :func:`evaluate_task` -- the production path.  All layers'
  communication steps go through one
  :func:`~repro.net.vectorized.multicast_step_cost_steps` call and all
  layers' compute through one
  :func:`~repro.pim.chiplet.layer_compute_vec` call; no per-layer
  Python iteration.
* :func:`evaluate_task_perlayer` -- the pinned reference: the original
  per-layer loop.  ``tests/test_perf.py`` asserts the batched path
  matches it bit-exactly on integer fields and to 1e-9 on floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..noi.topology import Topology
from ..obs.metrics import REGISTRY
from ..pim.allocation import AllocationPlan
from ..pim.chiplet import ChipletSpec, layer_compute, layer_compute_vec
from ..workloads.dnn import DNNModel
from ..workloads.layers import Layer
from .analytic import CommReport
from .vectorized import multicast_step_cost_steps, multicast_step_cost_vec


@dataclass(frozen=True)
class TaskPerf:
    """Performance of one task instance on one NoI.

    Attributes:
        task_id: Task identifier.
        model_name: Workload name.
        latency_cycles: End-to-end inference latency (compute and
            communication overlapped per layer).
        noi_latency_cycles: Communication-only latency (Fig. 3 metric).
        compute_latency_cycles: Compute-only latency.
        noi_energy_pj: Communication energy (Fig. 5 metric).
        compute_energy_pj: MVM energy.
        weighted_hops: Traffic-weighted mean hop count.
        num_chiplets: Chiplets occupied by the task.
        packet_count: NoI packets injected per inference.
        packet_latency_sum: Sum of per-packet latencies; divide by
            ``packet_count`` for the average packet latency (Fig. 3).
    """

    task_id: str
    model_name: str
    latency_cycles: int
    noi_latency_cycles: int
    compute_latency_cycles: int
    noi_energy_pj: float
    compute_energy_pj: float
    weighted_hops: float
    num_chiplets: int
    packet_count: int = 0
    packet_latency_sum: int = 0

    @property
    def mean_packet_latency(self) -> float:
        """Average NoI packet latency in cycles (Fig. 3 metric)."""
        if self.packet_count == 0:
            return 0.0
        return self.packet_latency_sum / self.packet_count

    @property
    def total_energy_pj(self) -> float:
        return self.noi_energy_pj + self.compute_energy_pj

    @property
    def edp(self) -> float:
        """Energy-delay product in pJ * cycles (Fig. 6(a) metric)."""
        return self.total_energy_pj * self.latency_cycles


def _incoming_groups(
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    bytes_per_element: int,
) -> Dict[int, List[Tuple[int, Tuple[int, ...], int]]]:
    """Incoming multicasts per consumer layer, in physical chiplet ids.

    Destinations co-located with the source chiplet are dropped (no NoI
    traffic); groups whose destinations all vanish are dropped entirely.
    """
    incoming: Dict[int, List[Tuple[int, Tuple[int, ...], int]]] = {}
    for group in plan.multicast_groups(model, bytes_per_element):
        src_chip = chiplet_ids[group.src]
        dst_chips = tuple(
            chiplet_ids[d] for d in group.dsts
            if chiplet_ids[d] != src_chip
        )
        if dst_chips:
            incoming.setdefault(group.dst_layer, []).append(
                (src_chip, dst_chips, group.payload_bytes)
            )
    return incoming


def _validate_placement(
    plan: AllocationPlan, chiplet_ids: Sequence[int]
) -> None:
    if len(chiplet_ids) != plan.num_chiplets:
        raise ValueError(
            f"placement has {len(chiplet_ids)} chiplets, plan needs "
            f"{plan.num_chiplets}"
        )


@dataclass(frozen=True, eq=False)
class TaskAttribution:
    """Per-layer comm-vs-compute critical path of one evaluated task.

    Arrays are ``(n,)`` over the model's weighted layers in step order.
    A layer's cost is ``max(comm, compute)`` (the two overlap); the
    *critical* resource is whichever bound it, with the tie awarded to
    communication (the NoI is the paper's subject, and a tied layer's
    latency cannot be improved by compute alone).  ``slack_cycles`` is
    what the non-critical resource could grow by for free.
    """

    task_id: str
    model_name: str
    layer_names: Tuple[str, ...]
    comm_cycles: np.ndarray
    compute_cycles: np.ndarray

    def __len__(self) -> int:
        return len(self.layer_names)

    @property
    def comm_bound(self) -> np.ndarray:
        """Boolean per layer: communication on the critical path."""
        return self.comm_cycles >= self.compute_cycles

    @property
    def critical_cycles(self) -> np.ndarray:
        return np.maximum(self.comm_cycles, self.compute_cycles)

    @property
    def slack_cycles(self) -> np.ndarray:
        return self.critical_cycles - np.minimum(
            self.comm_cycles, self.compute_cycles
        )

    def rows(self) -> List[Tuple[object, ...]]:
        """Display rows: one per layer plus a ``TOTAL`` line."""
        bound = self.comm_bound
        critical = self.critical_cycles
        total = max(1, int(critical.sum()))
        out: List[Tuple[object, ...]] = [
            (
                name,
                int(self.comm_cycles[i]),
                int(self.compute_cycles[i]),
                "comm" if bound[i] else "compute",
                int(self.slack_cycles[i]),
                f"{int(critical[i]) / total:.1%}",
            )
            for i, name in enumerate(self.layer_names)
        ]
        out.append((
            "TOTAL",
            int(self.comm_cycles.sum()),
            int(self.compute_cycles.sum()),
            f"comm x{int(bound.sum())}",
            int(self.slack_cycles.sum()),
            "100.0%",
        ))
        return out

    def format(self) -> str:
        from ..eval.report import format_table

        return format_table(
            ("layer", "comm_cycles", "compute_cycles", "critical",
             "slack_cycles", "share"),
            self.rows(),
            title=(
                f"task attribution: {self.task_id} "
                f"({int(self.comm_bound.sum())}/{len(self)} layers "
                f"comm-bound)"
            ),
        )


def _task_batch(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    spec: ChipletSpec,
    bytes_per_element: int,
):
    """The two batched calls shared by the task evaluators.

    Returns ``(layers, reports, compute, comm_latency)``: the weighted
    layers in step order, one :class:`CommReport` per layer, the
    :class:`~repro.pim.chiplet.LayerComputeBatch`, and the per-layer
    communication latency as an int64 array.
    """
    incoming = _incoming_groups(model, plan, chiplet_ids, bytes_per_element)

    from ..pim.allocation import layer_crossbar_allocation

    layers: List[Layer] = list(model.weight_layers())
    groups: List[Tuple[int, Tuple[int, ...], int]] = []
    step_ids: List[int] = []
    for step, layer in enumerate(layers):
        layer_groups = incoming.get(layer.index, ())
        groups.extend(layer_groups)
        step_ids.extend([step] * len(layer_groups))
    reports = multicast_step_cost_steps(
        topology, groups, step_ids, len(layers)
    )

    crossbar_shares = layer_crossbar_allocation(model, plan, spec)
    compute = layer_compute_vec(
        layers,
        [
            max(1, len(plan.layer_chiplets.get(layer.index, ())))
            for layer in layers
        ],
        spec,
        crossbars_available=[
            crossbar_shares.get(layer.index) for layer in layers
        ],
    )
    comm_latency = np.fromiter(
        (r.latency_cycles for r in reports), dtype=np.int64,
        count=len(layers),
    )
    return layers, reports, compute, comm_latency


def _fold_task_perf(
    model: DNNModel,
    plan: AllocationPlan,
    task_id: str,
    reports,
    compute,
    comm_latency: np.ndarray,
) -> TaskPerf:
    """Reduce the batched per-layer arrays into one :class:`TaskPerf`.

    Also feeds the critical-path fleet counters: how many layers each
    resource bounded and how many cycles it contributed to the task's
    end-to-end latency -- the trace report's "attribution" section
    reads these, so every traced ``evaluate_task`` run is attributed
    for free.
    """
    hop_weight = sum(r.weighted_hops * r.payload_volume for r in reports)
    volume_total = sum(r.payload_volume for r in reports)
    comm_bound = comm_latency >= compute.latency_cycles
    critical = np.maximum(compute.latency_cycles, comm_latency)
    REGISTRY.counter("task_eval_batched").inc()
    REGISTRY.counter("task_layers_comm_bound").inc(int(comm_bound.sum()))
    REGISTRY.counter("task_layers_compute_bound").inc(
        int((~comm_bound).sum())
    )
    REGISTRY.counter("task_comm_critical_cycles").inc(
        int(critical[comm_bound].sum())
    )
    REGISTRY.counter("task_compute_critical_cycles").inc(
        int(critical[~comm_bound].sum())
    )
    return TaskPerf(
        task_id=task_id or model.name,
        model_name=model.name,
        latency_cycles=int(critical.sum()),
        noi_latency_cycles=int(comm_latency.sum()),
        compute_latency_cycles=int(compute.latency_cycles.sum()),
        noi_energy_pj=float(sum(r.energy_pj for r in reports)),
        compute_energy_pj=float(compute.energy_pj.sum()),
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        num_chiplets=plan.num_chiplets,
        packet_count=sum(r.packet_count for r in reports),
        packet_latency_sum=sum(r.packet_latency_sum for r in reports),
    )


def evaluate_task(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    *,
    task_id: str = "",
    spec: Optional[ChipletSpec] = None,
    bytes_per_element: int = 1,
) -> TaskPerf:
    """Evaluate one mapped task (cross-layer batched engine).

    The whole task is two batched calls: every layer's incoming
    multicast groups, tagged with the consumer layer's step id, go
    through :func:`multicast_step_cost_steps` at once, and every
    layer's compute through :func:`layer_compute_vec`; the per-layer
    ``max(comm, compute)`` composition then reduces over arrays.
    :func:`evaluate_task_perlayer` is the pinned per-layer reference;
    :func:`attribute_task` additionally returns the per-layer
    critical-path table.

    Args:
        topology: The NoI the task runs on.
        model: The workload.
        plan: Its chiplet allocation plan.
        chiplet_ids: Physical chiplet id for each plan position
            (``len(chiplet_ids) == plan.num_chiplets``).
        task_id: Identifier for the report.
        spec: Chiplet hardware spec.
        bytes_per_element: Activation precision in bytes.

    Raises:
        ValueError: On plan/placement size mismatch.
    """
    _validate_placement(plan, chiplet_ids)
    spec = spec or ChipletSpec.from_params()
    _, reports, compute, comm_latency = _task_batch(
        topology, model, plan, chiplet_ids, spec, bytes_per_element
    )
    return _fold_task_perf(
        model, plan, task_id, reports, compute, comm_latency
    )


def attribute_task(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    *,
    task_id: str = "",
    spec: Optional[ChipletSpec] = None,
    bytes_per_element: int = 1,
) -> Tuple[TaskPerf, TaskAttribution]:
    """:func:`evaluate_task` plus the per-layer critical-path split.

    One batched evaluation serves both results: the returned
    :class:`TaskPerf` is identical to :func:`evaluate_task`'s, and the
    :class:`TaskAttribution` keeps the per-layer comm/compute arrays
    the fold would otherwise discard.
    """
    _validate_placement(plan, chiplet_ids)
    spec = spec or ChipletSpec.from_params()
    layers, reports, compute, comm_latency = _task_batch(
        topology, model, plan, chiplet_ids, spec, bytes_per_element
    )
    perf = _fold_task_perf(
        model, plan, task_id, reports, compute, comm_latency
    )
    attribution = TaskAttribution(
        task_id=task_id or model.name,
        model_name=model.name,
        layer_names=tuple(layer.name for layer in layers),
        comm_cycles=comm_latency,
        compute_cycles=compute.latency_cycles.astype(np.int64, copy=False),
    )
    return perf, attribution


def evaluate_task_perlayer(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    *,
    task_id: str = "",
    spec: Optional[ChipletSpec] = None,
    bytes_per_element: int = 1,
) -> TaskPerf:
    """Per-layer reference engine for :func:`evaluate_task`.

    One :func:`multicast_step_cost_vec` / :func:`layer_compute` call per
    weighted layer -- the original evaluation loop, kept as the pinned
    oracle (integer fields bit-exact, floats to 1e-9).
    """
    _validate_placement(plan, chiplet_ids)
    spec = spec or ChipletSpec.from_params()
    incoming = _incoming_groups(model, plan, chiplet_ids, bytes_per_element)

    from ..pim.allocation import layer_crossbar_allocation

    crossbar_shares = layer_crossbar_allocation(model, plan, spec)
    total = noi_total = compute_total = 0
    noi_energy = compute_energy = 0.0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for layer in model.weight_layers():
        allocated = len(plan.layer_chiplets.get(layer.index, ()))
        compute = layer_compute(
            layer, max(1, allocated), spec,
            crossbars_available=crossbar_shares.get(layer.index),
        )
        comm: CommReport = multicast_step_cost_vec(
            topology, incoming.get(layer.index, ())
        )
        total += max(compute.latency_cycles, comm.latency_cycles)
        noi_total += comm.latency_cycles
        compute_total += compute.latency_cycles
        noi_energy += comm.energy_pj
        compute_energy += compute.energy_pj
        # Recombine the per-step payload-weighted means over their own
        # denominator (payload volume); weighting by flits would mix
        # bases and skew the task-level mean.
        hop_weight += comm.weighted_hops * comm.payload_volume
        volume_total += comm.payload_volume
        packet_count += comm.packet_count
        packet_latency_sum += comm.packet_latency_sum

    REGISTRY.counter("task_eval_fallback").inc()
    return TaskPerf(
        task_id=task_id or model.name,
        model_name=model.name,
        latency_cycles=total,
        noi_latency_cycles=noi_total,
        compute_latency_cycles=compute_total,
        noi_energy_pj=noi_energy,
        compute_energy_pj=compute_energy,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        num_chiplets=plan.num_chiplets,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
    )
