"""End-to-end task performance: compute + communication composition.

Evaluates one mapped DNN task on one NoI: per weighted layer, the layer's
input activations stream in from the chiplets of its producer layers
(communication step) while its crossbars replay MVMs (compute step); the
two overlap, so a layer costs ``max(comm, compute)`` and the task is the
sum over layers.  The NoI-only components (what the paper's Figs. 3 and
5 plot) are reported separately from compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..noi.topology import Topology
from ..pim.allocation import AllocationPlan
from ..pim.chiplet import ChipletSpec, layer_compute
from ..workloads.dnn import DNNModel
from .analytic import CommReport
from .vectorized import multicast_step_cost_vec


@dataclass(frozen=True)
class TaskPerf:
    """Performance of one task instance on one NoI.

    Attributes:
        task_id: Task identifier.
        model_name: Workload name.
        latency_cycles: End-to-end inference latency (compute and
            communication overlapped per layer).
        noi_latency_cycles: Communication-only latency (Fig. 3 metric).
        compute_latency_cycles: Compute-only latency.
        noi_energy_pj: Communication energy (Fig. 5 metric).
        compute_energy_pj: MVM energy.
        weighted_hops: Traffic-weighted mean hop count.
        num_chiplets: Chiplets occupied by the task.
        packet_count: NoI packets injected per inference.
        packet_latency_sum: Sum of per-packet latencies; divide by
            ``packet_count`` for the average packet latency (Fig. 3).
    """

    task_id: str
    model_name: str
    latency_cycles: int
    noi_latency_cycles: int
    compute_latency_cycles: int
    noi_energy_pj: float
    compute_energy_pj: float
    weighted_hops: float
    num_chiplets: int
    packet_count: int = 0
    packet_latency_sum: int = 0

    @property
    def mean_packet_latency(self) -> float:
        """Average NoI packet latency in cycles (Fig. 3 metric)."""
        if self.packet_count == 0:
            return 0.0
        return self.packet_latency_sum / self.packet_count

    @property
    def total_energy_pj(self) -> float:
        return self.noi_energy_pj + self.compute_energy_pj

    @property
    def edp(self) -> float:
        """Energy-delay product in pJ * cycles (Fig. 6(a) metric)."""
        return self.total_energy_pj * self.latency_cycles


def evaluate_task(
    topology: Topology,
    model: DNNModel,
    plan: AllocationPlan,
    chiplet_ids: Sequence[int],
    *,
    task_id: str = "",
    spec: Optional[ChipletSpec] = None,
    bytes_per_element: int = 1,
) -> TaskPerf:
    """Evaluate one mapped task.

    Args:
        topology: The NoI the task runs on.
        model: The workload.
        plan: Its chiplet allocation plan.
        chiplet_ids: Physical chiplet id for each plan position
            (``len(chiplet_ids) == plan.num_chiplets``).
        task_id: Identifier for the report.
        spec: Chiplet hardware spec.
        bytes_per_element: Activation precision in bytes.

    Raises:
        ValueError: On plan/placement size mismatch.
    """
    if len(chiplet_ids) != plan.num_chiplets:
        raise ValueError(
            f"placement has {len(chiplet_ids)} chiplets, plan needs "
            f"{plan.num_chiplets}"
        )
    spec = spec or ChipletSpec.from_params()

    # Group incoming multicasts by consumer layer, in physical ids.
    incoming: Dict[int, List[Tuple[int, Tuple[int, ...], int]]] = {}
    for group in plan.multicast_groups(model, bytes_per_element):
        src_chip = chiplet_ids[group.src]
        dst_chips = tuple(
            chiplet_ids[d] for d in group.dsts
            if chiplet_ids[d] != src_chip
        )
        if dst_chips:
            incoming.setdefault(group.dst_layer, []).append(
                (src_chip, dst_chips, group.payload_bytes)
            )

    from ..pim.allocation import layer_crossbar_allocation

    crossbar_shares = layer_crossbar_allocation(model, plan, spec)
    total = noi_total = compute_total = 0
    noi_energy = compute_energy = 0.0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for layer in model.weight_layers():
        allocated = len(plan.layer_chiplets.get(layer.index, ()))
        compute = layer_compute(
            layer, max(1, allocated), spec,
            crossbars_available=crossbar_shares.get(layer.index),
        )
        # Batched engine; the scalar multicast_step_cost is the oracle
        # (tests/test_vectorized.py asserts 1e-9 agreement).
        comm: CommReport = multicast_step_cost_vec(
            topology, incoming.get(layer.index, ())
        )
        total += max(compute.latency_cycles, comm.latency_cycles)
        noi_total += comm.latency_cycles
        compute_total += compute.latency_cycles
        noi_energy += comm.energy_pj
        compute_energy += compute.energy_pj
        hop_weight += comm.weighted_hops * comm.total_flits
        volume_total += comm.total_flits
        packet_count += comm.packet_count
        packet_latency_sum += comm.packet_latency_sum

    return TaskPerf(
        task_id=task_id or model.name,
        model_name=model.name,
        latency_cycles=total,
        noi_latency_cycles=noi_total,
        compute_latency_cycles=compute_total,
        noi_energy_pj=noi_energy,
        compute_energy_pj=compute_energy,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        num_chiplets=plan.num_chiplets,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
    )
