"""Analytic NoI latency and energy models.

The paper's Figs. 3 and 5 compare *NoI latency* and *NoI energy* across
architectures for the same workloads on identical chiplets.  Both reduce
to path structure:

* **latency** of one transfer = pipeline fill (per-hop router delay plus
  per-link wire delay) + serialisation (one flit per cycle), and
* **energy** of one transfer = per-router crossbar/buffer energy (scales
  with the router's port count -- big routers burn more per flit) plus
  per-millimetre wire energy along the route.

These are the standard first-order NoC models (e.g. Orion/DSENT style);
the packet-level simulator (:mod:`repro.net.simulator`) cross-checks the
latency model under contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..noi.topology import Topology
from ..params import NoIParams


def flits_for_bytes(payload_bytes: int, params: NoIParams) -> int:
    """Flits needed for a payload (at least 1 for a non-empty transfer)."""
    if payload_bytes < 0:
        raise ValueError("negative payload")
    if payload_bytes == 0:
        return 0
    return -(-payload_bytes // params.flit_bytes)


def path_pipeline_cycles(topology: Topology, src: int, dst: int) -> int:
    """Head-flit pipeline latency along the minimal route src -> dst.

    Charges the source router once, then per hop the wire delay plus the
    downstream router's (port-dependent) pipeline depth.
    """
    params = topology.params
    route = topology.route(src, dst)
    if len(route) < 2:
        return 0
    cycles = params.router_stage_cycles(topology.router_ports(route[0]))
    for u, v in zip(route, route[1:]):
        cycles += params.link_delay_cycles(
            topology.graph.edges[u, v]["length_mm"]
        )
        cycles += params.router_stage_cycles(topology.router_ports(v))
    return cycles


def packet_latency_cycles(topology: Topology, src: int, dst: int) -> int:
    """Latency of one packet src -> dst (pipeline + packet serialisation).

    The average of this quantity over all packets of a workload is the
    classic NoC "average packet latency" -- the paper's Fig. 3 metric.
    """
    if src == dst:
        return 0
    return path_pipeline_cycles(topology, src, dst) + topology.params.flits_per_packet


def packets_for_bytes(payload_bytes: int, params: NoIParams) -> int:
    """Packets needed for a payload (ceil)."""
    if payload_bytes <= 0:
        return 0
    return -(-payload_bytes // params.packet_bytes)


def transfer_latency_cycles(
    topology: Topology, src: int, dst: int, payload_bytes: int
) -> int:
    """Latency of one point-to-point transfer (pipeline + serialisation)."""
    if src == dst or payload_bytes == 0:
        return 0
    flits = flits_for_bytes(payload_bytes, topology.params)
    return path_pipeline_cycles(topology, src, dst) + flits


def transfer_energy_pj(
    topology: Topology, src: int, dst: int, payload_bytes: int
) -> float:
    """Energy of one point-to-point transfer along the minimal route."""
    if src == dst or payload_bytes == 0:
        return 0.0
    params = topology.params
    flits = flits_for_bytes(payload_bytes, params)
    route = topology.route(src, dst)
    router_energy = sum(
        params.router_energy_pj_per_flit_port * topology.router_ports(node)
        for node in route
    )
    link_energy = sum(
        params.link_energy_pj_per_flit_mm
        * topology.graph.edges[u, v]["length_mm"]
        for u, v in zip(route, route[1:])
    )
    vertical_energy = sum(
        params.vertical_energy_pj_per_flit
        for u, v in zip(route, route[1:])
        if topology.graph.edges[u, v].get("vertical", False)
    )
    return flits * (router_energy + link_energy + vertical_energy)


def multicast_tree(
    topology: Topology, src: int, dsts: Sequence[int]
) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]:
    """Multicast tree as (directed edges, nodes) for src -> dsts.

    The tree is the union of the deterministic minimal routes to each
    destination (a standard route-union approximation of the Steiner
    tree); the payload crosses each tree edge exactly once, which is the
    behaviour of NoC multicast / chain-tap forwarding.
    """
    edges = []
    seen = set()
    nodes = {src}
    for dst in dsts:
        if dst == src:
            continue
        route = topology.route(src, dst)
        for u, v in zip(route, route[1:]):
            nodes.add(v)
            if (u, v) not in seen:
                seen.add((u, v))
                edges.append((u, v))
    return tuple(edges), tuple(sorted(nodes))


def multicast_latency_cycles(
    topology: Topology, src: int, dsts: Sequence[int], payload_bytes: int
) -> int:
    """Latency for a multicast: deepest-path pipeline + serialisation."""
    real = [d for d in dsts if d != src]
    if not real or payload_bytes == 0:
        return 0
    flits = flits_for_bytes(payload_bytes, topology.params)
    pipeline = max(path_pipeline_cycles(topology, src, d) for d in real)
    return pipeline + flits


def multicast_energy_pj(
    topology: Topology, src: int, dsts: Sequence[int], payload_bytes: int
) -> float:
    """Energy for a multicast over its tree (each edge pays once)."""
    real = [d for d in dsts if d != src]
    if not real or payload_bytes == 0:
        return 0.0
    params = topology.params
    flits = flits_for_bytes(payload_bytes, params)
    edges, nodes = multicast_tree(topology, src, real)
    router_energy = sum(
        params.router_energy_pj_per_flit_port * topology.router_ports(n)
        for n in nodes
    )
    link_energy = 0.0
    for u, v in edges:
        data = topology.graph.edges[u, v]
        link_energy += params.link_energy_pj_per_flit_mm * data["length_mm"]
        if data.get("vertical", False):
            link_energy += params.vertical_energy_pj_per_flit
    return flits * (router_energy + link_energy)


@dataclass(frozen=True)
class CommReport:
    """Aggregate communication cost of a set of transfers.

    Attributes:
        latency_cycles: Dataflow-aware latency: transfers grouped by
            destination chiplet proceed in parallel across groups, and the
            slowest group bounds each layer step (see
            :func:`communication_cost`).
        serial_latency_cycles: Sum of every transfer's latency (upper
            bound, single-injection-port pessimism).
        energy_pj: Total transfer energy.
        total_flits: Flits injected.
        weighted_hops: Traffic-weighted mean hop count.
        packet_count: Packets injected (per-destination for multicasts).
        packet_latency_sum: Sum over packets of their individual latency
            (pipeline + packet serialisation); divide by ``packet_count``
            for the average packet latency, the Fig. 3 metric.
        payload_volume: Sum of per-destination payload bytes -- the
            denominator of ``weighted_hops``.  Recombining reports as
            ``sum(weighted_hops * payload_volume) / sum(payload_volume)``
            reproduces the weighted mean over the union of transfers.
    """

    latency_cycles: int
    serial_latency_cycles: int
    energy_pj: float
    total_flits: int
    weighted_hops: float
    packet_count: int = 0
    packet_latency_sum: int = 0
    payload_volume: int = 0

    @property
    def mean_packet_latency(self) -> float:
        if self.packet_count == 0:
            return 0.0
        return self.packet_latency_sum / self.packet_count


def communication_cost(
    topology: Topology,
    transfers: Sequence[Tuple[int, int, int]],
) -> CommReport:
    """Cost of a transfer set ``[(src, dst, bytes), ...]``.

    Latency composition: transfers are grouped by destination; within a
    group the destination's ejection port serialises them (sum), across
    groups they overlap (max).  This mirrors layer-pipeline DNN traffic
    where every consumer chiplet concurrently drains its producers.
    """
    params = topology.params
    by_dst: Dict[int, int] = {}
    energy = 0.0
    flits_total = 0
    hop_weight = 0.0
    volume_total = 0
    serial = 0
    packet_count = 0
    packet_latency_sum = 0
    for src, dst, payload in transfers:
        if src == dst or payload <= 0:
            continue
        latency = transfer_latency_cycles(topology, src, dst, payload)
        serial += latency
        by_dst[dst] = by_dst.get(dst, 0) + latency
        energy += transfer_energy_pj(topology, src, dst, payload)
        flits_total += flits_for_bytes(payload, params)
        hops = topology.hops(src, dst)
        hop_weight += hops * payload
        volume_total += payload
        packets = packets_for_bytes(payload, params)
        packet_count += packets
        packet_latency_sum += packets * packet_latency_cycles(
            topology, src, dst
        )
    latency_cycles = max(by_dst.values(), default=0)
    return CommReport(
        latency_cycles=latency_cycles,
        serial_latency_cycles=serial,
        energy_pj=energy,
        total_flits=flits_total,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
        payload_volume=volume_total,
    )


def _unicast_step_cost(
    topology: Topology,
    transfers: Sequence[Tuple[int, int, int]],
) -> CommReport:
    """Step cost when every destination is served by its own unicast."""
    params = topology.params
    link_load: Dict[Tuple[int, int], int] = {}
    pipeline_max = 0
    energy = 0.0
    flits_total = 0
    serial = 0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for src, dst, payload in transfers:
        if src == dst or payload <= 0:
            continue
        flits = flits_for_bytes(payload, params)
        flits_total += flits
        route = topology.route(src, dst)
        for u, v in zip(route, route[1:]):
            link_load[(u, v)] = link_load.get((u, v), 0) + flits
        pipeline = path_pipeline_cycles(topology, src, dst)
        pipeline_max = max(pipeline_max, pipeline)
        serial += pipeline + flits
        energy += transfer_energy_pj(topology, src, dst, payload)
        packets = packets_for_bytes(payload, params)
        packet_count += packets
        packet_latency_sum += packets * packet_latency_cycles(
            topology, src, dst
        )
        hops = topology.hops(src, dst)
        hop_weight += hops * payload
        volume_total += payload
    return CommReport(
        latency_cycles=(max(link_load.values(), default=0) + pipeline_max),
        serial_latency_cycles=serial,
        energy_pj=energy,
        total_flits=flits_total,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
        payload_volume=volume_total,
    )


def multicast_step_cost(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> CommReport:
    """Cost of one dataflow step made of multicast groups.

    ``groups`` is ``[(src, dsts, payload_bytes), ...]`` -- typically all
    producer slices feeding one consumer layer.  The groups proceed in
    parallel but share links, so the step's latency is bandwidth-bound by
    the most loaded link plus the deepest pipeline:

        latency = max_link(sum of flits crossing it) + max_group(pipeline)

    Energy is the sum of per-tree multicast energies; ``weighted_hops``
    averages destination hop counts weighted by payload.

    Dataflow-awareness split: on a ``multicast_capable`` topology (the
    SFC/Floret chain, which forwards one payload copy per tree link) a
    group is one tree transfer; on conventional unicast NoIs
    (mesh/torus/small-world) the group degenerates to one unicast per
    destination -- full payload injected, routed and paid per
    destination.  This is the paper's core architectural distinction.
    """
    if not topology.multicast_capable:
        transfers = [
            (src, d, payload)
            for src, dsts, payload in groups
            for d in dsts
            if d != src and payload > 0
        ]
        return _unicast_step_cost(topology, transfers)
    params = topology.params
    link_load: Dict[Tuple[int, int], int] = {}
    pipeline_max = 0
    energy = 0.0
    flits_total = 0
    serial = 0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for src, dsts, payload in groups:
        real = [d for d in dsts if d != src]
        if not real or payload <= 0:
            continue
        flits = flits_for_bytes(payload, params)
        flits_total += flits
        edges, _nodes = multicast_tree(topology, src, real)
        for edge in edges:
            link_load[edge] = link_load.get(edge, 0) + flits
        pipeline = max(
            path_pipeline_cycles(topology, src, d) for d in real
        )
        pipeline_max = max(pipeline_max, pipeline)
        serial += pipeline + flits
        energy += multicast_energy_pj(topology, src, real, payload)
        # Packets are injected once per multicast; a packet's latency is
        # its delivery-complete time (slowest destination).
        packets = packets_for_bytes(payload, params)
        packet_count += packets
        packet_latency_sum += packets * max(
            packet_latency_cycles(topology, src, d) for d in real
        )
        for d in real:
            hops = topology.hops(src, d)
            hop_weight += hops * payload
            volume_total += payload
    return CommReport(
        latency_cycles=(max(link_load.values(), default=0) + pipeline_max),
        serial_latency_cycles=serial,
        energy_pj=energy,
        total_flits=flits_total,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
        payload_volume=volume_total,
    )
