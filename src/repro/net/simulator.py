"""Discrete-event packet-level NoI simulator (contention cross-check).

The analytic model (:mod:`repro.net.analytic`) ignores queueing.  This
simulator routes individual packets over the same minimal routes with
per-link serialisation and FIFO contention, so the analytic numbers can
be validated under load (see ``tests/test_simulator.py`` and the
ablation bench).  Store-and-forward granularity is the packet (several
flits); each directed link transmits one packet at a time.

Routes and per-hop constants come from the topology's cached
:class:`~repro.net.routing.RoutingTables`.  The simulator is layered
into three engines that share one packetisation/report substrate
(:class:`PacketSim`):

* **closed-form fast path** -- packets whose routes share no directed
  link with any other packet cannot queue; one link-usage ``bincount``
  detects them and their completion times are array arithmetic.
* **event-heap oracle** (``engine="events"``) -- the original per-event
  Python heap.  Slow, obviously correct; every other engine is pinned
  to it bit-exactly.
* **epoch-synchronous vectorized engine** (``engine="epochs"``) -- all
  in-flight packets advance in lockstep array epochs.  Per-link FIFO
  queues are ``(link, ready-cycle, seq)`` arrays resolved per epoch
  with ``np.lexsort`` + segmented scans instead of heap pops; the
  epoch horizon is bounded by the routing tables'
  :class:`~repro.net.routing.LinkQueueIndex` forward-delay minimum, so
  no future event can overtake a resolved one and the result is
  event-loop exact, including FIFO tie-breaking
  (``tests/test_sim_engines.py``).  With the tiers below in place this
  engine is the pinned mid-tier oracle: slower than the compiled
  kernel, but pure NumPy and therefore always available.
* **component-parallel resolution** (``engine="epochs-par"``) --
  contended packets interact only through shared directed links (plus
  shared sources under injection queues), so
  :func:`~repro.net.routing.contention_components` partitions the
  contended subset into disjoint components, each resolved by an
  independent epoch engine run -- sequentially for a few components,
  across a thread pool for many.  Results are bit-identical because
  the components share no simulator state at all.
* **JIT grant kernel** (``engine="epochs-jit"``) -- the whole
  contended subset resolved in one pass of the
  :mod:`~repro.net.grantkernel` event kernel, compiled with numba when
  the optional dependency is importable and interpreted (bit-exact,
  but slow) otherwise.

``engine="auto"`` (the default) picks the heap for small contended
subsets; beyond ``AUTO_EPOCH_MIN_PACKETS`` it picks the JIT kernel
when numba is importable and the component-parallel epoch engine
otherwise -- the results are identical either way.

This is deliberately not a cycle-accurate RTL model: the paper's claims
are about *relative* NoI behaviour, and a queueing-accurate packet model
is the right fidelity for that (DESIGN.md, substitutions table).
"""

from __future__ import annotations

import heapq
import itertools
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..noi.topology import Topology
from ..obs.clock import clock
from ..obs.metrics import REGISTRY
from ..obs.trace import tracing_enabled
from ..params import NoIParams
from .flowcontrol import (
    FlowControlDeadlockError,
    FlowControlParams,
    GrantTrace,
    LinkTelemetry,
    link_telemetry,
    simulate_fc_epochs,
    simulate_fc_events,
)
from .routing import concat_ranges, contention_components

#: Default packet payload in bytes.
PACKET_BYTES = 64

#: Engine selectors accepted by :func:`simulate`.
ENGINES = ("auto", "events", "epochs", "epochs-par", "epochs-jit")

#: ``flow_control`` default: derive the closed-loop knobs from the
#: topology's ``NoIParams`` (``fc_buffer_flits`` et al.).  Pass ``None``
#: or an inactive :class:`~repro.net.flowcontrol.FlowControlParams` to
#: force the open-loop model regardless of the params.
FLOW_CONTROL_FROM_PARAMS = "params"

#: ``engine="auto"``: contended subsets at least this large go through
#: a vectorized tier (the JIT kernel when numba is importable, the
#: component-parallel epoch engine otherwise); below it the heap's
#: constant factor wins.
AUTO_EPOCH_MIN_PACKETS = 96

#: ``engine="epochs-par"``: spin up a thread pool only when there are
#: at least this many contended packets *and* more than one component;
#: below that the pool overhead dominates.
PARALLEL_MIN_PACKETS = 2 * AUTO_EPOCH_MIN_PACKETS

#: Thread-pool width for component-parallel resolution.  The epoch
#: engine spends its time in NumPy kernels that release the GIL, so a
#: small pool scales on real components without oversubscribing.
COMPONENT_THREADS = min(8, os.cpu_count() or 1)

_GRANTKERNEL = None


def _grant_kernel_module():
    """Import :mod:`repro.net.grantkernel` on first use.

    Importing numba costs noticeable process-startup time, so the JIT
    tier (and its availability probe) loads lazily on the first
    simulate call that wants it instead of at package import.
    """
    global _GRANTKERNEL
    if _GRANTKERNEL is None:
        from . import grantkernel

        _GRANTKERNEL = grantkernel
    return _GRANTKERNEL


@dataclass(frozen=True)
class Message:
    """One application-level transfer to simulate."""

    src: int
    dst: int
    payload_bytes: int
    inject_cycle: int = 0
    message_id: int = 0


@dataclass(frozen=True)
class SimReport:
    """Simulation outcome for a message set.

    ``batched_packets`` counts packets resolved on the contention-free
    fast path (closed-form, no per-event traffic).  ``engine`` names
    the engine that resolved the contended subset (one of
    :data:`ENGINES` except ``"auto"``, or ``"none"`` when nothing was
    contended); ``epochs`` is the lockstep epoch count (0 for the heap
    and the JIT kernel) and ``components`` the disjoint contention
    component count (0 unless ``"epochs-par"`` resolved the subset).
    """

    makespan_cycles: int
    mean_packet_latency: float
    max_packet_latency: int
    packets_delivered: int
    message_completion: Dict[int, int]
    batched_packets: int = 0
    engine: str = "none"
    epochs: int = 0
    components: int = 0
    #: Per-link census when the run was made with ``telemetry=True``.
    telemetry: "LinkTelemetry | None" = None
    #: Wall-time per simulation phase (``packetize``/``classify``/
    #: ``resolve``/``telemetry``) when the run was profiled
    #: (``profile=True`` or ``REPRO_TRACE`` set).  Excluded from
    #: equality: timings are observational, the oracle tests compare
    #: *results*.
    phase_timings: "Dict[str, float] | None" = field(
        default=None, compare=False
    )

    @property
    def total_latency_cycles(self) -> int:
        """Completion time of the last packet (== makespan)."""
        return self.makespan_cycles


@dataclass(frozen=True)
class PacketSim:
    """Per-packet outcome arrays: the shared report substrate.

    :func:`simulate_packets` returns one of these; :func:`simulate`
    folds it into a :class:`SimReport`.  Consumers that need per-packet
    resolution -- the load-sweep experiment layer slices steady-state
    windows out of ``inject``/``latency`` -- use it directly instead of
    re-deriving arrays from aggregate metrics.
    """

    inject: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    flits: np.ndarray
    message_id: np.ndarray
    completion: np.ndarray
    latency: np.ndarray
    contended: np.ndarray
    engine: str
    epochs: int = 0
    #: Disjoint contention components resolved independently (only set
    #: by the ``"epochs-par"`` tier; 0 otherwise).
    components: int = 0
    #: Per-link census (``simulate_packets(..., telemetry=True)``),
    #: identical across engines by construction.
    telemetry: "LinkTelemetry | None" = None
    #: Per-phase wall times when profiled; see
    #: :attr:`SimReport.phase_timings`.
    phase_timings: "Dict[str, float] | None" = field(
        default=None, compare=False
    )
    #: Full grant trace (``simulate_packets(..., attribution=True)``):
    #: the substrate :func:`repro.net.journey.latency_breakdown`
    #: reduces.  Excluded from equality because row *order* is
    #: engine-dependent -- the sorted rows and every reduction over
    #: them are identical across engines, which is what the oracle
    #: tests compare.
    trace: "GrantTrace | None" = field(default=None, compare=False)

    @property
    def packets(self) -> int:
        return int(self.inject.shape[0])

    @property
    def contended_packets(self) -> int:
        return int(self.contended.sum())

    def message_completion(self) -> Dict[int, int]:
        """Completion cycle of each message (its slowest packet)."""
        if self.packets == 0:
            return {}
        mids, inverse = np.unique(self.message_id, return_inverse=True)
        done = np.zeros(mids.shape[0], dtype=np.int64)
        np.maximum.at(done, inverse, self.completion)
        return dict(zip(mids.tolist(), done.tolist()))

    def report(self) -> SimReport:
        if self.packets == 0:
            return SimReport(
                makespan_cycles=0,
                mean_packet_latency=0.0,
                max_packet_latency=0,
                packets_delivered=0,
                message_completion={},
                engine=self.engine,
                telemetry=self.telemetry,
                phase_timings=self.phase_timings,
            )
        return SimReport(
            makespan_cycles=int(self.completion.max()),
            mean_packet_latency=float(self.latency.sum()) / self.packets,
            max_packet_latency=int(self.latency.max()),
            packets_delivered=self.packets,
            message_completion=self.message_completion(),
            batched_packets=self.packets - self.contended_packets,
            engine=self.engine,
            epochs=self.epochs,
            components=self.components,
            telemetry=self.telemetry,
            phase_timings=self.phase_timings,
        )


def _packetize(
    messages: Sequence[Message], packet_bytes: int, params: NoIParams
) -> List[Tuple[int, int, int, int, int]]:
    """Split messages into (inject, src, dst, flits, message_id) packets.

    The scalar reference implementation: :func:`_packetize_vec` is the
    production path and is pinned to this one packet-for-packet in
    ``tests/test_sim_engines.py``.
    """
    packets = []
    for msg in messages:
        if msg.src == msg.dst or msg.payload_bytes <= 0:
            continue
        remaining = msg.payload_bytes
        while remaining > 0:
            chunk = min(remaining, packet_bytes)
            flits = -(-chunk // params.flit_bytes)
            packets.append(
                (msg.inject_cycle, msg.src, msg.dst, flits, msg.message_id)
            )
            remaining -= chunk
    return packets


def message_array(messages: Sequence[Message]) -> np.ndarray:
    """Pack messages into the ``(k, 5)`` int64 table the engines accept.

    Columns: ``src, dst, payload_bytes, inject_cycle, message_id``.
    Workload generators that already hold arrays (the load-sweep layer)
    should build this table directly instead of materialising
    :class:`Message` objects -- :func:`simulate` and
    :func:`simulate_packets` accept either form.
    """
    count = len(messages)
    out = np.empty((count, 5), dtype=np.int64)
    for i, m in enumerate(messages):
        out[i, 0] = m.src
        out[i, 1] = m.dst
        out[i, 2] = m.payload_bytes
        out[i, 3] = m.inject_cycle
        out[i, 4] = m.message_id
    return out


def _packetize_vec(
    messages, packet_bytes: int, params: NoIParams
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_packetize`: one NumPy pass over the messages.

    ``messages`` is a sequence of :class:`Message` or a packed
    :func:`message_array` table.  Returns ``(inject, src, dst, flits,
    message_id)`` int64 arrays in the same message-major, chunk-ordered
    packet order as the scalar reference: every chunk is
    ``packet_bytes`` except a message's last, which carries the
    remainder.
    """
    empty = np.empty(0, dtype=np.int64)
    if isinstance(messages, np.ndarray):
        table = messages.reshape(-1, 5).astype(np.int64, copy=False)
    elif len(messages) == 0:
        return empty, empty, empty, empty, empty
    else:
        table = message_array(messages)
    if table.shape[0] == 0:
        return empty, empty, empty, empty, empty
    src, dst, payload = table[:, 0], table[:, 1], table[:, 2]
    inject, mids = table[:, 3], table[:, 4]
    keep = (src != dst) & (payload > 0)
    src, dst, payload = src[keep], dst[keep], payload[keep]
    inject, mids = inject[keep], mids[keep]
    if src.shape[0] == 0:
        return empty, empty, empty, empty, empty
    npkts = -(-payload // packet_bytes)
    total = int(npkts.sum())
    midx = np.repeat(np.arange(src.shape[0], dtype=np.int64), npkts)
    pos = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(npkts) - npkts, npkts
    )
    chunk = np.where(
        pos == npkts[midx] - 1,
        payload[midx] - (npkts[midx] - 1) * packet_bytes,
        packet_bytes,
    )
    flits = -(-chunk // params.flit_bytes)
    return inject[midx], src[midx], dst[midx], flits, mids[midx]


def simulate(
    topology: Topology,
    messages,
    *,
    packet_bytes: int = PACKET_BYTES,
    batch_uncontended: bool = True,
    engine: str = "auto",
    flow_control=FLOW_CONTROL_FROM_PARAMS,
    telemetry: bool = False,
    attribution: bool = False,
    profile: "bool | None" = None,
) -> SimReport:
    """Run the packet simulation for ``messages`` on ``topology``.

    Packets follow the same deterministic minimal routes the analytic
    model uses.  At each hop a packet pays the router pipeline, then
    queues for the outgoing directed link; a link serialises one packet
    (``flits`` cycles) plus the wire delay before the next may start.

    Args:
        topology: The NoI to simulate on.
        messages: Application-level transfers -- a sequence of
            :class:`Message` or a packed :func:`message_array` table.
        packet_bytes: Packetisation granularity.
        batch_uncontended: Resolve contention-free packets in one array
            pass (default).  Disable to force every packet through the
            contended engine -- the result is identical; the flag
            exists for the equivalence tests and for debugging.
        engine: ``"events"`` (per-event heap oracle), ``"epochs"``
            (epoch-synchronous vectorized engine), ``"epochs-par"``
            (component-parallel epoch resolution), ``"epochs-jit"``
            (compiled grant kernel; runs interpreted without numba) or
            ``"auto"`` (size- and availability-based choice).  All
            tiers produce bit-identical results.
        flow_control: Closed-loop knobs -- the default
            :data:`FLOW_CONTROL_FROM_PARAMS` derives them from the
            topology's ``NoIParams`` (``fc_buffer_flits``,
            ``fc_source_queue``, ``fc_credit_rtt``); pass a
            :class:`~repro.net.flowcontrol.FlowControlParams` to
            override or ``None`` to force the open-loop model.
        telemetry: Collect the per-link
            :class:`~repro.net.flowcontrol.LinkTelemetry` census
            (``PacketSim.telemetry``); off by default because the grant
            trace costs memory proportional to total hops.
        attribution: Keep the full per-grant trace on the result
            (``PacketSim.trace``) for
            :func:`repro.net.journey.latency_breakdown`; same memory
            cost as ``telemetry``.
        profile: Record per-phase wall times and engine-dispatch
            metrics (``SimReport.phase_timings``).  ``None`` (default)
            follows the ``REPRO_TRACE`` observability switch, so traced
            runs profile every engine with zero configuration.
    """
    return simulate_packets(
        topology, messages,
        packet_bytes=packet_bytes,
        batch_uncontended=batch_uncontended,
        engine=engine,
        flow_control=flow_control,
        telemetry=telemetry,
        attribution=attribution,
        profile=profile,
    ).report()


def _resolve_flow_control(topology, flow_control) -> "FlowControlParams | None":
    """Normalise the ``flow_control`` argument; ``None`` = open loop."""
    if isinstance(flow_control, str):
        if flow_control != FLOW_CONTROL_FROM_PARAMS:
            raise ValueError(
                f"unknown flow_control {flow_control!r}; expected a "
                f"FlowControlParams, None, or "
                f"{FLOW_CONTROL_FROM_PARAMS!r}"
            )
        flow_control = topology.params.flow_control()
    if flow_control is not None and not flow_control.is_active:
        return None
    return flow_control


def simulate_packets(
    topology: Topology,
    messages,
    *,
    packet_bytes: int = PACKET_BYTES,
    batch_uncontended: bool = True,
    engine: str = "auto",
    flow_control=FLOW_CONTROL_FROM_PARAMS,
    telemetry: bool = False,
    attribution: bool = False,
    profile: "bool | None" = None,
) -> PacketSim:
    """:func:`simulate` at per-packet resolution (see :class:`PacketSim`)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if profile is None:
        profile = tracing_enabled()
    # Telemetry (per-link census) and attribution (journey breakdowns)
    # both ride the same grant trace; either switch turns collection on.
    collect = telemetry or attribution
    timings: "Dict[str, float] | None" = {} if profile else None
    phase_t0 = clock() if profile else 0.0
    params = topology.params
    fc = _resolve_flow_control(topology, flow_control)
    inject, src, dst, flits, mids = _packetize_vec(
        messages, packet_bytes, params
    )
    if profile:
        now = clock()
        timings["packetize"] = now - phase_t0
        phase_t0 = now
    num_packets = int(inject.shape[0])
    if num_packets == 0:
        empty = np.empty(0, dtype=np.int64)
        return PacketSim(
            inject=inject, src=src, dst=dst, flits=flits, message_id=mids,
            completion=empty, latency=empty.copy(),
            contended=np.empty(0, dtype=bool), engine="none",
            telemetry=(
                link_telemetry(
                    GrantTrace.empty(),
                    topology.routing_tables().num_directed_links, 0,
                ) if telemetry else None
            ),
            phase_timings=timings,
            trace=GrantTrace.empty() if attribution else None,
        )
    if fc is not None and fc.buffer_flits is not None:
        max_flits = int(flits.max())
        if fc.buffer_flits < max_flits:
            raise ValueError(
                f"buffer_flits={fc.buffer_flits} cannot hold the largest "
                f"packet ({max_flits} flits); such a packet could never "
                f"be forwarded"
            )
    tables = topology.routing_tables()
    n = tables.num_nodes
    tables.check_reachable(src, dst, topology.name)
    pair = src * n + dst
    starts = tables.route_indptr[pair]
    hops = tables.route_indptr[pair + 1] - starts

    # One gather of every packet's route links; a link used by a single
    # packet can never queue, so packets touching only such links are
    # contention-free and close in constant time.  Finite buffers keep
    # that true (a sole user of a link never waits for its credits),
    # but per-source injection queues couple same-source packets even
    # on disjoint links, so they force everything through the
    # contended engine.
    if fc is not None and fc.source_queue is not None:
        contended = np.ones(num_packets, dtype=bool)
    else:
        entry_links = tables.route_links[concat_ranges(starts, hops)]
        usage = np.bincount(entry_links,
                            minlength=tables.num_directed_links)
        pkt_of_entry = np.repeat(
            np.arange(num_packets, dtype=np.int64), hops
        )
        shared = np.zeros(num_packets, dtype=np.int64)
        np.add.at(shared, pkt_of_entry,
                  (usage[entry_links] > 1).astype(np.int64))
        contended = shared > 0
        if not batch_uncontended:
            contended = np.ones(num_packets, dtype=bool)

    # Store-and-forward completion at zero load: injection + head-flit
    # pipeline + one serialisation per hop.
    completion = inject + tables.pipeline_cycles[src, dst] + hops * flits
    latencies = completion - inject

    if profile:
        now = clock()
        timings["classify"] = now - phase_t0
        phase_t0 = now
    contended_ids = np.nonzero(contended)[0]
    resolved = "none"
    epochs = 0
    components = 0
    contended_trace = None
    if contended_ids.size:
        resolved = engine
        if engine == "auto":
            if contended_ids.size >= AUTO_EPOCH_MIN_PACKETS:
                resolved = (
                    "epochs-jit"
                    if _grant_kernel_module().NUMBA_AVAILABLE
                    else "epochs-par"
                )
            else:
                resolved = "events"
        if resolved == "epochs-jit":
            contended_trace = _grant_kernel_module().simulate_grant_kernel(
                tables, fc, inject, src, flits, starts, hops,
                contended_ids, completion, latencies,
                collect_trace=collect,
            )
        elif resolved == "epochs-par":
            epochs, components, contended_trace = (
                _simulate_contended_components(
                    tables, fc, inject, src, flits, starts, hops,
                    contended_ids, completion, latencies,
                    collect_trace=collect,
                )
            )
        elif fc is not None:
            if resolved == "epochs":
                epochs, contended_trace = simulate_fc_epochs(
                    tables, fc, inject, src, flits, starts, hops,
                    contended_ids, completion, latencies,
                    collect_trace=collect,
                )
            else:
                contended_trace = simulate_fc_events(
                    tables, fc, inject, src, flits, starts, hops,
                    contended_ids, completion, latencies,
                    collect_trace=collect,
                )
        elif resolved == "epochs":
            trace_chunks = [] if collect else None
            epochs = _simulate_contended_epochs(
                tables, inject, flits, starts, hops,
                contended_ids, completion, latencies,
                trace=trace_chunks,
            )
            if collect:
                from .flowcontrol import _trace_from_chunks

                contended_trace = _trace_from_chunks(trace_chunks)
        else:
            trace_rows = [] if collect else None
            _simulate_contended(
                tables, params, inject, flits, starts, hops,
                contended_ids, completion, latencies,
                trace=trace_rows,
            )
            if collect:
                from .flowcontrol import _trace_from_chunks

                contended_trace = _trace_from_chunks([
                    tuple(np.array(col, dtype=np.int64)
                          for col in zip(*trace_rows))
                ] if trace_rows else [])

    if profile:
        now = clock()
        timings["resolve"] = now - phase_t0
        phase_t0 = now
        # Engine-dispatch and scale counters: which tier actually
        # resolved the contended subset, and how much lockstep work the
        # epoch tiers did.  Behind the same flag as the phase timings
        # so an untraced hot path pays nothing.
        REGISTRY.counter(f"sim_engine_{resolved}").inc()
        REGISTRY.counter("sim_packets").inc(num_packets)
        REGISTRY.counter("sim_contended").inc(int(contended_ids.size))
        if epochs:
            REGISTRY.counter("sim_epochs").inc(epochs)
        if components:
            REGISTRY.counter("sim_components").inc(components)
    census = None
    trace = None
    if collect:
        fast_trace = _fast_path_trace(
            tables, inject, src, flits, starts, hops,
            np.nonzero(~contended)[0],
        )
        trace = GrantTrace.concat(
            [fast_trace] + ([contended_trace] if contended_trace else [])
        )
        if telemetry:
            census = link_telemetry(
                trace, tables.num_directed_links, int(completion.max())
            )
    if profile and collect:
        timings["telemetry"] = clock() - phase_t0
    return PacketSim(
        inject=inject, src=src, dst=dst, flits=flits, message_id=mids,
        completion=completion, latency=latencies, contended=contended,
        engine=resolved, epochs=epochs, components=components,
        telemetry=census,
        phase_timings=timings,
        trace=trace if attribution else None,
    )


def _fast_path_trace(
    tables,
    inject: np.ndarray,
    src: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    ids: np.ndarray,
) -> GrantTrace:
    """Grant trace of the contention-free fast path, closed form.

    Uncontended packets never wait (their links are theirs alone), so
    each hop's start is the previous start plus serialisation and the
    link's fixed forwarding delay -- one segmented cumulative sum over
    the packets' concatenated route links.
    """
    if ids.size == 0:
        return GrantTrace.empty()
    hop_delta = tables.queue_index().hop_delta
    p_starts = starts[ids]
    p_hops = hops[ids]
    entries = concat_ranges(p_starts, p_hops)
    links = tables.route_links[entries]
    total = int(links.shape[0])
    pkt_of = np.repeat(ids, p_hops)
    offsets = np.cumsum(p_hops) - p_hops
    hop_of = np.arange(total, dtype=np.int64) - np.repeat(offsets, p_hops)
    f = flits[pkt_of]
    step = f + hop_delta[links]
    incl = np.cumsum(step)
    seg_first = np.repeat(offsets, p_hops)
    excl = (incl - step) - (incl[seg_first] - step[seg_first])
    start = np.repeat(
        inject[ids] + tables.stage_cycles[src[ids]], p_hops
    ) + excl
    return GrantTrace(
        packet=pkt_of,
        hop=hop_of,
        link=links,
        ready=start.copy(),
        start=start,
        flits=f,
        credit_wait=np.zeros(total, dtype=np.int64),
    )


def _simulate_contended(
    tables,
    params: NoIParams,
    inject: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    trace: "list | None" = None,
) -> None:
    """Event-heap simulation of the contended packet subset, in place.

    The exact oracle: every other contended engine is pinned to this
    one.  Contended packets only ever queue against each other (their
    links are disjoint from every fast-path packet's by construction),
    so simulating the subset alone is exact.  FIFO tie-breaking follows
    packetisation order, matching the full event-loop semantics.
    """
    route_links = tables.route_links
    link_free: Dict[int, int] = {}
    events: List[Tuple[int, int, int, int]] = []
    seq = itertools.count()
    for i in contended_ids.tolist():
        heapq.heappush(events, (int(inject[i]), next(seq), i, 0))
    stage = tables.stage_cycles
    link_u = tables.link_u
    link_v = tables.link_v
    wire = tables.link_wire_cycles
    while events:
        now, _s, pkt, hop = heapq.heappop(events)
        if hop >= int(hops[pkt]):
            completion[pkt] = now
            latencies[pkt] = now - int(inject[pkt])
            continue
        edge = int(route_links[int(starts[pkt]) + hop])
        # Router pipeline: the source router is charged on injection,
        # each downstream router on arrival -- the same accounting as
        # the analytic path_pipeline_cycles model.
        ready = now
        if hop == 0:
            ready += int(stage[link_u[edge]])
        start = max(ready, link_free.get(edge, 0))
        serialization = int(flits[pkt])
        link_free[edge] = start + serialization
        if trace is not None:
            trace.append((pkt, hop, edge, ready, start, serialization, 0))
        arrival = (
            start + serialization + int(wire[edge]) + int(stage[link_v[edge]])
        )
        heapq.heappush(events, (arrival, next(seq), pkt, hop + 1))


def _segmented_cummax(values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Inclusive running maximum within each contiguous segment.

    Fast path: lift each segment onto its own disjoint value band
    (``+ seg_id * span``) so one global ``np.maximum.accumulate`` can
    never carry a value across a boundary, then project back.  Exact in
    int64; falls back to a Hillis-Steele doubling scan in the
    (pathological) case where the banding would overflow.
    """
    n = values.shape[0]
    if n == 0:
        return values.copy()
    vmin = int(values.min())
    vmax = int(values.max())
    span = vmax - vmin + 1
    nseg = int(seg_id[-1]) + 1
    if abs(vmax) + abs(vmin) + span <= (2 ** 62) // nseg:
        band = seg_id * span
        return np.maximum.accumulate(values + band) - band
    out = values.copy()
    shift = 1
    while shift < n:
        carried = np.where(
            seg_id[shift:] == seg_id[:-shift], out[:-shift], out[shift:]
        )
        out[shift:] = np.maximum(out[shift:], carried)
        shift *= 2
    return out


def _simulate_contended_epochs(
    tables,
    inject: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    trace: "list | None" = None,
) -> int:
    """Epoch-synchronous vectorized simulation of the contended subset.

    All in-flight packets advance in lockstep epochs.  Each epoch
    resolves every pending event up to a safe horizon: a packet granted
    a link at cycle ``t`` cannot request its *next* link before
    ``t + flits + wire + stage >= t + min(flits) + min_hop_delta``, so
    every event within that distance of the earliest pending one can be
    resolved together without being overtaken by an event created in
    the same epoch.  Within the window, events sort by ``(cycle, seq)``
    -- the heap's pop order -- and each link's FIFO queue is granted
    with one segmented max-plus scan:

        start_k = max(ready_k, start_{k-1} + flits_{k-1})
                = F_k + cummax_k(ready - F)      (F = exclusive flit sum)

    New events inherit the heap's push order (``seq`` reassigned in pop
    order, monotonically across epochs), which pins FIFO tie-breaking
    bit-exactly to :func:`_simulate_contended`.  Returns the epoch
    count.
    """
    ids = contended_ids
    m = int(ids.size)
    t = inject[ids].astype(np.int64)
    hop = np.zeros(m, dtype=np.int64)
    seq = np.arange(m, dtype=np.int64)
    nhops = hops[ids].astype(np.int64)
    pflits = flits[ids].astype(np.int64)
    pstart = starts[ids].astype(np.int64)

    route_links = tables.route_links
    queue_index = tables.queue_index()
    #: Static per-link arrays hoisted out of the loop: the forwarding
    #: latency after serialisation, and the upstream router's stage
    #: (charged once, on injection).
    hop_delta = queue_index.hop_delta
    inject_stage = tables.stage_cycles[tables.link_u]
    link_free = np.zeros(tables.num_directed_links, dtype=np.int64)
    lookahead = queue_index.min_hop_delta + int(pflits.min()) - 1

    # Two-tier pending set: per-epoch scans touch only events within
    # ``far_span`` cycles; events parked deeper in the future (long
    # FIFO queues) wait in ``far`` and are merged back in O(pending)
    # only once per ~16 epochs, when the clock catches up.
    far_span = (lookahead + 1) * 16
    huge = np.iinfo(np.int64).max
    near = np.empty(0, dtype=np.int64)
    far = np.arange(m, dtype=np.int64)
    far_min = int(t.min()) if m else huge
    near_limit = -1
    counter = m
    epochs = 0
    while near.size or far.size:
        if near.size:
            t_act = t[near]
            tmin = int(t_act.min())
        else:
            tmin = huge
        if min(tmin, far_min) + lookahead >= near_limit:
            merged = np.concatenate([near, far])
            t_act = t[merged]
            base = int(t_act.min())
            near_limit = base + far_span
            near_mask = t_act <= near_limit
            near = merged[near_mask]
            far = merged[~near_mask]
            far_min = int(t[far].min()) if far.size else huge
            t_act = t_act[near_mask]
            tmin = base
        epochs += 1
        in_window = t_act <= tmin + lookahead
        w = near[in_window]
        # Oracle pop order within the window: (event cycle, push seq).
        w = w[np.lexsort((seq[w], t[w]))]
        # Next events inherit the heap's push order: seqs reassigned in
        # window pop order, monotonically across epochs.  (Completions
        # consume slots but push nothing; the gaps keep relative order.)
        seq[w] = counter + np.arange(w.shape[0], dtype=np.int64)
        counter += int(w.shape[0])
        hop_w = hop[w]
        done = hop_w >= nhops[w]
        finished = w[done]
        if finished.size:
            gids = ids[finished]
            completion[gids] = t[finished]
            latencies[gids] = t[finished] - inject[gids]
        movers = w[~done]
        if movers.size:
            hop_m = hop_w[~done]
            edge = route_links[pstart[movers] + hop_m]
            ready = t[movers] + np.where(
                hop_m == 0, inject_stage[edge], 0
            )
            # Per-link FIFO queues: a stable sort by link keeps the
            # (cycle, seq) order inside each link's queue segment.
            order = np.argsort(edge, kind="stable")
            sorted_movers = movers[order]
            e_s = edge[order]
            r_s = ready[order]
            if trace is not None:
                ready_raw = r_s.copy()
            f_s = pflits[sorted_movers]
            head = np.empty(e_s.shape[0], dtype=bool)
            head[0] = True
            head[1:] = e_s[1:] != e_s[:-1]
            # The link's current occupancy folds into the head request.
            r_s[head] = np.maximum(r_s[head], link_free[e_s[head]])
            incl = np.cumsum(f_s)
            seg_id = np.cumsum(head) - 1
            head_idx = np.flatnonzero(head)[seg_id]
            excl = (incl - f_s) - (incl[head_idx] - f_s[head_idx])
            busy = excl + _segmented_cummax(r_s - excl, seg_id) + f_s
            tail = np.empty(e_s.shape[0], dtype=bool)
            tail[-1] = True
            tail[:-1] = head[1:]
            link_free[e_s[tail]] = busy[tail]
            if trace is not None:
                trace.append((
                    ids[sorted_movers], hop_m[order], e_s, ready_raw,
                    busy - f_s, f_s,
                    np.zeros(e_s.shape[0], dtype=np.int64),
                ))
            arrival = busy + hop_delta[e_s]
            t[sorted_movers] = arrival
            hop[movers] = hop_m + 1
        near = near[~in_window]
        if movers.size:
            soon = arrival <= near_limit
            near = np.concatenate([near, sorted_movers[soon]])
            if not soon.all():
                far = np.concatenate([far, sorted_movers[~soon]])
                far_min = min(far_min, int(arrival[~soon].min()))
    return epochs


def _simulate_contended_components(
    tables,
    fc: "FlowControlParams | None",
    inject: np.ndarray,
    src: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
    collect_trace: bool = False,
) -> "Tuple[int, int, GrantTrace | None]":
    """Component-parallel epoch resolution of the contended subset.

    Partitions the contended packets into disjoint contention
    components (:func:`~repro.net.routing.contention_components`) and
    resolves each with an independent epoch-engine run -- the engines
    share no state across components (per-link FIFO/credit arrays are
    per-run, output slots are disjoint global ids), so any execution
    order, including a thread pool, is bit-identical to one global run.
    Within a component the packet subset keeps ascending global order,
    which preserves the oracle's FIFO tie-breaking.

    Deadlocks are aggregated: every component runs to completion (or
    its own deadlock) first, then one
    :class:`~repro.net.flowcontrol.FlowControlDeadlockError` is raised
    whose ``blocked``/``links`` are the sum/union over the deadlocked
    components -- exactly the end state a single global run reports,
    since a global run also drains every resolvable component before
    detecting that the rest are stuck.

    Returns ``(total epochs, component count, trace or None)``.
    """
    ids = contended_ids
    entries = concat_ranges(starts[ids], hops[ids])
    entry_links = tables.route_links[entries]
    pkt_of_entry = np.repeat(
        np.arange(ids.size, dtype=np.int64), hops[ids]
    )
    source_of = (
        src[ids]
        if fc is not None and fc.source_queue is not None
        else None
    )
    labels, count = contention_components(
        entry_links, pkt_of_entry, int(ids.size),
        source_of_packet=source_of,
    )
    if count <= 1:
        groups = [ids]
    else:
        order = np.argsort(labels, kind="stable")
        bounds = np.flatnonzero(np.diff(labels[order])) + 1
        groups = np.split(ids[order], bounds)
    tables.queue_index()  # build once, outside the worker threads

    def resolve(group_ids):
        try:
            if fc is not None:
                ep, tr = simulate_fc_epochs(
                    tables, fc, inject, src, flits, starts, hops,
                    group_ids, completion, latencies,
                    collect_trace=collect_trace,
                )
            else:
                chunks = [] if collect_trace else None
                ep = _simulate_contended_epochs(
                    tables, inject, flits, starts, hops,
                    group_ids, completion, latencies, trace=chunks,
                )
                tr = None
                if collect_trace:
                    from .flowcontrol import _trace_from_chunks

                    tr = _trace_from_chunks(chunks)
            return ep, tr, None
        except FlowControlDeadlockError as err:
            return 0, None, err

    if len(groups) > 1 and ids.size >= PARALLEL_MIN_PACKETS:
        workers = min(len(groups), COMPONENT_THREADS)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(resolve, groups))
    else:
        results = [resolve(g) for g in groups]

    failures = [err for _, _, err in results if err is not None]
    if failures:
        blocked = sum(err.blocked for err in failures)
        links = sorted({e for err in failures for e in err.links})
        raise FlowControlDeadlockError(fc, blocked, links)
    total_epochs = sum(ep for ep, _, _ in results)
    trace = None
    if collect_trace:
        trace = GrantTrace.concat([tr for _, tr, _ in results])
    return total_epochs, count, trace


def simulate_transfers(
    topology: Topology,
    transfers: Sequence[Tuple[int, int, int]],
    *,
    packet_bytes: int = PACKET_BYTES,
    batch_uncontended: bool = True,
    engine: str = "auto",
    flow_control=FLOW_CONTROL_FROM_PARAMS,
    telemetry: bool = False,
    attribution: bool = False,
    profile: "bool | None" = None,
) -> SimReport:
    """Convenience wrapper: simulate ``(src, dst, bytes)`` transfers."""
    table = np.asarray(transfers, dtype=np.int64).reshape(-1, 3)
    messages = np.column_stack([
        table,
        np.zeros(table.shape[0], dtype=np.int64),
        np.arange(table.shape[0], dtype=np.int64),
    ])
    return simulate(
        topology, messages,
        packet_bytes=packet_bytes,
        batch_uncontended=batch_uncontended,
        engine=engine,
        flow_control=flow_control,
        telemetry=telemetry,
        attribution=attribution,
        profile=profile,
    )
