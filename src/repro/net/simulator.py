"""Discrete-event packet-level NoI simulator (contention cross-check).

The analytic model (:mod:`repro.net.analytic`) ignores queueing.  This
simulator routes individual packets over the same minimal routes with
per-link serialisation and FIFO contention, so the analytic numbers can
be validated under load (see ``tests/test_simulator.py`` and the
ablation bench).  Store-and-forward granularity is the packet (several
flits); each directed link transmits one packet at a time.

This is deliberately not a cycle-accurate RTL model: the paper's claims
are about *relative* NoI behaviour, and a queueing-accurate packet model
is the right fidelity for that (DESIGN.md, substitutions table).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..noi.topology import Topology
from ..params import NoIParams

#: Default packet payload in bytes.
PACKET_BYTES = 64


@dataclass(frozen=True)
class Message:
    """One application-level transfer to simulate."""

    src: int
    dst: int
    payload_bytes: int
    inject_cycle: int = 0
    message_id: int = 0


@dataclass(frozen=True)
class SimReport:
    """Simulation outcome for a message set."""

    makespan_cycles: int
    mean_packet_latency: float
    max_packet_latency: int
    packets_delivered: int
    message_completion: Dict[int, int]

    @property
    def total_latency_cycles(self) -> int:
        """Completion time of the last packet (== makespan)."""
        return self.makespan_cycles


def _packetize(
    messages: Sequence[Message], packet_bytes: int, params: NoIParams
) -> List[Tuple[int, int, int, int, int]]:
    """Split messages into (inject, src, dst, flits, message_id) packets."""
    packets = []
    for msg in messages:
        if msg.src == msg.dst or msg.payload_bytes <= 0:
            continue
        remaining = msg.payload_bytes
        while remaining > 0:
            chunk = min(remaining, packet_bytes)
            flits = -(-chunk // params.flit_bytes)
            packets.append(
                (msg.inject_cycle, msg.src, msg.dst, flits, msg.message_id)
            )
            remaining -= chunk
    return packets


def simulate(
    topology: Topology,
    messages: Sequence[Message],
    *,
    packet_bytes: int = PACKET_BYTES,
) -> SimReport:
    """Run the event-driven simulation for ``messages`` on ``topology``.

    Packets follow the same deterministic minimal routes the analytic
    model uses.  At each hop a packet pays the router pipeline, then
    queues for the outgoing directed link; a link serialises one packet
    (``flits`` cycles) plus the wire delay before the next may start.
    """
    params = topology.params
    packets = _packetize(messages, packet_bytes, params)
    #: next free cycle for each directed link (u, v)
    link_free: Dict[Tuple[int, int], int] = {}
    #: event heap: (time, seq, packet_index, hop_index)
    events: List[Tuple[int, int, int, int]] = []
    seq = itertools.count()
    routes = [
        topology.route(src, dst) for _inject, src, dst, _f, _m in packets
    ]
    for i, (inject, _src, _dst, _flits, _mid) in enumerate(packets):
        heapq.heappush(events, (inject, next(seq), i, 0))

    completion = [0] * len(packets)
    latencies = [0] * len(packets)
    message_completion: Dict[int, int] = {}

    while events:
        now, _s, pkt, hop = heapq.heappop(events)
        route = routes[pkt]
        inject, _src, _dst, flits, mid = packets[pkt]
        if hop >= len(route) - 1:
            completion[pkt] = now
            latencies[pkt] = now - inject
            prev = message_completion.get(mid, 0)
            message_completion[mid] = max(prev, now)
            continue
        u, v = route[hop], route[hop + 1]
        # Router pipeline: the source router is charged on injection,
        # each downstream router on arrival -- the same accounting as
        # the analytic path_pipeline_cycles model.
        ready = now
        if hop == 0:
            ready += params.router_stage_cycles(topology.router_ports(u))
        start = max(ready, link_free.get((u, v), 0))
        serialization = flits
        wire = params.link_delay_cycles(
            topology.graph.edges[u, v]["length_mm"]
        )
        link_free[(u, v)] = start + serialization
        arrival = (
            start + serialization + wire
            + params.router_stage_cycles(topology.router_ports(v))
        )
        heapq.heappush(events, (arrival, next(seq), pkt, hop + 1))

    delivered = len(packets)
    return SimReport(
        makespan_cycles=max(completion, default=0),
        mean_packet_latency=(sum(latencies) / delivered) if delivered else 0.0,
        max_packet_latency=max(latencies, default=0),
        packets_delivered=delivered,
        message_completion=message_completion,
    )


def simulate_transfers(
    topology: Topology,
    transfers: Sequence[Tuple[int, int, int]],
    *,
    packet_bytes: int = PACKET_BYTES,
) -> SimReport:
    """Convenience wrapper: simulate ``(src, dst, bytes)`` transfers."""
    messages = [
        Message(src=s, dst=d, payload_bytes=b, message_id=i)
        for i, (s, d, b) in enumerate(transfers)
    ]
    return simulate(topology, messages, packet_bytes=packet_bytes)
