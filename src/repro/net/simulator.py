"""Discrete-event packet-level NoI simulator (contention cross-check).

The analytic model (:mod:`repro.net.analytic`) ignores queueing.  This
simulator routes individual packets over the same minimal routes with
per-link serialisation and FIFO contention, so the analytic numbers can
be validated under load (see ``tests/test_simulator.py`` and the
ablation bench).  Store-and-forward granularity is the packet (several
flits); each directed link transmits one packet at a time.

Routes and per-hop constants come from the topology's cached
:class:`~repro.net.routing.RoutingTables`.  Packets whose routes share
no directed link with any other packet cannot queue, so their
completion times are closed-form; the simulator detects them with one
link-usage ``bincount`` and resolves the whole batch with array
arithmetic, falling back to the event heap only for the contended
subset.  ``tests/test_sim_contention.py`` asserts the batched fast path
is event-loop-exact.

This is deliberately not a cycle-accurate RTL model: the paper's claims
are about *relative* NoI behaviour, and a queueing-accurate packet model
is the right fidelity for that (DESIGN.md, substitutions table).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..noi.topology import Topology
from ..params import NoIParams
from .routing import concat_ranges

#: Default packet payload in bytes.
PACKET_BYTES = 64


@dataclass(frozen=True)
class Message:
    """One application-level transfer to simulate."""

    src: int
    dst: int
    payload_bytes: int
    inject_cycle: int = 0
    message_id: int = 0


@dataclass(frozen=True)
class SimReport:
    """Simulation outcome for a message set.

    ``batched_packets`` counts packets resolved on the contention-free
    fast path (closed-form, no event-heap traffic).
    """

    makespan_cycles: int
    mean_packet_latency: float
    max_packet_latency: int
    packets_delivered: int
    message_completion: Dict[int, int]
    batched_packets: int = 0

    @property
    def total_latency_cycles(self) -> int:
        """Completion time of the last packet (== makespan)."""
        return self.makespan_cycles


def _packetize(
    messages: Sequence[Message], packet_bytes: int, params: NoIParams
) -> List[Tuple[int, int, int, int, int]]:
    """Split messages into (inject, src, dst, flits, message_id) packets."""
    packets = []
    for msg in messages:
        if msg.src == msg.dst or msg.payload_bytes <= 0:
            continue
        remaining = msg.payload_bytes
        while remaining > 0:
            chunk = min(remaining, packet_bytes)
            flits = -(-chunk // params.flit_bytes)
            packets.append(
                (msg.inject_cycle, msg.src, msg.dst, flits, msg.message_id)
            )
            remaining -= chunk
    return packets


def simulate(
    topology: Topology,
    messages: Sequence[Message],
    *,
    packet_bytes: int = PACKET_BYTES,
    batch_uncontended: bool = True,
) -> SimReport:
    """Run the event-driven simulation for ``messages`` on ``topology``.

    Packets follow the same deterministic minimal routes the analytic
    model uses.  At each hop a packet pays the router pipeline, then
    queues for the outgoing directed link; a link serialises one packet
    (``flits`` cycles) plus the wire delay before the next may start.

    Args:
        topology: The NoI to simulate on.
        messages: Application-level transfers.
        packet_bytes: Packetisation granularity.
        batch_uncontended: Resolve contention-free packets in one array
            pass (default).  Disable to force every packet through the
            event heap -- the result is identical; the flag exists for
            the equivalence tests and for debugging.
    """
    params = topology.params
    packets = _packetize(messages, packet_bytes, params)
    if not packets:
        return SimReport(
            makespan_cycles=0,
            mean_packet_latency=0.0,
            max_packet_latency=0,
            packets_delivered=0,
            message_completion={},
        )
    tables = topology.routing_tables()
    n = tables.num_nodes
    pkt_arr = np.array(packets, dtype=np.int64)
    inject, src, dst, flits, mids = pkt_arr.T
    tables.check_reachable(src, dst, topology.name)
    pair = src * n + dst
    starts = tables.route_indptr[pair]
    hops = tables.route_indptr[pair + 1] - starts

    # One gather of every packet's route links; a link used by a single
    # packet can never queue, so packets touching only such links are
    # contention-free and close in constant time.
    entry_links = tables.route_links[concat_ranges(starts, hops)]
    usage = np.bincount(entry_links, minlength=tables.num_directed_links)
    pkt_of_entry = np.repeat(np.arange(len(packets), dtype=np.int64), hops)
    shared = np.zeros(len(packets), dtype=np.int64)
    np.add.at(shared, pkt_of_entry, (usage[entry_links] > 1).astype(np.int64))
    contended = shared > 0
    if not batch_uncontended:
        contended = np.ones(len(packets), dtype=bool)

    # Store-and-forward completion at zero load: injection + head-flit
    # pipeline + one serialisation per hop.
    completion = np.array(
        inject + tables.pipeline_cycles[src, dst] + hops * flits
    )
    latencies = completion - inject

    contended_ids = np.nonzero(contended)[0]
    if contended_ids.size:
        _simulate_contended(
            tables, params, inject, flits, starts, hops,
            contended_ids, completion, latencies,
        )

    message_completion: Dict[int, int] = {}
    for mid, done in zip(mids.tolist(), completion.tolist()):
        prev = message_completion.get(mid, 0)
        message_completion[mid] = max(prev, done)

    delivered = len(packets)
    return SimReport(
        makespan_cycles=int(completion.max()),
        mean_packet_latency=float(latencies.sum()) / delivered,
        max_packet_latency=int(latencies.max()),
        packets_delivered=delivered,
        message_completion=message_completion,
        batched_packets=delivered - int(contended_ids.size),
    )


def _simulate_contended(
    tables,
    params: NoIParams,
    inject: np.ndarray,
    flits: np.ndarray,
    starts: np.ndarray,
    hops: np.ndarray,
    contended_ids: np.ndarray,
    completion: np.ndarray,
    latencies: np.ndarray,
) -> None:
    """Event-heap simulation of the contended packet subset, in place.

    Contended packets only ever queue against each other (their links
    are disjoint from every fast-path packet's by construction), so
    simulating the subset alone is exact.  FIFO tie-breaking follows
    packetisation order, matching the full event-loop semantics.
    """
    route_links = tables.route_links
    link_free: Dict[int, int] = {}
    events: List[Tuple[int, int, int, int]] = []
    seq = itertools.count()
    for i in contended_ids.tolist():
        heapq.heappush(events, (int(inject[i]), next(seq), i, 0))
    stage = tables.stage_cycles
    link_u = tables.link_u
    link_v = tables.link_v
    wire = tables.link_wire_cycles
    while events:
        now, _s, pkt, hop = heapq.heappop(events)
        if hop >= int(hops[pkt]):
            completion[pkt] = now
            latencies[pkt] = now - int(inject[pkt])
            continue
        edge = int(route_links[int(starts[pkt]) + hop])
        # Router pipeline: the source router is charged on injection,
        # each downstream router on arrival -- the same accounting as
        # the analytic path_pipeline_cycles model.
        ready = now
        if hop == 0:
            ready += int(stage[link_u[edge]])
        start = max(ready, link_free.get(edge, 0))
        serialization = int(flits[pkt])
        link_free[edge] = start + serialization
        arrival = (
            start + serialization + int(wire[edge]) + int(stage[link_v[edge]])
        )
        heapq.heappush(events, (arrival, next(seq), pkt, hop + 1))


def simulate_transfers(
    topology: Topology,
    transfers: Sequence[Tuple[int, int, int]],
    *,
    packet_bytes: int = PACKET_BYTES,
    batch_uncontended: bool = True,
) -> SimReport:
    """Convenience wrapper: simulate ``(src, dst, bytes)`` transfers."""
    messages = [
        Message(src=s, dst=d, payload_bytes=b, message_id=i)
        for i, (s, d, b) in enumerate(transfers)
    ]
    return simulate(
        topology, messages,
        packet_bytes=packet_bytes,
        batch_uncontended=batch_uncontended,
    )
