"""Vectorized NoI evaluation engine (batched analytic model).

Drop-in batched counterparts of the scalar models in
:mod:`repro.net.analytic`: whole transfer sets and traffic matrices are
evaluated with NumPy gathers over the precomputed
:class:`~repro.net.routing.RoutingTables` instead of per-flow Python
loops.  The scalar functions remain the *reference oracles* --
``tests/test_vectorized.py`` asserts agreement to 1e-9 relative
tolerance across every architecture -- while this module is the
production hot path used by :mod:`repro.net.perf` and the sweep runner.

Integer quantities (latencies, flit/packet counts) are computed in
``int64`` and match the oracles exactly; energies are float sums whose
accumulation order differs from the scalar loop, hence the tolerance.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..noi.topology import Topology
from .analytic import CommReport
from .routing import concat_ranges

TransferArray = Union[
    Sequence[Tuple[int, int, int]], np.ndarray
]

_EMPTY_REPORT = CommReport(
    latency_cycles=0,
    serial_latency_cycles=0,
    energy_pj=0.0,
    total_flits=0,
    weighted_hops=0.0,
    packet_count=0,
    packet_latency_sum=0,
    payload_volume=0,
)


def transfers_to_arrays(
    transfers: TransferArray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalise ``[(src, dst, bytes), ...]`` into filtered int64 arrays.

    Self-transfers and non-positive payloads are dropped, mirroring the
    scalar models' ``if src == dst or payload <= 0: continue``.
    """
    arr = np.asarray(transfers, dtype=np.int64)
    if arr.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    arr = arr.reshape(-1, 3)
    src, dst, payload = arr[:, 0], arr[:, 1], arr[:, 2]
    keep = (src != dst) & (payload > 0)
    return src[keep], dst[keep], payload[keep]


def traffic_matrix_to_transfers(matrix: np.ndarray) -> np.ndarray:
    """Flatten an ``(n, n)`` bytes matrix into a transfer array.

    Entry ``matrix[s, d]`` is the payload from chiplet ``s`` to ``d``;
    the diagonal and zero entries are ignored.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"traffic matrix must be square, got {matrix.shape}")
    src, dst = np.nonzero(matrix)
    payload = matrix[src, dst].astype(np.int64)
    return np.stack([src.astype(np.int64), dst.astype(np.int64), payload],
                    axis=1)


def _flits(payload: np.ndarray, flit_bytes: int) -> np.ndarray:
    return -(-payload // flit_bytes)


def _packets(payload: np.ndarray, packet_bytes: int) -> np.ndarray:
    return -(-payload // packet_bytes)


def communication_cost_vec(
    topology: Topology, transfers: TransferArray
) -> CommReport:
    """Batched :func:`repro.net.analytic.communication_cost`.

    Latency composition is identical to the scalar oracle: transfers
    grouped by destination serialise at the ejection port (sum), groups
    overlap (max).
    """
    src, dst, payload = transfers_to_arrays(transfers)
    if src.size == 0:
        return _EMPTY_REPORT
    t = topology.routing_tables()
    t.check_reachable(src, dst, topology.name)
    params = topology.params

    flits = _flits(payload, params.flit_bytes)
    pipeline = t.pipeline_cycles[src, dst]
    latency = pipeline + flits
    by_dst = np.zeros(t.num_nodes, dtype=np.int64)
    np.add.at(by_dst, dst, latency)

    energy = float((flits * t.energy_pj_per_flit(src, dst)).sum())
    hops = t.hops[src, dst]
    volume = int(payload.sum())
    packets = _packets(payload, params.packet_bytes)
    packet_latency = pipeline + params.flits_per_packet
    return CommReport(
        latency_cycles=int(by_dst.max()),
        serial_latency_cycles=int(latency.sum()),
        energy_pj=energy,
        total_flits=int(flits.sum()),
        weighted_hops=(
            float((hops * payload).sum()) / volume if volume else 0.0
        ),
        packet_count=int(packets.sum()),
        packet_latency_sum=int((packets * packet_latency).sum()),
        payload_volume=volume,
    )


def traffic_matrix_cost(topology: Topology, matrix: np.ndarray) -> CommReport:
    """Evaluate a whole ``(n, n)`` traffic matrix in one batched pass."""
    return communication_cost_vec(
        topology, traffic_matrix_to_transfers(matrix)
    )


def unicast_step_cost_vec(
    topology: Topology, transfers: TransferArray
) -> CommReport:
    """Batched unicast step cost (bandwidth-bound latency composition).

    Matches the scalar ``_unicast_step_cost``: the step's latency is the
    most loaded link's flit count plus the deepest pipeline.
    """
    src, dst, payload = transfers_to_arrays(transfers)
    if src.size == 0:
        return _EMPTY_REPORT
    t = topology.routing_tables()
    t.check_reachable(src, dst, topology.name)
    params = topology.params

    flits = _flits(payload, params.flit_bytes)
    pair = src * t.num_nodes + dst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    link_ids = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    link_load = np.zeros(t.num_directed_links, dtype=np.int64)
    np.add.at(link_load, link_ids, np.repeat(flits, counts))

    pipeline = t.pipeline_cycles[src, dst]
    energy = float((flits * t.energy_pj_per_flit(src, dst)).sum())
    hops = t.hops[src, dst]
    volume = int(payload.sum())
    packets = _packets(payload, params.packet_bytes)
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + int(pipeline.max()),
        serial_latency_cycles=int((pipeline + flits).sum()),
        energy_pj=energy,
        total_flits=int(flits.sum()),
        weighted_hops=(
            float((hops * payload).sum()) / volume if volume else 0.0
        ),
        packet_count=int(packets.sum()),
        packet_latency_sum=int(
            (packets * (pipeline + params.flits_per_packet)).sum()
        ),
        payload_volume=volume,
    )


def _groups_to_arrays(
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten multicast groups into ``(src, payload, group-of-dst, dst)``.

    ``src`` and ``payload`` are per-group; ``pg``/``pdst`` are the
    flattened ``(group id, destination)`` pairs with self-destinations
    and non-positive payloads already filtered, mirroring the scalar
    model's ``d != src`` / ``payload <= 0`` skips.
    """
    num = len(groups)
    src = np.empty(num, dtype=np.int64)
    payload = np.empty(num, dtype=np.int64)
    counts = np.empty(num, dtype=np.int64)
    dst_parts = []
    for g, (g_src, g_dsts, g_payload) in enumerate(groups):
        src[g] = g_src
        payload[g] = g_payload
        part = np.asarray(g_dsts, dtype=np.int64)
        counts[g] = part.shape[0]
        dst_parts.append(part)
    pdst = (
        np.concatenate(dst_parts) if dst_parts
        else np.empty(0, dtype=np.int64)
    )
    pg = np.repeat(np.arange(num, dtype=np.int64), counts)
    keep = (pdst != src[pg]) & (payload[pg] > 0)
    return src, payload, pg[keep], pdst[keep]


def multicast_step_cost_vec(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> CommReport:
    """Batched :func:`repro.net.analytic.multicast_step_cost`.

    On unicast NoIs the whole step collapses into one batched unicast
    evaluation.  On multicast-capable NoIs the trees of *all* groups
    are built in one pass: every (group, destination) route's links are
    gathered together, deduplicated per group with a single
    ``np.unique`` over combined ``group * L + link`` keys, and all
    per-group sums fall out of segment reductions -- no per-group
    Python iteration.  :func:`multicast_step_cost_pergroup` keeps the
    per-group construction as the pinned reference.
    """
    if not topology.multicast_capable:
        src, payload, pg, pdst = _groups_to_arrays(groups)
        return unicast_step_cost_vec(
            topology,
            np.stack([src[pg], pdst, payload[pg]], axis=1),
        )

    t = topology.routing_tables()
    params = topology.params
    src, payload, pg, pdst = _groups_to_arrays(groups)
    if pg.shape[0] == 0:
        return _EMPTY_REPORT
    t.check_reachable(src[pg], pdst, topology.name)
    num_groups = src.shape[0]
    num_links = t.num_directed_links

    # All groups' trees in one pass: dedupe (group, link) pairs over
    # the concatenated route slices of every (group, dst).
    pair = src[pg] * t.num_nodes + pdst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    entries = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    key = np.repeat(pg, counts) * num_links + entries
    key = np.unique(key)
    tree_group = key // num_links
    tree_link = key % num_links

    flits = _flits(payload, params.flit_bytes)
    active = np.zeros(num_groups, dtype=bool)
    active[pg] = True

    link_load = np.zeros(num_links, dtype=np.int64)
    np.add.at(link_load, tree_link, flits[tree_group])

    # Per-group segment reductions over the deduplicated tree entries.
    tree_link_energy = np.bincount(
        tree_group,
        weights=t.link_energy_pj_per_flit[tree_link],
        minlength=num_groups,
    )
    tree_router_energy = np.bincount(
        tree_group,
        weights=t.router_energy_pj_per_flit[t.link_v[tree_link]],
        minlength=num_groups,
    )
    deepest = np.zeros(num_groups, dtype=np.int64)
    np.maximum.at(deepest, pg, t.pipeline_cycles[src[pg], pdst])

    group_energy = flits * (
        t.router_energy_pj_per_flit[src]
        + tree_router_energy
        + tree_link_energy
    )
    packets = _packets(payload, params.packet_bytes)
    hop_weight = float(
        (t.hops[src[pg], pdst] * payload[pg]).sum()
    )
    volume_total = int(payload[pg].sum())
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + int(deepest.max()),
        serial_latency_cycles=int((deepest + flits)[active].sum()),
        energy_pj=float(group_energy[active].sum()),
        total_flits=int(flits[active].sum()),
        weighted_hops=(
            hop_weight / volume_total if volume_total else 0.0
        ),
        packet_count=int(packets[active].sum()),
        packet_latency_sum=int(
            (packets * (deepest + params.flits_per_packet))[active].sum()
        ),
        payload_volume=volume_total,
    )


def _segment_max_link_load(
    seg: np.ndarray,
    link: np.ndarray,
    flits: np.ndarray,
    num_links: int,
    num_segments: int,
) -> np.ndarray:
    """Per-segment max link load from (segment, link, flits) triples.

    Sums flits per distinct ``(segment, link)`` pair, then maxes within
    each segment -- without materialising the dense
    ``num_segments * num_links`` load matrix.
    """
    out = np.zeros(num_segments, dtype=np.int64)
    if seg.size == 0:
        return out
    key, inv = np.unique(seg * num_links + link, return_inverse=True)
    load = np.zeros(key.shape[0], dtype=np.int64)
    np.add.at(load, inv, flits)
    np.maximum.at(out, key // num_links, load)
    return out


def _step_reports(
    num_steps: int,
    has: np.ndarray,
    latency: np.ndarray,
    serial: np.ndarray,
    energy: np.ndarray,
    flits: np.ndarray,
    hop_weight: np.ndarray,
    volume: np.ndarray,
    packets: np.ndarray,
    packet_latency: np.ndarray,
) -> List[CommReport]:
    """Assemble per-step ``CommReport``s from segment-reduced arrays."""
    reports: List[CommReport] = []
    for s in range(num_steps):
        if not has[s]:
            reports.append(_EMPTY_REPORT)
            continue
        vol = int(volume[s])
        reports.append(CommReport(
            latency_cycles=int(latency[s]),
            serial_latency_cycles=int(serial[s]),
            energy_pj=float(energy[s]),
            total_flits=int(flits[s]),
            weighted_hops=(float(hop_weight[s]) / vol) if vol else 0.0,
            packet_count=int(packets[s]),
            packet_latency_sum=int(packet_latency[s]),
            payload_volume=vol,
        ))
    return reports


def _unicast_step_cost_steps(
    topology: Topology,
    src: np.ndarray,
    dst: np.ndarray,
    payload: np.ndarray,
    step: np.ndarray,
    num_steps: int,
) -> List[CommReport]:
    """Steps variant of :func:`unicast_step_cost_vec` (filtered arrays)."""
    t = topology.routing_tables()
    t.check_reachable(src, dst, topology.name)
    params = topology.params
    num_links = t.num_directed_links

    flits = _flits(payload, params.flit_bytes)
    pair = src * t.num_nodes + dst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    entries = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    max_load = _segment_max_link_load(
        np.repeat(step, counts), entries, np.repeat(flits, counts),
        num_links, num_steps,
    )

    pipeline = t.pipeline_cycles[src, dst]
    step_pipeline = np.zeros(num_steps, dtype=np.int64)
    np.maximum.at(step_pipeline, step, pipeline)
    has = np.zeros(num_steps, dtype=bool)
    has[step] = True

    step_serial = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_serial, step, pipeline + flits)
    step_flits = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_flits, step, flits)
    packets = _packets(payload, params.packet_bytes)
    step_packets = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_packets, step, packets)
    step_packet_latency = np.zeros(num_steps, dtype=np.int64)
    np.add.at(
        step_packet_latency, step,
        packets * (pipeline + params.flits_per_packet),
    )
    step_volume = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_volume, step, payload)
    step_energy = np.bincount(
        step, weights=flits * t.energy_pj_per_flit(src, dst),
        minlength=num_steps,
    )
    step_hop_weight = np.bincount(
        step, weights=(t.hops[src, dst] * payload).astype(np.float64),
        minlength=num_steps,
    )
    return _step_reports(
        num_steps, has, max_load + step_pipeline, step_serial,
        step_energy, step_flits, step_hop_weight, step_volume,
        step_packets, step_packet_latency,
    )


def multicast_step_cost_steps(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
    step_of_group: Sequence[int],
    num_steps: int,
) -> List[CommReport]:
    """Evaluate many dataflow steps' multicast groups in one batched pass.

    ``groups`` concatenates every step's ``(src, dsts, payload_bytes)``
    groups; ``step_of_group[g]`` assigns group ``g`` to a step in
    ``range(num_steps)`` (typically the consumer layer's position in
    ``model.weight_layers()``).  Returns one :class:`CommReport` per
    step, each equal to :func:`multicast_step_cost_vec` on that step's
    groups alone -- integer fields exactly, floats to accumulation
    order -- with the per-layer Python loop replaced by step-segmented
    reductions: the cross-group ``group * L + link`` tree-dedup keys
    already carry the step through the group id, so link loads, tree
    energies and pipeline depths all fall out of one ``np.unique`` /
    ``np.add.at`` / ``np.maximum.at`` pass over the whole task.

    Steps with no effective traffic (no groups, or only self-destination
    / zero-payload groups) get the zero report, matching the per-step
    engines on an empty group list.
    """
    if num_steps < 0:
        raise ValueError(f"num_steps must be >= 0, got {num_steps}")
    step = np.asarray(step_of_group, dtype=np.int64).reshape(-1)
    if step.shape[0] != len(groups):
        raise ValueError(
            f"step_of_group has {step.shape[0]} entries "
            f"for {len(groups)} groups"
        )
    if step.size and (step.min() < 0 or step.max() >= num_steps):
        raise ValueError(
            f"step ids must lie in [0, {num_steps}), got "
            f"[{int(step.min())}, {int(step.max())}]"
        )
    src, payload, pg, pdst = _groups_to_arrays(groups)
    if pg.shape[0] == 0:
        return [_EMPTY_REPORT] * num_steps
    if not topology.multicast_capable:
        return _unicast_step_cost_steps(
            topology, src[pg], pdst, payload[pg], step[pg], num_steps
        )

    t = topology.routing_tables()
    params = topology.params
    t.check_reachable(src[pg], pdst, topology.name)
    num_groups = src.shape[0]
    num_links = t.num_directed_links

    # Same cross-group tree dedup as multicast_step_cost_vec: the group
    # id in the combined key keeps groups of different steps apart, so
    # one np.unique builds every step's trees at once.
    pair = src[pg] * t.num_nodes + pdst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    entries = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    key = np.unique(np.repeat(pg, counts) * num_links + entries)
    tree_group = key // num_links
    tree_link = key % num_links

    flits = _flits(payload, params.flit_bytes)
    active = np.zeros(num_groups, dtype=bool)
    active[pg] = True
    ga = np.flatnonzero(active)

    max_load = _segment_max_link_load(
        step[tree_group], tree_link, flits[tree_group],
        num_links, num_steps,
    )

    tree_link_energy = np.bincount(
        tree_group,
        weights=t.link_energy_pj_per_flit[tree_link],
        minlength=num_groups,
    )
    tree_router_energy = np.bincount(
        tree_group,
        weights=t.router_energy_pj_per_flit[t.link_v[tree_link]],
        minlength=num_groups,
    )
    deepest = np.zeros(num_groups, dtype=np.int64)
    np.maximum.at(deepest, pg, t.pipeline_cycles[src[pg], pdst])
    step_deepest = np.zeros(num_steps, dtype=np.int64)
    np.maximum.at(step_deepest, step[ga], deepest[ga])
    has = np.zeros(num_steps, dtype=bool)
    has[step[ga]] = True

    group_energy = flits * (
        t.router_energy_pj_per_flit[src]
        + tree_router_energy
        + tree_link_energy
    )
    packets = _packets(payload, params.packet_bytes)

    step_serial = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_serial, step[ga], (deepest + flits)[ga])
    step_flits = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_flits, step[ga], flits[ga])
    step_packets = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_packets, step[ga], packets[ga])
    step_packet_latency = np.zeros(num_steps, dtype=np.int64)
    np.add.at(
        step_packet_latency, step[ga],
        (packets * (deepest + params.flits_per_packet))[ga],
    )
    step_volume = np.zeros(num_steps, dtype=np.int64)
    np.add.at(step_volume, step[pg], payload[pg])
    step_energy = np.bincount(
        step[ga], weights=group_energy[ga], minlength=num_steps
    )
    step_hop_weight = np.bincount(
        step[pg],
        weights=(t.hops[src[pg], pdst] * payload[pg]).astype(np.float64),
        minlength=num_steps,
    )
    return _step_reports(
        num_steps, has, max_load + step_deepest, step_serial,
        step_energy, step_flits, step_hop_weight, step_volume,
        step_packets, step_packet_latency,
    )


def multicast_step_cost_pergroup(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> CommReport:
    """Per-group reference for :func:`multicast_step_cost_vec`.

    Builds each group's tree with its own ``np.unique`` -- the original
    vectorized implementation, kept as the pinned mid-level oracle
    between the scalar :func:`repro.net.analytic.multicast_step_cost`
    and the cross-group batched path
    (``tests/test_vectorized.py::TestMulticastBatching``).
    """
    if not topology.multicast_capable:
        transfers = [
            (src, d, payload)
            for src, dsts, payload in groups
            for d in dsts
            if d != src and payload > 0
        ]
        return unicast_step_cost_vec(topology, transfers)

    t = topology.routing_tables()
    params = topology.params
    link_load = np.zeros(t.num_directed_links, dtype=np.int64)
    pipeline_max = 0
    energy = 0.0
    flits_total = 0
    serial = 0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for src, dsts, payload in groups:
        real = np.array([d for d in dsts if d != src], dtype=np.int64)
        if real.size == 0 or payload <= 0:
            continue
        src_arr = np.full(real.shape, src, dtype=np.int64)
        t.check_reachable(src_arr, real, topology.name)
        flits = int(_flits(np.int64(payload), params.flit_bytes))
        flits_total += flits
        pair = src * t.num_nodes + real
        counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
        tree = np.unique(
            t.route_links[concat_ranges(t.route_indptr[pair], counts)]
        )
        link_load[tree] += flits
        pipeline = t.pipeline_cycles[src, real]
        deepest = int(pipeline.max())
        pipeline_max = max(pipeline_max, deepest)
        serial += deepest + flits
        router_energy = (
            t.router_energy_pj_per_flit[src]
            + float(t.router_energy_pj_per_flit[t.link_v[tree]].sum())
        )
        link_energy = float(t.link_energy_pj_per_flit[tree].sum())
        energy += flits * (router_energy + link_energy)
        packets = int(_packets(np.int64(payload), params.packet_bytes))
        packet_count += packets
        packet_latency_sum += packets * (deepest + params.flits_per_packet)
        hop_weight += float((t.hops[src, real] * payload).sum())
        volume_total += payload * int(real.size)
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + pipeline_max,
        serial_latency_cycles=serial,
        energy_pj=energy,
        total_flits=flits_total,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
        payload_volume=volume_total,
    )
