"""Vectorized NoI evaluation engine (batched analytic model).

Drop-in batched counterparts of the scalar models in
:mod:`repro.net.analytic`: whole transfer sets and traffic matrices are
evaluated with NumPy gathers over the precomputed
:class:`~repro.net.routing.RoutingTables` instead of per-flow Python
loops.  The scalar functions remain the *reference oracles* --
``tests/test_vectorized.py`` asserts agreement to 1e-9 relative
tolerance across every architecture -- while this module is the
production hot path used by :mod:`repro.net.perf` and the sweep runner.

Integer quantities (latencies, flit/packet counts) are computed in
``int64`` and match the oracles exactly; energies are float sums whose
accumulation order differs from the scalar loop, hence the tolerance.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..noi.topology import Topology
from .analytic import CommReport
from .routing import concat_ranges

TransferArray = Union[
    Sequence[Tuple[int, int, int]], np.ndarray
]

_EMPTY_REPORT = CommReport(
    latency_cycles=0,
    serial_latency_cycles=0,
    energy_pj=0.0,
    total_flits=0,
    weighted_hops=0.0,
    packet_count=0,
    packet_latency_sum=0,
)


def transfers_to_arrays(
    transfers: TransferArray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalise ``[(src, dst, bytes), ...]`` into filtered int64 arrays.

    Self-transfers and non-positive payloads are dropped, mirroring the
    scalar models' ``if src == dst or payload <= 0: continue``.
    """
    arr = np.asarray(transfers, dtype=np.int64)
    if arr.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    arr = arr.reshape(-1, 3)
    src, dst, payload = arr[:, 0], arr[:, 1], arr[:, 2]
    keep = (src != dst) & (payload > 0)
    return src[keep], dst[keep], payload[keep]


def traffic_matrix_to_transfers(matrix: np.ndarray) -> np.ndarray:
    """Flatten an ``(n, n)`` bytes matrix into a transfer array.

    Entry ``matrix[s, d]`` is the payload from chiplet ``s`` to ``d``;
    the diagonal and zero entries are ignored.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"traffic matrix must be square, got {matrix.shape}")
    src, dst = np.nonzero(matrix)
    payload = matrix[src, dst].astype(np.int64)
    return np.stack([src.astype(np.int64), dst.astype(np.int64), payload],
                    axis=1)


def _flits(payload: np.ndarray, flit_bytes: int) -> np.ndarray:
    return -(-payload // flit_bytes)


def _packets(payload: np.ndarray, packet_bytes: int) -> np.ndarray:
    return -(-payload // packet_bytes)


def communication_cost_vec(
    topology: Topology, transfers: TransferArray
) -> CommReport:
    """Batched :func:`repro.net.analytic.communication_cost`.

    Latency composition is identical to the scalar oracle: transfers
    grouped by destination serialise at the ejection port (sum), groups
    overlap (max).
    """
    src, dst, payload = transfers_to_arrays(transfers)
    if src.size == 0:
        return _EMPTY_REPORT
    t = topology.routing_tables()
    t.check_reachable(src, dst, topology.name)
    params = topology.params

    flits = _flits(payload, params.flit_bytes)
    pipeline = t.pipeline_cycles[src, dst]
    latency = pipeline + flits
    by_dst = np.zeros(t.num_nodes, dtype=np.int64)
    np.add.at(by_dst, dst, latency)

    energy = float((flits * t.energy_pj_per_flit(src, dst)).sum())
    hops = t.hops[src, dst]
    volume = int(payload.sum())
    packets = _packets(payload, params.packet_bytes)
    packet_latency = pipeline + params.flits_per_packet
    return CommReport(
        latency_cycles=int(by_dst.max()),
        serial_latency_cycles=int(latency.sum()),
        energy_pj=energy,
        total_flits=int(flits.sum()),
        weighted_hops=(
            float((hops * payload).sum()) / volume if volume else 0.0
        ),
        packet_count=int(packets.sum()),
        packet_latency_sum=int((packets * packet_latency).sum()),
    )


def traffic_matrix_cost(topology: Topology, matrix: np.ndarray) -> CommReport:
    """Evaluate a whole ``(n, n)`` traffic matrix in one batched pass."""
    return communication_cost_vec(
        topology, traffic_matrix_to_transfers(matrix)
    )


def unicast_step_cost_vec(
    topology: Topology, transfers: TransferArray
) -> CommReport:
    """Batched unicast step cost (bandwidth-bound latency composition).

    Matches the scalar ``_unicast_step_cost``: the step's latency is the
    most loaded link's flit count plus the deepest pipeline.
    """
    src, dst, payload = transfers_to_arrays(transfers)
    if src.size == 0:
        return _EMPTY_REPORT
    t = topology.routing_tables()
    t.check_reachable(src, dst, topology.name)
    params = topology.params

    flits = _flits(payload, params.flit_bytes)
    pair = src * t.num_nodes + dst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    link_ids = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    link_load = np.zeros(t.num_directed_links, dtype=np.int64)
    np.add.at(link_load, link_ids, np.repeat(flits, counts))

    pipeline = t.pipeline_cycles[src, dst]
    energy = float((flits * t.energy_pj_per_flit(src, dst)).sum())
    hops = t.hops[src, dst]
    volume = int(payload.sum())
    packets = _packets(payload, params.packet_bytes)
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + int(pipeline.max()),
        serial_latency_cycles=int((pipeline + flits).sum()),
        energy_pj=energy,
        total_flits=int(flits.sum()),
        weighted_hops=(
            float((hops * payload).sum()) / volume if volume else 0.0
        ),
        packet_count=int(packets.sum()),
        packet_latency_sum=int(
            (packets * (pipeline + params.flits_per_packet)).sum()
        ),
    )


def _groups_to_arrays(
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten multicast groups into ``(src, payload, group-of-dst, dst)``.

    ``src`` and ``payload`` are per-group; ``pg``/``pdst`` are the
    flattened ``(group id, destination)`` pairs with self-destinations
    and non-positive payloads already filtered, mirroring the scalar
    model's ``d != src`` / ``payload <= 0`` skips.
    """
    num = len(groups)
    src = np.empty(num, dtype=np.int64)
    payload = np.empty(num, dtype=np.int64)
    counts = np.empty(num, dtype=np.int64)
    dst_parts = []
    for g, (g_src, g_dsts, g_payload) in enumerate(groups):
        src[g] = g_src
        payload[g] = g_payload
        part = np.asarray(g_dsts, dtype=np.int64)
        counts[g] = part.shape[0]
        dst_parts.append(part)
    pdst = (
        np.concatenate(dst_parts) if dst_parts
        else np.empty(0, dtype=np.int64)
    )
    pg = np.repeat(np.arange(num, dtype=np.int64), counts)
    keep = (pdst != src[pg]) & (payload[pg] > 0)
    return src, payload, pg[keep], pdst[keep]


def multicast_step_cost_vec(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> CommReport:
    """Batched :func:`repro.net.analytic.multicast_step_cost`.

    On unicast NoIs the whole step collapses into one batched unicast
    evaluation.  On multicast-capable NoIs the trees of *all* groups
    are built in one pass: every (group, destination) route's links are
    gathered together, deduplicated per group with a single
    ``np.unique`` over combined ``group * L + link`` keys, and all
    per-group sums fall out of segment reductions -- no per-group
    Python iteration.  :func:`multicast_step_cost_pergroup` keeps the
    per-group construction as the pinned reference.
    """
    if not topology.multicast_capable:
        src, payload, pg, pdst = _groups_to_arrays(groups)
        return unicast_step_cost_vec(
            topology,
            np.stack([src[pg], pdst, payload[pg]], axis=1),
        )

    t = topology.routing_tables()
    params = topology.params
    src, payload, pg, pdst = _groups_to_arrays(groups)
    if pg.shape[0] == 0:
        return _EMPTY_REPORT
    t.check_reachable(src[pg], pdst, topology.name)
    num_groups = src.shape[0]
    num_links = t.num_directed_links

    # All groups' trees in one pass: dedupe (group, link) pairs over
    # the concatenated route slices of every (group, dst).
    pair = src[pg] * t.num_nodes + pdst
    counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
    entries = t.route_links[concat_ranges(t.route_indptr[pair], counts)]
    key = np.repeat(pg, counts) * num_links + entries
    key = np.unique(key)
    tree_group = key // num_links
    tree_link = key % num_links

    flits = _flits(payload, params.flit_bytes)
    active = np.zeros(num_groups, dtype=bool)
    active[pg] = True

    link_load = np.zeros(num_links, dtype=np.int64)
    np.add.at(link_load, tree_link, flits[tree_group])

    # Per-group segment reductions over the deduplicated tree entries.
    tree_link_energy = np.bincount(
        tree_group,
        weights=t.link_energy_pj_per_flit[tree_link],
        minlength=num_groups,
    )
    tree_router_energy = np.bincount(
        tree_group,
        weights=t.router_energy_pj_per_flit[t.link_v[tree_link]],
        minlength=num_groups,
    )
    deepest = np.zeros(num_groups, dtype=np.int64)
    np.maximum.at(deepest, pg, t.pipeline_cycles[src[pg], pdst])

    group_energy = flits * (
        t.router_energy_pj_per_flit[src]
        + tree_router_energy
        + tree_link_energy
    )
    packets = _packets(payload, params.packet_bytes)
    hop_weight = float(
        (t.hops[src[pg], pdst] * payload[pg]).sum()
    )
    volume_total = int(payload[pg].sum())
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + int(deepest.max()),
        serial_latency_cycles=int((deepest + flits)[active].sum()),
        energy_pj=float(group_energy[active].sum()),
        total_flits=int(flits[active].sum()),
        weighted_hops=(
            hop_weight / volume_total if volume_total else 0.0
        ),
        packet_count=int(packets[active].sum()),
        packet_latency_sum=int(
            (packets * (deepest + params.flits_per_packet))[active].sum()
        ),
    )


def multicast_step_cost_pergroup(
    topology: Topology,
    groups: Sequence[Tuple[int, Sequence[int], int]],
) -> CommReport:
    """Per-group reference for :func:`multicast_step_cost_vec`.

    Builds each group's tree with its own ``np.unique`` -- the original
    vectorized implementation, kept as the pinned mid-level oracle
    between the scalar :func:`repro.net.analytic.multicast_step_cost`
    and the cross-group batched path
    (``tests/test_vectorized.py::TestMulticastBatching``).
    """
    if not topology.multicast_capable:
        transfers = [
            (src, d, payload)
            for src, dsts, payload in groups
            for d in dsts
            if d != src and payload > 0
        ]
        return unicast_step_cost_vec(topology, transfers)

    t = topology.routing_tables()
    params = topology.params
    link_load = np.zeros(t.num_directed_links, dtype=np.int64)
    pipeline_max = 0
    energy = 0.0
    flits_total = 0
    serial = 0
    hop_weight = 0.0
    volume_total = 0
    packet_count = 0
    packet_latency_sum = 0
    for src, dsts, payload in groups:
        real = np.array([d for d in dsts if d != src], dtype=np.int64)
        if real.size == 0 or payload <= 0:
            continue
        src_arr = np.full(real.shape, src, dtype=np.int64)
        t.check_reachable(src_arr, real, topology.name)
        flits = int(_flits(np.int64(payload), params.flit_bytes))
        flits_total += flits
        pair = src * t.num_nodes + real
        counts = t.route_indptr[pair + 1] - t.route_indptr[pair]
        tree = np.unique(
            t.route_links[concat_ranges(t.route_indptr[pair], counts)]
        )
        link_load[tree] += flits
        pipeline = t.pipeline_cycles[src, real]
        deepest = int(pipeline.max())
        pipeline_max = max(pipeline_max, deepest)
        serial += deepest + flits
        router_energy = (
            t.router_energy_pj_per_flit[src]
            + float(t.router_energy_pj_per_flit[t.link_v[tree]].sum())
        )
        link_energy = float(t.link_energy_pj_per_flit[tree].sum())
        energy += flits * (router_energy + link_energy)
        packets = int(_packets(np.int64(payload), params.packet_bytes))
        packet_count += packets
        packet_latency_sum += packets * (deepest + params.flits_per_packet)
        hop_weight += float((t.hops[src, real] * payload).sum())
        volume_total += payload * int(real.size)
    max_load = int(link_load.max()) if link_load.size else 0
    return CommReport(
        latency_cycles=max_load + pipeline_max,
        serial_latency_cycles=serial,
        energy_pj=energy,
        total_flits=flits_total,
        weighted_hops=(hop_weight / volume_total) if volume_total else 0.0,
        packet_count=packet_count,
        packet_latency_sum=packet_latency_sum,
    )
