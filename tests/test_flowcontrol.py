"""Closed-loop flow control: params, engines, telemetry, deadlock.

Tentpole coverage: the epoch-synchronous flow-control engine is pinned
bit-exactly to the event-heap oracle -- completions, latencies, FIFO
tie-breaks and every ``LinkTelemetry`` counter -- across seeded
finite-buffer load sweeps on mesh (SIAM), Kite, SWAP and Floret; with
``buffer_flits=None`` the open-loop engines run byte-identically to the
pre-flow-control simulator; and both engines detect the same credit
deadlock on a crafted cyclic-route workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.net.flowcontrol import (
    FlowControlDeadlockError,
    FlowControlParams,
    GrantTrace,
    link_telemetry,
)
from repro.net.simulator import Message, simulate, simulate_packets
from repro.noi.topology import Chiplet, Link, Topology
from repro.params import NoIParams

TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")

FC_CONFIGS = (
    FlowControlParams(buffer_flits=4, credit_rtt=2),
    FlowControlParams(buffer_flits=8, source_queue=2, credit_rtt=3),
    FlowControlParams(source_queue=1),
)

TELEMETRY_FIELDS = (
    "accepted_packets", "accepted_flits", "busy_cycles", "stall_cycles",
    "credit_stall_cycles", "peak_queue_flits",
)


def _topology(request, fixture):
    topo = request.getfixturevalue(fixture)
    return topo.topology if fixture == "small_floret" else topo


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(8)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(7)]
    return Topology("line8", chiplets, links)


@pytest.fixture(scope="module")
def ring5():
    """5-node ring: every 2-hop route is uniquely clockwise, so flows
    ``i -> i+2`` form a directed cycle of held buffers -- the classic
    store-and-forward deadlock substrate."""
    chiplets = [Chiplet(i, x=i, y=0) for i in range(5)]
    links = [Link(i, (i + 1) % 5, length_mm=3.0) for i in range(5)]
    return Topology("ring5", chiplets, links)


def run_or_deadlock(topo, table, fc, engine, **kwargs):
    """Simulate, or capture the deadlock -- either way comparable."""
    try:
        return simulate_packets(topo, table, engine=engine,
                                flow_control=fc, telemetry=True, **kwargs)
    except FlowControlDeadlockError as error:
        return ("deadlock", error.blocked, error.links)


def assert_fc_identical(a, b):
    assert np.array_equal(a.completion, b.completion)
    assert np.array_equal(a.latency, b.latency)
    if a.telemetry is not None or b.telemetry is not None:
        assert a.telemetry.horizon_cycles == b.telemetry.horizon_cycles
        for field in TELEMETRY_FIELDS:
            assert np.array_equal(getattr(a.telemetry, field),
                                  getattr(b.telemetry, field)), field
        assert np.allclose(a.telemetry.mean_queue_flits,
                           b.telemetry.mean_queue_flits)


class TestFlowControlParams:
    def test_defaults_inactive(self):
        fc = FlowControlParams()
        assert not fc.is_active
        assert fc.credit_rtt == 1

    @pytest.mark.parametrize("kwargs", [
        {"buffer_flits": 0}, {"buffer_flits": -3},
        {"source_queue": 0}, {"source_queue": -1},
        {"credit_rtt": 0}, {"credit_rtt": -2},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FlowControlParams(**kwargs)

    def test_active_forms(self):
        assert FlowControlParams(buffer_flits=4).is_active
        assert FlowControlParams(source_queue=2).is_active

    def test_noi_params_threading(self):
        params = NoIParams(fc_buffer_flits=8.0, fc_source_queue=2,
                           fc_credit_rtt=3)
        fc = params.flow_control()
        # Sweep overrides arrive as floats; coerced back to ints.
        assert fc == FlowControlParams(buffer_flits=8, source_queue=2,
                                       credit_rtt=3)
        assert not NoIParams().flow_control().is_active

    def test_buffer_capacity_metadata(self, small_mesh):
        index = small_mesh.routing_tables().queue_index()
        assert index.buffer_capacity_flits(None) is None
        assert index.buffer_capacity_flits(FlowControlParams()) is None
        capacity = index.buffer_capacity_flits(
            FlowControlParams(buffer_flits=6)
        )
        assert capacity.shape == (index.num_directed_links,)
        assert np.all(capacity == 6)


class TestEngineEquivalence:
    """FC epoch engine bit-exact vs the FC heap oracle."""

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("fc", FC_CONFIGS,
                             ids=lambda fc: f"B{fc.buffer_flits}"
                                            f"Q{fc.source_queue}")
    def test_random_load_sweep(self, fixture, seed, fc, request):
        # Tiny buffers legitimately deadlock the ring-bearing
        # topologies (cyclic shortest-path dependencies); a deadlock is
        # then the *result*, and both engines must report the same one.
        topo = _topology(request, fixture)
        spec = parse_load_workload("uniform@0.08:w64+192")
        table = load_sweep_traffic(spec, topo.num_chiplets, seed)
        events = run_or_deadlock(topo, table, fc, "events")
        epochs = run_or_deadlock(topo, table, fc, "epochs")
        if isinstance(events, tuple) or isinstance(epochs, tuple):
            assert events == epochs
            return
        assert_fc_identical(events, epochs)
        assert events.engine == "events" and epochs.engine == "epochs"
        assert epochs.epochs > 0

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_hotspot_backpressure(self, fixture, request):
        topo = _topology(request, fixture)
        spec = parse_load_workload("hotspot@0.12:w32+96")
        table = load_sweep_traffic(spec, topo.num_chiplets, 7)
        fc = FlowControlParams(buffer_flits=4, credit_rtt=1)
        events = run_or_deadlock(topo, table, fc, "events")
        epochs = run_or_deadlock(topo, table, fc, "epochs")
        if isinstance(events, tuple) or isinstance(epochs, tuple):
            assert events == epochs
            return
        assert_fc_identical(events, epochs)

    def test_unbatched_matches_batched(self, small_mesh):
        spec = parse_load_workload("uniform@0.05:w32+96")
        table = load_sweep_traffic(spec, 36, 3)
        fc = FlowControlParams(buffer_flits=6, credit_rtt=2)
        batched = simulate_packets(small_mesh, table, engine="epochs",
                                   flow_control=fc, telemetry=True)
        unbatched = simulate_packets(
            small_mesh, table, engine="epochs", flow_control=fc,
            telemetry=True, batch_uncontended=False,
        )
        assert_fc_identical(batched, unbatched)

    def test_multi_packet_messages(self, line):
        rng = np.random.default_rng(5)
        msgs = [
            Message(int(rng.integers(0, 8)), int(rng.integers(0, 8)),
                    int(rng.integers(1, 700)),
                    inject_cycle=int(rng.integers(0, 40)), message_id=i)
            for i in range(60)
        ]
        fc = FlowControlParams(buffer_flits=5, source_queue=3,
                               credit_rtt=2)
        assert_fc_identical(
            simulate_packets(line, msgs, engine="events",
                             flow_control=fc, telemetry=True),
            simulate_packets(line, msgs, engine="epochs",
                             flow_control=fc, telemetry=True),
        )

    def test_grant_traces_identical(self, small_kite):
        spec = parse_load_workload("uniform@0.1:w16+48")
        table = load_sweep_traffic(spec, 36, 2)
        fc = FlowControlParams(buffer_flits=4, credit_rtt=2)
        tables = small_kite.routing_tables()
        traces = []
        for engine in ("events", "epochs"):
            sim = simulate_packets(small_kite, table, engine=engine,
                                   flow_control=fc, telemetry=True)
            assert sim.telemetry is not None
            traces.append(sim)
        # Telemetry equality already implies trace equality up to
        # ordering; pin it explicitly through the census totals.
        assert (traces[0].telemetry.total_accepted_flits
                == traces[1].telemetry.total_accepted_flits > 0)
        assert tables.num_directed_links == \
            traces[0].telemetry.num_directed_links


class TestOpenLoopCompatibility:
    """buffer_flits=None keeps the pre-flow-control engines bit-exact."""

    @pytest.mark.parametrize("engine", ["events", "epochs"])
    def test_inactive_fc_is_open_loop(self, small_mesh, engine):
        spec = parse_load_workload("uniform@0.08:w32+96")
        table = load_sweep_traffic(spec, 36, 1)
        plain = simulate_packets(small_mesh, table, engine=engine)
        explicit = simulate_packets(small_mesh, table, engine=engine,
                                    flow_control=FlowControlParams())
        forced_open = simulate_packets(small_mesh, table, engine=engine,
                                       flow_control=None)
        assert np.array_equal(plain.completion, explicit.completion)
        assert np.array_equal(plain.completion, forced_open.completion)
        assert plain.telemetry is None

    def test_params_default_is_open_loop(self, small_mesh):
        # Default NoIParams carry no fc knobs: "params" mode == open.
        assert not small_mesh.params.flow_control().is_active
        spec = parse_load_workload("uniform@0.05:w16+48")
        table = load_sweep_traffic(spec, 36, 0)
        by_params = simulate_packets(small_mesh, table)
        open_loop = simulate_packets(small_mesh, table, flow_control=None)
        assert np.array_equal(by_params.completion, open_loop.completion)

    def test_huge_buffers_never_stall_on_credits(self, small_mesh):
        spec = parse_load_workload("uniform@0.08:w32+96")
        table = load_sweep_traffic(spec, 36, 2)
        sim = simulate_packets(
            small_mesh, table, engine="epochs",
            flow_control=FlowControlParams(buffer_flits=10 ** 6),
            telemetry=True,
        )
        assert sim.telemetry.credit_stall_cycles.sum() == 0

    def test_unknown_flow_control_string_rejected(self, small_mesh):
        with pytest.raises(ValueError, match="unknown flow_control"):
            simulate_packets(small_mesh, [Message(0, 1, 64)],
                             flow_control="warp")


class TestBackpressurePhysics:
    def test_buffer_too_small_for_packet(self, line):
        # 64 B payload at 32 B flits = 2-flit packets; a 1-flit buffer
        # could never forward them.
        with pytest.raises(ValueError, match="buffer_flits"):
            simulate(line, [Message(0, 3, 64)],
                     flow_control=FlowControlParams(buffer_flits=1))

    def test_finite_buffers_raise_congestion_latency(self, small_mesh):
        spec = parse_load_workload("uniform@0.1:w32+96")
        table = load_sweep_traffic(spec, 36, 3)
        open_loop = simulate_packets(small_mesh, table, engine="epochs",
                                     flow_control=None)
        closed = simulate_packets(
            small_mesh, table, engine="epochs",
            flow_control=FlowControlParams(buffer_flits=2, credit_rtt=2),
            telemetry=True,
        )
        assert closed.latency.mean() > open_loop.latency.mean()
        assert closed.telemetry.credit_stall_cycles.sum() > 0
        # Stall split is consistent: credit stalls are part of stalls.
        assert np.all(closed.telemetry.credit_stall_cycles
                      <= closed.telemetry.stall_cycles)

    def test_source_queue_defers_second_injection(self, line):
        # Two packets from node 1 on *different* first links (1->0 and
        # 1->2): open loop injects both at once; Q=1 gates the second
        # until one cycle after the first starts serialising.
        msgs = [Message(1, 0, 64, inject_cycle=0, message_id=0),
                Message(1, 2, 64, inject_cycle=0, message_id=1)]
        open_loop = simulate(line, msgs, flow_control=None)
        for engine in ("events", "epochs"):
            gated = simulate(
                line, msgs, engine=engine,
                flow_control=FlowControlParams(source_queue=1),
            )
            assert (gated.message_completion[0]
                    == open_loop.message_completion[0])
            assert (gated.message_completion[1]
                    > open_loop.message_completion[1])

    def test_large_source_queue_approximates_unbounded(self, small_mesh):
        # A source queue deep enough to never gate leaves the physics
        # open-loop.  Results are equivalent up to FIFO *tie-breaks*:
        # the flow-control spec orders same-cycle link requests by
        # packet id, the open-loop heap by event push order, so only
        # aggregate closeness (not bit-equality) is guaranteed.
        spec = parse_load_workload("uniform@0.06:w32+96")
        table = load_sweep_traffic(spec, 36, 4)
        bounded = simulate_packets(
            small_mesh, table, engine="events",
            flow_control=FlowControlParams(source_queue=10 ** 6),
            telemetry=True,
        )
        unbounded = simulate_packets(small_mesh, table, engine="events",
                                     flow_control=None, telemetry=True)
        assert bounded.packets == unbounded.packets
        assert bounded.latency.mean() == pytest.approx(
            unbounded.latency.mean(), rel=0.05
        )
        assert bounded.telemetry.credit_stall_cycles.sum() == 0
        # Link traffic (which packets cross which links) is identical;
        # only grant interleavings on tied cycles may differ.
        assert np.array_equal(bounded.telemetry.accepted_flits,
                              unbounded.telemetry.accepted_flits)

    def test_fc_via_noi_params_overrides(self):
        # The sweep path: fc knobs ride NoIParams into the topology.
        from repro.noi.mesh import build_mesh

        topo = build_mesh(16, params=NoIParams(fc_buffer_flits=4,
                                               fc_credit_rtt=2))
        spec = parse_load_workload("uniform@0.15:w16+48")
        table = load_sweep_traffic(spec, 16, 0)
        by_params = simulate_packets(topo, table, telemetry=True)
        explicit = simulate_packets(
            topo, table,
            flow_control=FlowControlParams(buffer_flits=4, credit_rtt=2),
            telemetry=True,
        )
        assert_fc_identical(by_params, explicit)


class TestDeadlock:
    FLOWS = [Message(i, (i + 2) % 5, 64, inject_cycle=0, message_id=i)
             for i in range(5)] + \
            [Message(i, (i + 2) % 5, 64, inject_cycle=1,
                     message_id=5 + i) for i in range(5)]
    FC = FlowControlParams(buffer_flits=2, credit_rtt=1)

    def _check_cyclic_routes(self, ring5):
        tables = ring5.routing_tables()
        for i in range(5):
            assert tables.hops[i, (i + 2) % 5] == 2

    def test_both_engines_detect_same_deadlock(self, ring5):
        self._check_cyclic_routes(ring5)
        errors = []
        for engine in ("events", "epochs"):
            with pytest.raises(FlowControlDeadlockError) as info:
                simulate(ring5, self.FLOWS, engine=engine,
                         flow_control=self.FC)
            errors.append(info.value)
        assert errors[0].blocked == errors[1].blocked > 0
        assert errors[0].links == errors[1].links
        assert "credit deadlock" in str(errors[0])

    def test_larger_buffers_break_the_cycle(self, ring5):
        report = simulate(
            ring5, self.FLOWS,
            flow_control=FlowControlParams(buffer_flits=8, credit_rtt=1),
        )
        assert report.packets_delivered == 10


class TestTelemetry:
    def test_off_by_default(self, small_mesh):
        sim = simulate_packets(small_mesh, [Message(0, 5, 64)])
        assert sim.telemetry is None

    def test_totals_conserved(self, small_mesh):
        spec = parse_load_workload("uniform@0.08:w32+96")
        table = load_sweep_traffic(spec, 36, 5)
        sim = simulate_packets(small_mesh, table, telemetry=True)
        tables = small_mesh.routing_tables()
        pair = sim.src * tables.num_nodes + sim.dst
        hops = (tables.route_indptr[pair + 1]
                - tables.route_indptr[pair])
        assert sim.telemetry.total_accepted_flits == int(
            (sim.flits * hops).sum()
        )
        assert sim.telemetry.accepted_packets.sum() == int(hops.sum())
        assert sim.telemetry.horizon_cycles == int(sim.completion.max())

    def test_engines_and_fast_path_agree(self, small_mesh):
        # Mixed fast-path/contended run vs everything-contended run:
        # telemetry must be identical either way, on either engine.
        spec = parse_load_workload("uniform@0.008:w32+96")
        table = load_sweep_traffic(spec, 36, 0)
        runs = [
            simulate_packets(small_mesh, table, engine="events",
                             telemetry=True),
            simulate_packets(small_mesh, table, engine="epochs",
                             telemetry=True),
            simulate_packets(small_mesh, table, engine="epochs",
                             telemetry=True, batch_uncontended=False),
        ]
        assert runs[0].packets > runs[0].contended_packets
        assert runs[2].contended_packets == runs[2].packets
        for other in runs[1:]:
            assert_fc_identical(runs[0], other)

    def test_lone_packet_never_stalls(self, line):
        sim = simulate_packets(line, [Message(0, 4, 64)], telemetry=True)
        assert sim.telemetry.total_stall_cycles == 0
        assert sim.telemetry.peak_queue_flits.max() == 0
        assert sim.telemetry.utilization().max() <= 1.0

    def test_queue_depth_under_single_link_saturation(self, line):
        # 10 packets at once into one link: peak waiting depth is the
        # 9 packets behind the head (the head starts immediately).
        flits = line.params.flits_per_packet
        msgs = [Message(0, 1, 64, inject_cycle=0, message_id=i)
                for i in range(10)]
        sim = simulate_packets(line, msgs, telemetry=True,
                               batch_uncontended=False, engine="events")
        first = line.routing_tables().link_index[(0, 1)]
        assert sim.telemetry.peak_queue_flits[first] == 9 * flits
        assert sim.telemetry.accepted_flits[first] == 10 * flits

    def test_empty_run_covers_all_links(self, line):
        sim = simulate_packets(line, [], telemetry=True)
        assert sim.telemetry.horizon_cycles == 0
        assert (sim.telemetry.num_directed_links
                == line.routing_tables().num_directed_links)
        assert sim.telemetry.total_accepted_flits == 0

    def test_report_carries_telemetry(self, line):
        report = simulate(line, [Message(0, 4, 64)], telemetry=True)
        assert report.telemetry is not None
        assert report.telemetry.total_accepted_flits > 0
        assert simulate(line, [Message(0, 4, 64)]).telemetry is None

    def test_trace_sorted_helper(self):
        trace = GrantTrace(
            packet=np.array([2, 1]), hop=np.array([0, 0]),
            link=np.array([3, 4]), ready=np.array([5, 6]),
            start=np.array([5, 6]), flits=np.array([2, 2]),
            credit_wait=np.array([0, 0]),
        )
        assert trace.sorted().packet.tolist() == [1, 2]
        census = link_telemetry(trace, 6, 10)
        assert census.accepted_packets.sum() == 2
