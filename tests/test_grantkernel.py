"""New engine tiers: component-parallel epochs and the JIT grant kernel.

Tentpole coverage: ``engine="epochs-par"`` (disjoint contention
components resolved independently, optionally on a thread pool) and
``engine="epochs-jit"`` (the flattened grant kernel, numba-compiled
when available and interpreted otherwise) are pinned bit-exactly to the
event-heap oracle and the epoch engine -- completions, latencies, FIFO
tie-breaks and every ``LinkTelemetry`` counter -- open-loop and under
closed-loop flow control, on mesh (SIAM), Kite, SWAP and Floret; both
tiers detect the identical credit deadlock on the cyclic-route ring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.net.flowcontrol import (
    FlowControlDeadlockError,
    FlowControlParams,
)
from repro.net.grantkernel import NUMBA_AVAILABLE, warmup_kernels
from repro.net.routing import contention_components
from repro.net.simulator import Message, simulate, simulate_packets
from repro.noi.topology import Chiplet, Link, Topology

TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")

NEW_TIERS = ("epochs-par", "epochs-jit")

FC_CONFIGS = (
    None,
    FlowControlParams(buffer_flits=4, credit_rtt=2),
    FlowControlParams(buffer_flits=8, source_queue=2, credit_rtt=3),
    FlowControlParams(source_queue=1),
)

TELEMETRY_FIELDS = (
    "accepted_packets", "accepted_flits", "busy_cycles", "stall_cycles",
    "credit_stall_cycles", "peak_queue_flits",
)


def _topology(request, fixture):
    topo = request.getfixturevalue(fixture)
    return topo.topology if fixture == "small_floret" else topo


def _fc_id(fc):
    if fc is None:
        return "open"
    return f"B{fc.buffer_flits}Q{fc.source_queue}"


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(8)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(7)]
    return Topology("line8", chiplets, links)


@pytest.fixture(scope="module")
def ring5():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(5)]
    links = [Link(i, (i + 1) % 5, length_mm=3.0) for i in range(5)]
    return Topology("ring5", chiplets, links)


def run_or_deadlock(topo, table, fc, engine):
    try:
        return simulate_packets(topo, table, engine=engine,
                                flow_control=fc, telemetry=True)
    except FlowControlDeadlockError as error:
        return ("deadlock", error.blocked, error.links)


def assert_sims_identical(a, b):
    assert np.array_equal(a.completion, b.completion)
    assert np.array_equal(a.latency, b.latency)
    assert a.report().message_completion == b.report().message_completion
    if a.telemetry is not None or b.telemetry is not None:
        assert a.telemetry.horizon_cycles == b.telemetry.horizon_cycles
        for field in TELEMETRY_FIELDS:
            assert np.array_equal(getattr(a.telemetry, field),
                                  getattr(b.telemetry, field)), field
        assert np.allclose(a.telemetry.mean_queue_flits,
                           b.telemetry.mean_queue_flits)


class TestTierEquivalence:
    """Both new tiers bit-exact vs the heap oracle on seeded sweeps."""

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("fc", FC_CONFIGS, ids=_fc_id)
    def test_random_load_sweep(self, fixture, seed, fc, request):
        # Tiny buffers legitimately deadlock the ring-bearing
        # topologies; the deadlock report is then the result and every
        # tier must agree on it.
        topo = _topology(request, fixture)
        spec = parse_load_workload("uniform@0.08:w64+192")
        table = load_sweep_traffic(spec, topo.num_chiplets, seed)
        oracle = run_or_deadlock(topo, table, fc, "events")
        for tier in NEW_TIERS:
            got = run_or_deadlock(topo, table, fc, tier)
            if isinstance(oracle, tuple) or isinstance(got, tuple):
                assert got == oracle, tier
                continue
            assert_sims_identical(oracle, got)
            assert got.engine == tier

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_hotspot_matches_epoch_engine(self, fixture, request):
        topo = _topology(request, fixture)
        spec = parse_load_workload("hotspot@0.12:w32+96")
        table = load_sweep_traffic(spec, topo.num_chiplets, 7)
        fc = FlowControlParams(buffer_flits=4, credit_rtt=1)
        epochs = run_or_deadlock(topo, table, fc, "epochs")
        for tier in NEW_TIERS:
            got = run_or_deadlock(topo, table, fc, tier)
            if isinstance(epochs, tuple) or isinstance(got, tuple):
                assert got == epochs, tier
                continue
            assert_sims_identical(epochs, got)

    def test_fifo_tie_break_parity(self, line):
        # Same route, same inject cycle: packetisation order must win
        # on every tier, not just the heap.
        msgs = [Message(0, 3, 64, inject_cycle=4, message_id=i)
                for i in range(6)]
        oracle = simulate(line, msgs, engine="events")
        for tier in NEW_TIERS:
            report = simulate(line, msgs, engine=tier)
            assert report.message_completion == oracle.message_completion
            completions = [report.message_completion[i] for i in range(6)]
            assert completions == sorted(completions)

    def test_multi_packet_messages(self, line):
        rng = np.random.default_rng(7)
        msgs = [
            Message(
                src=int(rng.integers(0, 8)),
                dst=int(rng.integers(0, 8)),
                payload_bytes=int(rng.integers(0, 900)),
                inject_cycle=int(rng.integers(0, 64)),
                message_id=i,
            )
            for i in range(60)
        ]
        oracle = simulate(line, msgs, engine="events")
        for tier in NEW_TIERS:
            report = simulate(line, msgs, engine=tier)
            assert report.message_completion == oracle.message_completion
            assert report.makespan_cycles == oracle.makespan_cycles
            assert report.mean_packet_latency == oracle.mean_packet_latency


class TestDeadlockParity:
    FLOWS = [Message(i, (i + 2) % 5, 64, inject_cycle=0, message_id=i)
             for i in range(5)] + \
            [Message(i, (i + 2) % 5, 64, inject_cycle=1,
                     message_id=5 + i) for i in range(5)]
    FC = FlowControlParams(buffer_flits=2, credit_rtt=1)

    def test_all_tiers_detect_same_deadlock(self, ring5):
        errors = []
        for engine in ("events", "epochs") + NEW_TIERS:
            with pytest.raises(FlowControlDeadlockError) as info:
                simulate(ring5, self.FLOWS, engine=engine,
                         flow_control=self.FC)
            errors.append(info.value)
        baseline = errors[0]
        assert baseline.blocked > 0
        for error in errors[1:]:
            assert error.blocked == baseline.blocked
            assert error.links == baseline.links


class TestContentionComponents:
    def test_empty(self):
        labels, count = contention_components(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0
        )
        assert labels.shape == (0,) and count == 0

    def test_disjoint_links_separate_components(self):
        # Packets 0-1 share link 4; packet 2 alone on link 9.
        entry_links = np.array([4, 4, 9], dtype=np.int64)
        pkt_of_entry = np.array([0, 1, 2], dtype=np.int64)
        labels, count = contention_components(entry_links, pkt_of_entry, 3)
        assert count == 2
        assert labels[0] == labels[1] != labels[2]
        # Labels are renumbered by first appearance.
        assert labels.tolist() == [0, 0, 1]

    def test_shared_link_merges_chains(self):
        # 0-{1,2}, 1-{2,3}: link 2 bridges, one component; packet 2 on
        # link 7 is its own.
        entry_links = np.array([1, 2, 2, 3, 7], dtype=np.int64)
        pkt_of_entry = np.array([0, 0, 1, 1, 2], dtype=np.int64)
        labels, count = contention_components(entry_links, pkt_of_entry, 3)
        assert count == 2
        assert labels.tolist() == [0, 0, 1]

    def test_source_coupling_merges_link_disjoint_packets(self):
        # Link-disjoint packets from the same source must land in one
        # component once source queues serialise injections.
        entry_links = np.array([0, 5], dtype=np.int64)
        pkt_of_entry = np.array([0, 1], dtype=np.int64)
        free = contention_components(entry_links, pkt_of_entry, 2)
        assert free[1] == 2
        coupled = contention_components(
            entry_links, pkt_of_entry, 2,
            source_of_packet=np.array([3, 3], dtype=np.int64),
        )
        assert coupled[1] == 1
        assert coupled[0].tolist() == [0, 0]

    def test_report_counts_components(self, line):
        # Two independent congested segments on the line: 0->1 traffic
        # and 5->6 traffic never share a link.
        msgs = [Message(0, 1, 64, message_id=i) for i in range(8)] + \
               [Message(5, 6, 64, message_id=8 + i) for i in range(8)]
        sim = simulate_packets(line, msgs, engine="epochs-par")
        assert sim.components == 2
        assert sim.report().components == 2
        # The oracle leaves the field at zero.
        assert simulate_packets(line, msgs, engine="events").components == 0


class TestJitTierFallback:
    def test_jit_tier_runs_without_numba(self, line):
        # With numba absent the kernel runs interpreted but is still
        # selectable and bit-exact; with numba present it compiles.
        msgs = [Message(0, 4, 64, inject_cycle=i % 3, message_id=i)
                for i in range(20)]
        sim = simulate_packets(line, msgs, engine="epochs-jit")
        assert sim.engine == "epochs-jit"
        oracle = simulate_packets(line, msgs, engine="events")
        assert np.array_equal(sim.completion, oracle.completion)

    def test_warmup_reports_availability(self):
        assert warmup_kernels() is NUMBA_AVAILABLE

    def test_auto_prefers_parallel_without_numba(self, line, monkeypatch):
        from repro.net import grantkernel
        from repro.net import simulator

        monkeypatch.setattr(grantkernel, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(simulator, "_GRANTKERNEL", grantkernel)
        msgs = [Message(0, 1, 64, message_id=i) for i in range(100)]
        sim = simulate_packets(line, msgs, engine="auto")
        assert sim.engine == "epochs-par"

    def test_auto_prefers_jit_with_numba(self, line, monkeypatch):
        from repro.net import grantkernel
        from repro.net import simulator

        monkeypatch.setattr(grantkernel, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(simulator, "_GRANTKERNEL", grantkernel)
        msgs = [Message(0, 1, 64, message_id=i) for i in range(100)]
        sim = simulate_packets(line, msgs, engine="auto")
        assert sim.engine == "epochs-jit"
