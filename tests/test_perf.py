"""Unit tests: end-to-end task performance evaluation."""

from __future__ import annotations

import pytest

from repro.core.mapping import ContiguousMapper
from repro.net.perf import evaluate_task
from repro.pim.allocation import plan_allocation
from repro.pim.chiplet import ChipletSpec

from helpers import make_toy_model


@pytest.fixture(scope="module")
def setup(small_floret):
    model = make_toy_model()
    spec = ChipletSpec.from_params()
    plan = plan_allocation(model, spec)
    mapper = ContiguousMapper(
        small_floret.allocation_order, small_floret.topology
    )
    placement = mapper.map_task("t", model, plan, frozenset(range(36)))
    return small_floret.topology, model, plan, placement, spec


class TestEvaluateTask:
    def test_basic_fields(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(
            topo, model, plan, placement.chiplet_ids, task_id="t", spec=spec
        )
        assert perf.task_id == "t"
        assert perf.latency_cycles > 0
        assert perf.compute_latency_cycles > 0
        assert perf.compute_energy_pj > 0
        assert perf.num_chiplets == plan.num_chiplets

    def test_latency_at_least_components_max(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.latency_cycles >= perf.compute_latency_cycles
        assert perf.latency_cycles >= perf.noi_latency_cycles
        assert perf.latency_cycles <= (
            perf.compute_latency_cycles + perf.noi_latency_cycles
        )

    def test_edp(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.edp == pytest.approx(
            perf.total_energy_pj * perf.latency_cycles
        )

    def test_mean_packet_latency(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.packet_count > 0
        assert perf.mean_packet_latency > 0

    def test_placement_size_mismatch(self, setup):
        topo, model, plan, placement, spec = setup
        with pytest.raises(ValueError, match="placement"):
            evaluate_task(topo, model, plan, placement.chiplet_ids[:-1],
                          spec=spec)

    def test_contiguous_beats_scattered(self, setup):
        topo, model, plan, placement, spec = setup
        contiguous = evaluate_task(topo, model, plan,
                                   placement.chiplet_ids, spec=spec)
        # Scatter the same task across distant chiplets.
        n = plan.num_chiplets
        stride = 36 // n
        scattered_ids = tuple(i * stride for i in range(n))
        scattered = evaluate_task(topo, model, plan, scattered_ids,
                                  spec=spec)
        assert scattered.noi_energy_pj > contiguous.noi_energy_pj
        assert (
            scattered.mean_packet_latency > contiguous.mean_packet_latency
        )

    def test_compute_invariant_to_placement(self, setup):
        topo, model, plan, placement, spec = setup
        a = evaluate_task(topo, model, plan, placement.chiplet_ids,
                          spec=spec)
        n = plan.num_chiplets
        other_ids = tuple(35 - i for i in range(n))
        b = evaluate_task(topo, model, plan, other_ids, spec=spec)
        assert a.compute_latency_cycles == b.compute_latency_cycles
        assert a.compute_energy_pj == b.compute_energy_pj
