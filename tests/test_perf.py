"""Unit tests: end-to-end task performance evaluation."""

from __future__ import annotations

import pytest

from repro.core.mapping import ContiguousMapper, GreedyMapper
from repro.net.perf import evaluate_task, evaluate_task_perlayer
from repro.pim.allocation import plan_allocation
from repro.pim.chiplet import ChipletSpec
from repro.workloads.dnn import DNNModel
from repro.workloads.layers import LayerGraphBuilder
from repro.workloads.tasks import TABLE2_MIXES
from repro.workloads.zoo import table1_model

from helpers import make_toy_model

TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")

INT_FIELDS = (
    "latency_cycles", "noi_latency_cycles", "compute_latency_cycles",
    "num_chiplets", "packet_count", "packet_latency_sum",
)
FLOAT_FIELDS = ("noi_energy_pj", "compute_energy_pj", "weighted_hops")


def assert_taskperf_equal(batched, perlayer):
    """The tentpole pin: ints bit-exact, floats to 1e-9 relative."""
    assert batched.task_id == perlayer.task_id
    assert batched.model_name == perlayer.model_name
    for field in INT_FIELDS:
        assert getattr(batched, field) == getattr(perlayer, field), field
    for field in FLOAT_FIELDS:
        assert getattr(batched, field) == pytest.approx(
            getattr(perlayer, field), rel=1e-9
        ), field


def _mapped(request, fixture, model, spec):
    """(topology, plan, placement) of ``model`` on a 36-chiplet fixture."""
    obj = request.getfixturevalue(fixture)
    if fixture == "small_floret":
        topo = obj.topology
        mapper = ContiguousMapper(obj.allocation_order, topo)
    else:
        topo = obj
        mapper = GreedyMapper(topo)
    plan = plan_allocation(model, spec)
    if plan.num_chiplets > topo.num_chiplets:
        return topo, plan, None
    placement = mapper.map_task(
        "t", model, plan, frozenset(range(topo.num_chiplets))
    )
    return topo, plan, placement


@pytest.fixture(scope="module")
def setup(small_floret):
    model = make_toy_model()
    spec = ChipletSpec.from_params()
    plan = plan_allocation(model, spec)
    mapper = ContiguousMapper(
        small_floret.allocation_order, small_floret.topology
    )
    placement = mapper.map_task("t", model, plan, frozenset(range(36)))
    return small_floret.topology, model, plan, placement, spec


class TestEvaluateTask:
    def test_basic_fields(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(
            topo, model, plan, placement.chiplet_ids, task_id="t", spec=spec
        )
        assert perf.task_id == "t"
        assert perf.latency_cycles > 0
        assert perf.compute_latency_cycles > 0
        assert perf.compute_energy_pj > 0
        assert perf.num_chiplets == plan.num_chiplets

    def test_latency_at_least_components_max(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.latency_cycles >= perf.compute_latency_cycles
        assert perf.latency_cycles >= perf.noi_latency_cycles
        assert perf.latency_cycles <= (
            perf.compute_latency_cycles + perf.noi_latency_cycles
        )

    def test_edp(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.edp == pytest.approx(
            perf.total_energy_pj * perf.latency_cycles
        )

    def test_mean_packet_latency(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             spec=spec)
        assert perf.packet_count > 0
        assert perf.mean_packet_latency > 0

    def test_placement_size_mismatch(self, setup):
        topo, model, plan, placement, spec = setup
        with pytest.raises(ValueError, match="placement"):
            evaluate_task(topo, model, plan, placement.chiplet_ids[:-1],
                          spec=spec)

    def test_contiguous_beats_scattered(self, setup):
        topo, model, plan, placement, spec = setup
        contiguous = evaluate_task(topo, model, plan,
                                   placement.chiplet_ids, spec=spec)
        # Scatter the same task across distant chiplets.
        n = plan.num_chiplets
        stride = 36 // n
        scattered_ids = tuple(i * stride for i in range(n))
        scattered = evaluate_task(topo, model, plan, scattered_ids,
                                  spec=spec)
        assert scattered.noi_energy_pj > contiguous.noi_energy_pj
        assert (
            scattered.mean_packet_latency > contiguous.mean_packet_latency
        )

    def test_compute_invariant_to_placement(self, setup):
        topo, model, plan, placement, spec = setup
        a = evaluate_task(topo, model, plan, placement.chiplet_ids,
                          spec=spec)
        n = plan.num_chiplets
        other_ids = tuple(35 - i for i in range(n))
        b = evaluate_task(topo, model, plan, other_ids, spec=spec)
        assert a.compute_latency_cycles == b.compute_latency_cycles
        assert a.compute_energy_pj == b.compute_energy_pj


@pytest.fixture(scope="module")
def mix_models():
    """Distinct Table II mix models that fit the 36-chiplet fixtures."""
    spec = ChipletSpec.from_params()
    models, seen = [], set()
    for mix in TABLE2_MIXES:
        for dnn_id, _count in mix.spec:
            if dnn_id in seen:
                continue
            seen.add(dnn_id)
            model = table1_model(dnn_id)
            if plan_allocation(model, spec).num_chiplets <= 36:
                models.append(model)
    assert models, "no Table II model fits 36 chiplets"
    return models, spec


class TestBatchedEngineEquivalence:
    """evaluate_task (cross-layer batched) vs evaluate_task_perlayer."""

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_toy_model_all_topologies(self, fixture, request):
        spec = ChipletSpec.from_params()
        model = make_toy_model()
        topo, plan, placement = _mapped(request, fixture, model, spec)
        assert placement is not None
        assert_taskperf_equal(
            evaluate_task(topo, model, plan, placement.chiplet_ids,
                          task_id="t", spec=spec),
            evaluate_task_perlayer(topo, model, plan,
                                   placement.chiplet_ids,
                                   task_id="t", spec=spec),
        )

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_table2_mix_models_all_topologies(self, fixture, request,
                                              mix_models):
        models, spec = mix_models
        covered = 0
        for model in models:
            topo, plan, placement = _mapped(request, fixture, model, spec)
            if placement is None:
                continue
            covered += 1
            assert_taskperf_equal(
                evaluate_task(topo, model, plan, placement.chiplet_ids,
                              spec=spec),
                evaluate_task_perlayer(topo, model, plan,
                                       placement.chiplet_ids, spec=spec),
            )
        assert covered > 0

    def test_single_layer_model(self, small_floret):
        spec = ChipletSpec.from_params()
        b = LayerGraphBuilder("single", (3, 16, 16))
        b.add_conv(b.input_index, 16, kernel=3, padding=1, name="only")
        model = DNNModel("single", "toy", b.build())
        assert len(model.weight_layers()) == 1
        topo = small_floret.topology
        plan = plan_allocation(model, spec)
        mapper = ContiguousMapper(small_floret.allocation_order, topo)
        placement = mapper.map_task("s", model, plan, frozenset(range(36)))
        batched = evaluate_task(topo, model, plan, placement.chiplet_ids,
                                spec=spec)
        assert_taskperf_equal(
            batched,
            evaluate_task_perlayer(topo, model, plan,
                                   placement.chiplet_ids, spec=spec),
        )
        # A single weighted layer has no weighted producers -> no NoI
        # traffic at all.
        assert batched.noi_latency_cycles == 0
        assert batched.packet_count == 0

    def test_colocated_placement_drops_traffic(self, small_floret):
        # Mapping every plan position onto one physical chiplet leaves
        # only self-destinations: all groups vanish (the zero-payload /
        # empty-step edge case at the evaluate_task level).
        spec = ChipletSpec.from_params()
        model = make_toy_model()
        topo = small_floret.topology
        plan = plan_allocation(model, spec)
        ids = (7,) * plan.num_chiplets
        batched = evaluate_task(topo, model, plan, ids, spec=spec)
        assert_taskperf_equal(
            batched,
            evaluate_task_perlayer(topo, model, plan, ids, spec=spec),
        )
        assert batched.noi_latency_cycles == 0
        assert batched.weighted_hops == 0.0
        assert batched.compute_latency_cycles > 0

    def test_perlayer_validates_placement(self, setup):
        topo, model, plan, placement, spec = setup
        with pytest.raises(ValueError, match="placement"):
            evaluate_task_perlayer(topo, model, plan,
                                   placement.chiplet_ids[:-1], spec=spec)


class TestWeightedHopsRecombination:
    """Regression for the hop-weight recombination fix.

    The task-level ``weighted_hops`` must be the payload-weighted mean
    hop count over every (destination, payload) of the whole task --
    pinned against a direct scalar recomputation from the multicast
    groups.  (The old code re-weighted per-layer means by *flit* counts,
    which skews the mean whenever layers' payloads straddle flit
    rounding differently.)
    """

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_matches_direct_definition(self, fixture, request):
        spec = ChipletSpec.from_params()
        model = make_toy_model()
        topo, plan, placement = _mapped(request, fixture, model, spec)
        assert placement is not None
        ids = placement.chiplet_ids
        hop_weight = 0.0
        volume = 0
        for group in plan.multicast_groups(model, 1):
            src = ids[group.src]
            for d in group.dsts:
                dst = ids[d]
                if dst == src or group.payload_bytes <= 0:
                    continue
                hop_weight += topo.hops(src, dst) * group.payload_bytes
                volume += group.payload_bytes
        expected = (hop_weight / volume) if volume else 0.0
        for engine in (evaluate_task, evaluate_task_perlayer):
            perf = engine(topo, model, plan, ids, spec=spec)
            assert perf.weighted_hops == pytest.approx(expected, rel=1e-9)
