"""Unit tests: the content-addressed on-disk ResultStore."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    case_key,
    evaluator_fingerprint,
)
from repro.eval.sweeps import SweepCase, SweepResult


def _fn_a(case):
    return {"value": 1.0}


def _fn_b(case):
    return {"value": 2.0}


FP = evaluator_fingerprint(_fn_a)


def result_for(case, metrics=None, arrays=None, error=None):
    return SweepResult(
        case=case,
        metrics=metrics if metrics is not None else {"value": 1.0},
        elapsed_s=0.25,
        error=error,
        arrays=arrays,
    )


class TestKeys:
    def test_key_is_stable(self):
        case = SweepCase(arch="siam", num_chiplets=16, workload="uniform")
        assert case_key(case, FP) == case_key(case, FP)

    def test_tag_excluded_from_key(self):
        a = SweepCase(arch="siam", num_chiplets=16, tag="")
        b = SweepCase(arch="siam", num_chiplets=16, tag="renamed-grid")
        assert case_key(a, FP) == case_key(b, FP)

    def test_override_order_canonicalised(self):
        a = SweepCase(arch="siam", noi_overrides=(
            ("flit_bytes", 64), ("chiplet_pitch_mm", 4.0)))
        b = SweepCase(arch="siam", noi_overrides=(
            ("chiplet_pitch_mm", 4.0), ("flit_bytes", 64)))
        assert case_key(a, FP) == case_key(b, FP)

    @pytest.mark.parametrize("field,value", [
        ("arch", "kite"), ("num_chiplets", 36),
        ("workload", "hotspot"), ("seed", 1),
    ])
    def test_each_axis_changes_key(self, field, value):
        from dataclasses import replace

        base = SweepCase(arch="siam", num_chiplets=16, workload="uniform",
                         seed=0)
        assert case_key(base, FP) != case_key(
            replace(base, **{field: value}), FP
        )

    def test_evaluator_identity_changes_key(self):
        # Different source code -> different fingerprint -> cold cache.
        case = SweepCase(arch="siam")
        assert evaluator_fingerprint(_fn_a) != evaluator_fingerprint(_fn_b)
        assert case_key(case, evaluator_fingerprint(_fn_a)) != case_key(
            case, evaluator_fingerprint(_fn_b)
        )

    def test_fingerprint_names_the_function(self):
        assert "_fn_a" in evaluator_fingerprint(_fn_a)

    def test_fingerprint_rejects_address_bearing_callables(self):
        # functools.partial has no __qualname__; its repr embeds a
        # memory address, which would silently break content-addressing.
        from functools import partial

        with pytest.raises(TypeError, match="module-level function"):
            evaluator_fingerprint(partial(_fn_a))

    def test_fingerprint_rejects_stateful_closures(self):
        # Two closures from one factory share identical source; hashing
        # it would serve one configuration the other's cached results.
        def factory(scale):
            def evaluate(case):
                return {"x": scale}
            return evaluate

        with pytest.raises(TypeError, match="captured variables"):
            evaluator_fingerprint(factory(2.0))

    def test_fingerprint_rejects_bound_methods(self):
        class Evaluator:
            def evaluate(self, case):
                return {"x": 1.0}

        with pytest.raises(TypeError, match="instance state"):
            evaluator_fingerprint(Evaluator().evaluate)

    def test_package_version_participates_in_key(self, monkeypatch):
        # Bumping repro.__version__ is the documented lever to
        # invalidate cached results after callee-code (physics) fixes
        # that the evaluator-source hash cannot see.
        import repro

        case = SweepCase(arch="siam")
        before = case_key(case, FP)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert case_key(case, FP) != before


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam", num_chiplets=16)
        key = case_key(case, FP)
        original = result_for(case, {"latency": 3.25, "energy": 1e-9})
        assert store.put(key, original)
        got = store.get(key, case)
        assert got is not None
        assert got.metrics == original.metrics
        assert got.elapsed_s == original.elapsed_s
        assert got.ok

    def test_float_metrics_roundtrip_exactly(self, tmp_path):
        # JSON repr round-trips doubles exactly; aggregate reproduction
        # on warm runs depends on this.
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        value = 28700.999999999996
        store.put(key, result_for(case, {"m": value}))
        assert store.get(key, case).metrics["m"] == value

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        assert store.get(case_key(case, FP), case) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_hit_rebinds_to_callers_case(self, tmp_path):
        # Same key, different tag: the returned result carries the
        # caller's case (tags are display-only).
        from dataclasses import replace

        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam", tag="cold")
        key = case_key(case, FP)
        store.put(key, result_for(case))
        relabelled = replace(case, tag="warm")
        assert store.get(case_key(relabelled, FP), relabelled).case.tag == (
            "warm"
        )

    def test_errors_never_stored(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="boom")
        key = case_key(case, FP)
        assert not store.put(key, result_for(case, error="Traceback ..."))
        assert store.get(key, case) is None
        assert store.stats.skipped_errors == 1

    def test_arrays_roundtrip_via_npz(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="floret", workload="DNN10")
        key = case_key(case, FP)
        tier = np.arange(25, dtype=np.float64).reshape(5, 5) + 300.0
        store.put(key, result_for(case, {"peak_k": 330.0},
                                  arrays={"tier_map_k": tier}))
        got = store.get(key, case)
        assert np.array_equal(got.arrays["tier_map_k"], tier)
        assert (tmp_path / "arrays" / f"{key}.npz").exists()

    def test_missing_npz_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="floret")
        key = case_key(case, FP)
        store.put(key, result_for(case, arrays={"a": np.ones(3)}))
        (tmp_path / "arrays" / f"{key}.npz").unlink()
        fresh = ResultStore(tmp_path)
        # Membership, enumeration and get must agree: a record whose
        # array payload is gone is absent through every probe.
        assert fresh.get(key, case) is None
        assert not fresh.has(key)
        assert key not in fresh
        assert len(fresh) == 0
        assert fresh.keys() == ()
        assert list(fresh.iter_results()) == []

    def test_has_and_contains_are_stats_neutral(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        store.put(key, result_for(case))
        assert store.has(key)
        assert key in store
        assert not store.has("0" * 64)
        assert store.stats.hits == 0
        assert store.stats.misses == 0

    def test_iter_results_is_stats_neutral(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        store.put(case_key(case, FP), result_for(case))
        reader = ResultStore(tmp_path)
        assert len(list(reader.iter_results())) == 1
        assert reader.stats.hits == 0
        assert reader.stats.misses == 0

    def test_last_writer_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        store.put(key, result_for(case, {"m": 1.0}))
        store.put(key, result_for(case, {"m": 2.0}))
        assert store.get(key, case).metrics["m"] == 2.0
        assert ResultStore(tmp_path).get(key, case).metrics["m"] == 2.0


class TestConcurrencyAndDurability:
    def test_second_instance_sees_appends(self, tmp_path):
        # Two store handles on one directory (two runner processes):
        # writes through one become visible to the other on next get.
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        assert reader.get(key, case) is None
        writer.put(key, result_for(case))
        assert reader.get(key, case) is not None

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        store.put(key, result_for(case))
        shard = tmp_path / f"shard-{key[:2]}.jsonl"
        with shard.open("ab") as fh:
            fh.write(b'{"v": 1, "k": "deadbeef", "metr')  # mid-append
        fresh = ResultStore(tmp_path)
        assert fresh.get(key, case) is not None
        assert len(fresh) == 1

    def test_corrupt_full_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        shard = tmp_path / f"shard-{key[:2]}.jsonl"
        with shard.open("ab") as fh:
            fh.write(b"not json at all\n")
        store.put(key, result_for(case))
        fresh = ResultStore(tmp_path)
        assert fresh.get(key, case) is not None

    def test_foreign_schema_version_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        shard = tmp_path / f"shard-{key[:2]}.jsonl"
        record = {"v": STORE_SCHEMA_VERSION + 1, "k": key,
                  "metrics": {}, "elapsed_s": 0.0}
        with shard.open("ab") as fh:
            fh.write((json.dumps(record) + "\n").encode())
        assert store.get(key, case) is None

    def test_iter_results_reconstructs_cases(self, tmp_path):
        store = ResultStore(tmp_path)
        cases = [
            SweepCase(arch="siam", num_chiplets=16, seed=s,
                      noi_overrides=(("flit_bytes", 64),), tag="grid")
            for s in range(3)
        ]
        for case in cases:
            store.put(case_key(case, FP), result_for(case))
        recovered = {r.case for r in ResultStore(tmp_path).iter_results()}
        assert recovered == set(cases)

    def test_len_and_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in (16, 36, 64):
            case = SweepCase(arch="siam", num_chiplets=n)
            store.put(case_key(case, FP), result_for(case))
        assert len(store) == 3
        assert len(store.keys()) == 3
        assert len(ResultStore(tmp_path)) == 3

    def test_failed_payload_write_leaves_store_clean(
        self, tmp_path, monkeypatch
    ):
        # Regression: a raising np.savez_compressed (disk full,
        # non-serialisable array) must not leave an orphaned ``.tmp``
        # file behind for later directory walks to trip over, and the
        # case must stay absent so it re-evaluates.
        import numpy as _np

        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(_np, "savez_compressed", explode)
        with pytest.raises(OSError, match="disk full"):
            store.put(key, result_for(
                case, arrays={"x": np.arange(4, dtype=np.int64)}
            ))
        assert list(tmp_path.rglob("*.tmp")) == []
        assert list(tmp_path.rglob("*.npz")) == []
        assert ResultStore(tmp_path).get(key, case) is None

    def test_fdopen_failure_closes_descriptor(self, tmp_path, monkeypatch):
        # Regression companion: if os.fdopen itself rejects the fd,
        # the raw descriptor from mkstemp must still be closed and the
        # temp file unlinked.
        import os as _os
        import tempfile as _tempfile

        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam")
        key = case_key(case, FP)
        seen = {}
        real_mkstemp = _tempfile.mkstemp

        def spying_mkstemp(*args, **kwargs):
            fd, tmp = real_mkstemp(*args, **kwargs)
            seen["fd"] = fd
            return fd, tmp

        def rejecting_fdopen(fd, *args, **kwargs):
            raise OSError("fdopen rejected")

        monkeypatch.setattr(_tempfile, "mkstemp", spying_mkstemp)
        monkeypatch.setattr(_os, "fdopen", rejecting_fdopen)
        with pytest.raises(OSError, match="fdopen rejected"):
            store.put(key, result_for(
                case, arrays={"x": np.arange(4, dtype=np.int64)}
            ))
        monkeypatch.undo()
        with pytest.raises(OSError):
            _os.fstat(seen["fd"])  # closed: EBADF, not a leaked fd
        assert list(tmp_path.rglob("*.tmp")) == []


class TestShardHelpers:
    def test_missing_reports_unstored_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        cases = [SweepCase(arch="siam", num_chiplets=n)
                 for n in (16, 36, 64)]
        keys = [case_key(c, FP) for c in cases]
        store.put(keys[0], result_for(cases[0]))
        assert store.missing(keys) == frozenset(keys[1:])
        for key, case in zip(keys[1:], cases[1:]):
            store.put(key, result_for(case))
        assert store.missing(keys) == frozenset()

    def test_missing_is_stats_neutral(self, tmp_path):
        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam", num_chiplets=16)
        store.put(case_key(case, FP), result_for(case))
        store.missing([case_key(case, FP), "absent"])
        assert store.stats.hits == 0
        assert store.stats.misses == 0

    def test_missing_sees_other_writers(self, tmp_path):
        reader = ResultStore(tmp_path)
        case = SweepCase(arch="siam", num_chiplets=16)
        key = case_key(case, FP)
        assert reader.missing([key]) == frozenset([key])
        ResultStore(tmp_path).put(key, result_for(case))
        assert reader.missing([key]) == frozenset()

    def test_claims_root_is_inside_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claims_root == store.root / "claims"


class TestRefreshGuard:
    """Satellite regression: unchanged shards are never re-read."""

    def _fill(self, root, n=4):
        writer = ResultStore(root)
        cases = [SweepCase(arch="siam", num_chiplets=16, seed=i)
                 for i in range(n)]
        keys = [case_key(c, FP) for c in cases]
        for key, case in zip(keys, cases):
            writer.put(key, result_for(case))
        return keys

    def test_quiescent_store_does_no_shard_io(self, tmp_path):
        keys = self._fill(tmp_path)
        reader = ResultStore(tmp_path)
        assert not reader.missing(keys)
        baseline = reader.stats.shard_reads
        assert baseline >= 1
        for _ in range(25):
            assert not reader.missing(keys)
            assert len(list(reader.iter_records())) == len(keys)
            assert len(reader) == len(keys)
        # Repeated queries over an unchanged store: pure dict work.
        assert reader.stats.shard_reads == baseline

    def test_appended_record_is_picked_up(self, tmp_path):
        keys = self._fill(tmp_path, n=2)
        reader = ResultStore(tmp_path)
        assert not reader.missing(keys)
        before = reader.stats.shard_reads
        case = SweepCase(arch="kite", num_chiplets=16, seed=9)
        key = case_key(case, FP)
        ResultStore(tmp_path).put(key, result_for(case))
        assert reader.has(key)
        assert reader.stats.shard_reads > before

    def test_torn_tail_still_refreshes_correctly(self, tmp_path):
        # A writer crashed (or is mid-write) after half a line: the
        # reader must neither consume the torn tail nor let the sig
        # guard hide the completed line once the rest lands.
        writer = ResultStore(tmp_path)
        case = SweepCase(arch="siam", num_chiplets=16, seed=0)
        key = case_key(case, FP)
        writer.put(key, result_for(case))
        shard = writer._shard_path(key)

        line = shard.read_bytes().splitlines()[0]
        record = json.loads(line)
        key2 = key[:2] + "f" * (len(key) - 2)
        record["k"] = key2
        full = json.dumps(record, separators=(",", ":")).encode()
        head, tail = full[: len(full) // 2], full[len(full) // 2:]

        reader = ResultStore(tmp_path)
        assert reader.has(key)
        with shard.open("ab") as fh:
            fh.write(head)  # torn: no trailing newline
        assert not reader.has(key2)       # tail not consumed
        assert reader.has(key)            # existing records intact
        reads_after_torn = reader.stats.shard_reads
        assert not reader.has(key2)       # unchanged file: no re-read
        assert reader.stats.shard_reads == reads_after_torn
        with shard.open("ab") as fh:
            fh.write(tail + b"\n")        # the newline lands
        assert reader.has(key2)
        assert reader.has(key)

    def test_rewritten_shorter_shard_rebuilds(self, tmp_path):
        # A shard rewritten shorter (manual compaction, restored
        # backup) must drop the records it no longer contains.
        store = ResultStore(tmp_path)
        k1, k2 = "aa" + "1" * 14, "aa" + "2" * 14
        case = SweepCase(arch="siam", num_chiplets=16, seed=0)
        store.put(k1, result_for(case))
        store.put(k2, result_for(case))
        reader = ResultStore(tmp_path)
        assert reader.has(k1) and reader.has(k2)
        shard = reader._shard_path(k1)
        first_line = shard.read_bytes().splitlines()[0] + b"\n"
        shard.write_bytes(first_line)
        assert reader.has(k1)
        assert not reader.has(k2)
        assert len(reader) == 1

    def test_iter_records_skips_payload_io(self, tmp_path):
        from repro.eval.store import case_from_record

        store = ResultStore(tmp_path)
        case = SweepCase(arch="siam", num_chiplets=16, seed=3,
                         tag="arrayful")
        key = case_key(case, FP)
        store.put(key, result_for(
            case, arrays={"tiers": np.arange(4)},
        ))
        reader = ResultStore(tmp_path)
        records = dict(reader.iter_records())
        assert set(records) == {key}
        assert records[key]["arrays"] is True
        # No npz was opened: array loads count store hits; none here.
        assert reader.stats.hits == 0
        rebuilt = case_from_record(records[key])
        assert rebuilt == case
