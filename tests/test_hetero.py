"""Unit tests: heterogeneous transformer acceleration (Section IV)."""

from __future__ import annotations

import pytest

from repro.core.hetero import (
    HeteroParams,
    compare_systems,
    evaluate_heterogeneous,
    evaluate_pim_only,
)
from repro.workloads.transformer import BERT_BASE, BERT_TINY


class TestPimOnly:
    def test_pays_writes(self):
        report = evaluate_pim_only(BERT_TINY)
        assert report.cell_writes_per_inference > 0
        assert report.write_energy_pj > 0

    def test_finite_lifetime(self):
        report = evaluate_pim_only(BERT_TINY)
        assert report.lifetime_inferences() != float("inf")
        assert report.lifetime_inferences() > 0

    def test_writes_scale_with_model(self):
        tiny = evaluate_pim_only(BERT_TINY)
        base = evaluate_pim_only(BERT_BASE)
        assert (
            base.cell_writes_per_inference > tiny.cell_writes_per_inference
        )


class TestHeterogeneous:
    def test_no_writes(self):
        report = evaluate_heterogeneous(BERT_TINY)
        assert report.cell_writes_per_inference == 0
        assert report.write_energy_pj == 0.0
        assert report.lifetime_inferences() == float("inf")

    def test_pays_crossings(self):
        report = evaluate_heterogeneous(BERT_TINY)
        assert report.crossing_energy_pj > 0

    def test_faster_than_pim_only(self):
        for cfg in (BERT_TINY, BERT_BASE):
            pim = evaluate_pim_only(cfg)
            hetero = evaluate_heterogeneous(cfg)
            assert hetero.latency_cycles < pim.latency_cycles
            assert hetero.total_energy_pj < pim.total_energy_pj

    def test_more_islands_helps(self):
        slow = evaluate_heterogeneous(
            BERT_BASE, params=HeteroParams(tc_islands=1)
        )
        fast = evaluate_heterogeneous(
            BERT_BASE, params=HeteroParams(tc_islands=8)
        )
        assert fast.latency_cycles < slow.latency_cycles

    def test_endurance_knob(self):
        report = evaluate_pim_only(BERT_TINY)
        short = report.lifetime_inferences(
            HeteroParams(reram_endurance_writes=1e6)
        )
        long = report.lifetime_inferences(
            HeteroParams(reram_endurance_writes=1e9)
        )
        assert long == pytest.approx(1000 * short)


class TestCompare:
    def test_both_systems_present(self):
        reports = compare_systems(BERT_TINY)
        assert set(reports) == {"pim-only", "heterogeneous"}
        assert reports["pim-only"].config_name == "bert-tiny"
