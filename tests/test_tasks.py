"""Unit tests: Table II task mixes."""

from __future__ import annotations

import pytest

from repro.workloads.tasks import TABLE2_MIXES, TaskMix, all_mixes, mix_by_name


class TestMixes:
    def test_five_mixes(self):
        assert len(TABLE2_MIXES) == 5

    def test_names(self):
        assert [m.name for m in TABLE2_MIXES] == [
            "WL1", "WL2", "WL3", "WL4", "WL5"
        ]

    def test_lookup(self):
        assert mix_by_name("WL3").name == "WL3"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            mix_by_name("WL9")

    def test_all_mixes_returns_all(self):
        assert list(all_mixes()) == list(TABLE2_MIXES)

    @pytest.mark.parametrize("mix", TABLE2_MIXES, ids=lambda m: m.name)
    def test_expansion_matches_counts(self, mix: TaskMix):
        tasks = mix.tasks()
        assert len(tasks) == mix.num_tasks

    @pytest.mark.parametrize("mix", TABLE2_MIXES, ids=lambda m: m.name)
    def test_task_ids_unique(self, mix: TaskMix):
        ids = [t.task_id for t in mix.tasks()]
        assert len(set(ids)) == len(ids)

    @pytest.mark.parametrize("mix", TABLE2_MIXES, ids=lambda m: m.name)
    def test_total_params_positive(self, mix: TaskMix):
        assert mix.total_params() > 0
        assert mix.total_params_billions() == pytest.approx(
            mix.total_params() / 1e9
        )

    def test_tasks_preserve_order(self):
        mix = mix_by_name("WL1")
        tasks = mix.tasks()
        # First 16 instances are DNN1 (ResNet-18) per Table II.
        assert all(t.dnn_id == "DNN1" for t in tasks[:16])
        assert tasks[16].dnn_id == "DNN2"

    def test_iteration(self):
        mix = mix_by_name("WL2")
        assert len(list(iter(mix))) == mix.num_tasks

    def test_models_shared_between_instances(self):
        tasks = mix_by_name("WL1").tasks()
        first, second = tasks[0], tasks[1]
        assert first.model is second.model
