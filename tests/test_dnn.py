"""Unit tests: DNNModel aggregates and the site-based graph contraction."""

from __future__ import annotations

import pytest

from repro.workloads.dnn import DNNModel, weighted_chain_edges
from repro.workloads.layers import LayerGraphBuilder

from helpers import make_toy_model


@pytest.fixture(scope="module")
def toy():
    return make_toy_model()


class TestAggregates:
    def test_total_params_positive(self, toy):
        assert toy.total_params > 0

    def test_total_params_is_sum(self, toy):
        assert toy.total_params == sum(l.weights for l in toy.layers)

    def test_total_macs_is_sum(self, toy):
        assert toy.total_macs == sum(l.macs for l in toy.layers)

    def test_num_layers(self, toy):
        assert toy.num_layers == len(toy.layers)

    def test_total_activations_counts_fanout_twice(self):
        # x feeds both a conv and the residual add -> counted twice.
        b = LayerGraphBuilder("t", (2, 4, 4))
        x = b.add_conv(b.input_index, 2, kernel=3, padding=1, name="c0")
        y = b.add_conv(x, 2, kernel=3, padding=1, name="c1")
        b.add_add([x, y], name="add")
        model = DNNModel("t", "toy", b.build())
        # edges: input->c0 (32), c0->c1 (32), c0->add (32), c1->add (32)
        assert model.total_activations == 32 * 4

    def test_params_millions(self, toy):
        assert toy.params_millions() == pytest.approx(toy.total_params / 1e6)


class TestStructure:
    def test_weight_layers_in_order(self, toy):
        weighted = toy.weight_layers()
        assert all(l.is_weighted for l in weighted)
        indices = [l.index for l in weighted]
        assert indices == sorted(indices)

    def test_consumers_inverse_of_inputs(self, toy):
        consumers = toy.consumers
        for layer in toy.layers:
            for src in layer.inputs:
                assert layer.index in consumers[src]

    def test_edges_match_inputs(self, toy):
        edges = toy.edges()
        assert len(edges) == sum(len(l.inputs) for l in toy.layers)

    def test_layer_by_name(self, toy):
        assert toy.layer_by_name("fc2").name == "fc2"

    def test_layer_by_name_missing(self, toy):
        with pytest.raises(KeyError):
            toy.layer_by_name("nope")


class TestSiteContraction:
    """weighted_chain_edges must keep merges physical (one transfer per

    merge, not per ancestor)."""

    def _residual_chain(self, blocks: int) -> DNNModel:
        b = LayerGraphBuilder("rc", (4, 8, 8))
        x = b.add_conv(b.input_index, 4, kernel=3, padding=1, name="stem")
        for i in range(blocks):
            y = b.add_conv(x, 4, kernel=3, padding=1, name=f"b{i}c1")
            y = b.add_conv(y, 4, kernel=3, padding=1, name=f"b{i}c2")
            x = b.add_add([x, y], name=f"b{i}add")
        b.add_fc(x, 10, name="fc")
        return DNNModel("rc", "toy", b.build())

    def test_identity_chain_edges_linear_in_depth(self):
        """K residual blocks -> O(K) edges, not O(K^2)."""
        e2 = len(weighted_chain_edges(self._residual_chain(2)))
        e8 = len(weighted_chain_edges(self._residual_chain(8)))
        # Each extra block adds a constant number of edges (3).
        assert e8 - e2 == 3 * 6

    def test_edges_point_forward(self, toy):
        for src, dst, _vol in weighted_chain_edges(toy):
            assert src < dst

    def test_edge_volumes_positive(self, toy):
        for _src, _dst, vol in weighted_chain_edges(toy):
            assert vol > 0

    def test_all_weighted_layers_reached(self, toy):
        """Every weighted layer except the first receives an edge."""
        weighted = [l.index for l in toy.weight_layers()]
        receivers = {dst for _s, dst, _v in weighted_chain_edges(toy)}
        for idx in weighted[1:]:
            assert idx in receivers

    def test_skip_edge_present(self):
        model = self._residual_chain(1)
        edges = weighted_chain_edges(model)
        # The bypass (stem -> b0c2's site) must exist alongside the chain.
        stem = model.layer_by_name("stem").index
        c2 = model.layer_by_name("b0c2").index
        assert (stem, c2) in [(s, d) for s, d, _ in edges]

    def test_pool_contracts_to_producer_site(self):
        b = LayerGraphBuilder("p", (4, 8, 8))
        c1 = b.add_conv(b.input_index, 4, kernel=3, padding=1, name="c1")
        p = b.add_pool(c1, kernel=2, name="pool")
        c2 = b.add_conv(p, 4, kernel=3, padding=1, name="c2")
        model = DNNModel("p", "toy", b.build())
        edges = weighted_chain_edges(model)
        # c1 -> c2 edge carries the POOLED volume (pool runs at c1's site).
        vols = {(s, d): v for s, d, v in edges}
        assert vols[(c1, c2)] == model.layers[p].out_elements
