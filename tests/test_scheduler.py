"""Unit tests: the FIFO multi-task scheduler."""

from __future__ import annotations

import pytest

from repro.core.mapping import ContiguousMapper, GreedyMapper
from repro.core.scheduler import SystemScheduler
from repro.workloads.tasks import DNNTask

from helpers import make_toy_model


def toy_tasks(n: int):
    model = make_toy_model()
    return [DNNTask(f"t{i:02d}", "TOY", model) for i in range(n)]


@pytest.fixture(scope="module")
def floret_scheduler(small_floret):
    return SystemScheduler(
        small_floret.topology,
        ContiguousMapper(
            small_floret.allocation_order, small_floret.topology
        ),
    )


class TestBasicScheduling:
    def test_all_tasks_complete(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(5))
        assert len(result.completed) == 5

    def test_empty_queue(self, floret_scheduler):
        result = floret_scheduler.run([])
        assert result.completed == ()
        assert result.makespan_cycles == 0
        assert result.utilization == 0.0

    def test_single_task_makespan(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(1))
        task = result.completed[0]
        assert result.makespan_cycles == task.perf.latency_cycles
        assert task.start_cycle == 0

    def test_parallel_tasks_share_time(self, floret_scheduler):
        serial = floret_scheduler.run(toy_tasks(1)).makespan_cycles
        many = floret_scheduler.run(toy_tasks(4)).makespan_cycles
        # Four small tasks fit simultaneously on 36 chiplets; placements
        # differ slightly, so allow a small communication-latency spread.
        assert many <= serial * 1.2

    def test_oversubscription_serialises(self, floret_scheduler):
        one = floret_scheduler.run(toy_tasks(1)).makespan_cycles
        result = floret_scheduler.run(toy_tasks(30))
        # 30 tasks cannot all fit -> makespan grows beyond one round.
        assert result.makespan_cycles > one
        assert len(result.completed) == 30

    def test_utilization_bounds(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(12))
        assert 0.0 < result.utilization <= 1.0

    def test_busy_integral_consistent(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(3))
        expected = sum(
            t.placement.num_chiplets * t.duration for t in result.completed
        )
        assert result.busy_integral == expected

    def test_task_too_big_raises(self, small_floret):
        from repro.workloads.zoo import build_model

        scheduler = SystemScheduler(
            small_floret.topology,
            ContiguousMapper(small_floret.allocation_order),
        )
        big = build_model("vgg19", "imagenet")  # needs ~69 chiplets > 36
        with pytest.raises(ValueError, match="needs"):
            scheduler.run([DNNTask("big", "DNN7", big)])


class TestConstraintAccounting:
    def test_strict_budget_counts_failures(self, small_mesh):
        scheduler = SystemScheduler(
            small_mesh,
            GreedyMapper(small_mesh, max_hops=1),
            fallback_mapper=GreedyMapper(small_mesh),
        )
        result = scheduler.run(toy_tasks(20))
        assert len(result.completed) == 20
        # With churn, the strict budget must reject at least once.
        assert result.constraint_failures >= 0

    def test_fifo_start_order(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(8))
        starts = {t.perf.task_id: t.start_cycle for t in result.completed}
        ordered = [starts[f"t{i:02d}"] for i in range(8)]
        assert ordered == sorted(ordered)

    def test_mean_metrics_nonzero(self, floret_scheduler):
        result = floret_scheduler.run(toy_tasks(4))
        assert result.mean_noi_latency > 0
        assert result.mean_packet_latency > 0
        assert result.total_noi_energy_pj > 0
        assert result.mean_task_latency > 0


class TestTaskPerfMemoization:
    """Schedule-level TaskPerf memo: bit-identical results, counted."""

    @staticmethod
    def _scheduler(small_floret, memoize):
        return SystemScheduler(
            small_floret.topology,
            ContiguousMapper(
                small_floret.allocation_order, small_floret.topology
            ),
            memoize=memoize,
        )

    def test_memoized_bit_identical_to_cold(self, small_floret):
        tasks = toy_tasks(12)
        cold = self._scheduler(small_floret, memoize=False).run(tasks)
        warm = self._scheduler(small_floret, memoize=True).run(tasks)
        assert cold.makespan_cycles == warm.makespan_cycles
        assert cold.busy_integral == warm.busy_integral
        assert cold.num_chiplets == warm.num_chiplets
        assert len(cold.completed) == len(warm.completed)
        for c, w in zip(cold.completed, warm.completed):
            assert c.perf == w.perf  # frozen dataclass: field-exact
            assert c.placement.chiplet_ids == w.placement.chiplet_ids
            assert (c.start_cycle, c.finish_cycle) == (
                w.start_cycle, w.finish_cycle
            )

    def test_hits_and_misses_counted(self, small_floret):
        from repro.obs.metrics import REGISTRY

        hits = REGISTRY.counter("sched_taskperf_cache_hits")
        misses = REGISTRY.counter("sched_taskperf_cache_misses")
        h0, m0 = hits.value, misses.value
        self._scheduler(small_floret, memoize=True).run(toy_tasks(10))
        # 10 identical tasks recycle a handful of footprints: at least
        # one cold evaluation and at least one memo hit.
        assert misses.value > m0
        assert hits.value > h0
        assert (hits.value - h0) + (misses.value - m0) == 10

    def test_hit_keeps_each_tasks_id(self, small_floret):
        result = self._scheduler(small_floret, memoize=True).run(
            toy_tasks(8)
        )
        ids = sorted(t.perf.task_id for t in result.completed)
        assert ids == sorted(f"t{i:02d}" for i in range(8))

    def test_memo_persists_across_runs(self, small_floret):
        from repro.obs.metrics import REGISTRY

        scheduler = self._scheduler(small_floret, memoize=True)
        misses = REGISTRY.counter("sched_taskperf_cache_misses")
        scheduler.run(toy_tasks(4))
        m1 = misses.value
        scheduler.run(toy_tasks(4))
        # Second run re-uses the first run's entries: no new misses.
        assert misses.value == m1

    def test_memoize_disabled_never_caches(self, small_floret):
        from repro.obs.metrics import REGISTRY

        hits = REGISTRY.counter("sched_taskperf_cache_hits")
        misses = REGISTRY.counter("sched_taskperf_cache_misses")
        h0, m0 = hits.value, misses.value
        scheduler = self._scheduler(small_floret, memoize=False)
        scheduler.run(toy_tasks(6))
        assert (hits.value, misses.value) == (h0, m0)
        assert scheduler._perf_memo == {}
