"""Unit tests: traffic extraction and linear/skip classification."""

from __future__ import annotations

import pytest

from repro.workloads.dnn import DNNModel
from repro.workloads.layers import LayerGraphBuilder
from repro.workloads.traffic import (
    TrafficEdge,
    classify_edges,
    interlayer_traffic,
    summarize_traffic,
    weighted_depths,
)
from repro.workloads.zoo import build_model


def residual_model() -> DNNModel:
    b = LayerGraphBuilder("res", (4, 8, 8))
    x = b.add_conv(b.input_index, 4, kernel=3, padding=1, name="c0")
    y = b.add_conv(x, 4, kernel=3, padding=1, name="c1")
    y = b.add_conv(y, 4, kernel=3, padding=1, name="c2")
    b.add_add([x, y], name="add")
    return DNNModel("res", "toy", b.build())


class TestTrafficEdge:
    def test_bytes(self):
        edge = TrafficEdge(0, 1, elements=100, is_skip=False)
        assert edge.bytes() == 100
        assert edge.bytes(bytes_per_element=2) == 200

    def test_packets_ceil(self):
        edge = TrafficEdge(0, 1, elements=65, is_skip=False)
        assert edge.packets(packet_bytes=64) == 2

    def test_packets_exact(self):
        edge = TrafficEdge(0, 1, elements=128, is_skip=False)
        assert edge.packets(packet_bytes=64) == 2


class TestWeightedDepths:
    def test_input_depth_zero(self):
        model = residual_model()
        assert weighted_depths(model)[0] == 0

    def test_depth_monotone_along_chain(self):
        model = residual_model()
        depths = weighted_depths(model)
        c0 = model.layer_by_name("c0").index
        c2 = model.layer_by_name("c2").index
        assert depths[c2] > depths[c0]

    def test_add_inherits_max_depth(self):
        model = residual_model()
        depths = weighted_depths(model)
        add = model.layer_by_name("add").index
        c2 = model.layer_by_name("c2").index
        assert depths[add] == depths[c2]


class TestClassification:
    def test_bypass_edge_is_skip(self):
        model = residual_model()
        edges = classify_edges(model)
        add = model.layer_by_name("add").index
        c0 = model.layer_by_name("c0").index
        c2 = model.layer_by_name("c2").index
        into_add = {e.src: e for e in edges if e.dst == add}
        assert into_add[c0].is_skip
        assert not into_add[c2].is_skip

    def test_single_input_edges_linear(self):
        model = residual_model()
        for edge in classify_edges(model):
            consumer = model.layers[edge.dst]
            if len(consumer.inputs) == 1:
                assert not edge.is_skip

    def test_edge_count_matches_graph(self):
        model = residual_model()
        assert len(classify_edges(model)) == len(model.edges())


class TestSummaries:
    def test_resnet34_skip_fraction_matches_paper(self):
        summary = summarize_traffic(build_model("resnet34", "imagenet"))
        # Paper: skips are ~19% of propagated activations.
        assert 0.15 < summary.skip_fraction < 0.24

    def test_resnet34_linear_to_skip_ratio(self):
        summary = summarize_traffic(build_model("resnet34", "imagenet"))
        # Paper: linear activations ~4.5x larger.
        assert 3.4 < summary.linear_to_skip_ratio < 5.5

    def test_vgg_has_no_skips(self):
        summary = summarize_traffic(build_model("vgg11", "cifar10"))
        assert summary.skip_elements == 0
        assert summary.linear_to_skip_ratio == float("inf")

    def test_totals_consistent(self):
        summary = summarize_traffic(residual_model())
        assert (
            summary.total_elements
            == summary.linear_elements + summary.skip_elements
        )


class TestInterlayerTraffic:
    def test_bytes_scale_with_precision(self):
        model = residual_model()
        t1 = interlayer_traffic(model, bytes_per_element=1)
        t2 = interlayer_traffic(model, bytes_per_element=2)
        assert [(s, d, v * 2) for s, d, v in t1] == t2

    def test_sources_can_include_input(self):
        model = residual_model()
        assert any(s == 0 for s, _d, _v in interlayer_traffic(model))
