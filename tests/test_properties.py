"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.analytic import (
    flits_for_bytes,
    packets_for_bytes,
    transfer_energy_pj,
    transfer_latency_cycles,
)
from repro.noc3d.grid3d import Grid3D
from repro.noi.mesh import build_mesh
from repro.params import NoIParams, PIMParams
from repro.pim.chiplet import ChipletSpec
from repro.pim.reram import (
    conductance_window,
    crossbars_for_weights,
    weight_noise_sigma,
)
from repro.thermal.model import ThermalModel

MESH = build_mesh(16)
GRID = Grid3D(3, 3, 2)
THERMAL = ThermalModel(GRID)


@settings(max_examples=60, deadline=None)
@given(payload=st.integers(min_value=0, max_value=10**7))
def test_flits_packets_consistent(payload):
    p = NoIParams()
    flits = flits_for_bytes(payload, p)
    packets = packets_for_bytes(payload, p)
    assert flits * p.flit_bytes >= payload
    assert packets * p.packet_bytes >= payload
    if payload > 0:
        assert (flits - 1) * p.flit_bytes < payload
        assert (packets - 1) * p.packet_bytes < payload


@settings(max_examples=60, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
    payload=st.integers(min_value=1, max_value=10**6),
)
def test_transfer_costs_nonnegative_and_symmetric_free(src, dst, payload):
    latency = transfer_latency_cycles(MESH, src, dst, payload)
    energy = transfer_energy_pj(MESH, src, dst, payload)
    assert latency >= 0
    assert energy >= 0.0
    if src == dst:
        assert latency == 0 and energy == 0.0
    else:
        assert latency > 0 and energy > 0.0


@settings(max_examples=40, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
    small=st.integers(min_value=1, max_value=1000),
    extra=st.integers(min_value=1, max_value=1000),
)
def test_transfer_latency_monotone_in_payload(src, dst, small, extra):
    a = transfer_latency_cycles(MESH, src, dst, small)
    b = transfer_latency_cycles(MESH, src, dst, small + extra)
    assert b >= a


@settings(max_examples=60, deadline=None)
@given(temperature=st.floats(min_value=250.0, max_value=450.0))
def test_conductance_window_bounded(temperature):
    w = conductance_window(temperature)
    assert 0.0 < w <= 1.0
    sigma = weight_noise_sigma(temperature)
    assert 0.0 <= sigma < 1.0
    assert sigma + w == 1.0


@settings(max_examples=40, deadline=None)
@given(
    t1=st.floats(min_value=300.0, max_value=400.0),
    dt=st.floats(min_value=0.0, max_value=50.0),
)
def test_noise_monotone_in_temperature(t1, dt):
    assert weight_noise_sigma(t1 + dt) >= weight_noise_sigma(t1)


@settings(max_examples=60, deadline=None)
@given(weights=st.integers(min_value=0, max_value=10**8))
def test_crossbar_count_covers_weights(weights):
    spec = ChipletSpec.from_params().crossbar
    n = crossbars_for_weights(weights, spec)
    assert n * spec.weights_capacity >= weights
    if weights > 0:
        assert (n - 1) * spec.weights_capacity < weights


@settings(max_examples=25, deadline=None)
@given(
    powers=st.lists(
        st.floats(min_value=0.0, max_value=5.0),
        min_size=18, max_size=18,
    )
)
def test_thermal_solution_above_ambient(powers):
    report = THERMAL.solve(np.array(powers))
    assert (report.temperatures_k >= 300.0 - 1e-6).all()
    assert report.peak_k >= report.mean_k


@settings(max_examples=25, deadline=None)
@given(
    index=st.integers(min_value=0, max_value=17),
    power=st.floats(min_value=0.1, max_value=5.0),
)
def test_thermal_monotone_in_power(index, power):
    p = np.zeros(18)
    p[index] = power
    low = THERMAL.solve(p).peak_k
    high = THERMAL.solve(2 * p).peak_k
    assert high > low


@settings(max_examples=30, deadline=None)
@given(
    bits_per_cell=st.sampled_from([1, 2, 4]),
    weight_bits=st.sampled_from([4, 8, 16]),
)
def test_pim_capacity_positive(bits_per_cell, weight_bits):
    params = PIMParams(bits_per_cell=bits_per_cell, weight_bits=weight_bits)
    assert params.cells_per_weight >= 1
    assert params.chiplet_weight_capacity > 0


@settings(max_examples=30, deadline=None)
@given(
    cols=st.integers(min_value=1, max_value=6),
    rows=st.integers(min_value=1, max_value=6),
    tiers=st.integers(min_value=1, max_value=4),
)
def test_grid3d_roundtrip_property(cols, rows, tiers):
    grid = Grid3D(cols, rows, tiers)
    for i in range(0, grid.num_pes, max(1, grid.num_pes // 7)):
        assert grid.index(*grid.coords(i)) == i
