"""Shared fixtures: small systems that keep the test suite fast."""

from __future__ import annotations

import pytest

from repro.core.floret import build_floret
from repro.core.sfc import build_floret_curve
from repro.noi.kite import build_kite
from repro.noi.mesh import build_mesh
from repro.noi.swap import SwapSynthesisConfig, build_swap
from repro.pim.chiplet import ChipletSpec

from helpers import make_toy_model


@pytest.fixture(scope="session")
def small_mesh():
    """6x6 mesh topology."""
    return build_mesh(36)


@pytest.fixture(scope="session")
def small_kite():
    """6x6 folded-torus (Kite) topology."""
    return build_kite(36)


@pytest.fixture(scope="session")
def small_swap():
    """36-chiplet SWAP with a tiny annealing budget (fast, deterministic)."""
    return build_swap(
        36, config=SwapSynthesisConfig(iterations=150, seed=11)
    )


@pytest.fixture(scope="session")
def small_floret():
    """36-chiplet, 4-petal Floret design."""
    return build_floret(36, 4)


@pytest.fixture(scope="session")
def spec():
    return ChipletSpec.from_params()


@pytest.fixture(scope="session")
def toy_model():
    return make_toy_model()
