"""Shared fixtures: small systems that keep the test suite fast."""

from __future__ import annotations

import pytest

from repro.core.floret import build_floret
from repro.core.sfc import build_floret_curve
from repro.noi.kite import build_kite
from repro.noi.mesh import build_mesh
from repro.noi.swap import SwapSynthesisConfig, build_swap
from repro.pim.chiplet import ChipletSpec
from repro.workloads.dnn import DNNModel
from repro.workloads.layers import LayerGraphBuilder


@pytest.fixture(scope="session")
def small_mesh():
    """6x6 mesh topology."""
    return build_mesh(36)


@pytest.fixture(scope="session")
def small_kite():
    """6x6 folded-torus (Kite) topology."""
    return build_kite(36)


@pytest.fixture(scope="session")
def small_swap():
    """36-chiplet SWAP with a tiny annealing budget (fast, deterministic)."""
    return build_swap(
        36, config=SwapSynthesisConfig(iterations=150, seed=11)
    )


@pytest.fixture(scope="session")
def small_floret():
    """36-chiplet, 4-petal Floret design."""
    return build_floret(36, 4)


@pytest.fixture(scope="session")
def spec():
    return ChipletSpec.from_params()


def make_toy_model(name: str = "toy", blocks: int = 2) -> DNNModel:
    """A small residual CNN sized to span ~5 chiplets (2M weights each)."""
    b = LayerGraphBuilder(name, (3, 16, 16))
    x = b.add_conv(b.input_index, 64, kernel=3, padding=1, name="stem")
    for i in range(blocks):
        y = b.add_conv(x, 64, kernel=3, padding=1, name=f"b{i}/c1")
        y = b.add_conv(y, 64, kernel=3, padding=1, name=f"b{i}/c2")
        x = b.add_add([x, y], name=f"b{i}/add")
    x = b.add_flatten(x, name="flatten")
    x = b.add_fc(x, 512, name="fc1")
    x = b.add_fc(x, 10, name="fc2")
    return DNNModel(name, "toy", b.build())


@pytest.fixture(scope="session")
def toy_model():
    return make_toy_model()
