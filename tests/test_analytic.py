"""Unit tests: analytic latency/energy models (unicast + multicast)."""

from __future__ import annotations

import pytest

from repro.net.analytic import (
    communication_cost,
    flits_for_bytes,
    multicast_energy_pj,
    multicast_latency_cycles,
    multicast_step_cost,
    multicast_tree,
    packet_latency_cycles,
    packets_for_bytes,
    path_pipeline_cycles,
    transfer_energy_pj,
    transfer_latency_cycles,
)
from repro.noi.topology import Chiplet, Link, Topology
from repro.params import NoIParams


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(6)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(5)]
    return Topology("line", chiplets, links)


@pytest.fixture(scope="module")
def mline():
    """Multicast-capable line."""
    chiplets = [Chiplet(i, x=i, y=0) for i in range(6)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(5)]
    return Topology("mline", chiplets, links, multicast_capable=True)


class TestFlitsPackets:
    def test_flits_zero(self):
        assert flits_for_bytes(0, NoIParams()) == 0

    def test_flits_ceil(self):
        p = NoIParams(flit_bytes=32)
        assert flits_for_bytes(33, p) == 2

    def test_flits_negative(self):
        with pytest.raises(ValueError):
            flits_for_bytes(-1, NoIParams())

    def test_packets(self):
        p = NoIParams(packet_bytes=64)
        assert packets_for_bytes(0, p) == 0
        assert packets_for_bytes(64, p) == 1
        assert packets_for_bytes(65, p) == 2


class TestPipeline:
    def test_zero_hops(self, line):
        assert path_pipeline_cycles(line, 2, 2) == 0

    def test_one_hop(self, line):
        # src router stages + wire + dst router stages.
        p = line.params
        expected = (
            p.router_stage_cycles(line.router_ports(0))
            + p.link_delay_cycles(3.0)
            + p.router_stage_cycles(line.router_ports(1))
        )
        assert path_pipeline_cycles(line, 0, 1) == expected

    def test_monotone_in_hops(self, line):
        assert (
            path_pipeline_cycles(line, 0, 3)
            > path_pipeline_cycles(line, 0, 1)
        )

    def test_packet_latency_adds_serialization(self, line):
        assert packet_latency_cycles(line, 0, 2) == (
            path_pipeline_cycles(line, 0, 2) + line.params.flits_per_packet
        )


class TestTransferCosts:
    def test_self_transfer_free(self, line):
        assert transfer_latency_cycles(line, 1, 1, 1000) == 0
        assert transfer_energy_pj(line, 1, 1, 1000) == 0.0

    def test_empty_payload_free(self, line):
        assert transfer_latency_cycles(line, 0, 1, 0) == 0

    def test_latency_linear_in_flits(self, line):
        small = transfer_latency_cycles(line, 0, 1, 32)
        large = transfer_latency_cycles(line, 0, 1, 3200)
        assert large - small == flits_for_bytes(3200, line.params) - 1

    def test_energy_grows_with_distance(self, line):
        near = transfer_energy_pj(line, 0, 1, 640)
        far = transfer_energy_pj(line, 0, 4, 640)
        assert far > near

    def test_energy_scales_with_ports(self):
        p = NoIParams()
        star_center = [Chiplet(0, 1, 1)] + [
            Chiplet(i, x, y) for i, (x, y) in enumerate(
                [(0, 1), (2, 1), (1, 0), (1, 2)], start=1
            )
        ]
        links = [Link(0, i, length_mm=3.0) for i in range(1, 5)]
        star = Topology("star", star_center, links, params=p)
        chain = Topology(
            "chain2",
            [Chiplet(0, 0, 0), Chiplet(1, 1, 0)],
            [Link(0, 1, length_mm=3.0)],
            params=p,
        )
        # Same hop count and length; the star's 4-port hub costs more.
        assert (
            transfer_energy_pj(star, 1, 0, 640)
            > transfer_energy_pj(chain, 0, 1, 640)
        )


class TestMulticast:
    def test_tree_chain(self, mline):
        edges, nodes = multicast_tree(mline, 0, [1, 2, 3])
        assert edges == ((0, 1), (1, 2), (2, 3))
        assert nodes == (0, 1, 2, 3)

    def test_tree_shares_prefix(self, mline):
        edges, _ = multicast_tree(mline, 0, [3, 2])
        # The route to 2 is a prefix of the route to 3: no duplicates.
        assert len(edges) == 3

    def test_latency_uses_deepest_path(self, mline):
        deep = multicast_latency_cycles(mline, 0, [4], 64)
        shallow = multicast_latency_cycles(mline, 0, [1], 64)
        both = multicast_latency_cycles(mline, 0, [1, 4], 64)
        assert both == deep > shallow

    def test_energy_pays_tree_once(self, mline):
        tree = multicast_energy_pj(mline, 0, [1, 2, 3], 640)
        unicasts = sum(
            transfer_energy_pj(mline, 0, d, 640) for d in (1, 2, 3)
        )
        assert tree < unicasts

    def test_empty_group_free(self, mline):
        assert multicast_latency_cycles(mline, 2, [2], 64) == 0
        assert multicast_energy_pj(mline, 2, [], 64) == 0.0


class TestStepCost:
    def test_multicast_capable_uses_trees(self, mline, line):
        groups = [(0, (1, 2, 3), 640)]
        tree_report = multicast_step_cost(mline, groups)
        unicast_report = multicast_step_cost(line, groups)
        # Unicast replication injects more flits and burns more energy.
        assert unicast_report.total_flits > tree_report.total_flits
        assert unicast_report.energy_pj > tree_report.energy_pj

    def test_packet_accounting_multicast(self, mline):
        groups = [(0, (1, 4), 128)]
        report = multicast_step_cost(mline, groups)
        # Injected once: 2 packets, latency = delivery to farthest dst.
        assert report.packet_count == packets_for_bytes(
            128, mline.params
        )
        assert report.mean_packet_latency == packet_latency_cycles(
            mline, 0, 4
        )

    def test_packet_accounting_unicast(self, line):
        groups = [(0, (1, 4), 128)]
        report = multicast_step_cost(line, groups)
        assert report.packet_count == 2 * packets_for_bytes(
            128, line.params
        )

    def test_bottleneck_latency(self, mline):
        # Two groups sharing link (2,3) accumulate load there.
        groups = [(2, (3,), 640), (1, (4,), 640)]
        report = multicast_step_cost(mline, groups)
        flits = flits_for_bytes(640, mline.params)
        assert report.latency_cycles >= 2 * flits

    def test_empty_step(self, mline):
        report = multicast_step_cost(mline, [])
        assert report.latency_cycles == 0
        assert report.energy_pj == 0.0

    def test_communication_cost_unicast_list(self, line):
        report = communication_cost(line, [(0, 1, 640), (2, 3, 640)])
        assert report.total_flits == 2 * flits_for_bytes(640, line.params)
        assert report.energy_pj > 0
