"""Equivalence tests: vectorized engine vs the scalar reference oracles.

The satellite requirement: the batched NumPy engine must match the
scalar analytic model within 1e-9 *relative* tolerance across mesh
(SIAM), Kite, SWAP and Floret topologies and random traffic matrices.
Integer metrics (latencies, flit and packet counts) must match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.analytic import (
    CommReport,
    communication_cost,
    multicast_step_cost,
)
from repro.net.vectorized import (
    communication_cost_vec,
    multicast_step_cost_pergroup,
    multicast_step_cost_steps,
    multicast_step_cost_vec,
    traffic_matrix_cost,
    traffic_matrix_to_transfers,
    transfers_to_arrays,
    unicast_step_cost_vec,
)

TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")


def _topology(request, fixture):
    topo = request.getfixturevalue(fixture)
    # The floret fixture yields the whole design; the rest are topologies.
    return topo.topology if fixture == "small_floret" else topo


def _random_transfers(n, rng, count=300, max_payload=4096):
    return [
        (int(s), int(d), int(p))
        for s, d, p in zip(
            rng.integers(0, n, count),
            rng.integers(0, n, count),
            rng.integers(0, max_payload, count),
        )
    ]


def _random_groups(n, rng, count=50, max_payload=4096):
    return [
        (
            int(rng.integers(0, n)),
            tuple(int(d) for d in rng.integers(0, n, int(rng.integers(1, 6)))),
            int(rng.integers(0, max_payload)),
        )
        for _ in range(count)
    ]


def assert_reports_equal(scalar: CommReport, vec: CommReport) -> None:
    # Integer accounting must be exact.
    assert vec.latency_cycles == scalar.latency_cycles
    assert vec.serial_latency_cycles == scalar.serial_latency_cycles
    assert vec.total_flits == scalar.total_flits
    assert vec.packet_count == scalar.packet_count
    assert vec.packet_latency_sum == scalar.packet_latency_sum
    assert vec.payload_volume == scalar.payload_volume
    # Float sums may reassociate: 1e-9 relative tolerance.
    assert vec.energy_pj == pytest.approx(scalar.energy_pj, rel=1e-9)
    assert vec.weighted_hops == pytest.approx(scalar.weighted_hops, rel=1e-9)
    assert vec.mean_packet_latency == pytest.approx(
        scalar.mean_packet_latency, rel=1e-9
    )


class TestCommunicationCost:
    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_on_random_transfers(self, fixture, seed,
                                                request):
        topo = _topology(request, fixture)
        rng = np.random.default_rng(seed)
        transfers = _random_transfers(topo.num_chiplets, rng)
        assert_reports_equal(
            communication_cost(topo, transfers),
            communication_cost_vec(topo, transfers),
        )

    def test_empty_transfer_set(self, small_mesh):
        assert_reports_equal(
            communication_cost(small_mesh, []),
            communication_cost_vec(small_mesh, []),
        )

    def test_self_and_zero_payload_filtered(self, small_mesh):
        transfers = [(3, 3, 512), (4, 5, 0), (4, 5, 64)]
        assert_reports_equal(
            communication_cost(small_mesh, transfers),
            communication_cost_vec(small_mesh, transfers),
        )

    def test_accepts_numpy_array_input(self, small_mesh):
        arr = np.array([[0, 5, 256], [7, 2, 1024]], dtype=np.int64)
        assert_reports_equal(
            communication_cost(small_mesh, [tuple(r) for r in arr.tolist()]),
            communication_cost_vec(small_mesh, arr),
        )


class TestTrafficMatrix:
    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_matrix_equals_scalar_transfer_list(self, fixture, request):
        topo = _topology(request, fixture)
        n = topo.num_chiplets
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 2048, (n, n))
        matrix[rng.random((n, n)) < 0.6] = 0
        transfers = [
            (s, d, int(matrix[s, d]))
            for s in range(n) for d in range(n)
        ]
        assert_reports_equal(
            communication_cost(topo, transfers),
            traffic_matrix_cost(topo, matrix),
        )

    def test_matrix_must_be_square(self, small_mesh):
        with pytest.raises(ValueError):
            traffic_matrix_cost(small_mesh, np.zeros((3, 4)))

    def test_matrix_to_transfers_drops_zeros(self):
        m = np.zeros((4, 4), dtype=np.int64)
        m[0, 1] = 7
        m[2, 2] = 9  # diagonal: dropped later by transfers_to_arrays
        out = traffic_matrix_to_transfers(m)
        src, dst, payload = transfers_to_arrays(out)
        assert src.tolist() == [0] and dst.tolist() == [1]
        assert payload.tolist() == [7]


class TestStepCost:
    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_multicast_step_matches_scalar(self, fixture, seed, request):
        topo = _topology(request, fixture)
        rng = np.random.default_rng(seed)
        groups = _random_groups(topo.num_chiplets, rng)
        assert_reports_equal(
            multicast_step_cost(topo, groups),
            multicast_step_cost_vec(topo, groups),
        )

    def test_floret_uses_tree_semantics(self, small_floret):
        topo = small_floret.topology
        assert topo.multicast_capable
        groups = [(0, (1, 2, 3, 4), 640)]
        tree = multicast_step_cost_vec(topo, groups)
        # Replicated unicasts inject strictly more flits than one tree.
        unicast = unicast_step_cost_vec(
            topo, [(0, d, 640) for d in (1, 2, 3, 4)]
        )
        assert tree.total_flits < unicast.total_flits
        assert tree.energy_pj < unicast.energy_pj

    def test_unicast_step_matches_scalar_on_mesh(self, small_mesh):
        rng = np.random.default_rng(5)
        groups = _random_groups(small_mesh.num_chiplets, rng)
        # Mesh is not multicast-capable: both engines must degenerate to
        # the replicated-unicast step model.
        assert not small_mesh.multicast_capable
        assert_reports_equal(
            multicast_step_cost(small_mesh, groups),
            multicast_step_cost_vec(small_mesh, groups),
        )

    def test_empty_step(self, small_kite):
        assert_reports_equal(
            multicast_step_cost(small_kite, []),
            multicast_step_cost_vec(small_kite, []),
        )


class TestMulticastBatching:
    """Cross-group batched trees vs the pinned per-group construction."""

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_batched_matches_pergroup(self, fixture, seed, request):
        topo = _topology(request, fixture)
        rng = np.random.default_rng(seed)
        groups = _random_groups(topo.num_chiplets, rng, count=80)
        assert_reports_equal(
            multicast_step_cost_pergroup(topo, groups),
            multicast_step_cost_vec(topo, groups),
        )

    def test_overlapping_trees_share_link_load(self, small_floret):
        # Two groups from the same source over the same chain prefix:
        # the shared links must accumulate both groups' flits in both
        # constructions (and in the scalar oracle).
        topo = small_floret.topology
        groups = [(0, (1, 2, 3), 640), (0, (2, 3, 4), 320),
                  (5, (6, 7), 128)]
        scalar = multicast_step_cost(topo, groups)
        assert_reports_equal(
            scalar, multicast_step_cost_pergroup(topo, groups)
        )
        assert_reports_equal(scalar, multicast_step_cost_vec(topo, groups))

    def test_degenerate_groups_only(self, small_floret):
        topo = small_floret.topology
        groups = [(3, (3,), 512), (4, (5, 6), 0), (7, (), 64)]
        assert_reports_equal(
            multicast_step_cost(topo, groups),
            multicast_step_cost_vec(topo, groups),
        )
        assert multicast_step_cost_vec(topo, groups).total_flits == 0

    def test_empty_groups_list(self, small_floret):
        topo = small_floret.topology
        assert_reports_equal(
            multicast_step_cost_pergroup(topo, []),
            multicast_step_cost_vec(topo, []),
        )

    def test_unicast_degeneration_matches(self, small_mesh):
        rng = np.random.default_rng(9)
        groups = _random_groups(small_mesh.num_chiplets, rng, count=40)
        assert_reports_equal(
            multicast_step_cost_pergroup(small_mesh, groups),
            multicast_step_cost_vec(small_mesh, groups),
        )


class TestMulticastSteps:
    """Step-segmented batching vs the per-step batched engine.

    ``multicast_step_cost_steps`` on the concatenation of many steps'
    groups must equal ``multicast_step_cost_vec`` applied to each step
    alone -- exactly on integer fields (same dedup keys, int64 segment
    sums), 1e-9 on floats.
    """

    @staticmethod
    def _stepped_groups(n, rng, num_steps, count=80):
        groups = _random_groups(n, rng, count=count)
        steps = [int(s) for s in rng.integers(0, num_steps, count)]
        return groups, steps

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_matches_perstep_vec(self, fixture, seed, request):
        topo = _topology(request, fixture)
        rng = np.random.default_rng(seed)
        num_steps = 7
        groups, steps = self._stepped_groups(
            topo.num_chiplets, rng, num_steps
        )
        reports = multicast_step_cost_steps(topo, groups, steps, num_steps)
        assert len(reports) == num_steps
        for s in range(num_steps):
            per_step = [g for g, st in zip(groups, steps) if st == s]
            assert_reports_equal(
                multicast_step_cost_vec(topo, per_step), reports[s]
            )

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_empty_steps_get_zero_reports(self, fixture, request):
        topo = _topology(request, fixture)
        # Steps 0 and 3 stay empty; step 2 only has degenerate groups.
        groups = [
            (0, (1, 2), 512),
            (4, (4,), 256),
            (3, (5, 6), 0),
            (1, (2,), 128),
        ]
        steps = [1, 2, 2, 4]
        reports = multicast_step_cost_steps(topo, groups, steps, 5)
        for s in (0, 2, 3):
            assert reports[s].total_flits == 0
            assert reports[s].latency_cycles == 0
            assert reports[s].payload_volume == 0
        for s in (1, 4):
            per_step = [g for g, st in zip(groups, steps) if st == s]
            assert_reports_equal(
                multicast_step_cost_vec(topo, per_step), reports[s]
            )

    def test_no_groups(self, small_floret):
        topo = small_floret.topology
        reports = multicast_step_cost_steps(topo, [], [], 4)
        assert len(reports) == 4
        assert all(r.total_flits == 0 for r in reports)
        assert multicast_step_cost_steps(topo, [], [], 0) == []

    def test_scalar_oracle_composition(self, small_floret):
        from repro.net.analytic import multicast_step_cost

        topo = small_floret.topology
        groups = [(0, (1, 2, 3), 640), (0, (2, 3, 4), 320),
                  (5, (6, 7), 128), (8, (9,), 64)]
        steps = [0, 1, 1, 2]
        reports = multicast_step_cost_steps(topo, groups, steps, 3)
        for s in range(3):
            per_step = [g for g, st in zip(groups, steps) if st == s]
            assert_reports_equal(
                multicast_step_cost(topo, per_step), reports[s]
            )

    def test_validation_errors(self, small_floret):
        topo = small_floret.topology
        groups = [(0, (1,), 64)]
        with pytest.raises(ValueError, match="entries"):
            multicast_step_cost_steps(topo, groups, [0, 1], 2)
        with pytest.raises(ValueError, match="step ids"):
            multicast_step_cost_steps(topo, groups, [3], 2)
        with pytest.raises(ValueError, match="step ids"):
            multicast_step_cost_steps(topo, groups, [-1], 2)
        with pytest.raises(ValueError, match="num_steps"):
            multicast_step_cost_steps(topo, groups, [0], -1)
