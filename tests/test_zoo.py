"""Unit tests: the model zoo reproduces canonical architectures."""

from __future__ import annotations

import pytest

from repro.workloads.zoo import (
    TABLE1_SPEC,
    available_models,
    build_densenet,
    build_googlenet,
    build_model,
    build_resnet,
    build_resnet_cifar,
    build_vgg,
    table1_model,
    table1_rows,
)

#: Canonical torchvision-style parameter counts (millions), used as
#: ground truth for the zoo's shape inference (BN params included).
REFERENCE_PARAMS_M = {
    ("resnet18", "imagenet"): 11.69,
    ("resnet34", "imagenet"): 21.80,
    ("resnet50", "imagenet"): 25.56,
    ("resnet101", "imagenet"): 44.55,
    ("resnet152", "imagenet"): 60.19,
    ("vgg19", "imagenet"): 143.68,
    ("densenet169", "imagenet"): 14.15,
    # torchvision quirk: its GoogLeNet builds the "5x5" branch with 3x3
    # kernels (6.62M); the original Inception-v1 with true 5x5 branches,
    # which we implement, has ~7.0M.
    ("googlenet", "imagenet"): 7.01,
}


class TestParameterCounts:
    @pytest.mark.parametrize("name,dataset", sorted(REFERENCE_PARAMS_M))
    def test_imagenet_params_match_reference(self, name, dataset):
        model = build_model(name, dataset)
        expected = REFERENCE_PARAMS_M[(name, dataset)]
        assert model.params_millions() == pytest.approx(expected, rel=0.02)

    def test_resnet110_cifar_canonical(self):
        model = build_resnet_cifar(110)
        # He et al. report ~1.7M parameters for ResNet-110.
        assert model.params_millions() == pytest.approx(1.73, rel=0.03)

    def test_cifar_resnet_depth_validation(self):
        with pytest.raises(ValueError, match="6n"):
            build_resnet_cifar(100)

    def test_unsupported_resnet_depth(self):
        with pytest.raises(ValueError):
            build_resnet(77)

    def test_unsupported_vgg_depth(self):
        with pytest.raises(ValueError):
            build_vgg(13)

    def test_unsupported_densenet_depth(self):
        with pytest.raises(ValueError):
            build_densenet(300)


class TestZooStructure:
    @pytest.mark.parametrize("name", available_models())
    def test_every_model_builds_on_cifar(self, name):
        model = build_model(name, "cifar10")
        assert model.total_params > 0
        assert model.total_macs > 0
        assert model.layers[-1].out_shape == (10,)

    def test_imagenet_head_is_1000(self):
        assert build_model("resnet18", "imagenet").layers[-1].out_shape == (
            1000,
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("alexnet")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_model("resnet18", "mnist")

    def test_models_are_cached(self):
        a = build_model("resnet18", "cifar10")
        b = build_model("resnet18", "cifar10")
        assert a is b

    def test_googlenet_has_inception_concats(self):
        from repro.workloads.layers import LayerKind

        model = build_googlenet("cifar10")
        concats = [l for l in model.layers if l.kind is LayerKind.CONCAT]
        assert len(concats) == 9  # nine inception modules

    def test_densenet_concat_growth(self):
        model = build_densenet(169, "cifar10", growth=32)
        last_concat = [
            l for l in model.layers if l.kind.value == "concat"
        ][-1]
        # Final dense block ends at 1664 channels for DenseNet-169.
        assert last_concat.out_shape[0] == 1664


class TestTable1:
    def test_thirteen_rows(self):
        assert len(table1_rows()) == 13

    def test_spec_ids_unique(self):
        ids = [row[0] for row in TABLE1_SPEC]
        assert len(set(ids)) == 13

    @pytest.mark.parametrize(
        "dnn_id", ["DNN9", "DNN10", "DNN11", "DNN12", "DNN13"]
    )
    def test_cifar_rows_match_paper(self, dnn_id):
        row = next(r for r in table1_rows() if r.dnn_id == dnn_id)
        assert row.measured_params_millions == pytest.approx(
            row.paper_params_millions, rel=0.05
        )

    def test_table1_model_lookup(self):
        assert table1_model("DNN1").name == "resnet18"

    def test_table1_model_unknown(self):
        with pytest.raises(ValueError, match="unknown DNN id"):
            table1_model("DNN99")

    def test_resnet110_resolved_as_cifar(self):
        # Paper lists DNN5 under ImageNet, but ResNet-110 only exists as
        # a CIFAR architecture; the zoo resolves it accordingly.
        assert table1_model("DNN5").dataset == "cifar10"
