"""Unit tests: trace rotation, histogram quantiles, report --json, watch.

Satellite coverage for the live-monitor tentpole: ``REPRO_TRACE_MAX_MB``
rolls trace files over to ``-partN.jsonl`` pieces that merge back
seamlessly; log-bucket histogram snapshots yield p50/p95/p99 estimates;
``python -m repro.obs report --json`` emits the report machine-readably;
:class:`~repro.obs.watch.TraceTail` consumes a growing trace directory
incrementally (torn tails excluded, rotated/late files picked up); and a
watched 3-worker drain reconstructs exactly the fleet state the post-hoc
report computes from the same directory.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.eval import ResultStore, evaluate_comm_case, sweep_grid
from repro.eval.shard import drain_cases
from repro.obs import (
    TRACE_MAX_MB_ENV,
    MetricsRegistry,
    Tracer,
    histogram_quantiles,
    merge_traces,
    report_data,
    worker_case_counts,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.watch import TraceTail, render_watch


def _spans(tracer, n, worker="w0"):
    for i in range(n):
        tracer.record_span("drain_case", 10.0 + i, 0.01,
                           case=f"c{i}", outcome="evaluated")


def _pool_probe(i):
    """Emit one event + counter through the env-default tracer."""
    from repro.obs import REGISTRY, default_tracer

    REGISTRY.counter("probe_count").inc()
    default_tracer().event("probe", i=i)
    return os.getpid()


class TestPoolWorkerTraces:
    def test_forked_pool_workers_flush_at_exit(self, tmp_path,
                                               monkeypatch):
        """Fork-started pool children skip atexit; Finalize must fire.

        Forked multiprocessing children exit through the bootstrap's
        finalizer pass, not atexit -- without the Finalize hook every
        pool worker's buffered records and metrics snapshot vanish,
        and a traced ``SweepRunner`` fleet reports an empty fleet.
        """
        from concurrent.futures import ProcessPoolExecutor

        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        with ProcessPoolExecutor(max_workers=2) as pool:
            pids = set(pool.map(_pool_probe, range(4)))
        records = merge_traces(tmp_path)
        events = [r for r in records if r.get("kind") == "event"]
        assert len(events) == 4
        assert {r["pid"] for r in events} == pids
        from repro.obs import summarize_metrics

        assert summarize_metrics(records)["counters"]["probe_count"] == 4


# ---------------------------------------------------------------------------
# trace-file rotation


class TestRotation:
    def test_rollover_produces_parts(self, tmp_path):
        tracer = Tracer(tmp_path, worker="w0", buffer_records=1,
                        max_bytes=500)
        _spans(tracer, 40)
        tracer.close()
        files = sorted(p.name for p in tmp_path.glob("*.jsonl"))
        assert len(files) > 1
        assert sum("-part" in name for name in files) == len(files) - 1

    def test_parts_merge_seamlessly(self, tmp_path):
        tracer = Tracer(tmp_path, worker="w0", buffer_records=4,
                        max_bytes=400)
        _spans(tracer, 50)
        tracer.close()
        merged = merge_traces(tmp_path)
        assert len(merged) == 50
        # Merge order restores the emission order exactly: seq is
        # contiguous and the per-case payloads survive rotation.
        assert [r["seq"] for r in merged] == list(range(50))
        assert [r["case"] for r in merged] == [f"c{i}" for i in range(50)]
        assert worker_case_counts(merged)["w0"]["total"] == 50

    def test_rollover_lands_on_line_boundaries(self, tmp_path):
        tracer = Tracer(tmp_path, worker="w0", buffer_records=3,
                        max_bytes=300)
        _spans(tracer, 30)
        tracer.close()
        for path in tmp_path.glob("*.jsonl"):
            content = path.read_bytes()
            assert content.endswith(b"\n")
            for line in content.splitlines():
                json.loads(line)  # every line complete and parsable

    def test_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_MAX_MB_ENV, "0.0004")  # 400 bytes
        tracer = Tracer(tmp_path, worker="w0", buffer_records=1)
        assert tracer.max_bytes == 400
        _spans(tracer, 20)
        tracer.close()
        assert any("-part" in p.name for p in tmp_path.glob("*.jsonl"))
        assert len(merge_traces(tmp_path)) == 20

    @pytest.mark.parametrize("raw", ["", "nonsense", "0", "-3"])
    def test_env_knob_ignores_bad_values(self, tmp_path, monkeypatch, raw):
        monkeypatch.setenv(TRACE_MAX_MB_ENV, raw)
        tracer = Tracer(tmp_path, worker="w0")
        assert tracer.max_bytes is None

    def test_unbounded_by_default(self, tmp_path):
        tracer = Tracer(tmp_path, worker="w0", buffer_records=1)
        _spans(tracer, 40)
        tracer.close()
        assert len(list(tmp_path.glob("*.jsonl"))) == 1


# ---------------------------------------------------------------------------
# histogram quantiles


class TestHistogramQuantiles:
    def _snapshot(self, observations):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in observations:
            h.observe(v)
        return reg.snapshot()["histograms"]["lat"]

    def test_median_in_right_bucket(self):
        snap = self._snapshot([0.01] * 100)
        p50, p95, p99 = histogram_quantiles(snap)
        # All mass in one log bucket: every quantile inside it.
        assert 0.004 <= p50 <= 0.017
        assert p50 <= p95 <= p99 <= 0.017

    def test_tail_quantiles_split_mixture(self):
        snap = self._snapshot([0.001] * 96 + [1.0] * 4)
        p50, p95, p99 = histogram_quantiles(snap)
        assert p50 < 0.01       # bulk bucket
        assert p99 > 0.2        # tail bucket
        assert p50 <= p95 <= p99

    def test_clamped_to_observed_range(self):
        snap = self._snapshot([0.02, 0.03, 0.04])
        quantiles = histogram_quantiles(snap)
        assert all(0.02 <= q <= 0.04 for q in quantiles)

    def test_empty_and_boundless_snapshots(self):
        assert histogram_quantiles({"count": 0}) is None
        # Pre-rotation traces carry no bounds: degrade, don't crash.
        assert histogram_quantiles(
            {"count": 5, "counts": [5], "min": 0.1, "max": 0.2}
        ) is None

    def test_custom_qs(self):
        snap = self._snapshot([0.01] * 10)
        assert len(histogram_quantiles(snap, qs=(0.25, 0.75))) == 2


# ---------------------------------------------------------------------------
# report --json


class TestReportJson:
    def _trace(self, directory):
        tracer = Tracer(directory, worker="w0", buffer_records=1)
        _spans(tracer, 3)
        reg = MetricsRegistry()
        reg.counter("cases_evaluated").inc(3)
        reg.histogram("case_latency_s").observe(0.01)
        tracer.metrics(reg)
        tracer.close()

    def test_cli_emits_valid_json(self, tmp_path, capsys):
        self._trace(tmp_path)
        assert obs_main(["report", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workers"] == ["w0"]
        assert data["worker_cases"]["w0"]["total"] == 3
        assert data["records"] == 4  # 3 spans + 1 metrics snapshot
        assert len(data["slowest_cases"]) == 3
        counters = data["metrics"]["counters"]
        assert counters["cases_evaluated"] == 3

    def test_json_matches_report_data(self, tmp_path, capsys):
        self._trace(tmp_path)
        assert obs_main(["report", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        direct = json.loads(json.dumps(
            report_data(str(tmp_path)), default=str
        ))
        assert data == direct

    def test_json_histograms_carry_quantiles(self, tmp_path, capsys):
        self._trace(tmp_path)
        assert obs_main(["report", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        hist = data["metrics"]["histograms"]["case_latency_s"]
        assert {"p50", "p95", "p99"} <= set(hist)
        assert hist["p50"] <= hist["p95"] <= hist["p99"]


# ---------------------------------------------------------------------------
# TraceTail


class TestTraceTail:
    def test_missing_directory_tolerated(self, tmp_path):
        tail = TraceTail(tmp_path / "not-yet")
        assert tail.poll() == 0
        assert tail.records == []

    def test_incremental_consumption(self, tmp_path):
        path = tmp_path / "trace-h-1-r.jsonl"
        rec = {"kind": "event", "name": "x", "t": 1.0, "seq": 0,
               "worker": "w", "run": "r", "pid": 1, "host": "h"}
        path.write_text(json.dumps(rec) + "\n")
        tail = TraceTail(tmp_path)
        assert tail.poll() == 1
        assert tail.poll() == 0  # nothing new, nothing re-read
        with path.open("a") as fh:
            fh.write(json.dumps({**rec, "seq": 1}) + "\n")
        assert tail.poll() == 1
        assert [r["seq"] for r in tail.records] == [0, 1]

    def test_torn_tail_not_consumed(self, tmp_path):
        path = tmp_path / "trace-h-1-r.jsonl"
        rec = {"kind": "event", "name": "x", "t": 1.0, "seq": 0,
               "worker": "w", "run": "r", "pid": 1, "host": "h"}
        complete = json.dumps(rec) + "\n"
        torn = json.dumps({**rec, "seq": 1})
        path.write_text(complete + torn[:10])  # mid-write tail
        tail = TraceTail(tmp_path)
        assert tail.poll() == 1  # only the complete line
        with path.open("a") as fh:  # the rest of the line lands
            fh.write(torn[10:] + "\n")
        assert tail.poll() == 1
        assert [r["seq"] for r in tail.records] == [0, 1]

    def test_late_and_rotated_files_picked_up(self, tmp_path):
        tail = TraceTail(tmp_path)
        tracer = Tracer(tmp_path, worker="w0", buffer_records=1,
                        max_bytes=400)
        _spans(tracer, 10)
        tracer.flush()
        mid = tail.poll()
        assert mid > 0
        _spans(tracer, 10)  # keeps rotating into new -partN files
        tracer.close()
        late = Tracer(tmp_path, worker="w1", buffer_records=1)
        _spans(late, 5, worker="w1")
        late.close()
        tail.poll()
        counts = worker_case_counts(tail.records)
        assert counts["w0"]["total"] == 20
        assert counts["w1"]["total"] == 5


# ---------------------------------------------------------------------------
# render_watch + the 3-worker drain acceptance pin


class TestRenderWatch:
    def test_empty_frame(self):
        frame = render_watch([])
        assert "0 trace records" in frame

    def test_progress_and_leases(self, tmp_path):
        tracer = Tracer(tmp_path / "traces", worker="w0",
                        buffer_records=1)
        _spans(tracer, 4)
        tracer.close()
        claims = tmp_path / "claims"
        claims.mkdir()
        (claims / "a.lease").write_text("{}")
        (claims / "b.lease").write_text("{}")
        tail = TraceTail(tmp_path / "traces")
        tail.poll()
        frame = render_watch(tail.records, expect=8, claims_dir=claims)
        assert "fleet [" in frame
        assert "4/8" in frame
        assert "2 leases in flight" in frame
        assert "per-worker case counts" in frame

    def test_three_worker_drain_reconstructed(self, tmp_path):
        """A watched drain's final state == the post-hoc report's."""
        traces = tmp_path / "traces"
        store = ResultStore(tmp_path / "store")
        cases = sweep_grid(archs=("siam", "kite"), sizes=(36,),
                           workloads=("uniform", "transpose"),
                           seeds=(0, 1))
        tail = TraceTail(traces)
        tail.poll()  # before any worker starts: directory missing
        reports = []
        for worker in ("w0", "w1", "w2"):
            reports.append(drain_cases(
                store, evaluate_comm_case, cases, worker=worker,
                trace=Tracer(traces, worker=worker, buffer_records=1,
                             max_bytes=2000),
            ))
            tail.poll()  # live: mid-fleet observation is well-formed
            render_watch(tail.records, expect=len(cases))
        tail.poll()

        live = worker_case_counts(tail.records)
        posthoc = worker_case_counts(merge_traces(traces))
        assert live == posthoc
        assert set(live) == {"w0", "w1", "w2"}
        # The drain reports agree with the trace-derived tallies.
        for worker, report in zip(("w0", "w1", "w2"), reports):
            assert live[worker]["total"] == len(cases)
            assert live[worker].get("evaluated", 0) == report.evaluated
            assert live[worker].get("hit", 0) == report.store_hits

    def test_watch_cli_once(self, tmp_path, capsys):
        tracer = Tracer(tmp_path, worker="w0", buffer_records=1)
        _spans(tracer, 2)
        tracer.close()
        assert obs_main([
            "watch", str(tmp_path), "--once", "--expect", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "watch @" in out
        assert "2/4" in out

    def test_watch_cli_missing_dir(self, tmp_path, capsys):
        assert obs_main([
            "watch", str(tmp_path / "nope"), "--iterations", "2",
            "--interval", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("0 trace records") == 2
