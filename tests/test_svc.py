"""End-to-end tests: the HTTP sweep service (repro.svc)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.eval.shard import GridSpec
from repro.eval.store import ResultStore, case_key, evaluator_fingerprint
from repro.eval.stream import RunningStats, StreamingSweepRunner
from repro.eval.sweeps import evaluate_comm_case
from repro.obs.report import report_data
from repro.svc import register_evaluator, start_service

GRID = {
    "archs": ["siam", "kite"],
    "sizes": [16],
    "workloads": ["uniform", "neighbor"],
    "seeds": [0, 1],
    "tag": "svc-β",
}


def _arrayful_evaluator(case):
    """Registered test evaluator returning an npz array payload."""
    return {
        "value": float(case.seed),
        "profile": np.arange(3, dtype=np.float64) + case.seed,
    }


register_evaluator("test_svc_arrays", _arrayful_evaluator)


class _Client:
    def __init__(self, base: str) -> None:
        self.base = base

    def get(self, path: str):
        with urllib.request.urlopen(self.base + path, timeout=30) as r:
            return r.status, json.loads(r.read())

    def get_raw(self, path: str) -> bytes:
        with urllib.request.urlopen(self.base + path, timeout=30) as r:
            return r.read()

    def post(self, path: str, body: dict):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as r:
            return r.status, json.loads(r.read())

    def error(self, method: str, path: str, body=None):
        """Status + payload of an expected-error request."""
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def wait_done(self, status_url: str, timeout_s: float = 60.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, progress = self.get(status_url)
            if progress["state"] == "done":
                return progress
            time.sleep(0.05)
        raise AssertionError(f"job never finished: {progress}")

    def sse_frames(self, events_url: str):
        """All SSE frames until the stream closes, as (event, dict)."""
        frames = []
        with urllib.request.urlopen(self.base + events_url,
                                    timeout=60) as response:
            raw = response.read().decode("utf-8")
        for block in raw.strip().split("\n\n"):
            lines = block.splitlines()
            event = lines[0][len("event: "):]
            data = json.loads(lines[1][len("data: "):])
            frames.append((event, data))
        return frames


@pytest.fixture()
def service(tmp_path):
    svc = start_service(tmp_path / "store", workers=2, lease_ttl_s=30.0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    host, port = svc.server_address[:2]
    try:
        yield _Client(f"http://{host}:{port}"), tmp_path / "store"
    finally:
        svc.shutdown()
        svc.server_close()


def _spawn_external_worker(store, grid_json, trace_dir):
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.eval.shard", "worker",
            "--store", str(store), "--grid", grid_json,
            "--evaluator", "evaluate_comm_case",
            "--worker-id", "external-1", "--poll", "0.01",
            "--deadline", "120", "--trace", str(trace_dir),
        ],
        env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )


class TestEndToEnd:
    def test_post_drain_stream_query_replay(self, service, tmp_path):
        client, store_root = service

        # POST the grid; an external shard worker joins the same drain.
        status, job = client.post("/v1/sweeps", {
            "grid": GRID, "evaluator": "evaluate_comm_case",
        })
        assert status == 201
        assert job["total"] == 8
        worker = _spawn_external_worker(
            store_root, json.dumps(GRID), job["trace_dir"]
        )
        try:
            progress = client.wait_done(job["status_url"])
            out = worker.communicate(timeout=120)[0]
            assert worker.returncode == 0, out
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup
                worker.kill()
        assert progress["done"] == 8
        assert progress["failed"] == 0
        assert progress["worker_errors"] == []
        assert progress["eta_s"] == 0.0

        # Every case landed in the shared store, whichever participant
        # (service thread or external worker) produced it.
        cases = GridSpec.from_json(json.dumps(GRID)).cases()
        fingerprint = evaluator_fingerprint(evaluate_comm_case)
        keys = [case_key(c, fingerprint) for c in cases]
        assert not ResultStore(store_root).missing(keys)

        # SSE: stream after completion -> exactly one "done" frame that
        # equals a post-hoc report_data() over the same trace dir.
        frames = client.sse_frames(job["events_url"])
        assert [event for event, _ in frames] == ["done"]
        posthoc = report_data(job["trace_dir"])
        assert (
            json.dumps(frames[-1][1], sort_keys=True)
            == json.dumps(posthoc, sort_keys=True)
        )
        # The external worker's spans made it into the stream.
        assert "external-1" in frames[-1][1]["workers"]

        # Queried aggregates are bit-identical to a single-host
        # StreamingSweepRunner run of the same grid.
        ref_stats = RunningStats("latency_cycles")
        ref = StreamingSweepRunner(
            evaluate_comm_case, workers=1,
            store=ResultStore(tmp_path / "ref-store"),
        ).run_stream(cases, (ref_stats,))
        assert not ref.failures
        _, queried = client.get(
            "/v1/results?tag=svc-%CE%B2&metric=latency_cycles&limit=8"
        )
        agg = queried["aggregates"]["latency_cycles"]
        assert queried["total"] == 8
        assert agg["count"] == ref_stats.count
        assert agg["sum"] == ref_stats.sum
        assert agg["mean"] == ref_stats.mean
        assert agg["min"] == ref_stats.min
        assert agg["max"] == ref_stats.max

        # Repeated queries are bit-identical bytes (cold vs warm).
        path = "/v1/results?tag=svc-%CE%B2&metric=latency_cycles"
        assert client.get_raw(path) == client.get_raw(path)

        # Warm re-POST of the same grid: pure cache replay, zero
        # evaluations anywhere.
        _, rejob = client.post("/v1/sweeps", {
            "grid": GRID, "evaluator": "evaluate_comm_case",
        })
        reprogress = client.wait_done(rejob["status_url"])
        assert reprogress["done"] == 8
        assert reprogress["evaluated"] == 0
        assert reprogress["store_hits"] > 0

    def test_unicode_axes_round_trip_the_service_boundary(self, service):
        client, _ = service
        grid = dict(GRID, tag="グリッド-Ω", seeds=[5])
        _, job = client.post("/v1/sweeps", {
            "grid": grid, "evaluator": "evaluate_comm_case",
        })
        assert job["total"] == 4
        client.wait_done(job["status_url"])
        _, queried = client.get(
            "/v1/results?tag=" + urllib.parse.quote("グリッド-Ω")
        )
        assert queried["total"] == 4
        assert all(r["case"]["tag"] == "グリッド-Ω"
                   for r in queried["results"])
        assert all(r["case"]["seed"] == 5 for r in queried["results"])

    def test_failing_cases_surface_as_failed_never_cached(self, service):
        client, store_root = service
        grid = {"archs": ["siam"], "sizes": [16],
                "workloads": ["uniform", "nosuchpattern"], "seeds": [0]}
        _, job = client.post("/v1/sweeps", {
            "grid": grid, "evaluator": "evaluate_comm_case",
        })
        progress = client.wait_done(job["status_url"])
        assert progress["done"] == 1
        assert progress["failed"] == 1
        assert any("nosuchpattern" in case_id
                   for case_id in progress["failures"])
        # Never cached: a re-POST fails it again instead of replaying.
        _, rejob = client.post("/v1/sweeps", {"grid": grid})
        reprogress = client.wait_done(rejob["status_url"])
        assert reprogress["failed"] == 1
        assert reprogress["evaluated"] == 0  # retry happened, no cache

    def test_array_payloads_ride_the_store(self, service):
        client, store_root = service
        grid = {"archs": ["siam"], "sizes": [16],
                "workloads": ["uniform"], "seeds": [0, 1],
                "tag": "arrayful"}
        _, job = client.post("/v1/sweeps", {
            "grid": grid, "evaluator": "test_svc_arrays",
        })
        progress = client.wait_done(job["status_url"])
        assert progress["failed"] == 0
        _, queried = client.get("/v1/results?tag=arrayful")
        assert queried["total"] == 2
        assert all(r["has_arrays"] for r in queried["results"])
        # The npz payloads are real: load one back through the store.
        store = ResultStore(store_root)
        cases = GridSpec.from_json(json.dumps(grid)).cases()
        fingerprint = evaluator_fingerprint(_arrayful_evaluator)
        result = store.get(case_key(cases[0], fingerprint), cases[0])
        assert result is not None
        np.testing.assert_array_equal(
            result.arrays["profile"], np.arange(3, dtype=np.float64)
        )


class TestEndpoints:
    def test_healthz_and_metrics(self, service):
        client, store_root = service
        _, health = client.get("/v1/healthz")
        assert health["ok"] is True
        assert health["store"] == str(store_root)
        _, metrics = client.get("/v1/metrics")
        assert metrics["counters"]["svc_requests"] >= 1
        assert "histograms" in metrics

    def test_unknown_evaluator_is_400(self, service):
        client, _ = service
        status, payload = client.error("POST", "/v1/sweeps", {
            "grid": GRID, "evaluator": "import_me_please",
        })
        assert status == 400
        assert "registered" in payload["error"]

    def test_bad_grid_is_400(self, service):
        client, _ = service
        status, payload = client.error("POST", "/v1/sweeps", {
            "grid": {"sizes": [16]},
        })
        assert status == 400
        assert "grid" in payload["error"]

    def test_missing_grid_is_400(self, service):
        client, _ = service
        status, payload = client.error("POST", "/v1/sweeps", {})
        assert status == 400

    def test_unknown_job_is_404(self, service):
        client, _ = service
        status, payload = client.error("GET", "/v1/sweeps/job-nope")
        assert status == 404
        assert "job" in payload["error"]

    def test_unknown_route_is_404(self, service):
        client, _ = service
        status, _ = client.error("GET", "/v2/everything")
        assert status == 404

    def test_bad_query_parameter_is_400(self, service):
        client, _ = service
        status, payload = client.error("GET", "/v1/results?archs=siam")
        assert status == 400
        assert "unknown query parameters" in payload["error"]

    def test_results_pagination_over_http(self, service):
        client, _ = service
        _, job = client.post("/v1/sweeps", {"grid": GRID})
        client.wait_done(job["status_url"])
        first = client.get("/v1/results?limit=3&offset=0")[1]
        rest = client.get("/v1/results?limit=100&offset=3")[1]
        assert first["total"] == rest["total"] == 8
        keys = [r["key"] for r in first["results"] + rest["results"]]
        assert len(keys) == 8 and len(set(keys)) == 8


class TestCLI:
    def test_serve_command_binds_and_answers(self, tmp_path):
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.svc", "serve",
                "--store", str(tmp_path / "store"), "--port", "0",
            ],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "http://" in line, line
            port = int(line.rsplit(":", 1)[1])
            client = _Client(f"http://127.0.0.1:{port}")
            _, health = client.get("/v1/healthz")
            assert health["ok"] is True
        finally:
            proc.terminate()
            proc.wait(timeout=10)
