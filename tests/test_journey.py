"""Packet-journey latency attribution: exact splits, engine identity.

Tentpole coverage: the per-packet decomposition (injection wait, queue
wait, credit stall, serialization, pipeline) sums *exactly* to
``PacketSim.latency``; the aggregated :class:`LatencyBreakdown` is
bit-identical across every engine tier (events / epochs / epochs-par /
epochs-jit, plus the contention-free fast path) on mesh, Kite, SWAP and
Floret in open and closed loop; a hand-computed 3-hop contended example
pins the exact cycle splits; the ``sim_attribution`` knob ships the
arrays through sweep results and their npz store payloads; and
:func:`attribute_task` returns the same :class:`TaskPerf` as
:func:`evaluate_task` with a per-layer critical-path table that sums
back to the folded totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    ResultStore,
    SweepRunner,
    evaluate_load_sweep_case,
    sweep_grid,
)
from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.net.flowcontrol import FlowControlParams
from repro.net.journey import (
    COMPONENTS,
    latency_breakdown,
    packet_journeys,
)
from repro.net.perf import attribute_task, evaluate_task
from repro.net.simulator import Message, message_array, simulate_packets
from repro.core.mapping import ContiguousMapper
from repro.noi.mesh import build_mesh
from repro.pim.allocation import plan_allocation
from repro.pim.chiplet import ChipletSpec

from helpers import make_toy_model
from test_perf import assert_taskperf_equal

ENGINES = ("events", "epochs", "epochs-par", "epochs-jit")
TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")

#: ``None`` = open loop; otherwise a closed-loop config whose finite
#: buffers and source queues produce non-zero credit stalls and
#: injection waits.
FC_CONFIGS = (None, FlowControlParams(buffer_flits=8, source_queue=2,
                                      credit_rtt=3))


def _topology(request, fixture):
    topo = request.getfixturevalue(fixture)
    return topo.topology if fixture == "small_floret" else topo


def _split_sum(bd) -> np.ndarray:
    return sum(bd.component(name) for name in COMPONENTS)


class TestHandComputed:
    """Three same-route packets on a 4x4 mesh: exact cycle accounting.

    Packets 0..2 all travel 0 -> 3 (three hops along the mesh row),
    injected at cycle 0.  FIFO order follows packet index, so packet 0
    never waits; with uniform packet length ``F`` the pipeline is
    perfect after the first hop -- each follower's grant request
    reaches every downstream link exactly when its predecessor frees
    it -- so packet 1 queues ``F`` cycles and packet 2 queues ``2F``
    cycles, all of it on the first link.
    """

    #: One default-size packet per message (``packet_bytes=64`` /
    #: ``flit_bytes=32``).
    FLITS = 2

    @pytest.fixture(scope="class")
    def mesh16(self):
        return build_mesh(16)

    def _simulate(self, topo, engine):
        params = topo.params
        messages = [
            Message(src=0, dst=3,
                    payload_bytes=self.FLITS * params.flit_bytes,
                    inject_cycle=0, message_id=i)
            for i in range(3)
        ]
        return simulate_packets(topo, message_array(messages),
                                engine=engine, attribution=True)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_splits(self, mesh16, engine):
        topo = mesh16
        tables = topo.routing_tables()
        assert int(tables.hops[0, 3]) == 3
        route = tables.route_link_ids(0, 3)
        hop_delta = tables.queue_index().hop_delta
        src_stage = int(tables.stage_cycles[0])
        F = self.FLITS

        sim = self._simulate(topo, engine)
        bd = latency_breakdown(sim, topo)

        pipeline = src_stage + int(hop_delta[route].sum())
        assert bd.injection_wait.tolist() == [0, 0, 0]
        assert bd.credit_stall.tolist() == [0, 0, 0]
        assert bd.queue_wait.tolist() == [0, F, 2 * F]
        assert bd.serialization.tolist() == [3 * F] * 3
        assert bd.pipeline.tolist() == [pipeline] * 3
        assert bd.latency.tolist() == [
            pipeline + 3 * F + w for w in (0, F, 2 * F)
        ]
        assert np.array_equal(_split_sum(bd), sim.latency)

        # All queueing lands on the first link of the shared route.
        expected_queue = np.zeros(bd.num_directed_links, dtype=np.int64)
        expected_queue[route[0]] = 3 * F
        assert np.array_equal(bd.link_queue_wait, expected_queue)
        assert bd.link_grants[route].tolist() == [3, 3, 3]
        assert bd.link_serialization[route].tolist() == [3 * F] * 3
        assert int(bd.link_credit_stall.sum()) == 0

    def test_hotspot_ranking(self, mesh16):
        topo = mesh16
        route = topo.routing_tables().route_link_ids(0, 3)
        bd = latency_breakdown(self._simulate(topo, "events"), topo)
        hot = bd.hotspot_links(top=2)
        assert hot[0]["link"] == int(route[0])
        assert hot[0]["queue_wait"] == 3 * self.FLITS
        # Remaining route links tie at zero stall; id breaks the tie.
        assert hot[1]["link"] == min(int(e) for e in route[1:])

    def test_journeys(self, mesh16):
        topo = mesh16
        tables = topo.routing_tables()
        route = tables.route_link_ids(0, 3)
        hop_delta = tables.queue_index().hop_delta
        F = self.FLITS

        journeys = packet_journeys(self._simulate(topo, "events"), topo)
        assert len(journeys) == 3
        for pkt, journey in enumerate(journeys):
            assert journey.hops == 3
            assert journey.links.tolist() == route.tolist()
            assert journey.queue_wait.tolist() == [pkt * F, 0, 0]
            assert journey.credit_wait.tolist() == [0, 0, 0]
            assert journey.serialization.tolist() == [F] * 3
            assert journey.forward.tolist() == hop_delta[route].tolist()
            assert journey.injection_wait == 0
            # The hop narrative telescopes to the packet's latency.
            assert journey.latency == (
                int(tables.stage_cycles[0]) + journey.injection_wait
                + int(journey.queue_wait.sum())
                + int(journey.credit_wait.sum())
                + int(journey.serialization.sum())
                + int(journey.forward.sum())
            )

    def test_format_smoke(self, mesh16):
        bd = latency_breakdown(self._simulate(mesh16, "events"), mesh16)
        text = bd.format(top=3)
        assert "latency attribution" in text
        assert "hotspot links" in text
        pct = bd.percentiles()
        assert set(pct) == set(COMPONENTS) | {"latency"}
        assert pct["queue_wait"][0] == self.FLITS  # p50 of [0, F, 2F]


class TestEngineIdentity:
    """Every tier reduces to the same breakdown, open and closed loop."""

    @pytest.mark.parametrize("fc", FC_CONFIGS,
                             ids=("open-loop", "closed-loop"))
    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_identical_across_tiers(self, request, fixture, fc):
        topo = _topology(request, fixture)
        spec = parse_load_workload("uniform@0.06")
        table = load_sweep_traffic(spec, topo.num_chiplets, seed=0)

        reference = None
        for engine in ENGINES:
            sim = simulate_packets(topo, table, engine=engine,
                                   flow_control=fc, attribution=True)
            bd = latency_breakdown(sim, topo)
            assert np.array_equal(_split_sum(bd), sim.latency), engine
            arrays = bd.arrays()
            if reference is None:
                reference = arrays
                continue
            assert sorted(arrays) == sorted(reference)
            for key, value in reference.items():
                assert value.dtype == arrays[key].dtype, (engine, key)
                assert np.array_equal(arrays[key], value), (engine, key)

    def test_closed_loop_attributes_backpressure(self, small_mesh):
        """The closed-loop run actually exercises the new components."""
        spec = parse_load_workload("uniform@0.08")
        table = load_sweep_traffic(spec, 36, seed=0)
        fc = FlowControlParams(buffer_flits=8, source_queue=1,
                               credit_rtt=3)
        sim = simulate_packets(small_mesh, table, engine="events",
                               flow_control=fc, attribution=True)
        bd = latency_breakdown(sim, small_mesh)
        assert int(bd.credit_stall.sum()) > 0
        assert int(bd.injection_wait.sum()) > 0
        assert np.array_equal(_split_sum(bd), sim.latency)

    def test_fast_path_single_packet(self, small_mesh):
        """An uncontended packet resolves closed-form, trace included."""
        table = message_array([Message(src=0, dst=7, payload_bytes=64)])
        sim = simulate_packets(small_mesh, table, attribution=True)
        assert sim.trace is not None
        bd = latency_breakdown(sim, small_mesh)
        assert int(bd.queue_wait.sum()) == 0
        assert np.array_equal(_split_sum(bd), sim.latency)


class TestKnobAndErrors:
    def test_requires_attribution(self, small_mesh):
        table = message_array([Message(src=0, dst=7, payload_bytes=256)])
        sim = simulate_packets(small_mesh, table)
        assert sim.trace is None
        with pytest.raises(ValueError, match="attribution"):
            latency_breakdown(sim, small_mesh)
        with pytest.raises(ValueError, match="attribution"):
            packet_journeys(sim, small_mesh)

    def test_telemetry_alone_keeps_trace_private(self, small_mesh):
        """``telemetry=True`` uses the trace internally but ships none."""
        spec = parse_load_workload("uniform@0.04")
        table = load_sweep_traffic(spec, 36, seed=0)
        sim = simulate_packets(small_mesh, table, telemetry=True)
        assert sim.telemetry is not None
        assert sim.trace is None

    def test_sweep_ships_arrays_through_store(self, tmp_path):
        cases = sweep_grid(
            archs=("siam",), sizes=(36,), workloads=("uniform@0.06",),
            seeds=(0,), overrides=((("sim_attribution", 1.0),),),
            tag="attr",
        )
        store = ResultStore(tmp_path / "store")
        outcome = SweepRunner(evaluate_load_sweep_case, workers=0,
                              store=store).run(cases)
        assert not outcome.failures
        result = outcome.ok[0]
        assert result.metrics["attr_latency_cycles"] > 0
        components = result.arrays["attr_components"]
        assert components.shape[0] == len(COMPONENTS)
        assert np.array_equal(components.sum(axis=0),
                              result.arrays["attr_latency"])

        # Cached round-trip: the npz payload restores every array.
        cached = SweepRunner(evaluate_load_sweep_case, workers=0,
                             store=ResultStore(tmp_path / "store")
                             ).run(cases).ok[0]
        assert sorted(cached.arrays) == sorted(result.arrays)
        for key, value in result.arrays.items():
            assert np.array_equal(cached.arrays[key], value), key

    def test_plain_sweep_stays_scalar(self, tmp_path):
        """Without the knob no arrays are shipped and no attr metrics."""
        cases = sweep_grid(archs=("siam",), sizes=(36,),
                           workloads=("uniform@0.06",), seeds=(0,))
        outcome = SweepRunner(evaluate_load_sweep_case, workers=0).run(
            cases
        )
        result = outcome.ok[0]
        assert not result.arrays
        assert not any(k.startswith("attr_") for k in result.metrics)


class TestAttributeTask:
    @pytest.fixture(scope="class")
    def setup(self, request):
        floret = request.getfixturevalue("small_floret")
        model = make_toy_model()
        spec = ChipletSpec.from_params()
        plan = plan_allocation(model, spec)
        mapper = ContiguousMapper(floret.allocation_order,
                                  floret.topology)
        placement = mapper.map_task("t", model, plan,
                                    frozenset(range(36)))
        return floret.topology, model, plan, placement, spec

    def test_same_taskperf(self, setup):
        topo, model, plan, placement, spec = setup
        perf = evaluate_task(topo, model, plan, placement.chiplet_ids,
                             task_id="t", spec=spec)
        attr_perf, attribution = attribute_task(
            topo, model, plan, placement.chiplet_ids, task_id="t",
            spec=spec,
        )
        assert_taskperf_equal(attr_perf, perf)
        assert attribution.task_id == "t"
        assert len(attribution) == len(attribution.layer_names)
        assert attribution.comm_cycles.shape == (len(attribution),)

    def test_critical_path_folds_back(self, setup):
        topo, model, plan, placement, spec = setup
        perf, attribution = attribute_task(
            topo, model, plan, placement.chiplet_ids, spec=spec
        )
        assert int(attribution.comm_cycles.sum()) == \
            perf.noi_latency_cycles
        assert int(attribution.compute_cycles.sum()) == \
            perf.compute_latency_cycles
        assert int(attribution.critical_cycles.sum()) == \
            perf.latency_cycles
        assert np.array_equal(
            attribution.critical_cycles - attribution.slack_cycles,
            np.minimum(attribution.comm_cycles,
                       attribution.compute_cycles),
        )

    def test_rows_and_format(self, setup):
        topo, model, plan, placement, spec = setup
        _, attribution = attribute_task(
            topo, model, plan, placement.chiplet_ids, spec=spec
        )
        rows = attribution.rows()
        assert len(rows) == len(attribution) + 1
        assert rows[-1][0] == "TOTAL"
        assert rows[-1][1] == int(attribution.comm_cycles.sum())
        text = attribution.format()
        assert "task attribution" in text
        for name in attribution.layer_names:
            assert name in text
