"""Unit tests: 3D PE grids and the 3D SFC NoC."""

from __future__ import annotations

import pytest

from repro.noc3d.grid3d import (
    VERTICAL_LINK_MM,
    Grid3D,
    build_floret_3d,
    build_mesh_3d,
    grid_for_pes,
)


class TestGrid3D:
    def test_index_roundtrip(self):
        grid = Grid3D(cols=5, rows=5, tiers=4)
        for i in range(grid.num_pes):
            assert grid.index(*grid.coords(i)) == i

    def test_num_pes(self):
        assert Grid3D(5, 5, 4).num_pes == 100

    def test_out_of_range_index(self):
        grid = Grid3D(2, 2, 2)
        with pytest.raises(IndexError):
            grid.coords(8)
        with pytest.raises(IndexError):
            grid.index(2, 0, 0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Grid3D(0, 2, 2)

    def test_bottom_tier_indices(self):
        grid = Grid3D(3, 3, 2)
        assert grid.bottom_tier_indices() == list(range(9))

    def test_grid_for_pes(self):
        grid = grid_for_pes(100, tiers=4)
        assert (grid.cols, grid.rows, grid.tiers) == (5, 5, 4)

    def test_grid_for_pes_indivisible(self):
        with pytest.raises(ValueError, match="divisible"):
            grid_for_pes(101, tiers=4)


class TestFloret3D:
    def test_connected_chain(self):
        design = build_floret_3d(100, 4)
        assert design.topology.is_connected()
        # Pure SFC chain: exactly n-1 links.
        assert design.topology.num_links == 99

    def test_allocation_order_is_permutation(self):
        design = build_floret_3d(64, 4)
        assert sorted(design.allocation_order) == list(range(64))

    def test_order_walks_tiers_bottom_up(self):
        design = build_floret_3d(100, 4)
        zs = [design.grid.coords(i)[2] for i in design.allocation_order]
        # Tier indices are non-decreasing along the SFC.
        assert zs == sorted(zs)

    def test_start_at_top_reverses(self):
        design = build_floret_3d(100, 4, start_at_bottom=False)
        zs = [design.grid.coords(i)[2] for i in design.allocation_order]
        assert zs == sorted(zs, reverse=True)

    def test_vertical_links_are_mivs(self):
        design = build_floret_3d(100, 4)
        vertical = [l for l in design.topology.links if l.vertical]
        assert len(vertical) == 3  # one MIV per tier crossing
        for link in vertical:
            assert link.length_mm == pytest.approx(VERTICAL_LINK_MM)

    def test_vertical_links_connect_stacked_pes(self):
        design = build_floret_3d(100, 4)
        for link in design.topology.links:
            if link.vertical:
                a = design.grid.coords(link.u)
                b = design.grid.coords(link.v)
                assert a[:2] == b[:2]
                assert abs(a[2] - b[2]) == 1

    def test_multicast_capable(self):
        assert build_floret_3d(36, 4).topology.multicast_capable


class TestMesh3D:
    def test_connected(self):
        topo, grid = build_mesh_3d(100, 4)
        assert topo.is_connected()
        assert grid.num_pes == 100

    def test_link_count(self):
        topo, grid = build_mesh_3d(100, 4)
        # Per tier 2*5*4 = 40 planar links x 4 tiers + 75 vertical.
        assert topo.num_links == 160 + 75

    def test_max_degree(self):
        topo, _grid = build_mesh_3d(100, 4)
        assert max(topo.port_histogram()) <= 6
