"""Unit tests: streaming sweep execution, aggregators, checkpoint/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.store import ResultStore
from repro.eval.stream import (
    RunningGroups,
    RunningPivot,
    RunningStats,
    StreamingSweepRunner,
)
from repro.eval.sweeps import (
    SweepCase,
    SweepRunner,
    evaluate_comm_case,
    sweep_grid,
)


def _boom_evaluate(case: SweepCase):
    if case.arch == "boom":
        raise RuntimeError("synthetic failure")
    return {"value": float(case.num_chiplets), "twice": 2.0 * case.num_chiplets}


GRID = sweep_grid(
    archs=("siam", "kite"), sizes=(16,),
    workloads=("uniform", "neighbor", "transpose"), seeds=(0, 1),
)


class TestStreamOrderAndEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_submission_order_preserved(self, workers):
        runner = StreamingSweepRunner(evaluate_comm_case, workers=workers,
                                      chunksize=2)
        streamed = list(runner.stream(GRID))
        assert [r.case for r in streamed] == list(GRID)
        assert all(r.ok for r in streamed)

    def test_stream_matches_gather_at_end(self):
        streamed = list(
            StreamingSweepRunner(evaluate_comm_case, workers=2,
                                 chunksize=2).stream(GRID)
        )
        gathered = SweepRunner(evaluate_comm_case, workers=1).run(GRID)
        for s, g in zip(streamed, gathered.results):
            assert s.case == g.case
            assert s.metrics == g.metrics

    def test_small_window_still_correct(self):
        runner = StreamingSweepRunner(evaluate_comm_case, workers=2,
                                      chunksize=1, window=1)
        assert [r.case for r in runner.stream(GRID)] == list(GRID)


class TestAggregators:
    def test_running_pivot_matches_outcome_pivot(self):
        outcome = SweepRunner(evaluate_comm_case, workers=1).run(GRID)
        pivot = RunningPivot("energy_pj")
        out = StreamingSweepRunner(evaluate_comm_case, workers=1).run_stream(
            GRID, [pivot]
        )
        assert out.total == len(GRID) and not out.failures
        reference = outcome.pivot("energy_pj")
        table = pivot.table()
        assert set(table) == set(reference)
        for row in reference:
            assert set(table[row]) == set(reference[row])
            for col in reference[row]:
                assert table[row][col] == pytest.approx(
                    reference[row][col], rel=1e-12
                )

    def test_running_stats_matches_metric_array(self):
        outcome = SweepRunner(evaluate_comm_case, workers=1).run(GRID)
        stats = RunningStats("latency_cycles")
        StreamingSweepRunner(evaluate_comm_case, workers=1).run_stream(
            GRID, [stats]
        )
        values = outcome.metric("latency_cycles")
        assert stats.count == len(values)
        assert stats.sum == pytest.approx(values.sum(), rel=1e-12)
        assert stats.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stats.min == values.min()
        assert stats.max == values.max()

    def test_running_groups_counts_and_stats(self):
        groups = RunningGroups(lambda c: c.workload, metrics=("value",))
        cases = [SweepCase(arch="siam", num_chiplets=n, workload=w)
                 for w in ("a", "b") for n in (16, 36)]
        StreamingSweepRunner(_boom_evaluate, workers=1).run_stream(
            cases, [groups]
        )
        assert groups.counts == {"a": 2, "b": 2}
        assert groups.stats["a"]["value"].mean == pytest.approx(26.0)

    def test_failures_excluded_from_aggregation(self):
        cases = [SweepCase(arch="siam", num_chiplets=16),
                 SweepCase(arch="boom", num_chiplets=16)]
        stats = RunningStats("value")
        out = StreamingSweepRunner(_boom_evaluate, workers=1).run_stream(
            cases, [stats]
        )
        assert out.ok_count == 1
        assert len(out.failures) == 1
        assert "synthetic failure" in out.failures[0].error
        assert stats.count == 1

    def test_absent_metric_raises_like_gather_path(self):
        # SweepOutcome.metric()/pivot() raise KeyError on a typo'd
        # metric name; the streaming aggregators must match, not
        # silently produce empty aggregates.
        cases = [SweepCase(arch="siam", num_chiplets=16)]
        with pytest.raises(KeyError):
            StreamingSweepRunner(_boom_evaluate, workers=1).run_stream(
                cases, [RunningStats("no_such_metric")]
            )
        with pytest.raises(KeyError, match="no_such_metric"):
            StreamingSweepRunner(_boom_evaluate, workers=1).run_stream(
                cases, [RunningPivot("no_such_metric")]
            )

    def test_kahan_sum_is_exact_for_adversarial_stream(self):
        stats = RunningStats("m")
        case = SweepCase(arch="siam")
        values = [1e16, 1.0, -1e16, 1.0] * 50
        for v in values:
            stats.update(
                type(
                    "R", (), {"ok": True, "metrics": {"m": v}, "case": case}
                )()
            )
        assert stats.sum == 100.0  # naive summation would return 0.0


class TestStoreBackedStreaming:
    def test_cold_then_warm_zero_evaluations(self, tmp_path):
        cold_store = ResultStore(tmp_path)
        runner = StreamingSweepRunner(evaluate_comm_case, workers=2,
                                      chunksize=2, store=cold_store)
        cold_pivot = RunningPivot("energy_pj")
        cold = runner.run_stream(GRID, [cold_pivot])
        assert cold.store_hits == 0
        assert cold.evaluated == len(GRID)

        warm_store = ResultStore(tmp_path)
        warm_runner = StreamingSweepRunner(evaluate_comm_case, workers=2,
                                           chunksize=2, store=warm_store)
        warm_pivot = RunningPivot("energy_pj")
        warm = warm_runner.run_stream(GRID, [warm_pivot])
        assert warm.store_hits == len(GRID)
        assert warm.evaluated == 0
        assert warm_store.stats.hits == len(GRID)
        # Deterministic emission order + exact JSON float round-trip:
        # the warm aggregates are bit-identical, not just approximate.
        assert warm_pivot.table() == cold_pivot.table()

    def test_interrupted_stream_resumes_from_checkpoint(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = StreamingSweepRunner(evaluate_comm_case, workers=1,
                                      store=store)
        consumed = 0
        for _result in runner.stream(GRID):
            consumed += 1
            if consumed == 5:
                break  # simulate an interrupt mid-sweep
        assert len(ResultStore(tmp_path)) == 5

        resume_store = ResultStore(tmp_path)
        resumed = StreamingSweepRunner(
            evaluate_comm_case, workers=1, store=resume_store
        ).run_stream(GRID)
        assert resumed.store_hits == 5
        assert resumed.evaluated == len(GRID) - 5
        assert len(resume_store) == len(GRID)
        # Consultation counters mirror the gather runner's semantics:
        # every planned case is either a hit (get at emission) or a
        # counted miss (probe at planning).
        assert resume_store.stats.hits == 5
        assert resume_store.stats.misses == len(GRID) - 5
        assert resume_store.stats.hit_rate == pytest.approx(
            5 / len(GRID)
        )

    def test_gather_runner_shares_the_same_store(self, tmp_path):
        # A sweep checkpointed by the streaming runner warms the plain
        # SweepRunner too (same keys, same store).
        StreamingSweepRunner(
            evaluate_comm_case, workers=1, store=ResultStore(tmp_path)
        ).run_stream(GRID)
        outcome = SweepRunner(
            evaluate_comm_case, workers=1, store=ResultStore(tmp_path)
        ).run(GRID)
        assert outcome.store_hits == len(GRID)
        assert outcome.evaluated == 0
        reference = SweepRunner(evaluate_comm_case, workers=1).run(GRID)
        for warm, ref in zip(outcome.results, reference.results):
            assert warm.metrics == ref.metrics

    def test_errors_not_checkpointed(self, tmp_path):
        cases = [SweepCase(arch="siam", num_chiplets=16),
                 SweepCase(arch="boom", num_chiplets=16)]
        StreamingSweepRunner(
            _boom_evaluate, workers=1, store=ResultStore(tmp_path)
        ).run_stream(cases)
        assert len(ResultStore(tmp_path)) == 1  # only the success

    def test_vanished_payload_falls_back_to_inline(self, tmp_path):
        def _with_arrays(case):
            return {"peak": float(case.num_chiplets),
                    "field": np.ones((2, 2))}

        cases = [SweepCase(arch="siam", num_chiplets=n) for n in (16, 36)]
        StreamingSweepRunner(
            _with_arrays, workers=1, store=ResultStore(tmp_path)
        ).run_stream(cases)
        # Delete one npz payload after the membership scan would have
        # planned around it: the stream must re-evaluate, not drop.
        npz_files = sorted((tmp_path / "arrays").glob("*.npz"))
        npz_files[0].unlink()
        warm_store = ResultStore(tmp_path)
        runner = StreamingSweepRunner(_with_arrays, workers=1,
                                      store=warm_store)
        results = list(runner.stream(cases))
        assert [r.metrics["peak"] for r in results] == [16.0, 36.0]
        assert all(r.arrays is not None for r in results)
        assert runner.last_store_hits == 1  # the survivor
        # The store healed itself: next run is fully warm again.
        healed = StreamingSweepRunner(
            _with_arrays, workers=1, store=ResultStore(tmp_path)
        ).run_stream(cases)
        assert healed.store_hits == 2

    def test_arrays_stream_through_the_store(self, tmp_path):
        def _with_arrays(case):
            return {"peak": 1.0,
                    "field": np.full((2, 2), float(case.num_chiplets))}

        # Module-level pickling is irrelevant inline (workers=1).
        cases = [SweepCase(arch="siam", num_chiplets=n) for n in (16, 36)]
        StreamingSweepRunner(
            _with_arrays, workers=1, store=ResultStore(tmp_path)
        ).run_stream(cases)
        warm = list(
            StreamingSweepRunner(
                _with_arrays, workers=1, store=ResultStore(tmp_path)
            ).stream(cases)
        )
        assert np.array_equal(warm[1].arrays["field"], np.full((2, 2), 36.0))


class TestDegradation:
    def test_pool_failure_degrades_inline_with_warning(self, monkeypatch):
        import repro.eval.stream as stream_mod
        from concurrent.futures.process import BrokenProcessPool

        class ExplodingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("synthetic pool loss")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(stream_mod, "ProcessPoolExecutor",
                            ExplodingPool)
        runner = StreamingSweepRunner(evaluate_comm_case, workers=2)
        with pytest.warns(RuntimeWarning, match="streaming sweep pool"):
            results = list(runner.stream(GRID))
        assert [r.case for r in results] == list(GRID)
        assert all(r.ok for r in results)
        assert runner.last_workers == 1

    def test_unpicklable_evaluate_degrades_for_real(self):
        # A genuine local lambda cannot ship to workers; CPython reports
        # that as AttributeError from the queue feeder, which must still
        # trigger the inline fallback (see sweeps.is_pool_failure).
        runner = StreamingSweepRunner(
            lambda case: {"value": float(case.num_chiplets)}, workers=2
        )
        cases = [SweepCase(arch="siam", num_chiplets=16, workload=w)
                 for w in ("uniform", "neighbor", "transpose")]
        with pytest.warns(RuntimeWarning, match="streaming sweep pool"):
            results = list(runner.stream(cases))
        assert [r.metrics["value"] for r in results] == [16.0] * 3
        assert runner.last_workers == 1
