"""Integration tests: whole-system flows on small configurations."""

from __future__ import annotations

import pytest

from repro.core.floret import build_floret
from repro.core.mapping import ContiguousMapper, GreedyMapper
from repro.core.moo import MappingProblem, optimize_mapping
from repro.core.scheduler import SystemScheduler
from repro.noc3d.grid3d import build_floret_3d
from repro.noi.mesh import build_mesh
from repro.pim.accuracy import assess
from repro.thermal.power import weight_fractions_per_pe
from repro.workloads.tasks import DNNTask
from repro.workloads.zoo import build_model


def cifar_tasks():
    """A small heterogeneous queue (fits a 36-chiplet system)."""
    names = ["resnet18", "vgg11", "googlenet", "resnet18", "vgg19"]
    return [
        DNNTask(f"q{i}-{n}", n, build_model(n, "cifar10"))
        for i, n in enumerate(names)
    ]


class TestEndToEnd25D:
    def test_floret_vs_mesh_full_flow(self):
        tasks = cifar_tasks()
        design = build_floret(36, 4)
        floret = SystemScheduler(
            design.topology,
            ContiguousMapper(design.allocation_order, design.topology),
        ).run(tasks)
        mesh = build_mesh(36)
        siam = SystemScheduler(mesh, GreedyMapper(mesh)).run(tasks)

        assert len(floret.completed) == len(siam.completed) == 5
        # Compute is identical on both systems; only the NoI differs.
        floret_compute = sorted(
            t.perf.compute_latency_cycles for t in floret.completed
        )
        siam_compute = sorted(
            t.perf.compute_latency_cycles for t in siam.completed
        )
        assert floret_compute == siam_compute
        # The dataflow-aware NoI is at least as energy-efficient.
        assert floret.total_noi_energy_pj <= siam.total_noi_energy_pj

    def test_tasks_never_overlap_chiplets(self):
        tasks = cifar_tasks() * 2
        design = build_floret(36, 4)
        result = SystemScheduler(
            design.topology,
            ContiguousMapper(design.allocation_order, design.topology),
        ).run(tasks)
        # Reconstruct occupancy over time: at any completed task's start,
        # its chiplets must not be held by any other task active then.
        for a in result.completed:
            for b in result.completed:
                if a is b:
                    continue
                overlap_time = (
                    a.start_cycle < b.finish_cycle
                    and b.start_cycle < a.finish_cycle
                )
                if overlap_time:
                    assert not (
                        set(a.placement.chiplet_ids)
                        & set(b.placement.chiplet_ids)
                    )


class TestEndToEnd3D:
    def test_moo_to_accuracy_pipeline(self):
        design = build_floret_3d(36, 4)
        problem = MappingProblem(design, build_model("resnet18", "cifar10"))
        result = optimize_mapping(problem, population_size=10,
                                  generations=4, seed=3)
        n = design.topology.num_chiplets
        for cand in (result.performance_only, result.joint):
            thermal = problem.thermal_report(cand.chiplet_ids)
            fractions = weight_fractions_per_pe(
                n, problem.plan, cand.chiplet_ids
            )
            report = assess("resnet18", thermal.temperatures_k, fractions)
            assert 0 <= report.drop_pct < report.baseline_pct
        assert result.joint.peak_k <= result.performance_only.peak_k + 1e-9


class TestParamsPropagation:
    def test_custom_pitch_changes_areas(self):
        from repro.params import NoIParams

        wide = build_floret(36, 4, params=NoIParams(chiplet_pitch_mm=6.0))
        narrow = build_floret(36, 4, params=NoIParams(chiplet_pitch_mm=3.0))
        assert (
            wide.topology.total_link_length_mm()
            > narrow.topology.total_link_length_mm()
        )

    def test_system_params_with_helpers(self):
        from repro.params import DEFAULT_PARAMS

        custom = DEFAULT_PARAMS.with_noi(flit_bytes=64).with_pim(
            weight_bits=4
        )
        assert custom.noi.flit_bytes == 64
        assert custom.pim.weight_bits == 4
        # Originals untouched (frozen dataclasses).
        assert DEFAULT_PARAMS.noi.flit_bytes == 32
