"""Unit tests: NSGA-II machinery and the mapping MOO."""

from __future__ import annotations

import random

import pytest

from repro.core.moo import (
    MappingCandidate,
    MappingProblem,
    _crowding_distance,
    _knee_point,
    _mutate,
    _non_dominated_sort,
    _order_crossover,
    crowding_distance_objectives,
    dominates_objectives,
    non_dominated_sort_objectives,
    optimize_mapping,
    pareto_front_indices,
)
from repro.net.perf import TaskPerf
from repro.noc3d.grid3d import build_floret_3d
from repro.workloads.zoo import build_model


def cand(edp: float, peak: float) -> MappingCandidate:
    perf = TaskPerf("t", "m", 1, 1, 1, 1.0, 1.0, 1.0, 1)
    return MappingCandidate((0,), edp=edp, peak_k=peak, perf=perf)


class TestDominance:
    def test_strict_dominance(self):
        assert cand(1, 1).dominates(cand(2, 2))

    def test_partial_no_dominance(self):
        assert not cand(1, 3).dominates(cand(2, 2))
        assert not cand(2, 2).dominates(cand(1, 3))

    def test_equal_no_dominance(self):
        assert not cand(1, 1).dominates(cand(1, 1))


def _random_candidates(seed: int, n: int = 40) -> list:
    """Random (edp, peak) populations, duplicates included on purpose."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        edp = rng.choice([1.0, 2.0, 3.0, rng.uniform(0.5, 5.0)])
        peak = rng.choice([300.0, 310.0, rng.uniform(295.0, 340.0)])
        out.append(cand(edp, peak))
    return out


class TestDominanceProperties:
    """Property-style checks of the Pareto relation and front extraction."""

    @pytest.mark.parametrize("seed", range(5))
    def test_irreflexive(self, seed):
        for c in _random_candidates(seed):
            assert not c.dominates(c)

    @pytest.mark.parametrize("seed", range(5))
    def test_antisymmetric(self, seed):
        population = _random_candidates(seed)
        for a in population:
            for b in population:
                assert not (a.dominates(b) and b.dominates(a))

    @pytest.mark.parametrize("seed", range(5))
    def test_transitive(self, seed):
        population = _random_candidates(seed, n=20)
        for a in population:
            for b in population:
                if not a.dominates(b):
                    continue
                for c in population:
                    if b.dominates(c):
                        assert a.dominates(c)

    @pytest.mark.parametrize("seed", range(5))
    def test_first_front_is_mutually_nondominated(self, seed):
        population = _random_candidates(seed)
        front = _non_dominated_sort(population)[0]
        for i in front:
            for j in front:
                assert not population[i].dominates(population[j])

    @pytest.mark.parametrize("seed", range(5))
    def test_every_dominated_point_is_outside_the_first_front(self, seed):
        population = _random_candidates(seed)
        fronts = _non_dominated_sort(population)
        first = set(fronts[0])
        for i, c in enumerate(population):
            dominated = any(d.dominates(c) for d in population)
            assert (i in first) == (not dominated)

    @pytest.mark.parametrize("seed", range(5))
    def test_later_fronts_dominated_by_previous(self, seed):
        population = _random_candidates(seed)
        fronts = _non_dominated_sort(population)
        assert sorted(i for f in fronts for i in f) == list(
            range(len(population))
        )
        for prev, front in zip(fronts, fronts[1:]):
            for j in front:
                assert any(
                    population[i].dominates(population[j]) for i in prev
                )


class TestGenericObjectiveMachinery:
    """The N-objective core reused by repro.eval.dse."""

    def test_dominates_three_objectives(self):
        assert dominates_objectives((1, 1, 1), (1, 1, 2))
        assert not dominates_objectives((1, 1, 1), (1, 1, 1))
        assert not dominates_objectives((0, 2, 1), (1, 1, 1))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates_objectives((1, 2), (1, 2, 3))

    def test_front_indices_match_naive_filter(self):
        rng = random.Random(3)
        points = [
            (rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1))
            for _ in range(60)
        ]
        naive = {
            i for i, p in enumerate(points)
            if not any(dominates_objectives(q, p) for q in points)
        }
        assert set(pareto_front_indices(points)) == naive

    def test_front_indices_empty_input(self):
        assert pareto_front_indices([]) == []

    def test_sort_consistent_with_candidate_wrapper(self):
        population = _random_candidates(7)
        generic = non_dominated_sort_objectives(
            [(c.edp, c.peak_k) for c in population]
        )
        assert generic == _non_dominated_sort(population)

    def test_crowding_consistent_with_candidate_wrapper(self):
        population = _random_candidates(9)
        front = _non_dominated_sort(population)[0]
        generic = crowding_distance_objectives(
            [(c.edp, c.peak_k) for c in population], front
        )
        assert generic == _crowding_distance(population, front)

    def test_crowding_three_objectives_extremes_infinite(self):
        points = [(1.0, 3.0, 2.0), (2.0, 2.0, 9.0), (3.0, 1.0, 4.0)]
        dist = crowding_distance_objectives(points, [0, 1, 2])
        assert dist[0] == float("inf")
        assert dist[2] == float("inf")


class TestSorting:
    def test_two_fronts(self):
        pop = [cand(1, 1), cand(2, 2), cand(0.5, 3)]
        fronts = _non_dominated_sort(pop)
        assert set(fronts[0]) == {0, 2}
        assert fronts[1] == [1]

    def test_all_nondominated(self):
        pop = [cand(1, 3), cand(2, 2), cand(3, 1)]
        fronts = _non_dominated_sort(pop)
        assert len(fronts) == 1

    def test_crowding_extremes_infinite(self):
        pop = [cand(1, 3), cand(2, 2), cand(3, 1)]
        dist = _crowding_distance(pop, [0, 1, 2])
        assert dist[0] == float("inf")
        assert dist[2] == float("inf")
        assert 0 < dist[1] < float("inf")


class TestOperators:
    def test_crossover_preserves_genes(self):
        rng = random.Random(0)
        pa = tuple(range(10))
        pb = tuple(reversed(range(10)))
        for _ in range(20):
            child = _order_crossover(rng, pa, pb)
            assert sorted(child) == list(range(10))

    def test_mutation_keeps_distinct(self):
        rng = random.Random(1)
        genome = list(range(8))
        for _ in range(50):
            _mutate(rng, genome, num_pes=20, rate=0.5)
            assert len(set(genome)) == 8
            assert all(0 <= g < 20 for g in genome)

    def test_knee_point_prefers_balanced(self):
        front = [cand(1, 10), cand(2, 2), cand(10, 1)]
        assert _knee_point(front) is front[1]


class TestOptimize:
    @pytest.fixture(scope="class")
    def problem(self):
        design = build_floret_3d(36, 4)
        return MappingProblem(design, build_model("resnet18", "cifar10"))

    def test_small_run(self, problem):
        result = optimize_mapping(problem, population_size=8, generations=3,
                                  seed=1)
        assert len(result.pareto_front) >= 1
        assert result.evaluations > 8

    def test_joint_within_budget(self, problem):
        result = optimize_mapping(problem, population_size=8, generations=3,
                                  seed=1)
        assert result.joint.edp <= result.performance_only.edp * 1.10 + 1e-6

    def test_joint_no_hotter(self, problem):
        result = optimize_mapping(problem, population_size=8, generations=3,
                                  seed=1)
        assert result.joint.peak_k <= result.performance_only.peak_k + 1e-9
        assert result.peak_reduction_k >= 0

    def test_performance_mapping_is_sfc_prefix(self, problem):
        mapping = problem.performance_mapping()
        assert mapping == tuple(
            problem.design.allocation_order[: problem.genome_length]
        )

    def test_evaluation_cached(self, problem):
        a = problem.evaluate(problem.performance_mapping())
        b = problem.evaluate(problem.performance_mapping())
        assert a is b

    def test_model_too_big_rejected(self):
        design = build_floret_3d(16, 4)
        with pytest.raises(ValueError, match="maximal PEs|PEs; stack"):
            MappingProblem(design, build_model("vgg19", "imagenet"))
