"""Unit tests: ReRAM crossbar, chiplet and allocation models."""

from __future__ import annotations

import pytest

from repro.params import PIMParams
from repro.pim.allocation import (
    layer_crossbar_allocation,
    plan_allocation,
)
from repro.pim.chiplet import (
    ChipletSpec,
    chiplets_required,
    layer_compute,
    layer_compute_vec,
    spec_for_budget,
)
from repro.pim.reram import (
    CrossbarSpec,
    conductance_window,
    crossbars_for_weights,
    mvms_for_layer,
    weight_noise_sigma,
)
from repro.workloads.zoo import build_model

from helpers import make_toy_model


class TestCrossbar:
    def test_cells_per_weight(self):
        assert PIMParams(weight_bits=8, bits_per_cell=2).cells_per_weight == 4
        assert PIMParams(weight_bits=8, bits_per_cell=3).cells_per_weight == 3

    def test_weights_capacity(self):
        spec = CrossbarSpec.from_params(PIMParams())
        assert spec.weights_capacity == 128 * 32

    def test_crossbars_for_weights(self):
        spec = CrossbarSpec.from_params()
        assert crossbars_for_weights(0, spec) == 0
        assert crossbars_for_weights(1, spec) == 1
        assert crossbars_for_weights(spec.weights_capacity, spec) == 1
        assert crossbars_for_weights(spec.weights_capacity + 1, spec) == 2

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            crossbars_for_weights(-1, CrossbarSpec.from_params())

    def test_mvms_for_layer(self):
        spec = CrossbarSpec.from_params()
        assert mvms_for_layer(0, 10, spec) == 0
        assert mvms_for_layer(spec.macs_per_mvm, 10, spec) == 1
        assert mvms_for_layer(spec.macs_per_mvm + 1, 10, spec) == 2


class TestThermalBehaviour:
    def test_window_full_below_knee(self):
        assert conductance_window(300.0) == 1.0
        assert conductance_window(330.0) == 1.0

    def test_window_shrinks_above_knee(self):
        assert conductance_window(340.0) < conductance_window(335.0) < 1.0

    def test_noise_complementary(self):
        t = 345.0
        assert weight_noise_sigma(t) == pytest.approx(
            1.0 - conductance_window(t)
        )

    def test_noise_zero_when_cool(self):
        assert weight_noise_sigma(310.0) == 0.0


class TestChipletSpec:
    def test_capacity_scales_with_tiles(self):
        small = ChipletSpec.from_params(PIMParams(tiles_per_chiplet=4))
        large = ChipletSpec.from_params(PIMParams(tiles_per_chiplet=8))
        assert large.weight_capacity == 2 * small.weight_capacity

    def test_chiplets_required(self, spec):
        assert chiplets_required(0, spec) == 0
        assert chiplets_required(1, spec) == 1
        assert chiplets_required(spec.weight_capacity + 1, spec) == 2

    def test_spec_for_budget_picks_smallest(self):
        spec = spec_for_budget(1_000_000, max_chiplets=100)
        needed = -(-1_000_000 // spec.weight_capacity)
        assert needed <= 100
        # The next smaller PE would not fit... or this is already tiles=1.
        assert spec.crossbars >= 16

    def test_spec_for_budget_infeasible(self):
        with pytest.raises(ValueError):
            spec_for_budget(10**12, max_chiplets=1)


class TestLayerCompute:
    def test_weightless_layer_free(self, toy_model, spec):
        gap = toy_model.layer_by_name("b0/add")
        result = layer_compute(gap, 1, spec)
        assert result.latency_cycles == 0
        assert result.energy_pj == 0.0

    def test_energy_conserved_under_replication(self, toy_model, spec):
        stem = toy_model.layer_by_name("stem")
        lean = layer_compute(stem, 1, spec, crossbars_available=1)
        fat = layer_compute(stem, 1, spec, crossbars_available=64)
        assert lean.energy_pj == fat.energy_pj
        assert fat.latency_cycles <= lean.latency_cycles

    def test_replication_speeds_up(self, toy_model, spec):
        stem = toy_model.layer_by_name("stem")
        slow = layer_compute(stem, 1, spec, crossbars_available=1)
        fast = layer_compute(stem, 1, spec, crossbars_available=16)
        assert fast.latency_cycles < slow.latency_cycles

    def test_no_chiplets_rejected(self, toy_model, spec):
        stem = toy_model.layer_by_name("stem")
        with pytest.raises(ValueError, match="no chiplets"):
            layer_compute(stem, 0, spec)

    def test_overflow_rejected(self, spec):
        big = build_model("vgg19", "imagenet").layer_by_name("fc1")
        with pytest.raises(ValueError, match="crossbars"):
            layer_compute(big, 1, spec)


class TestAllocationPlan:
    def test_plan_respects_capacity(self, spec):
        model = build_model("resnet18", "cifar10")
        plan = plan_allocation(model, spec)
        for load in plan.loads:
            assert load.total_weights <= spec.weight_capacity

    def test_plan_covers_all_weights(self, spec):
        model = build_model("resnet18", "cifar10")
        plan = plan_allocation(model, spec)
        packed = sum(load.total_weights for load in plan.loads)
        assert packed == model.total_params

    def test_fractions_sum_to_one_per_layer(self, spec):
        model = build_model("resnet50", "imagenet")
        plan = plan_allocation(model, spec)
        for layer in model.weight_layers():
            places = plan.layer_chiplets[layer.index]
            assert sum(f for _pos, f in places) == pytest.approx(1.0)

    def test_no_packing_gives_one_layer_per_chiplet_min(self, spec):
        model = make_toy_model("nopack")
        packed = plan_allocation(model, spec, pack_layers=True)
        loose = plan_allocation(model, spec, pack_layers=False)
        assert loose.num_chiplets >= packed.num_chiplets
        assert loose.num_chiplets >= len(model.weight_layers())

    def test_multicast_groups_skip_input_edges(self, spec, toy_model):
        plan = plan_allocation(toy_model, spec)
        for group in plan.multicast_groups(toy_model):
            assert group.src >= 0
            assert all(d != group.src for d in group.dsts)

    def test_multicast_model_mismatch(self, spec, toy_model):
        plan = plan_allocation(toy_model, spec)
        other = build_model("vgg11", "cifar10")
        with pytest.raises(ValueError, match="plan is for"):
            plan.multicast_groups(other)

    def test_pairwise_expansion(self, spec, toy_model):
        plan = plan_allocation(toy_model, spec)
        groups = plan.multicast_groups(toy_model)
        pairs = plan.chiplet_traffic(toy_model)
        assert len(pairs) == sum(len(g.dsts) for g in groups)

    def test_crossbar_allocation_covers_all_layers(self, spec):
        model = build_model("resnet18", "cifar10")
        plan = plan_allocation(model, spec)
        shares = layer_crossbar_allocation(model, plan, spec)
        for layer in model.weight_layers():
            assert shares[layer.index] >= 1

    def test_crossbar_allocation_bounded_per_chiplet(self, spec):
        model = build_model("resnet18", "cifar10")
        plan = plan_allocation(model, spec)
        shares = layer_crossbar_allocation(model, plan, spec)
        # Shares within one chiplet cannot exceed its crossbar count
        # (demand-proportional split, integer-floored).
        layers = {l.index: l for l in model.layers}
        for load in plan.loads:
            if len(load.slices) > 1:
                total = sum(
                    shares[s.layer_index] for s in load.slices
                    if len(plan.layer_chiplets[s.layer_index]) == 1
                )
                assert total <= spec.crossbars + len(load.slices)


class TestLayerComputeVec:
    """Batched layer compute vs the scalar model, row by row."""

    @staticmethod
    def _assert_rows_match(layers, allocs, spec, avail=None):
        batch = layer_compute_vec(
            layers, allocs, spec, crossbars_available=avail
        )
        assert len(batch) == len(layers)
        for i, layer in enumerate(layers):
            scalar = layer_compute(
                layer, allocs[i], spec,
                crossbars_available=avail[i] if avail else None,
            )
            row = batch[i]
            assert row == scalar  # LayerCompute is a plain dataclass

    def test_matches_scalar_on_toy_model(self):
        spec = ChipletSpec.from_params()
        model = make_toy_model()
        plan = plan_allocation(model, spec)
        shares = layer_crossbar_allocation(model, plan, spec)
        layers = list(model.weight_layers())
        allocs = [
            max(1, len(plan.layer_chiplets.get(l.index, ())))
            for l in layers
        ]
        avail = [shares.get(l.index) for l in layers]
        self._assert_rows_match(layers, allocs, spec, avail)
        # And with the default (full-allocation) crossbar budget.
        self._assert_rows_match(layers, allocs, spec)

    def test_matches_scalar_on_real_model(self):
        spec = ChipletSpec.from_params()
        model = build_model("resnet18", "cifar10")
        plan = plan_allocation(model, spec)
        layers = list(model.weight_layers())
        allocs = [
            max(1, len(plan.layer_chiplets.get(l.index, ())))
            for l in layers
        ]
        self._assert_rows_match(layers, allocs, spec)

    def test_zero_weight_layer_is_all_zero(self):
        from repro.workloads.layers import Layer, LayerKind

        spec = ChipletSpec.from_params()
        weighted = make_toy_model().weight_layers()[0]
        unweighted = Layer(
            index=0, name="relu", kind=LayerKind.ADD,
            out_shape=(4, 4, 4), weights=0, macs=100, inputs=(),
        )
        batch = layer_compute_vec([unweighted, weighted], [0, 2], spec)
        assert batch[0] == layer_compute(unweighted, 0, spec)
        assert batch[0].latency_cycles == 0
        assert batch[0].crossbars_used == 0
        assert batch[1] == layer_compute(weighted, 2, spec)

    def test_error_parity_no_chiplets(self):
        spec = ChipletSpec.from_params()
        layer = make_toy_model().weight_layers()[0]
        with pytest.raises(ValueError, match="no chiplets allocated"):
            layer_compute_vec([layer], [0], spec)

    def test_error_parity_overflow(self):
        spec = ChipletSpec.from_params()
        layers = make_toy_model().weight_layers()
        big = max(layers, key=lambda l: l.weights)
        with pytest.raises(ValueError) as vec_err:
            layer_compute_vec([big], [1], spec)
        with pytest.raises(ValueError) as scalar_err:
            layer_compute(big, 1, spec)
        if "crossbars" in str(scalar_err.value):
            assert str(vec_err.value) == str(scalar_err.value)

    def test_first_offending_layer_wins(self):
        spec = ChipletSpec.from_params()
        layers = make_toy_model().weight_layers()[:2]
        # Layer 0 lacks chiplets AND layer 1 overflows: the scalar loop
        # would trip on layer 0 first.
        with pytest.raises(ValueError, match="no chiplets allocated"):
            layer_compute_vec(list(layers), [0, 0], spec)

    def test_length_mismatch(self):
        spec = ChipletSpec.from_params()
        layers = make_toy_model().weight_layers()
        with pytest.raises(ValueError, match="chiplets_allocated"):
            layer_compute_vec(list(layers), [1], spec)
        with pytest.raises(ValueError, match="crossbars_available"):
            layer_compute_vec(
                list(layers), [1] * len(layers), spec,
                crossbars_available=[None],
            )

    def test_empty_batch(self):
        spec = ChipletSpec.from_params()
        batch = layer_compute_vec([], [], spec)
        assert len(batch) == 0
