"""Unit + property tests: SFC generation and Eq. (1) optimisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sfc import (
    FloretCurve,
    SFCSegment,
    build_floret_curve,
    eq1_mean_tail_head_distance,
    hilbert_order,
    is_contiguous_path,
    manhattan,
    partition_grid_blocks,
    serpentine_order,
    single_sfc_curve,
)


class TestSerpentine:
    def test_covers_grid(self):
        cells = serpentine_order(4, 3)
        assert len(cells) == 12
        assert len(set(cells)) == 12

    def test_contiguous(self):
        assert is_contiguous_path(serpentine_order(5, 4))

    @pytest.mark.parametrize("cm", [False, True])
    @pytest.mark.parametrize("fx", [False, True])
    @pytest.mark.parametrize("fy", [False, True])
    def test_all_variants_contiguous(self, cm, fx, fy):
        cells = serpentine_order(4, 6, column_major=cm, flip_x=fx, flip_y=fy)
        assert is_contiguous_path(cells)
        assert len(set(cells)) == 24

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            serpentine_order(0, 3)

    def test_even_width_column_major_loops(self):
        """Even-width column-major serpentines end on the starting row --
        the property petal loops rely on."""
        cells = serpentine_order(4, 5, column_major=True)
        assert cells[0][1] == cells[-1][1]


class TestHilbert:
    @pytest.mark.parametrize("order", [0, 1, 2, 3])
    def test_covers_grid(self, order):
        n = 1 << order
        cells = hilbert_order(order)
        assert len(set(cells)) == n * n

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_contiguous(self, order):
        assert is_contiguous_path(hilbert_order(order))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            hilbert_order(-1)


class TestSegment:
    def test_head_tail(self):
        seg = SFCSegment(0, ((0, 0), (0, 1), (1, 1)))
        assert seg.head == (0, 0)
        assert seg.tail == (1, 1)
        assert seg.length == 3

    def test_reversed_swaps_ends(self):
        seg = SFCSegment(0, ((0, 0), (0, 1)))
        rev = seg.reversed()
        assert rev.head == seg.tail
        assert rev.tail == seg.head

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            SFCSegment(0, ((0, 0), (2, 0)))

    def test_repeated_cells_rejected(self):
        with pytest.raises(ValueError, match="repeated"):
            SFCSegment(0, ((0, 0), (0, 1), (0, 0)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SFCSegment(0, ())


class TestEq1:
    def test_single_segment_zero(self):
        seg = SFCSegment(0, ((0, 0), (0, 1)))
        assert eq1_mean_tail_head_distance([seg]) == 0.0

    def test_two_segments(self):
        a = SFCSegment(0, ((0, 0), (1, 0)))
        b = SFCSegment(1, ((3, 0), (4, 0)))
        # d(a.tail=(1,0) -> b.head=(3,0)) = 2; d(b.tail=(4,0) -> a.head) = 4.
        assert eq1_mean_tail_head_distance([a, b]) == pytest.approx(3.0)

    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7


class TestPartition:
    @pytest.mark.parametrize("petals", [1, 2, 4, 5, 6, 10])
    def test_partition_covers_grid(self, petals):
        regions = partition_grid_blocks(10, 10, petals)
        cells = [c for r in regions for c in r]
        assert len(cells) == 100
        assert len(set(cells)) == 100
        assert len(regions) == petals

    def test_too_many_petals(self):
        with pytest.raises(ValueError):
            partition_grid_blocks(2, 2, 5)

    def test_zero_petals(self):
        with pytest.raises(ValueError):
            partition_grid_blocks(4, 4, 0)


class TestFloretCurve:
    def test_default_six_petals(self):
        curve = build_floret_curve(10, 10, 6)
        assert curve.num_petals == 6
        assert len(curve.all_cells()) == 100

    def test_every_petal_contiguous(self):
        curve = build_floret_curve(10, 10, 6)
        for seg in curve.segments:
            assert is_contiguous_path(seg.cells)

    def test_optimizer_no_worse_than_default(self):
        for petals in (2, 4, 6):
            opt = build_floret_curve(10, 10, petals, optimize=True)
            raw = build_floret_curve(10, 10, petals, optimize=False)
            assert opt.eq1_distance <= raw.eq1_distance + 1e-9

    def test_visit_order_covers_all(self):
        curve = build_floret_curve(8, 8, 4)
        order = curve.visit_order()
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_visit_order_starts_near_centre(self):
        curve = build_floret_curve(10, 10, 6)
        x, y = curve.visit_order()[0]
        assert abs(x - 4.5) + abs(y - 4.5) <= 4.0

    def test_single_sfc(self):
        curve = single_sfc_curve(6, 6)
        assert curve.num_petals == 1
        assert curve.eq1_distance == 0.0
        assert len(curve.all_cells()) == 36


@settings(max_examples=40, deadline=None)
@given(
    cols=st.integers(min_value=2, max_value=9),
    rows=st.integers(min_value=2, max_value=9),
)
def test_property_serpentine_covers_any_grid(cols, rows):
    cells = serpentine_order(cols, rows)
    assert len(set(cells)) == cols * rows
    assert is_contiguous_path(cells)


@settings(max_examples=30, deadline=None)
@given(
    cols=st.integers(min_value=4, max_value=10),
    rows=st.integers(min_value=4, max_value=10),
    petals=st.sampled_from([1, 2, 4]),
)
def test_property_floret_curve_partitions_grid(cols, rows, petals):
    curve = build_floret_curve(cols, rows, petals, optimize=False)
    cells = curve.all_cells()
    assert len(cells) == cols * rows
    assert len(set(cells)) == cols * rows
    for seg in curve.segments:
        assert is_contiguous_path(seg.cells)


@settings(max_examples=20, deadline=None)
@given(petals=st.sampled_from([2, 4, 5]))
def test_property_eq1_optimizer_monotone(petals):
    opt = build_floret_curve(10, 10, petals, optimize=True)
    raw = build_floret_curve(10, 10, petals, optimize=False)
    assert opt.eq1_distance <= raw.eq1_distance + 1e-9
