"""Unit tests: ASCII visualisation."""

from __future__ import annotations

import pytest

from repro.core.sfc import build_floret_curve
from repro.viz import (
    occupancy_from_schedule,
    render_occupancy,
    render_petals,
    render_placement,
)


class TestRenderPetals:
    def test_grid_shape(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve)
        lines = art.split("\n")
        assert len(lines) == 6
        assert all(len(line) == 6 for line in lines)

    def test_every_cell_assigned(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve, mark_heads=False)
        assert "?" not in art

    def test_heads_and_tails_marked(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve)
        assert art.count("*") == 4  # one tail per petal
        uppers = sum(1 for ch in art if ch.isupper())
        assert uppers == 4  # one head per petal

    def test_petal_glyph_counts(self):
        curve = build_floret_curve(6, 6, 2)
        art = render_petals(curve, mark_heads=False)
        counts = {g: art.count(g) for g in "ab"}
        assert sum(counts.values()) == 36


class TestRenderOccupancy:
    def test_free_system(self, small_floret):
        art = render_occupancy(small_floret.topology, {})
        assert art.count(".") == 36
        assert "all free" in art

    def test_owned_chiplets_marked(self, small_floret):
        art = render_occupancy(
            small_floret.topology, {0: "taskA", 1: "taskA", 2: "taskB"}
        )
        assert art.count(".") == 33
        assert "taskA" in art and "taskB" in art

    def test_glyph_collision_resolved(self, small_floret):
        art = render_occupancy(
            small_floret.topology, {0: "task1", 1: "task2"}
        )
        body = art.split("\n[")[0]
        glyphs = {c for c in body if c not in ". \n"}
        assert len(glyphs) == 2

    def test_render_placement(self, small_floret):
        ids = small_floret.allocation_order[:5]
        art = render_placement(small_floret, ids)
        assert art.count(".") == 31


class TestOccupancyFromSchedule:
    def test_snapshot(self, small_floret):
        from repro.core.mapping import ContiguousMapper
        from repro.core.scheduler import SystemScheduler
        from repro.workloads.tasks import DNNTask

        from helpers import make_toy_model

        model = make_toy_model()
        scheduler = SystemScheduler(
            small_floret.topology,
            ContiguousMapper(
                small_floret.allocation_order, small_floret.topology
            ),
        )
        result = scheduler.run(
            [DNNTask(f"t{i}", "TOY", model) for i in range(3)]
        )
        owners = occupancy_from_schedule(result.completed, at_cycle=0)
        assert owners  # someone is running at t=0
        # Each owner's chiplets are disjoint.
        assert len(owners) == sum(
            t.placement.num_chiplets for t in result.completed
            if t.start_cycle == 0
        )
