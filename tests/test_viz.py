"""Unit tests: ASCII visualisation (all headless, pure strings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sfc import build_floret_curve
from repro.viz import (
    occupancy_from_schedule,
    render_link_utilization,
    render_occupancy,
    render_pareto_fronts,
    render_petals,
    render_placement,
    render_saturation_curves,
)


class TestRenderPetals:
    def test_grid_shape(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve)
        lines = art.split("\n")
        assert len(lines) == 6
        assert all(len(line) == 6 for line in lines)

    def test_every_cell_assigned(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve, mark_heads=False)
        assert "?" not in art

    def test_heads_and_tails_marked(self):
        curve = build_floret_curve(6, 6, 4)
        art = render_petals(curve)
        assert art.count("*") == 4  # one tail per petal
        uppers = sum(1 for ch in art if ch.isupper())
        assert uppers == 4  # one head per petal

    def test_petal_glyph_counts(self):
        curve = build_floret_curve(6, 6, 2)
        art = render_petals(curve, mark_heads=False)
        counts = {g: art.count(g) for g in "ab"}
        assert sum(counts.values()) == 36


class TestRenderOccupancy:
    def test_free_system(self, small_floret):
        art = render_occupancy(small_floret.topology, {})
        assert art.count(".") == 36
        assert "all free" in art

    def test_owned_chiplets_marked(self, small_floret):
        art = render_occupancy(
            small_floret.topology, {0: "taskA", 1: "taskA", 2: "taskB"}
        )
        assert art.count(".") == 33
        assert "taskA" in art and "taskB" in art

    def test_glyph_collision_resolved(self, small_floret):
        art = render_occupancy(
            small_floret.topology, {0: "task1", 1: "task2"}
        )
        body = art.split("\n[")[0]
        glyphs = {c for c in body if c not in ". \n"}
        assert len(glyphs) == 2

    def test_render_placement(self, small_floret):
        ids = small_floret.allocation_order[:5]
        art = render_placement(small_floret, ids)
        assert art.count(".") == 31


class TestRenderLinkUtilization:
    def _telemetry(self, small_mesh):
        from repro.eval.experiments import (
            load_sweep_traffic,
            parse_load_workload,
        )
        from repro.net.simulator import simulate_packets

        spec = parse_load_workload("hotspot@0.1:w32+96")
        table = load_sweep_traffic(spec, 36, 2)
        return simulate_packets(small_mesh, table, telemetry=True).telemetry

    def test_grid_and_hot_links(self, small_mesh):
        art = render_link_utilization(small_mesh, self._telemetry(small_mesh))
        lines = art.split("\n")
        assert "link utilization" in lines[0]
        # 6x6 grid body with heat glyphs only.
        body = lines[1:7]
        assert all(len(row) == 6 for row in body)
        assert all(c in ".123456789#" for row in body for c in row)
        # Hot-link list carries the stall split.
        assert any("util" in line and "stall" in line
                   for line in lines[7:])

    def test_link_count_mismatch_rejected(self, small_mesh, small_kite):
        with pytest.raises(ValueError, match="links"):
            render_link_utilization(small_kite,
                                    self._telemetry(small_mesh))


class TestRenderSaturationCurves:
    OFFERED = [0.05, 0.1, 0.15, 0.2]
    SERIES = {
        "floret": [0.05, 0.07, 0.07, 0.07],
        "siam": [0.05, 0.1, 0.14, 0.15],
    }

    def test_chart_structure(self):
        art = render_saturation_curves(self.OFFERED, self.SERIES)
        assert "F=floret" in art and "S=siam" in art
        assert "F" in art and "S" in art
        assert "offered load" in art
        assert "ideal acceptance" in art

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError, match="points"):
            render_saturation_curves(self.OFFERED, {"x": [0.1]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_saturation_curves([], {})


class TestRenderParetoFronts:
    def _store_with_dse(self, tmp_path):
        from repro.eval import (
            ResultStore,
            design_space,
            dse_search,
            evaluate_comm_case,
        )

        space = design_space(("siam", "kite"), (16,),
                             flit_bytes=(16, 32))
        store = ResultStore(tmp_path)
        result = dse_search(space, evaluate_comm_case,
                            population_size=8, generations=2,
                            workers=1, store=store)
        return store, result

    def test_fronts_per_generation_from_store_dir(self, tmp_path):
        store, result = self._store_with_dse(tmp_path)
        art = render_pareto_fronts(tmp_path, tag_prefix="dse")
        assert "archive Pareto fronts" in art
        assert "generation 0" in art
        assert "O" in art  # at least one front point marked
        # Generations were stamped on the archive cases.
        tags = {p.case.tag for p in result.archive}
        assert any(tag.endswith("@g0") for tag in tags)

    def test_accepts_store_instance_and_iterables(self, tmp_path):
        store, _ = self._store_with_dse(tmp_path)
        by_store = render_pareto_fronts(store, tag_prefix="dse")
        by_list = render_pareto_fronts(list(store.iter_results()),
                                       tag_prefix="dse")
        assert by_store == by_list

    def test_no_matching_results_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no stored results"):
            render_pareto_fronts([], tag_prefix="dse")


class TestOccupancyFromSchedule:
    def test_snapshot(self, small_floret):
        from repro.core.mapping import ContiguousMapper
        from repro.core.scheduler import SystemScheduler
        from repro.workloads.tasks import DNNTask

        from helpers import make_toy_model

        model = make_toy_model()
        scheduler = SystemScheduler(
            small_floret.topology,
            ContiguousMapper(
                small_floret.allocation_order, small_floret.topology
            ),
        )
        result = scheduler.run(
            [DNNTask(f"t{i}", "TOY", model) for i in range(3)]
        )
        owners = occupancy_from_schedule(result.completed, at_cycle=0)
        assert owners  # someone is running at t=0
        # Each owner's chiplets are disjoint.
        assert len(owners) == sum(
            t.placement.num_chiplets for t in result.completed
            if t.start_cycle == 0
        )


class TestHypervolume:
    def test_single_point_box(self):
        from repro.viz import hypervolume_2d

        assert hypervolume_2d([(1.0, 1.0)], (3.0, 2.0)) == 2.0

    def test_two_point_front_union(self):
        from repro.viz import hypervolume_2d

        # Boxes 2x1 and 1x2 overlapping in a 1x1 corner: union = 3.
        assert hypervolume_2d([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0)) == 3.0

    def test_dominated_and_duplicate_points_add_nothing(self):
        from repro.viz import hypervolume_2d

        base = hypervolume_2d([(1.0, 1.0)], (3.0, 3.0))
        assert hypervolume_2d(
            [(1.0, 1.0), (2.0, 2.0), (1.0, 1.0)], (3.0, 3.0)
        ) == base

    def test_points_beyond_reference_are_ignored(self):
        from repro.viz import hypervolume_2d

        assert hypervolume_2d([(5.0, 5.0)], (3.0, 3.0)) == 0.0
        assert hypervolume_2d([], (3.0, 3.0)) == 0.0


class TestRenderHypervolumeTrend:
    def _results(self):
        """Three generations with a front that marches toward origin."""
        from repro.eval.sweeps import SweepCase, SweepResult

        def result(gen, latency, energy, seed):
            return SweepResult(
                case=SweepCase(arch="siam", num_chiplets=16, seed=seed,
                               tag=f"dse@g{gen}"),
                metrics={"latency_cycles": latency, "energy_pj": energy},
                elapsed_s=0.0,
            )

        return [
            result(0, 10.0, 10.0, 0),
            result(1, 6.0, 6.0, 1),
            result(2, 9.0, 9.0, 2),   # dominated: flat tail
        ]

    def test_trend_is_monotone_nondecreasing(self):
        from repro.viz import hypervolume_2d, render_hypervolume_trend

        art = render_hypervolume_trend(self._results(),
                                       ref_point=(12.0, 12.0))
        assert "g0" in art and "g1" in art and "g2" in art
        # Exact hypervolumes per cumulative generation.
        g0 = hypervolume_2d([(10.0, 10.0)], (12.0, 12.0))
        g1 = hypervolume_2d([(10.0, 10.0), (6.0, 6.0)], (12.0, 12.0))
        assert f"hv {g0:.6g}" in art
        assert f"hv {g1:.6g}" in art
        # The dominated g2 point leaves the volume flat.
        assert art.count(f"hv {g1:.6g}") == 2

    def test_default_reference_covers_all_points(self):
        from repro.viz import render_hypervolume_trend

        art = render_hypervolume_trend(self._results())
        assert "100.0% of peak" in art

    def test_reads_a_store_directory(self, tmp_path):
        from repro.eval import (
            ResultStore,
            design_space,
            dse_search,
            evaluate_comm_case,
        )
        from repro.viz import render_hypervolume_trend

        space = design_space(("siam", "kite"), (16,), flit_bytes=(16, 32))
        dse_search(space, evaluate_comm_case, population_size=8,
                   generations=2, workers=1, store=ResultStore(tmp_path))
        art = render_hypervolume_trend(tmp_path, tag_prefix="dse")
        assert "hypervolume of the cumulative DSE archive" in art
        assert "g0" in art

    def test_no_points_rejected(self):
        from repro.viz import render_hypervolume_trend

        with pytest.raises(ValueError, match="no stored results"):
            render_hypervolume_trend([], tag_prefix="dse")
