"""Unit tests: distributed sharded sweep execution (repro.eval.shard)."""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.eval.shard import (
    DrainReport,
    GridSpec,
    LeaseBoard,
    ShardSpec,
    drain_cases,
    main,
    merge_stream,
    shard_key,
    wait_for_cases,
)
from repro.eval.store import ResultStore, case_key, evaluator_fingerprint
from repro.eval.stream import RunningPivot, RunningStats, StreamingSweepRunner
from repro.eval.sweeps import SweepCase, SweepRunner, sweep_grid
from repro.params import NoIParams


def _eval_ok(case):
    """Deterministic, dependency-free evaluator for shard tests."""
    base = float(case.num_chiplets * (case.seed + 1))
    scale = dict(case.noi_overrides).get("flit_bytes", 32)
    return {
        "value": base * scale / 32.0,
        "arch_len": float(len(case.arch)),
    }


def _eval_fail_neighbor(case):
    """Evaluator that deterministically breaks on one workload."""
    if case.workload == "neighbor":
        raise RuntimeError("neighbor cases are broken on purpose")
    return {"value": float(case.seed)}


def _grid(seeds=(0, 1), workloads=("uniform", "transpose")):
    return sweep_grid(
        archs=("siam", "kite"), sizes=(16,),
        workloads=workloads, seeds=seeds,
    )


FP = evaluator_fingerprint(_eval_ok)


# ---------------------------------------------------------------------------
# multi-process race workers (module level: picklable under spawn)


def _race_put(args):
    root, worker, keys = args
    store = ResultStore(root)
    written = []
    for i, key in enumerate(keys):
        case = SweepCase(arch="siam", num_chiplets=16, seed=i)
        from repro.eval.sweeps import SweepResult

        store.put(key, SweepResult(
            case=case, metrics={"value": float(worker)}, elapsed_s=0.0,
        ))
        written.append(key)
    return written


def _race_claim(args):
    root, worker, keys = args
    board = LeaseBoard(ResultStore(root), worker=str(worker), ttl_s=60.0)
    return [key for key in keys if board.acquire(key)]


def _race_drain(args):
    root, index, count = args
    report = drain_cases(
        ResultStore(root), _eval_ok, _grid(seeds=(0, 1, 2)),
        shard=ShardSpec(index, count), lease_ttl_s=30.0, poll_s=0.01,
        worker=f"racer-{index}",
    )
    return list(report.evaluated_keys)


class TestShardKeyAndSpec:
    def test_key_is_stable_and_tag_free(self):
        a = SweepCase(arch="siam", num_chiplets=16, tag="")
        b = SweepCase(arch="siam", num_chiplets=16, tag="relabel")
        assert shard_key(a) == shard_key(b)

    def test_key_ignores_override_order(self):
        a = SweepCase(arch="siam", noi_overrides=(
            ("flit_bytes", 64), ("chiplet_pitch_mm", 4.0)))
        b = SweepCase(arch="siam", noi_overrides=(
            ("chiplet_pitch_mm", 4.0), ("flit_bytes", 64)))
        assert shard_key(a) == shard_key(b)

    def test_key_differs_across_scenarios(self):
        keys = {shard_key(c) for c in _grid()}
        assert len(keys) == len(_grid())

    def test_partition_covers_grid_exactly_once(self):
        cases = _grid(seeds=(0, 1, 2, 3))
        for count in (1, 2, 3, 5):
            specs = [ShardSpec(i, count) for i in range(count)]
            owners = [[s.owns(c) for s in specs] for c in cases]
            assert all(sum(row) == 1 for row in owners)

    def test_split_preserves_order(self):
        cases = _grid()
        spec = ShardSpec(0, 2)
        mine, theirs = spec.split(cases)
        assert mine + theirs != [] and len(mine) + len(theirs) == len(cases)
        assert [c for c in cases if spec.owns(c)] == mine
        assert [c for c in cases if not spec.owns(c)] == theirs

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(0, 0)
        with pytest.raises(ValueError):
            ShardSpec(3, 3)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)

    def test_parse(self):
        assert ShardSpec.parse("2/5") == ShardSpec(2, 5)
        for bad in ("", "1", "a/b", "1/", "/3", "1-3"):
            with pytest.raises(ValueError):
                ShardSpec.parse(bad)

    def test_str_roundtrip(self):
        assert ShardSpec.parse(str(ShardSpec(1, 4))) == ShardSpec(1, 4)


class TestLeaseBoard:
    def test_acquire_is_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseBoard(store, worker="a", ttl_s=60.0)
        b = LeaseBoard(store, worker="b", ttl_s=60.0)
        assert a.acquire("k")
        assert not b.acquire("k")
        assert b.held("k")

    def test_release_frees_the_claim(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseBoard(store, worker="a", ttl_s=60.0)
        b = LeaseBoard(store, worker="b", ttl_s=60.0)
        assert a.acquire("k")
        a.release("k")
        assert not a.held("k")
        assert b.acquire("k")

    def test_release_of_unheld_key_is_noop(self, tmp_path):
        LeaseBoard(ResultStore(tmp_path), worker="a").release("nothing")

    def test_expired_claim_is_reaped(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseBoard(store, worker="a", ttl_s=0.2)
        b = LeaseBoard(store, worker="b", ttl_s=0.2)
        assert a.acquire("k")
        time.sleep(0.3)
        assert not b.held("k")
        assert b.acquire("k")
        # b's claim is fresh again: a cannot take it back.
        assert not a.acquire("k")

    def test_claims_live_under_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        board = LeaseBoard(store, worker="a", ttl_s=60.0)
        board.acquire("k")
        assert (store.claims_root / "k.lease").exists()
        payload = json.loads(
            (store.claims_root / "k.lease").read_text()
        )
        assert payload["worker"] == "a"

    def test_future_mtime_orphan_is_reaped(self, tmp_path):
        # Regression: a claim whose mtime is in the future (NTP step,
        # cross-host clock skew on a shared store) had negative age
        # under the signed-age check and could never expire, wedging
        # every later claimant.
        store = ResultStore(tmp_path)
        ghost = LeaseBoard(store, worker="ghost", ttl_s=0.5)
        assert ghost.acquire("k")
        future = time.time() + 3600.0
        os.utime(store.claims_root / "k.lease", (future, future))
        b = LeaseBoard(store, worker="b", ttl_s=0.5)
        assert not b.held("k")
        assert b.acquire("k")

    def test_future_mtime_within_ttl_is_live(self, tmp_path):
        # Skew smaller than the TTL is indistinguishable from a live
        # holder; the claim must stand.
        store = ResultStore(tmp_path)
        a = LeaseBoard(store, worker="a", ttl_s=60.0)
        assert a.acquire("k")
        future = time.time() + 5.0
        os.utime(store.claims_root / "k.lease", (future, future))
        b = LeaseBoard(store, worker="b", ttl_s=60.0)
        assert b.held("k")
        assert not b.acquire("k")


class TestDrain:
    def test_whole_grid_drain(self, tmp_path):
        cases = _grid()
        report = drain_cases(ResultStore(tmp_path), _eval_ok, cases)
        assert report.evaluated == len(cases)
        assert report.store_hits == 0
        assert report.stolen == 0
        assert not report.failures
        assert len(ResultStore(tmp_path)) == len(cases)

    def test_redrain_is_all_hits(self, tmp_path):
        cases = _grid()
        drain_cases(ResultStore(tmp_path), _eval_ok, cases)
        report = drain_cases(ResultStore(tmp_path), _eval_ok, cases)
        assert report.evaluated == 0
        assert report.store_hits == len(cases)

    def test_sequential_shards_cover_without_duplicates(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        reports = [
            drain_cases(ResultStore(tmp_path), _eval_ok, cases,
                        shard=ShardSpec(i, 3), poll_s=0.01)
            for i in range(3)
        ]
        everything = [k for r in reports for k in r.evaluated_keys]
        assert len(everything) == len(set(everything)) == len(cases)
        # The first worker had no live peers, so it legitimately stole
        # the whole grid; the rest replayed hits.
        assert reports[0].evaluated == len(cases)
        assert reports[0].stolen > 0
        assert reports[1].evaluated == reports[2].evaluated == 0

    def test_failures_are_reported_not_cached(self, tmp_path):
        cases = _grid(workloads=("uniform", "neighbor"))
        report = drain_cases(
            ResultStore(tmp_path), _eval_fail_neighbor, cases,
            poll_s=0.01,
        )
        broken = [c for c in cases if c.workload == "neighbor"]
        assert len(report.failures) == len(broken)
        assert all("broken on purpose" in (r.error or "")
                   for r in report.failures)
        # Errors never cached: the store holds only the good half.
        assert len(ResultStore(tmp_path)) == len(cases) - len(broken)
        # A second drain retries them (exactly once each) again.
        again = drain_cases(
            ResultStore(tmp_path), _eval_fail_neighbor, cases,
            poll_s=0.01,
        )
        assert len(again.failures) == len(broken)
        assert again.evaluated == 0

    def test_live_foreign_claim_is_waited_out(self, tmp_path):
        store = ResultStore(tmp_path)
        cases = _grid()
        fp = evaluator_fingerprint(_eval_ok)
        blocked_key = case_key(cases[0], fp)
        LeaseBoard(store, worker="ghost", ttl_s=60.0).acquire(blocked_key)
        report = drain_cases(
            ResultStore(tmp_path), _eval_ok, cases,
            lease_ttl_s=0.3, poll_s=0.02,
        )
        assert report.evaluated == len(cases)
        assert report.lease_denied > 0
        assert report.passes > 1

    def test_drain_survives_future_mtime_orphan(self, tmp_path):
        # Regression companion to the LeaseBoard clock-skew fix: a
        # future-stamped orphan claim on one case must be reaped, not
        # wedge the drain until its deadline.
        store = ResultStore(tmp_path)
        cases = _grid()
        fp = evaluator_fingerprint(_eval_ok)
        key = case_key(cases[0], fp)
        LeaseBoard(store, worker="ghost", ttl_s=60.0).acquire(key)
        future = time.time() + 3600.0
        os.utime(store.claims_root / f"{key}.lease", (future, future))
        report = drain_cases(
            ResultStore(tmp_path), _eval_ok, cases,
            lease_ttl_s=0.3, poll_s=0.02, deadline_s=10.0,
        )
        assert report.evaluated == len(cases)
        assert not report.failures

    def test_deadline_raises_with_outstanding_cases(self, tmp_path):
        store = ResultStore(tmp_path)
        cases = _grid()
        fp = evaluator_fingerprint(_eval_ok)
        # An unexpiring foreign claim keeps one case outstanding.
        LeaseBoard(store, worker="ghost", ttl_s=60.0).acquire(
            case_key(cases[0], fp)
        )
        with pytest.raises(TimeoutError, match="outstanding"):
            drain_cases(
                ResultStore(tmp_path), _eval_ok, cases,
                lease_ttl_s=60.0, poll_s=0.01, deadline_s=0.2,
            )

    def test_report_json_roundtrip(self, tmp_path):
        report = drain_cases(ResultStore(tmp_path), _eval_ok, _grid())
        data = json.loads(report.to_json())
        assert data["total"] == report.total
        assert data["evaluated_keys"] == list(report.evaluated_keys)
        assert data["failures"] == []


class TestMergeAndWait:
    def test_merge_is_bit_identical_to_single_host(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        ref_aggs = (RunningPivot("value"), RunningStats("value"))
        ref = StreamingSweepRunner(
            _eval_ok, workers=1, store=ResultStore(tmp_path / "ref")
        ).run_stream(cases, ref_aggs)
        assert not ref.failures

        shared = tmp_path / "shared"
        for i in range(2):
            drain_cases(ResultStore(shared), _eval_ok, cases,
                        shard=ShardSpec(i, 2), poll_s=0.01)
        merged_aggs = (RunningPivot("value"), RunningStats("value"))
        merged = merge_stream(
            ResultStore(shared), _eval_ok, cases, merged_aggs
        )
        assert merged.total == ref.total
        assert merged.store_hits == len(cases)
        assert merged.evaluated == 0
        assert merged_aggs[0].table() == ref_aggs[0].table()
        assert merged_aggs[1].sum == ref_aggs[1].sum
        assert merged_aggs[1].count == ref_aggs[1].count
        assert merged_aggs[1].min == ref_aggs[1].min
        assert merged_aggs[1].max == ref_aggs[1].max

    def test_merge_refuses_incomplete_grid(self, tmp_path):
        cases = _grid()
        drain_cases(ResultStore(tmp_path), _eval_ok, cases[:-1])
        with pytest.raises(ValueError, match="not in the store"):
            merge_stream(ResultStore(tmp_path), _eval_ok, cases)

    def test_merge_allow_incomplete_evaluates_inline(self, tmp_path):
        cases = _grid()
        drain_cases(ResultStore(tmp_path), _eval_ok, cases[:-1])
        outcome = merge_stream(
            ResultStore(tmp_path), _eval_ok, cases,
            require_complete=False,
        )
        assert outcome.total == len(cases)
        assert outcome.evaluated == 1

    def test_wait_reports_progress_and_returns(self, tmp_path):
        cases = _grid()
        drain_cases(ResultStore(tmp_path), _eval_ok, cases)
        seen = []
        wait_for_cases(
            ResultStore(tmp_path), _eval_ok, cases,
            timeout_s=1.0, poll_s=0.01,
            on_progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(len(cases), len(cases))]

    def test_wait_times_out_naming_missing_cases(self, tmp_path):
        cases = _grid()
        with pytest.raises(TimeoutError, match=cases[0].arch):
            wait_for_cases(
                ResultStore(tmp_path), _eval_ok, cases,
                timeout_s=0.05, poll_s=0.01,
            )


class TestGridSpec:
    def test_json_roundtrip(self):
        grid = GridSpec(
            archs=("siam", "kite"), sizes=(16, 36),
            workloads=("uniform",), seeds=(0, 1),
            overrides=((), (("flit_bytes", 16),)), tag="t",
        )
        assert GridSpec.from_json(grid.to_json()) == grid

    def test_cases_match_sweep_grid(self):
        grid = GridSpec(archs=("siam",), sizes=(16,),
                        workloads=("uniform", "transpose"), seeds=(0, 1))
        assert grid.cases() == sweep_grid(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "transpose"), seeds=(0, 1),
        )

    def test_defaults_fill_in(self):
        grid = GridSpec.from_json('{"archs": ["siam"]}')
        assert grid.sizes == (36,)
        assert grid.overrides == ((),)


class TestRunnersWithShard:
    def test_sweep_runner_filters_to_slice(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        spec = ShardSpec(0, 2)
        outcome = SweepRunner(
            _eval_ok, workers=1, store=ResultStore(tmp_path),
            shard=spec,
        ).run(cases)
        mine, _ = spec.split(cases)
        assert len(outcome) == len(mine)
        assert [r.case for r in outcome.results] == mine

    def test_streaming_runner_filters_to_slice(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        spec = ShardSpec(1, 2)
        runner = StreamingSweepRunner(
            _eval_ok, workers=1, store=ResultStore(tmp_path), shard=spec,
        )
        emitted = [r.case for r in runner.stream(cases)]
        mine, _ = spec.split(cases)
        assert emitted == mine

    def test_shard_without_store_rejected(self):
        with pytest.raises(ValueError, match="ResultStore"):
            SweepRunner(_eval_ok, shard=ShardSpec(0, 2))

    def test_two_slices_plus_merge_equal_whole_grid(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        for i in range(2):
            outcome = SweepRunner(
                _eval_ok, workers=1, store=ResultStore(tmp_path),
                shard=ShardSpec(i, 2),
            ).run(cases)
            assert not outcome.failures
        merged = merge_stream(ResultStore(tmp_path), _eval_ok, cases)
        assert merged.total == len(cases)
        assert merged.evaluated == 0


class TestCLI:
    def _grid_json(self):
        return GridSpec(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "transpose"), seeds=(0, 1),
        ).to_json()

    def test_worker_then_merge(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        report_path = tmp_path / "report.json"
        rc = main([
            "worker", "--store", store, "--grid", self._grid_json(),
            "--evaluator", "evaluate_comm_case",
            "--shard", "0/1", "--report", str(report_path),
        ])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["total"] == 4
        assert len(report["evaluated_keys"]) == 4

        rc = main([
            "merge", "--store", store, "--grid", self._grid_json(),
            "--evaluator", "evaluate_comm_case",
            "--wait", "2", "--metrics", "latency_cycles",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "merged 4 cases" in out
        assert "latency_cycles" in out

    def test_grid_argument_accepts_a_file(self, tmp_path):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(self._grid_json(), encoding="utf-8")
        rc = main([
            "worker", "--store", str(tmp_path / "store"),
            "--grid", str(grid_file),
            "--evaluator", "test_shard:_eval_ok",
        ])
        assert rc == 0

    def test_worker_reports_failures_in_exit_code(self, tmp_path, capsys):
        grid = GridSpec(archs=("siam",), sizes=(16,),
                        workloads=("uniform", "neighbor")).to_json()
        rc = main([
            "worker", "--store", str(tmp_path / "store"), "--grid", grid,
            "--evaluator", "test_shard:_eval_fail_neighbor",
        ])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_evaluator_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown evaluator"):
            main([
                "worker", "--store", str(tmp_path / "store"),
                "--grid", self._grid_json(),
                "--evaluator", "no_such_evaluator",
            ])


class TestMultiProcessStoreAccess:
    """Two real processes racing one store directory (satellite gate)."""

    def _pool(self):
        try:
            return ProcessPoolExecutor(max_workers=2)
        except OSError:  # pragma: no cover - restricted sandboxes
            pytest.skip("process pools unavailable in this sandbox")

    def test_racing_puts_leave_no_torn_shards(self, tmp_path):
        keys = [case_key(c, FP) for c in _grid(seeds=(0, 1, 2, 3))]
        with self._pool() as pool:
            results = list(pool.map(
                _race_put,
                [(str(tmp_path), 0, keys), (str(tmp_path), 1, keys)],
            ))
        assert all(set(r) == set(keys) for r in results)
        # Every line of every shard parses: no torn/interleaved JSONL.
        for shard in tmp_path.glob("shard-*.jsonl"):
            for line in shard.read_text().splitlines():
                record = json.loads(line)
                assert record["metrics"]["value"] in (0.0, 1.0)
        # Two fresh readers agree exactly (bit-identical iteration).
        read_a = {
            (r.case.case_id, r.metrics["value"])
            for r in ResultStore(tmp_path).iter_results()
        }
        read_b = {
            (r.case.case_id, r.metrics["value"])
            for r in ResultStore(tmp_path).iter_results()
        }
        assert read_a == read_b
        assert len(ResultStore(tmp_path)) == len(keys)

    def test_racing_claims_have_exactly_one_winner(self, tmp_path):
        keys = [f"key-{i:02d}" for i in range(24)]
        with self._pool() as pool:
            won = list(pool.map(
                _race_claim,
                [(str(tmp_path), 0, keys), (str(tmp_path), 1, keys)],
            ))
        assert not set(won[0]) & set(won[1]), "a key was claimed twice"
        assert set(won[0]) | set(won[1]) == set(keys)

    def test_racing_drains_evaluate_each_case_exactly_once(self, tmp_path):
        cases = _grid(seeds=(0, 1, 2))
        with self._pool() as pool:
            evaluated = list(pool.map(
                _race_drain,
                [(str(tmp_path), 0, 2), (str(tmp_path), 1, 2)],
            ))
        union = set(evaluated[0]) | set(evaluated[1])
        assert not set(evaluated[0]) & set(evaluated[1]), (
            "duplicate evaluation across racing workers"
        )
        assert len(union) == len(cases)
        # And the racing result is mergeable + complete.
        merged = merge_stream(ResultStore(tmp_path), _eval_ok, cases)
        assert merged.evaluated == 0
        assert merged.total == len(cases)


class _ScriptedStore:
    """Stand-in store whose ``missing`` follows a fixed script."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def missing(self, keys):
        self.calls += 1
        if len(self.script) > 1:
            return self.script.pop(0)
        return self.script[0]


class TestPollBackoff:
    """Satellite regression: no-progress polls back off exponentially."""

    def test_wait_backoff_doubles_caps_and_resets(self, monkeypatch):
        # Deterministic check of the sleep schedule itself: record the
        # requested sleeps, script the store so progress lands mid-way.
        import repro.eval.shard as shard_mod

        sleeps = []
        monkeypatch.setattr(shard_mod.time, "sleep", sleeps.append)
        cases = _grid()[:2]
        keys = [case_key(c, FP) for c in cases]
        every = frozenset(keys)
        one = frozenset(keys[:1])
        store = _ScriptedStore([
            every, every, every,  # three idle scans
            one, one, one,        # progress, then three more idle scans
            frozenset(),          # done
        ])
        wait_for_cases(store, _eval_ok, cases,
                       poll_s=0.01, max_poll_s=0.04)
        assert sleeps == pytest.approx(
            [0.01, 0.02, 0.04, 0.01, 0.02, 0.04]
        )
        assert store.calls == 7

    def test_long_idle_wait_does_few_store_scans(self, tmp_path):
        # A coordinator parked on an empty store for ~0.6s: exponential
        # backoff needs O(log) scans where the old fixed 0.01s interval
        # needed ~60.
        store = ResultStore(tmp_path)
        scans = []
        real_missing = store.missing
        store.missing = lambda keys: (scans.append(1),
                                      real_missing(keys))[1]
        with pytest.raises(TimeoutError):
            wait_for_cases(
                store, _eval_ok, _grid(),
                timeout_s=0.6, poll_s=0.01, max_poll_s=0.15,
            )
        assert 1 < len(scans) <= 15

    def test_drain_parked_behind_live_lease_does_few_passes(self, tmp_path):
        # One case held by a foreign claim that expires after ~0.5s:
        # the drain should wait it out in a handful of widening passes,
        # not ~50 fixed-interval ones.
        store = ResultStore(tmp_path)
        cases = _grid()
        fp = evaluator_fingerprint(_eval_ok)
        LeaseBoard(store, worker="ghost", ttl_s=60.0).acquire(
            case_key(cases[0], fp)
        )
        report = drain_cases(
            ResultStore(tmp_path), _eval_ok, cases,
            lease_ttl_s=0.5, poll_s=0.01, max_poll_s=0.2,
        )
        assert report.evaluated == len(cases)
        assert 1 < report.passes <= 15

    def test_backoff_respects_tight_deadline(self, tmp_path):
        # max_poll_s far above the deadline: the drain must still raise
        # within ~one poll of the deadline, not one max_poll_s after.
        store = ResultStore(tmp_path)
        cases = _grid()
        fp = evaluator_fingerprint(_eval_ok)
        LeaseBoard(store, worker="ghost", ttl_s=60.0).acquire(
            case_key(cases[0], fp)
        )
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            drain_cases(
                ResultStore(tmp_path), _eval_ok, cases,
                lease_ttl_s=60.0, poll_s=0.05, max_poll_s=30.0,
                deadline_s=0.3,
            )
        assert time.monotonic() - t0 < 2.0
