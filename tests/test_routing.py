"""Property tests: cached routing tables vs the scalar route oracle.

Covers the satellite requirements: tables hold *minimal* routes, hop
counts are symmetric where the topology is undirected, and every
derived matrix (pipeline, energy, length) agrees with the scalar
per-route computations.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.net.analytic import (
    path_pipeline_cycles,
    transfer_energy_pj,
    flits_for_bytes,
)
from repro.net.routing import build_routing_tables, concat_ranges
from repro.noi.topology import Chiplet, Link, Topology


def _sample_pairs(n, rng, count=60):
    src = rng.integers(0, n, count)
    dst = rng.integers(0, n, count)
    keep = src != dst
    return src[keep], dst[keep]


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


class TestTableStructure:
    def test_memoized_on_topology(self, small_mesh):
        assert small_mesh.routing_tables() is small_mesh.routing_tables()

    def test_directed_links_double_undirected(self, small_mesh):
        t = small_mesh.routing_tables()
        assert t.num_directed_links == 2 * small_mesh.num_links

    def test_hops_diagonal_zero(self, small_kite):
        t = small_kite.routing_tables()
        assert np.all(np.diag(t.hops) == 0)

    def test_concat_ranges(self):
        out = concat_ranges(np.array([5, 0, 9]), np.array([2, 0, 3]))
        assert out.tolist() == [5, 6, 9, 10, 11]
        assert concat_ranges(np.array([], dtype=int),
                             np.array([], dtype=int)).size == 0


class TestMinimalRoutes:
    @pytest.mark.parametrize("fixture", [
        "small_mesh", "small_kite", "small_swap",
    ])
    def test_hops_are_graph_minimal(self, fixture, request):
        topo = request.getfixturevalue(fixture)
        t = topo.routing_tables()
        truth = dict(nx.all_pairs_shortest_path_length(topo.graph))
        n = topo.num_chiplets
        for s in range(0, n, 7):
            for d in range(n):
                assert t.hops[s, d] == truth[s][d]

    def test_floret_hops_minimal(self, small_floret):
        topo = small_floret.topology
        t = topo.routing_tables()
        truth = dict(nx.all_pairs_shortest_path_length(topo.graph))
        for s in range(0, topo.num_chiplets, 5):
            for d in range(topo.num_chiplets):
                assert t.hops[s, d] == truth[s][d]

    @pytest.mark.parametrize("fixture", [
        "small_mesh", "small_kite", "small_swap",
    ])
    def test_hops_symmetric_on_undirected_topologies(self, fixture, request):
        t = request.getfixturevalue(fixture).routing_tables()
        assert np.array_equal(t.hops, t.hops.T)

    def test_route_lengths_match_hops(self, small_mesh):
        t = small_mesh.routing_tables()
        counts = (t.route_indptr[1:] - t.route_indptr[:-1]).reshape(
            t.num_nodes, t.num_nodes
        )
        assert np.array_equal(counts, np.maximum(t.hops, 0))


class TestScalarAgreement:
    def test_routes_identical_to_scalar(self, small_swap, rng):
        t = small_swap.routing_tables()
        for s, d in zip(*_sample_pairs(small_swap.num_chiplets, rng)):
            assert t.route_nodes(int(s), int(d)) == small_swap.route(
                int(s), int(d)
            )

    def test_route_links_are_contiguous_walks(self, small_kite, rng):
        t = small_kite.routing_tables()
        for s, d in zip(*_sample_pairs(small_kite.num_chiplets, rng)):
            links = t.route_link_ids(int(s), int(d))
            assert t.link_u[links[0]] == s
            assert t.link_v[links[-1]] == d
            assert np.array_equal(t.link_v[links[:-1]], t.link_u[links[1:]])

    @pytest.mark.parametrize("fixture", [
        "small_mesh", "small_kite", "small_swap",
    ])
    def test_pipeline_matches_scalar(self, fixture, request, rng):
        topo = request.getfixturevalue(fixture)
        t = topo.routing_tables()
        for s, d in zip(*_sample_pairs(topo.num_chiplets, rng)):
            assert t.pipeline_cycles[s, d] == path_pipeline_cycles(
                topo, int(s), int(d)
            )

    def test_energy_per_flit_matches_scalar(self, small_mesh, rng):
        t = small_mesh.routing_tables()
        payload = 640
        flits = flits_for_bytes(payload, small_mesh.params)
        for s, d in zip(*_sample_pairs(small_mesh.num_chiplets, rng)):
            scalar = transfer_energy_pj(small_mesh, int(s), int(d), payload)
            table = flits * float(
                t.route_router_energy_pj_per_flit[s, d]
                + t.route_link_energy_pj_per_flit[s, d]
            )
            assert table == pytest.approx(scalar, rel=1e-9)

    def test_route_length_matches_scalar(self, small_swap, rng):
        t = small_swap.routing_tables()
        for s, d in zip(*_sample_pairs(small_swap.num_chiplets, rng, 30)):
            assert t.route_length_mm[s, d] == pytest.approx(
                small_swap.path_length_mm(int(s), int(d)), rel=1e-9
            )

    def test_tables_respect_existing_route_cache(self):
        chiplets = [Chiplet(i, x=i % 3, y=i // 3) for i in range(6)]
        links = [Link(i, i + 1, length_mm=3.0) for i in range(5)]
        topo = Topology("line6", chiplets, links)
        before = topo.route(0, 5)
        t = topo.routing_tables()
        assert t.route_nodes(0, 5) == before
        assert topo.route(0, 5) == before


class TestVerticalLinks:
    def test_vertical_energy_and_flags(self):
        chiplets = [Chiplet(0, 0, 0, z=0), Chiplet(1, 0, 0, z=1)]
        links = [Link(0, 1, length_mm=0.1, vertical=True)]
        topo = Topology("stack2", chiplets, links)
        t = topo.routing_tables()
        assert bool(t.link_vertical[0]) and bool(t.link_vertical[1])
        scalar = transfer_energy_pj(topo, 0, 1, 64)
        flits = flits_for_bytes(64, topo.params)
        table = flits * float(t.energy_pj_per_flit(
            np.array([0]), np.array([1])
        )[0])
        assert table == pytest.approx(scalar, rel=1e-9)


class TestUnreachable:
    def test_disconnected_pairs_marked(self):
        chiplets = [Chiplet(i, x=i, y=0) for i in range(4)]
        links = [Link(0, 1, length_mm=3.0), Link(2, 3, length_mm=3.0)]
        topo = Topology("split", chiplets, links)
        t = topo.routing_tables()
        assert t.hops[0, 2] == -1
        with pytest.raises(nx.NetworkXNoPath):
            t.check_reachable(np.array([0]), np.array([2]), "split")

    def test_topology_hops_uses_tables(self):
        chiplets = [Chiplet(i, x=i, y=0) for i in range(4)]
        links = [Link(0, 1, length_mm=3.0), Link(2, 3, length_mm=3.0)]
        topo = Topology("split", chiplets, links)
        topo.routing_tables()
        assert topo.hops(0, 1) == 1
        with pytest.raises(nx.NetworkXNoPath):
            topo.hops(0, 3)
