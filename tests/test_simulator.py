"""Unit tests: discrete-event packet simulator vs analytic model."""

from __future__ import annotations

import pytest

from repro.net.analytic import (
    packet_latency_cycles,
    path_pipeline_cycles,
)
from repro.net.simulator import Message, simulate, simulate_transfers
from repro.noi.topology import Chiplet, Link, Topology


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(6)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(5)]
    return Topology("line", chiplets, links)


class TestSinglePacket:
    def test_one_hop_matches_analytic(self, line):
        report = simulate(line, [Message(0, 1, payload_bytes=64)])
        assert report.packets_delivered == 1
        assert report.makespan_cycles == packet_latency_cycles(line, 0, 1)

    def test_multi_hop_store_and_forward(self, line):
        report = simulate(line, [Message(0, 3, payload_bytes=64)])
        # Store-and-forward re-serialises at each hop: latency is at
        # least the analytic wormhole value.
        assert report.makespan_cycles >= packet_latency_cycles(line, 0, 3)

    def test_self_message_ignored(self, line):
        report = simulate(line, [Message(2, 2, payload_bytes=64)])
        assert report.packets_delivered == 0

    def test_empty_payload_ignored(self, line):
        report = simulate(line, [Message(0, 1, payload_bytes=0)])
        assert report.packets_delivered == 0


class TestContention:
    def test_shared_link_serialises(self, line):
        solo = simulate(line, [Message(0, 1, payload_bytes=64)])
        pair = simulate(
            line,
            [Message(0, 1, payload_bytes=64, message_id=0),
             Message(0, 1, payload_bytes=64, message_id=1)],
        )
        assert pair.makespan_cycles > solo.makespan_cycles

    def test_disjoint_links_parallel(self, line):
        solo = simulate(line, [Message(0, 1, payload_bytes=64)])
        pair = simulate(
            line,
            [Message(0, 1, payload_bytes=64, message_id=0),
             Message(3, 4, payload_bytes=64, message_id=1)],
        )
        # Different links, same lengths: no slowdown.
        assert pair.makespan_cycles == solo.makespan_cycles

    def test_contention_only_increases_latency(self, line):
        base = simulate(line, [Message(0, 3, payload_bytes=256)])
        loaded = simulate(
            line,
            [Message(0, 3, payload_bytes=256, message_id=0)]
            + [Message(1, 2, payload_bytes=256, message_id=i)
               for i in range(1, 4)],
        )
        assert loaded.message_completion[0] >= base.message_completion[0]


class TestMessages:
    def test_packetization_count(self, line):
        report = simulate(line, [Message(0, 1, payload_bytes=300)])
        # 300 B / 64 B packets -> 5 packets.
        assert report.packets_delivered == 5

    def test_message_completion_tracks_last_packet(self, line):
        report = simulate(line, [Message(0, 2, payload_bytes=640)])
        assert report.message_completion[0] == report.makespan_cycles

    def test_injection_offset_respected(self, line):
        early = simulate(line, [Message(0, 1, 64, inject_cycle=0)])
        late = simulate(line, [Message(0, 1, 64, inject_cycle=100)])
        assert (
            late.makespan_cycles
            == early.makespan_cycles + 100
        )

    def test_simulate_transfers_wrapper(self, line):
        report = simulate_transfers(line, [(0, 1, 64), (1, 2, 64)])
        assert report.packets_delivered == 2
        assert set(report.message_completion) == {0, 1}

    def test_mean_packet_latency_positive(self, line):
        report = simulate_transfers(line, [(0, 4, 640)])
        assert report.mean_packet_latency > 0
        assert report.max_packet_latency >= report.mean_packet_latency
