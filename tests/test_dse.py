"""Unit tests: design-space exploration vs the exhaustive scalar oracle."""

from __future__ import annotations

import random

import pytest

from repro.eval.dse import (
    DesignSpace,
    design_space,
    dse_search,
    extract_objectives,
    reference_search,
)
from repro.eval.store import ResultStore
from repro.eval.sweeps import SweepCase, evaluate_comm_case


def _synthetic_evaluate(case: SweepCase):
    """Deterministic metrics with a controlled latency/energy trade-off.

    Latency falls and energy rises with flit width, so every flit value
    of the smallest system is Pareto-optimal -- a known multi-point
    front to pin the search against.
    """
    flit = dict(case.noi_overrides).get("flit_bytes", 32)
    latency = case.num_chiplets * 1000.0 / flit
    energy = case.num_chiplets * float(flit)
    if case.arch == "kite":  # strictly worse twin of siam
        latency += 1.0
        energy += 1.0
    return {"latency_cycles": latency, "energy_pj": energy}


def _exploding_36(case: SweepCase):
    """Module-level (store-fingerprintable) evaluator that breaks on 36."""
    if case.num_chiplets == 36:
        raise RuntimeError("bad size")
    return _synthetic_evaluate(case)


SPACE = design_space(
    ("siam", "kite"), (16, 36), flit_bytes=(16, 32, 64),
    workload="uniform", tag="test",
)


class TestDesignSpace:
    def test_enumeration_is_complete_and_distinct(self):
        genomes = SPACE.all_genomes()
        assert len(genomes) == SPACE.num_designs == 2 * 2 * 3
        assert len(set(genomes)) == len(genomes)
        case_ids = {c.case_id for c in SPACE.all_cases()}
        assert len(case_ids) == len(genomes)

    def test_case_materialisation(self):
        case = SPACE.case(("siam", 16, 64))
        assert case.arch == "siam"
        assert case.num_chiplets == 16
        assert case.noi_overrides == (("flit_bytes", 64),)
        assert case.workload == "uniform"
        assert case.tag == "test"

    def test_genome_length_validated(self):
        with pytest.raises(ValueError, match="genome length"):
            SPACE.case(("siam", 16))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DesignSpace(archs=())
        with pytest.raises(ValueError, match="empty"):
            design_space(("siam",), flit_bytes=())

    def test_operators_stay_in_space(self):
        rng = random.Random(0)
        axes = SPACE.axes()
        for _ in range(100):
            a = SPACE.random_genome(rng)
            b = SPACE.random_genome(rng)
            for genome in (a, b, SPACE.mutate(a, rng),
                           SPACE.crossover(a, b, rng)):
                assert len(genome) == len(axes)
                for value, (_, values) in zip(genome, axes):
                    assert value in values

    def test_mutation_changes_at_most_one_axis(self):
        rng = random.Random(1)
        genome = ("siam", 16, 32)
        for _ in range(50):
            mutated = SPACE.mutate(genome, rng)
            differing = sum(x != y for x, y in zip(genome, mutated))
            assert differing <= 1


class TestObjectives:
    def test_direct_extraction(self):
        assert extract_objectives(
            {"latency_cycles": 2.0, "energy_pj": 3.0},
            ("latency_cycles", "energy_pj"),
        ) == (2.0, 3.0)

    def test_edp_derived(self):
        assert extract_objectives(
            {"latency_cycles": 2.0, "energy_pj": 3.0}, ("edp",)
        ) == (6.0,)

    def test_explicit_edp_preferred(self):
        assert extract_objectives(
            {"latency_cycles": 2.0, "energy_pj": 3.0, "edp": 5.0}, ("edp",)
        ) == (5.0,)

    def test_unknown_objective_raises(self):
        with pytest.raises(KeyError, match="not derivable"):
            extract_objectives({"latency_cycles": 1.0}, ("watts",))


class TestOracleEquivalence:
    def test_reference_front_is_the_known_one(self):
        front = reference_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
        )
        # All three flit widths of the 16-chiplet siam trade off
        # latency against energy; everything else is dominated.
        assert {p.genome for p in front} == {
            ("siam", 16, 16), ("siam", 16, 32), ("siam", 16, 64),
        }

    def test_search_equals_oracle_when_population_covers_space(self):
        """The pinned equivalence: exhaustive NSGA-II == scalar oracle."""
        reference = reference_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
        )
        result = dse_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
            population_size=SPACE.num_designs, generations=2,
            seed=5, workers=1,
        )
        assert tuple(p.genome for p in result.pareto_front) == tuple(
            p.genome for p in reference
        )
        assert tuple(p.objectives for p in result.pareto_front) == tuple(
            p.objectives for p in reference
        )

    def test_search_equals_oracle_on_real_evaluator(self):
        small = design_space(("siam", "kite"), (16,), flit_bytes=(16, 32),
                             workload="uniform")
        reference = reference_search(small, evaluate_comm_case)
        result = dse_search(
            small, evaluate_comm_case,
            population_size=small.num_designs, generations=1,
            seed=0, workers=1,
        )
        assert result.front_case_ids() == tuple(
            p.case.case_id for p in reference
        )

    def test_partial_search_front_is_mutually_nondominated(self):
        result = dse_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
            population_size=4, generations=3, seed=11, workers=1,
        )
        front = result.pareto_front
        assert front
        for p in front:
            assert not any(q.dominates(p) for q in result.archive)
        assert result.evaluations <= SPACE.num_designs
        assert len(result.archive) == result.evaluations


class TestStoreBackedSearch:
    def test_second_search_is_all_cache_hits(self, tmp_path):
        first = dse_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
            population_size=SPACE.num_designs, generations=1,
            seed=2, workers=1, store=ResultStore(tmp_path),
        )
        assert first.store_hits == 0
        assert first.evaluations == SPACE.num_designs
        second = dse_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
            population_size=SPACE.num_designs, generations=1,
            seed=2, workers=1, store=ResultStore(tmp_path),
        )
        assert second.evaluations == 0
        assert second.store_hits == SPACE.num_designs
        assert second.front_case_ids() == first.front_case_ids()
        assert tuple(p.objectives for p in second.pareto_front) == tuple(
            p.objectives for p in first.pareto_front
        )

    def test_failed_candidates_warn_and_are_excluded(self):
        def exploding(case):
            if case.num_chiplets == 36:
                raise RuntimeError("bad size")
            return _synthetic_evaluate(case)

        with pytest.warns(RuntimeWarning, match="DSE evaluation failed"):
            result = dse_search(
                SPACE, exploding,
                objectives=("latency_cycles", "energy_pj"),
                population_size=SPACE.num_designs, generations=3,
                seed=0, workers=1,
            )
        assert all(p.case.num_chiplets != 36 for p in result.archive)
        # Failed genomes are memoised: each of the six 36-chiplet
        # designs fails exactly once even though tournament offspring
        # re-propose them across three generations.
        assert result.failures == 2 * 1 * 3  # archs x sizes{36} x flits


class TestFlowControlSpace:
    def test_axes_span_the_fc_knobs(self):
        from repro.eval.dse import fc_design_space

        space = fc_design_space()
        axes = dict(space.axes())
        assert axes["fc_buffer_flits"] == (4, 16)
        assert axes["fc_credit_rtt"] == (1, 2)
        assert space.num_designs == 4

    def test_cases_carry_fc_overrides(self):
        from repro.eval.dse import fc_design_space

        space = fc_design_space()
        case = space.case(space.all_genomes()[0])
        over = dict(case.noi_overrides)
        assert set(over) == {"fc_buffer_flits", "fc_credit_rtt"}
        params = case.params()
        assert params.fc_buffer_flits == over["fc_buffer_flits"]
        assert params.fc_credit_rtt == over["fc_credit_rtt"]

    def test_search_equals_oracle_on_closed_loop_evaluator(self):
        """Pinned reference for the stock flow-control space.

        The oracle runs every candidate through the credit-backpressure
        simulator; deeper buffers must dominate on this contended load
        (shallow 4-flit buffers stall the steady-state tail), so the
        front pins to the 16-flit designs.
        """
        from repro.eval.dse import FC_OBJECTIVES, fc_design_space
        from repro.eval.experiments import evaluate_load_sweep_case

        space = fc_design_space()
        reference = reference_search(
            space, evaluate_load_sweep_case, objectives=FC_OBJECTIVES
        )
        searched = dse_search(
            space, evaluate_load_sweep_case, objectives=FC_OBJECTIVES,
            population_size=space.num_designs, generations=1,
            seed=0, workers=1,
        )
        assert searched.front_case_ids() == tuple(
            p.case.case_id for p in reference
        )
        assert tuple(p.objectives for p in searched.pareto_front) == tuple(
            p.objectives for p in reference
        )
        assert all(
            dict(p.case.noi_overrides)["fc_buffer_flits"] == 16
            for p in reference
        )


class TestShardedSearch:
    def test_every_shard_returns_the_reference_result(self, tmp_path):
        from repro.eval.shard import ShardSpec

        reference = dse_search(
            SPACE, _synthetic_evaluate,
            objectives=("latency_cycles", "energy_pj"),
            population_size=8, generations=2, seed=3, workers=1,
        )
        sharded = [
            dse_search(
                SPACE, _synthetic_evaluate,
                objectives=("latency_cycles", "energy_pj"),
                population_size=8, generations=2, seed=3, workers=1,
                store=ResultStore(tmp_path), shard=ShardSpec(i, 2),
                sync_timeout_s=60.0,
            )
            for i in range(2)
        ]
        for result in sharded:
            assert result.front_case_ids() == reference.front_case_ids()
            assert tuple(p.objectives for p in result.pareto_front) == (
                tuple(p.objectives for p in reference.pareto_front)
            )
        # The fleet split the evaluations: together they evaluated the
        # reference's workload exactly once (worker 0 ran first and
        # stole the absent peer's share; worker 1 replayed hits).
        assert sum(r.evaluations for r in sharded) == reference.evaluations
        assert sharded[1].evaluations == 0
        assert sharded[1].store_hits > 0

    def test_shard_without_store_rejected(self):
        from repro.eval.shard import ShardSpec

        with pytest.raises(ValueError, match="store"):
            dse_search(
                SPACE, _synthetic_evaluate,
                objectives=("latency_cycles", "energy_pj"),
                shard=ShardSpec(0, 2),
            )

    def test_sharded_failures_stay_deterministic(self, tmp_path):
        """Broken designs fail on every worker, never poison the store."""
        from repro.eval.shard import ShardSpec

        with pytest.warns(RuntimeWarning, match="DSE evaluation failed"):
            result = dse_search(
                SPACE, _exploding_36,
                objectives=("latency_cycles", "energy_pj"),
                population_size=SPACE.num_designs, generations=1,
                seed=0, workers=1,
                store=ResultStore(tmp_path), shard=ShardSpec(0, 1),
            )
        assert all(p.case.num_chiplets != 36 for p in result.archive)
        assert result.failures == 6
        # Errors were never cached: the store holds only good designs.
        assert len(ResultStore(tmp_path)) == SPACE.num_designs - 6
